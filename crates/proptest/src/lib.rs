//! Hermetic stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of proptest: enough for the
//! property tests in `tests/properties.rs` and the crates' dev-tests.
//! Sampling is *deterministic* — each test derives its RNG seed from its
//! own name, so a failure reproduces on every run. That determinism is
//! itself a repo invariant (see DESIGN.md §"Static analysis & invariants").
//!
//! Supported surface:
//! * `proptest! { #[test] fn name(x in strategy, ...) { ... } }`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//! * Range strategies over the numeric types the tests use
//! * Tuples of strategies (2–4 elements), sampled left to right
//! * `proptest::collection::vec(elem, len)` with fixed or ranged length
//! * `prop::bool::ANY`

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type — the proptest `Strategy`
    /// trait reduced to plain sampling (no shrinking).
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! sint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }
    sint_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3)
    );

    /// Strategy for `prop::bool::ANY`.
    #[derive(Copy, Clone, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy producing vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn Fn(&mut TestRng) -> usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = (self.size)(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — element strategy plus fixed or
    /// ranged length.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(move |rng| size.pick(rng)),
        }
    }
}

pub mod test_runner {
    /// Cases drawn per property. Chosen so the whole property suite stays
    /// inside tier-1 test time.
    pub const DEFAULT_CASES: u64 = 64;

    /// SplitMix64 — tiny, high-quality, and dependency-free. Seeded from
    /// the test name so every run of a given property sees the same case
    /// sequence (determinism is a repo invariant; `thread_rng` is banned
    /// by `xtask lint`).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from an arbitrary string (the test's name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name for the seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The `prop::` namespace (`prop::bool::ANY`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Either boolean, uniformly.
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares deterministic property tests. Each listed function becomes a
/// `#[test]` that samples its arguments [`test_runner::DEFAULT_CASES`]
/// times and runs the body per case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::test_runner::DEFAULT_CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    // One closure per case so `prop_assume!` can skip the
                    // case with an early return.
                    let __case_body = || { $body };
                    __case_body();
                }
            }
        )*
    };
}

/// Asserts a property holds for the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two values are equal for the sampled case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips cases that don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        // Overwhelmingly likely distinct streams for distinct names.
        assert_ne!(TestRng::from_name("x").next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let u = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&u));
            let f = (-2.0f32..3.5).sample(&mut rng);
            assert!((-2.0..3.5).contains(&f));
            let v = collection::vec(0u64..5, 2usize..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
            let (p, q) = (1u64..4, 10usize..12).sample(&mut rng);
            assert!((1..4).contains(&p) && (10..12).contains(&q));
        }
    }

    proptest! {
        #[test]
        fn macro_samples_and_runs(a in 0u64..10, b in 0u64..10) {
            prop_assume!(a != b);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
