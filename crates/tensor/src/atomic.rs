//! Lock-free shared weights for the Hogwild algorithms (§3.2, §5.1).
//!
//! Hogwild SGD removes the master's update lock and lets workers race on
//! the shared weight vector; Hogwild EASGD does the same for the center
//! weight `W̄`. Rust forbids plain data races, so the shared buffer is a
//! vector of [`AtomicF32`] — `f32` values bit-cast into `AtomicU32`, read
//! and written with `Relaxed` ordering exactly as the Hogwild paper's
//! model permits (individual component updates may interleave arbitrarily;
//! no cross-component ordering is required).

use std::sync::atomic::{AtomicU32, Ordering};

/// An `f32` stored in an `AtomicU32` via bit-casting.
#[derive(Debug, Default)]
pub struct AtomicF32(AtomicU32);

impl AtomicF32 {
    /// A new atomic holding `v`.
    pub fn new(v: f32) -> Self {
        Self(AtomicU32::new(v.to_bits()))
    }

    /// Relaxed load.
    pub fn load(&self) -> f32 {
        // ordering: Hogwild reads are deliberately racy — a stale component
        // is part of the algorithm's noise model; no ordering with other
        // memory is needed (see DESIGN.md §"Static analysis & invariants").
        f32::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Relaxed store.
    pub fn store(&self, v: f32) {
        // ordering: value-only publication; readers tolerate staleness and
        // never infer other memory state from this cell.
        self.0.store(v.to_bits(), Ordering::Relaxed)
    }

    /// Atomic `+= delta` via compare-exchange loop. This is the Hogwild
    /// component update: lock-free, but each single component is updated
    /// without lost writes.
    pub fn fetch_add(&self, delta: f32) -> f32 {
        // ordering: the CAS loop only needs atomicity of this one cell, not
        // ordering against other cells; per-component no-lost-update is
        // what EASGD requires, and the xtask interleaving explorer model
        // checks exactly this load+CAS shape.
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + delta).to_bits();
            match self
                .0
                // ordering: success/failure both Relaxed — see load above.
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f32::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomic update through an arbitrary function, retried on contention.
    pub fn update(&self, f: impl Fn(f32) -> f32) -> f32 {
        // ordering: single-cell read-modify-write; Relaxed suffices for the
        // same reason as fetch_add (atomicity, not cross-cell ordering).
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = f(f32::from_bits(cur)).to_bits();
            match self
                .0
                // ordering: success/failure both Relaxed — see load above.
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f32::from_bits(new),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A shared, lock-free `f32` buffer: the Hogwild master's weight vector.
#[derive(Debug)]
pub struct AtomicBuffer {
    data: Vec<AtomicF32>,
}

impl AtomicBuffer {
    /// A zero-filled buffer of `len` elements.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: (0..len).map(|_| AtomicF32::new(0.0)).collect(),
        }
    }

    /// A buffer initialized from a slice.
    pub fn from_slice(src: &[f32]) -> Self {
        Self {
            data: src.iter().map(|&v| AtomicF32::new(v)).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed load of element `i`.
    pub fn load(&self, i: usize) -> f32 {
        self.data[i].load()
    }

    /// Relaxed store of element `i`.
    pub fn store(&self, i: usize, v: f32) {
        self.data[i].store(v)
    }

    /// Lock-free `buf[i] += delta`.
    pub fn fetch_add(&self, i: usize, delta: f32) -> f32 {
        self.data[i].fetch_add(delta)
    }

    /// Snapshot into an owned vector. Each element read is atomic; the
    /// snapshot as a whole is *not* a consistent cut — exactly the
    /// inconsistency Hogwild tolerates by design.
    pub fn snapshot(&self) -> Vec<f32> {
        self.data.iter().map(|a| a.load()).collect()
    }

    /// Snapshot into an existing buffer.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn snapshot_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len(), "snapshot length mismatch");
        for (o, a) in out.iter_mut().zip(&self.data) {
            *o = a.load();
        }
    }

    /// Overwrites all elements from a slice (element-wise atomic stores).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn store_all(&self, src: &[f32]) {
        assert_eq!(src.len(), self.len(), "store length mismatch");
        for (a, &v) in self.data.iter().zip(src) {
            a.store(v);
        }
    }

    /// The lock-free Hogwild-EASGD center update for one arriving worker:
    /// `W̄ ← W̄ + ηρ(Wᵢ − W̄)`, applied component-wise with atomic
    /// read-modify-write and *no* lock across components.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn elastic_center_update(&self, eta: f32, rho: f32, local: &[f32]) {
        assert_eq!(local.len(), self.len(), "center update length mismatch");
        let c = eta * rho;
        for (a, &w) in self.data.iter().zip(local) {
            a.update(|center| center + c * (w - center));
        }
    }

    /// The lock-free Hogwild-SGD update: `W ← W − η·grad`, component-wise.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn sgd_update(&self, eta: f32, grad: &[f32]) {
        assert_eq!(grad.len(), self.len(), "sgd update length mismatch");
        for (a, &g) in self.data.iter().zip(grad) {
            a.fetch_add(-eta * g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn load_store_roundtrip() {
        let a = AtomicF32::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let a = AtomicF32::new(1.0);
        assert_eq!(a.fetch_add(2.0), 1.0);
        assert_eq!(a.load(), 3.0);
    }

    #[test]
    fn concurrent_fetch_add_loses_no_updates() {
        // The whole point of the CAS loop: with 8 threads × 10_000 adds of
        // 1.0 the result is exactly 80_000 (all values exactly
        // representable, additions of integers in f32 are associative here).
        let buf = Arc::new(AtomicBuffer::zeros(4));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let buf = Arc::clone(&buf);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        buf.fetch_add(t % 4, 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total: f32 = buf.snapshot().iter().sum();
        assert_eq!(total, 80_000.0);
    }

    #[test]
    fn snapshot_matches_stores() {
        let buf = AtomicBuffer::from_slice(&[1.0, 2.0, 3.0]);
        buf.store(1, 9.0);
        assert_eq!(buf.snapshot(), vec![1.0, 9.0, 3.0]);
        let mut out = vec![0.0; 3];
        buf.snapshot_into(&mut out);
        assert_eq!(out, vec![1.0, 9.0, 3.0]);
    }

    #[test]
    fn elastic_center_update_single_thread_matches_scalar() {
        let buf = AtomicBuffer::from_slice(&[0.0]);
        buf.elastic_center_update(0.1, 0.5, &[2.0]);
        assert!((buf.load(0) - 0.1f32 * 0.5 * 2.0).abs() < 1e-7);
    }

    #[test]
    fn concurrent_center_updates_stay_bounded() {
        // Center pulled toward worker values in [0,1] from many threads must
        // remain in [0,1]: each atomic update is a convex combination, so no
        // interleaving can escape the hull. This is the safety property the
        // paper's Hogwild-EASGD proof appendix relies on.
        let buf = Arc::new(AtomicBuffer::zeros(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let buf = Arc::clone(&buf);
                std::thread::spawn(move || {
                    let w = vec![(t as f32 + 1.0) / 8.0; 16];
                    for _ in 0..1000 {
                        buf.elastic_center_update(0.5, 0.9, &w);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for v in buf.snapshot() {
            assert!((0.0..=1.0).contains(&v), "center escaped hull: {v}");
        }
    }

    #[test]
    fn sgd_update_descends() {
        let buf = AtomicBuffer::from_slice(&[1.0, 1.0]);
        buf.sgd_update(0.5, &[2.0, -2.0]);
        assert_eq!(buf.snapshot(), vec![0.0, 2.0]);
    }

    #[test]
    fn store_all_overwrites() {
        let buf = AtomicBuffer::zeros(3);
        buf.store_all(&[1.0, 2.0, 3.0]);
        assert_eq!(buf.snapshot(), vec![1.0, 2.0, 3.0]);
    }
}
