//! Fully-connected layer.

use crate::layer::{batch_of, Init, Layer, ParamSpec};
use easgd_tensor::{gemm, gemm_rowstable, ParamArena, Tensor, TrainScratch, Transpose};

/// Fully-connected (inner-product) layer: `Y = X·Wᵀ + b`.
///
/// `W` is stored `[out_features, in_features]` row-major (Caffe
/// convention), `b` is `[out_features]`.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Layer name used for parameter segments.
    pub name: String,
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    w_seg: usize,
    b_seg: usize,
    input_cache: Option<Tensor>,
}

impl Dense {
    /// A dense layer mapping `in_features → out_features`.
    pub fn new(name: impl Into<String>, in_features: usize, out_features: usize) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dense dims must be > 0"
        );
        Self {
            name: name.into(),
            in_features,
            out_features,
            w_seg: usize::MAX,
            b_seg: usize::MAX,
            input_cache: None,
        }
    }

    /// Number of parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.in_features * self.out_features + self.out_features
    }
}

impl Layer for Dense {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec {
                name: format!("{}.weight", self.name),
                len: self.in_features * self.out_features,
                init: Init::Xavier {
                    fan_in: self.in_features,
                    fan_out: self.out_features,
                },
            },
            ParamSpec {
                name: format!("{}.bias", self.name),
                len: self.out_features,
                init: Init::Constant(0.0),
            },
        ]
    }

    fn bind(&mut self, segments: &[usize]) {
        assert_eq!(segments.len(), 2, "dense expects weight+bias segments");
        self.w_seg = segments[0];
        self.b_seg = segments[1];
    }

    fn out_shape(&self) -> Vec<usize> {
        vec![self.out_features]
    }

    fn forward_into(
        &mut self,
        params: &ParamArena,
        input: &Tensor,
        train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let b = batch_of(input);
        assert_eq!(
            input.len(),
            b * self.in_features,
            "dense '{}' expected {} features/sample, input is {:?}",
            self.name,
            self.in_features,
            input.shape()
        );
        let w = params.segment(self.w_seg);
        let bias = params.segment(self.b_seg);
        scratch.shape_tensor(out, &[b, self.out_features]);
        // Y[B,out] = X[B,in] · Wᵀ  (W stored [out,in]; β = 0 never reads
        // the reused buffer, so no zeroing is needed). Eval mode picks
        // the kernel per row (`gemm_rowstable`) so a sample's logits are
        // bit-identical at any serving batch size; training keeps the
        // total-flops dispatch that the golden traces pin.
        let mm = if train { gemm } else { gemm_rowstable };
        mm(
            Transpose::No,
            Transpose::Yes,
            b,
            self.out_features,
            self.in_features,
            1.0,
            input.as_slice(),
            w,
            0.0,
            out.as_mut_slice(),
        );
        for row in out.as_mut_slice().chunks_mut(self.out_features) {
            easgd_tensor::ops::add_assign(row, bias);
        }
        let cache = self.input_cache.get_or_insert_with(Tensor::default);
        scratch.shape_tensor(cache, input.shape().dims());
        cache.as_mut_slice().copy_from_slice(input.as_slice());
    }

    fn backward_into(
        &mut self,
        params: &ParamArena,
        grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let input = self
            .input_cache
            .as_ref()
            .expect("backward called before forward");
        let b = batch_of(input);
        assert_eq!(
            grad_out.len(),
            b * self.out_features,
            "grad_out shape mismatch"
        );

        // gradW[out,in] += Σ_b gradY[b,out]·X[b,in] = gradYᵀ · X
        gemm(
            Transpose::Yes,
            Transpose::No,
            self.out_features,
            self.in_features,
            b,
            1.0,
            grad_out.as_slice(),
            input.as_slice(),
            1.0,
            grads.segment_mut(self.w_seg),
        );
        // gradB[j] += Σ_b gradY[b,j]
        {
            let gb = grads.segment_mut(self.b_seg);
            for row in grad_out.as_slice().chunks(self.out_features) {
                easgd_tensor::ops::add_assign(gb, row);
            }
        }
        // gradX[B,in] = gradY[B,out] · W[out,in]
        let w = params.segment(self.w_seg);
        scratch.shape_tensor(grad_in, input.shape().dims());
        gemm(
            Transpose::No,
            Transpose::No,
            b,
            self.in_features,
            self.out_features,
            1.0,
            grad_out.as_slice(),
            w,
            0.0,
            grad_in.as_mut_slice(),
        );
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_tensor::Rng;

    fn build(layer: &mut Dense, rng: &mut Rng) -> (ParamArena, ParamArena) {
        let mut b = ParamArena::builder();
        let mut segs = Vec::new();
        for spec in layer.param_specs() {
            segs.push(b.push(spec.name.clone(), spec.len));
        }
        let mut params = b.build();
        for (i, spec) in layer.param_specs().iter().enumerate() {
            spec.init.fill(params.segment_mut(segs[i]), rng);
        }
        layer.bind(&segs);
        let grads = ParamArena::like(&params);
        (params, grads)
    }

    #[test]
    fn forward_matches_manual() {
        let mut rng = Rng::new(1);
        let mut l = Dense::new("fc", 3, 2);
        let (mut params, _) = build(&mut l, &mut rng);
        // W = [[1,0,0],[0,1,0]], b = [0.5, -0.5]
        params
            .segment_mut(0)
            .copy_from_slice(&[1., 0., 0., 0., 1., 0.]);
        params.segment_mut(1).copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec([1, 3], vec![2.0, 3.0, 4.0]);
        let y = l.forward(&params, &x, true);
        assert_eq!(y.as_slice(), &[2.5, 2.5]);
    }

    #[test]
    fn backward_grad_shapes_and_bias() {
        let mut rng = Rng::new(2);
        let mut l = Dense::new("fc", 4, 3);
        let (params, mut grads) = build(&mut l, &mut rng);
        let x = Tensor::from_vec([2, 4], (0..8).map(|i| i as f32).collect());
        let _ = l.forward(&params, &x, true);
        let gy = Tensor::from_vec([2, 3], vec![1.0; 6]);
        let gx = l.backward(&params, &mut grads, &gy);
        assert_eq!(gx.shape().dims(), &[2, 4]);
        // Bias gradient = column sums of gradY = 2 each.
        assert_eq!(grads.segment(1), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut rng = Rng::new(3);
        let mut l = Dense::new("fc", 5, 4);
        let (params, grads) = build(&mut l, &mut rng);
        crate::gradcheck::check_layer(&mut l, params, grads, &[5], 3, 1e-2, 42);
    }

    #[test]
    fn num_params_counts_weight_and_bias() {
        assert_eq!(Dense::new("fc", 10, 7).num_params(), 77);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn forward_rejects_wrong_width() {
        let mut rng = Rng::new(4);
        let mut l = Dense::new("fc", 3, 2);
        let (params, _) = build(&mut l, &mut rng);
        let x = Tensor::from_vec([1, 4], vec![0.0; 4]);
        let _ = l.forward(&params, &x, true);
    }
}
