//! Tensor shapes: dimension lists with row-major stride math.

use std::fmt;

/// The shape of a dense, row-major tensor.
///
/// Up to four dimensions are used by the networks in this workspace
/// (`[batch, channels, height, width]` for feature maps, `[out, in]` for
/// dense weights), but the type supports any rank.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// Zero-sized dimensions are permitted (an empty tensor), but an empty
    /// dimension list denotes a scalar with one element.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Self { dims: dims.into() }
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Replaces the dimension list in place, reusing the existing
    /// capacity of the dims vector (no allocation once the rank has been
    /// seen — the pooled training path re-shapes tensors every step).
    pub fn set_dims(&mut self, dims: &[usize]) {
        self.dims.clear();
        self.dims.extend_from_slice(dims);
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True if the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides: `stride[i]` is the element distance between
    /// consecutive indices along dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if `idx` has the wrong rank or any coordinate is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            idx.len(),
            self.dims.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (d, (&i, &s)) in idx.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.dims[d],
                "index {i} out of bounds for dimension {d} of size {}",
                self.dims[d]
            );
            off += i * s;
        }
        off
    }

    /// Interprets the shape as a matrix `[rows, cols]`, collapsing all
    /// leading dimensions into `rows`.
    ///
    /// A rank-1 shape `[n]` is viewed as `[1, n]`; a scalar as `[1, 1]`.
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.dims.len() {
            0 => (1, 1),
            1 => (1, self.dims[0]),
            _ => {
                let cols = self.dims.last().copied().unwrap_or(1);
                (self.len() / cols.max(1), cols)
            }
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", parts.join("x"))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::from([2, 3, 4]).len(), 24);
        assert_eq!(Shape::from([7]).len(), 7);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(Vec::new());
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn zero_dim_makes_empty() {
        let s = Shape::from([3, 0, 5]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn row_major_strides() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_range() {
        Shape::from([2, 2]).offset(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rejects_wrong_rank() {
        Shape::from([2, 2]).offset(&[0]);
    }

    #[test]
    fn as_matrix_collapses_leading_dims() {
        assert_eq!(Shape::from([8, 3, 32, 32]).as_matrix(), (8 * 3 * 32, 32));
        assert_eq!(Shape::from([10]).as_matrix(), (1, 10));
        assert_eq!(Shape::new(Vec::new()).as_matrix(), (1, 1));
    }

    #[test]
    fn display_uses_x_separator() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2x3]");
    }
}
