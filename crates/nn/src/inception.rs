//! Inception modules: the branching building block of GoogLeNet (§4.2).
//!
//! The paper's large-scale runs train GoogLeNet; its defining structure
//! is the inception module — four parallel branches (1×1, 1×1→3×3,
//! 1×1→5×5, pool→1×1 projection) whose outputs are concatenated along
//! the channel axis. [`Inception`] is a composite [`Layer`]: it owns the
//! branch sub-layers, forwards the same input through each, and
//! concatenates; backward splits the upstream gradient per branch and
//! sums the branch input-gradients.

use crate::conv::Conv2d;
use crate::layer::{batch_of, Layer, ParamSpec};
use easgd_tensor::{Conv2dGeometry, ParamArena, Tensor, TrainScratch};

/// One parallel branch: a sequential stack of sub-layers.
struct Branch {
    layers: Vec<Box<dyn Layer>>,
    /// Output channels of the branch (spatial dims match the module's).
    out_channels: usize,
    /// Ping/pong activation slots for the sequential chain; after a
    /// `forward_into`/`backward_into` pass the result sits in `pong`.
    ping: Tensor,
    pong: Tensor,
}

impl Branch {
    fn forward_into(
        &mut self,
        params: &ParamArena,
        input: &Tensor,
        train: bool,
        scratch: &mut TrainScratch,
    ) {
        let mut first = true;
        for l in &mut self.layers {
            if first {
                l.forward_into(params, input, train, &mut self.pong, scratch);
                first = false;
            } else {
                std::mem::swap(&mut self.ping, &mut self.pong);
                l.forward_into(params, &self.ping, train, &mut self.pong, scratch);
            }
        }
    }

    fn backward_into(
        &mut self,
        params: &ParamArena,
        grads: &mut ParamArena,
        grad_out: &Tensor,
        scratch: &mut TrainScratch,
    ) {
        let mut first = true;
        for l in self.layers.iter_mut().rev() {
            if first {
                l.backward_into(params, grads, grad_out, &mut self.pong, scratch);
                first = false;
            } else {
                std::mem::swap(&mut self.ping, &mut self.pong);
                l.backward_into(params, grads, &self.ping, &mut self.pong, scratch);
            }
        }
    }
}

/// Channel counts of one inception module (GoogLeNet table notation).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct InceptionConfig {
    /// 1×1 branch output channels.
    pub c1: usize,
    /// 3×3 branch: 1×1 reduction channels.
    pub c3_reduce: usize,
    /// 3×3 branch output channels.
    pub c3: usize,
    /// 5×5 branch: 1×1 reduction channels.
    pub c5_reduce: usize,
    /// 5×5 branch output channels.
    pub c5: usize,
    /// Pool-projection branch output channels.
    pub pool_proj: usize,
}

impl InceptionConfig {
    /// Total output channels after concatenation.
    pub fn out_channels(&self) -> usize {
        self.c1 + self.c3 + self.c5 + self.pool_proj
    }
}

/// A GoogLeNet inception module over `[in_channels, h, w]` maps.
///
/// Branch ReLUs are omitted (append a `relu()` after the module, as the
/// builder does) — gradients remain exact either way.
pub struct Inception {
    name: String,
    in_channels: usize,
    h: usize,
    w: usize,
    config: InceptionConfig,
    branches: Vec<Branch>,
    /// Per-branch slice of the upstream gradient, reused across branches
    /// and steps.
    gslice: Tensor,
    last_batch: usize,
}

impl Inception {
    /// Builds the four standard branches.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        h: usize,
        w: usize,
        config: InceptionConfig,
    ) -> Self {
        let name = name.into();
        let conv =
            |suffix: &str, in_c: usize, out_c: usize, k: usize, pad: usize| -> Box<dyn Layer> {
                Box::new(Conv2d::new(
                    format!("{name}.{suffix}"),
                    Conv2dGeometry {
                        in_channels: in_c,
                        in_h: h,
                        in_w: w,
                        k_h: k,
                        k_w: k,
                        stride: 1,
                        pad,
                    },
                    out_c,
                ))
            };
        let branch = |layers: Vec<Box<dyn Layer>>, out_channels: usize| Branch {
            layers,
            out_channels,
            ping: Tensor::default(),
            pong: Tensor::default(),
        };
        let branches = vec![
            branch(vec![conv("1x1", in_channels, config.c1, 1, 0)], config.c1),
            branch(
                vec![
                    conv("3x3r", in_channels, config.c3_reduce, 1, 0),
                    conv("3x3", config.c3_reduce, config.c3, 3, 1),
                ],
                config.c3,
            ),
            branch(
                vec![
                    conv("5x5r", in_channels, config.c5_reduce, 1, 0),
                    conv("5x5", config.c5_reduce, config.c5, 5, 2),
                ],
                config.c5,
            ),
            // GoogLeNet's fourth branch is a same-size 3×3 max pool
            // followed by a 1×1 projection. Our pooling layer has no
            // padding, so the pool stage is folded away and only the
            // projection is kept — same parameter count and channel
            // arithmetic, slightly different features; the cost specs
            // (`spec::spec_googlenet`) are unaffected.
            branch(
                vec![conv("proj", in_channels, config.pool_proj, 1, 0)],
                config.pool_proj,
            ),
        ];
        Self {
            name,
            in_channels,
            h,
            w,
            config,
            branches,
            gslice: Tensor::default(),
            last_batch: 0,
        }
    }

    /// The module's channel configuration.
    pub fn config(&self) -> &InceptionConfig {
        &self.config
    }

    fn plane(&self) -> usize {
        self.h * self.w
    }
}

impl Layer for Inception {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        self.branches
            .iter()
            .flat_map(|b| b.layers.iter().flat_map(|l| l.param_specs()))
            .collect()
    }

    fn bind(&mut self, segments: &[usize]) {
        let mut off = 0;
        for b in &mut self.branches {
            for l in &mut b.layers {
                let n = l.param_specs().len();
                l.bind(&segments[off..off + n]);
                off += n;
            }
        }
        assert_eq!(
            off,
            segments.len(),
            "segment count mismatch in inception bind"
        );
    }

    fn out_shape(&self) -> Vec<usize> {
        vec![self.config.out_channels(), self.h, self.w]
    }

    fn forward_into(
        &mut self,
        params: &ParamArena,
        input: &Tensor,
        train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let b = batch_of(input);
        assert_eq!(
            input.len(),
            b * self.in_channels * self.plane(),
            "inception '{}' input shape mismatch",
            self.name
        );
        self.last_batch = b;
        // Concatenate along channels: per sample, branch planes in order.
        // The branch slices tile the channel axis exactly, so every output
        // element is written and the reused buffer needs no zeroing.
        let out_c = self.config.out_channels();
        let plane = self.plane();
        scratch.shape_tensor(out, &[b, out_c, self.h, self.w]);
        let mut c_off = 0;
        for br in &mut self.branches {
            br.forward_into(params, input, train, scratch);
            let bc = br.out_channels;
            let t = br.pong.as_slice();
            let dst = out.as_mut_slice();
            for s in 0..b {
                let src = &t[s * bc * plane..(s + 1) * bc * plane];
                let d = &mut dst[s * out_c * plane + c_off * plane..][..bc * plane];
                d.copy_from_slice(src);
            }
            c_off += bc;
        }
    }

    fn backward_into(
        &mut self,
        params: &ParamArena,
        grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let b = self.last_batch;
        let out_c = self.config.out_channels();
        let plane = self.plane();
        assert_eq!(grad_out.len(), b * out_c * plane, "backward before forward");
        // Split grad per branch, run branch backward, sum input grads.
        // The accumulation must start from zeros (not a copy of the first
        // branch): `0.0 + (-0.0)` is `+0.0`, so copy-first would not be
        // bit-identical when a branch gradient contains negative zeros.
        scratch.shape_tensor_zeroed(grad_in, &[b, self.in_channels, self.h, self.w]);
        let mut c_off = 0;
        for br in &mut self.branches {
            let bc = br.out_channels;
            scratch.shape_tensor(&mut self.gslice, &[b, bc, self.h, self.w]);
            for s in 0..b {
                let src = &grad_out.as_slice()[s * out_c * plane + c_off * plane..][..bc * plane];
                self.gslice.as_mut_slice()[s * bc * plane..(s + 1) * bc * plane]
                    .copy_from_slice(src);
            }
            br.backward_into(params, grads, &self.gslice, scratch);
            easgd_tensor::ops::add_assign(grad_in.as_mut_slice(), br.pong.as_slice());
            c_off += bc;
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        let mut clone = Inception::new(
            self.name.clone(),
            self.in_channels,
            self.h,
            self.w,
            self.config,
        );
        // Rebuild preserves structure; bindings are re-applied by the
        // cloning Network via... no — clones must carry bindings. Copy the
        // sub-layer boxes directly instead.
        clone.branches = self
            .branches
            .iter()
            .map(|b| Branch {
                layers: b.layers.iter().map(|l| l.boxed_clone()).collect(),
                out_channels: b.out_channels,
                ping: Tensor::default(),
                pong: Tensor::default(),
            })
            .collect();
        Box::new(clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{build_arenas, check_layer};

    fn small_config() -> InceptionConfig {
        InceptionConfig {
            c1: 2,
            c3_reduce: 2,
            c3: 3,
            c5_reduce: 2,
            c5: 2,
            pool_proj: 1,
        }
    }

    #[test]
    fn out_shape_concatenates_channels() {
        let m = Inception::new("inc", 4, 6, 6, small_config());
        assert_eq!(m.out_shape(), vec![8, 6, 6]);
        assert_eq!(small_config().out_channels(), 8);
    }

    #[test]
    fn declares_params_for_all_branch_convs() {
        let m = Inception::new("inc", 4, 6, 6, small_config());
        // 6 convs (1x1, 3x3r, 3x3, 5x5r, 5x5, proj) × (weight + bias).
        assert_eq!(m.param_specs().len(), 12);
        let names: Vec<String> = m.param_specs().iter().map(|s| s.name.clone()).collect();
        assert!(names.iter().any(|n| n.contains("3x3r")));
        assert!(names.iter().any(|n| n.contains("proj")));
    }

    #[test]
    fn forward_shape_and_branch_placement() {
        let mut m = Inception::new("inc", 3, 4, 4, small_config());
        let (params, _) = build_arenas(&mut m, 1);
        let x = Tensor::full([2, 3, 4, 4], 0.5);
        let y = m.forward(&params, &x, true);
        assert_eq!(y.shape().dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut m = Inception::new("inc", 3, 5, 5, small_config());
        let (params, grads) = build_arenas(&mut m, 2);
        check_layer(&mut m, params, grads, &[3, 5, 5], 2, 2e-2, 31);
    }

    #[test]
    fn clone_preserves_bindings_and_output() {
        let mut m = Inception::new("inc", 3, 4, 4, small_config());
        let (params, _) = build_arenas(&mut m, 3);
        let x = Tensor::full([1, 3, 4, 4], 0.25);
        let y = m.forward(&params, &x, false);
        let mut c = m.boxed_clone();
        let yc = c.forward(&params, &x, false);
        assert_eq!(y.as_slice(), yc.as_slice());
    }

    #[test]
    fn batch_samples_independent() {
        let mut m = Inception::new("inc", 2, 4, 4, small_config());
        let (params, _) = build_arenas(&mut m, 4);
        let mut rng = easgd_tensor::Rng::new(5);
        let mut x1 = Tensor::zeros([1, 2, 4, 4]);
        rng.fill_normal(x1.as_mut_slice(), 0.0, 1.0);
        let mut x2 = Tensor::zeros([1, 2, 4, 4]);
        rng.fill_normal(x2.as_mut_slice(), 0.0, 1.0);
        let y1 = m.forward(&params, &x1, true);
        let y2 = m.forward(&params, &x2, true);
        let mut both = Tensor::zeros([2, 2, 4, 4]);
        both.as_mut_slice()[..32].copy_from_slice(x1.as_slice());
        both.as_mut_slice()[32..].copy_from_slice(x2.as_slice());
        let y = m.forward(&params, &both, true);
        assert_eq!(&y.as_slice()[..y1.len()], y1.as_slice());
        assert_eq!(&y.as_slice()[y1.len()..], y2.as_slice());
    }
}
