//! Training-time data augmentation: random horizontal flips and random
//! crops with zero padding — the standard CIFAR pipeline of the paper's
//! Caffe era. Augmentation multiplies the effective dataset size, which
//! interacts directly with the Figure 13 "more data" axis.

use crate::dataset::{Batch, Dataset};
use easgd_tensor::{Rng, Tensor};

/// Augmentation policy applied per sampled image.
#[derive(Clone, Debug, PartialEq)]
pub struct Augment {
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
    /// Zero padding added on each side before a random crop back to the
    /// original size (0 disables cropping).
    pub crop_pad: usize,
}

impl Augment {
    /// The classic CIFAR policy: 50 % flips, 4-pixel pad-and-crop.
    pub fn cifar() -> Self {
        Self {
            flip_prob: 0.5,
            crop_pad: 4,
        }
    }

    /// Flips only (digits don't survive mirroring, so MNIST pipelines
    /// usually crop without flipping; this is the generic knob).
    pub fn flips_only() -> Self {
        Self {
            flip_prob: 0.5,
            crop_pad: 0,
        }
    }

    /// No-op policy.
    pub fn none() -> Self {
        Self {
            flip_prob: 0.0,
            crop_pad: 0,
        }
    }

    /// Applies the policy to one CHW image in place (via a scratch
    /// buffer when cropping).
    pub fn apply(&self, rng: &mut Rng, channels: usize, h: usize, w: usize, image: &mut [f32]) {
        assert_eq!(image.len(), channels * h * w, "augment shape mismatch");
        if self.flip_prob > 0.0 && rng.uniform() < self.flip_prob {
            for c in 0..channels {
                let plane = &mut image[c * h * w..(c + 1) * h * w];
                for row in plane.chunks_mut(w) {
                    row.reverse();
                }
            }
        }
        if self.crop_pad > 0 {
            let pad = self.crop_pad as isize;
            // Offsets in [-pad, +pad]: where the crop window sits on the
            // zero-padded canvas.
            let dy = rng.below(2 * self.crop_pad + 1) as isize - pad;
            let dx = rng.below(2 * self.crop_pad + 1) as isize - pad;
            if dy != 0 || dx != 0 {
                let mut out = vec![0.0f32; image.len()];
                for c in 0..channels {
                    for y in 0..h as isize {
                        let sy = y + dy;
                        if sy < 0 || sy >= h as isize {
                            continue;
                        }
                        for x in 0..w as isize {
                            let sx = x + dx;
                            if sx < 0 || sx >= w as isize {
                                continue;
                            }
                            out[c * h * w + (y as usize) * w + x as usize] =
                                image[c * h * w + (sy as usize) * w + sx as usize];
                        }
                    }
                }
                image.copy_from_slice(&out);
            }
        }
    }
}

/// Samples an augmented batch: like
/// [`Dataset::sample_batch`](crate::dataset::Dataset::sample_batch) with
/// the policy applied to every drawn image.
///
/// # Panics
/// Panics if the dataset's samples are not `[C, H, W]`-shaped.
pub fn sample_batch_augmented(
    dataset: &Dataset,
    rng: &mut Rng,
    batch: usize,
    policy: &Augment,
) -> Batch {
    assert_eq!(
        dataset.shape.len(),
        3,
        "augmentation needs [C,H,W] samples, got {:?}",
        dataset.shape
    );
    let (c, h, w) = (dataset.shape[0], dataset.shape[1], dataset.shape[2]);
    let mut b = dataset.sample_batch(rng, batch);
    let per = c * h * w;
    let images = b.images.as_mut_slice();
    for s in 0..batch {
        policy.apply(rng, c, h, w, &mut images[s * per..(s + 1) * per]);
    }
    Batch {
        images: Tensor::from_vec(b.images.shape().clone(), b.images.as_slice().to_vec()),
        labels: b.labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    #[test]
    fn none_policy_is_identity() {
        let mut rng = Rng::new(1);
        let mut img: Vec<f32> = (0..2 * 3 * 3).map(|i| i as f32).collect();
        let orig = img.clone();
        Augment::none().apply(&mut rng, 2, 3, 3, &mut img);
        assert_eq!(img, orig);
    }

    #[test]
    fn flip_reverses_rows() {
        let mut rng = Rng::new(1);
        let policy = Augment {
            flip_prob: 1.0,
            crop_pad: 0,
        };
        let mut img = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        policy.apply(&mut rng, 1, 2, 3, &mut img);
        assert_eq!(img, vec![3.0, 2.0, 1.0, 6.0, 5.0, 4.0]);
    }

    #[test]
    fn double_flip_restores() {
        let mut rng = Rng::new(2);
        let policy = Augment {
            flip_prob: 1.0,
            crop_pad: 0,
        };
        let mut img: Vec<f32> = (0..3 * 4 * 4).map(|i| (i % 7) as f32).collect();
        let orig = img.clone();
        policy.apply(&mut rng, 3, 4, 4, &mut img);
        policy.apply(&mut rng, 3, 4, 4, &mut img);
        assert_eq!(img, orig);
    }

    #[test]
    fn crop_shifts_and_zero_pads() {
        // With pad 1, repeatedly cropping a constant image sometimes
        // introduces zero borders; content never grows.
        let mut rng = Rng::new(3);
        let policy = Augment {
            flip_prob: 0.0,
            crop_pad: 1,
        };
        let mut saw_zero = false;
        for _ in 0..32 {
            let mut img = vec![1.0f32; 5 * 5];
            policy.apply(&mut rng, 1, 5, 5, &mut img);
            assert!(img.iter().all(|&v| v == 0.0 || v == 1.0));
            if img.contains(&0.0) {
                saw_zero = true;
            }
        }
        assert!(saw_zero, "pad-and-crop never shifted in 32 draws");
    }

    #[test]
    fn augmented_batches_preserve_labels_and_shape() {
        let task = SyntheticSpec::cifar_small().task(4);
        let d = task.generate(50, 5);
        let mut rng = Rng::new(6);
        let b = sample_batch_augmented(&d, &mut rng, 8, &Augment::cifar());
        assert_eq!(b.len(), 8);
        assert_eq!(b.images.shape().dims(), &[8, 3, 16, 16]);
        assert!(b.labels.iter().all(|&l| l < 10));
        assert!(b.images.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn augmentation_changes_most_images() {
        let task = SyntheticSpec::cifar_small().task(7);
        let d = task.generate(20, 8);
        let mut rng_a = Rng::new(9);
        let plain = d.sample_batch(&mut Rng::new(9), 16);
        let aug = sample_batch_augmented(&d, &mut rng_a, 16, &Augment::cifar());
        // Same draws (same rng seed consumed identically up to the first
        // augmentation call) is not guaranteed, so just check aggregate:
        // augmented pixels differ from any verbatim dataset image for most
        // samples.
        let per = d.sample_len();
        let mut changed = 0;
        for s in 0..16 {
            let img = &aug.images.as_slice()[s * per..(s + 1) * per];
            let verbatim = (0..d.len()).any(|i| d.image(i) == img);
            if !verbatim {
                changed += 1;
            }
        }
        let _ = plain;
        assert!(changed >= 8, "only {changed}/16 augmented images changed");
    }
}
