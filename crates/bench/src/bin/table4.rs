//! Table 4: weak scaling time and efficiency for the ImageNet dataset —
//! GoogLeNet and VGG from 68 to 4352 KNL cores, model vs the paper's
//! measurements, plus the §7.1 Intel Caffe comparison.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin table4
//! ```

use easgd::weak_scaling::{WeakScalingModel, INTEL_CAFFE_GOOGLENET_2176, INTEL_CAFFE_VGG_2176};

/// The paper's measured Table 4 rows (seconds, then efficiency).
const PAPER_GOOGLENET: [(usize, f64, f64); 7] = [
    (68, 1533.0, 1.0),
    (136, 1590.0, 0.964),
    (272, 1608.0, 0.953),
    (544, 1641.0, 0.934),
    (1088, 1630.0, 0.940),
    (2176, 1662.0, 0.923),
    (4352, 1674.0, 0.916),
];
const PAPER_VGG: [(usize, f64, f64); 7] = [
    (68, 1318.0, 1.0),
    (136, 1440.0, 0.915),
    (272, 1482.0, 0.890),
    (544, 1524.0, 0.865),
    (1088, 1634.0, 0.807),
    (2176, 1679.0, 0.785),
    (4352, 1642.0, 0.802),
];

fn print_model(model: &WeakScalingModel, iters: usize, paper: &[(usize, f64, f64)]) {
    println!(
        "\n{} ({} iterations; {:.1} M params, {:.0} MB weights)",
        model.spec.name,
        iters,
        model.spec.num_params() as f64 / 1e6,
        model.spec.weight_bytes() as f64 / 1e6
    );
    println!(
        "{:>7} {:>6} | {:>10} {:>8} | {:>10} {:>8}",
        "cores", "nodes", "model s", "model", "paper s", "paper"
    );
    let nodes: Vec<usize> = paper.iter().map(|r| r.0 / model.cores_per_node).collect();
    for (row, p) in model.table(&nodes, iters).iter().zip(paper) {
        println!(
            "{:>7} {:>6} | {:>10.0} {:>7.1}% | {:>10.0} {:>7.1}%",
            row.cores,
            row.nodes,
            row.total_seconds,
            row.efficiency * 100.0,
            p.1,
            p.2 * 100.0
        );
    }
}

fn main() {
    println!("Table 4: Weak Scaling Time and Efficiency for the ImageNet Dataset");
    let g = WeakScalingModel::googlenet_imagenet();
    print_model(&g, 300, &PAPER_GOOGLENET);
    let v = WeakScalingModel::vgg_imagenet();
    print_model(&v, 80, &PAPER_VGG);

    println!("\nIntel Caffe comparison at 2176 cores (§7.1):");
    println!(
        "  GoogLeNet: Intel Caffe {:.0}%  vs  this work {:.1}% (paper: 92%)",
        INTEL_CAFFE_GOOGLENET_2176 * 100.0,
        g.efficiency(32) * 100.0
    );
    println!(
        "  VGG:       Intel Caffe {:.0}%  vs  this work {:.1}% (paper: 78.5%)",
        INTEL_CAFFE_VGG_2176 * 100.0,
        v.efficiency(32) * 100.0
    );
}
