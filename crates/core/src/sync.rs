// xtask: allow(wall-clock) — wall-clock trainer/driver: measures real elapsed time by design.
//! The synchronous family on the simulated cluster: Sync EASGD1/2/3
//! (Algorithms 2–4, §6.1) and Sync SGD (the allreduce baseline used by
//! Figure 10 and the weak-scaling comparisons).
//!
//! The three-step optimization story of §6.1, charged explicitly:
//!
//! 1. **Sync EASGD1** — replace the round-robin exchange with a tree
//!    broadcast + tree reduction rooted at the *CPU*; packed (§5.2)
//!    pinned transfers. `P(α+|W|β) → log P(α+|W|β)`.
//! 2. **Sync EASGD2** — move the center weight to GPU1: parameter
//!    traffic becomes GPU↔GPU peer transfers; the CPU only ships batch
//!    data.
//! 3. **Sync EASGD3** — overlap the broadcast with the data-copy +
//!    forward/backward critical path (steps 7–10 vs 11–12 of
//!    Algorithm 3); only the non-hidden residual is charged.

use crate::config::TrainConfig;
use crate::metrics::{RunResult, TracePoint};
use crate::original::{decode_batch, encode_batch};
use crate::shared::evaluate_center;
use crate::simcost::SimCosts;
use easgd_cluster::{ClusterConfig, Comm, RankReport, TimeCategory, VirtualCluster};
use easgd_data::Dataset;
use easgd_hardware::net::AlphaBeta;
use easgd_nn::{CommSchedule, LayoutKind, Network};
use easgd_tensor::ops::elastic_worker_update;
use easgd_tensor::{Rng, Tensor};
use std::time::Instant;

const TAG_DATA: u32 = 10;

/// Which Sync EASGD implementation stage to run (§6.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SyncVariant {
    /// Tree collectives rooted at the CPU (Algorithm 2).
    Easgd1,
    /// Center weight on GPU1 (Algorithm 3).
    Easgd2,
    /// EASGD2 + communication/computation overlap ("Communication
    /// Efficient EASGD", Algorithm 4's schedule).
    Easgd3,
}

impl SyncVariant {
    fn label(&self) -> &'static str {
        match self {
            SyncVariant::Easgd1 => "Sync EASGD1",
            SyncVariant::Easgd2 => "Sync EASGD2",
            SyncVariant::Easgd3 => "Sync EASGD3",
        }
    }
}

enum RankOut {
    Center {
        center: Vec<f32>,
        report: RankReport,
        trace: Vec<TracePoint>,
    },
    Other {
        report: RankReport,
        last_loss: f32,
    },
}

/// Runs Sync EASGD (variant per `variant`) on a simulated
/// `cfg.workers`-GPU node. `cfg.iterations` bulk-synchronous rounds; in
/// each round every GPU computes one batch gradient. When
/// `trace_every > 0`, test accuracy is recorded on the simulated
/// timeline every that many rounds (evaluation itself is off-clock).
pub fn sync_easgd_sim(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    costs: &SimCosts,
    variant: SyncVariant,
    trace_every: usize,
) -> RunResult {
    cfg.validate();
    let g = cfg.workers;
    let cluster = ClusterConfig::new(g + 1);
    let center_rank = match variant {
        SyncVariant::Easgd1 => 0,
        _ => 1,
    };
    // Collective pricing per variant (see module docs).
    let (coll_cost, coll_cat) = match variant {
        SyncVariant::Easgd1 => (
            costs.tree_collective_time(&costs.cpu_gpu_packed, g + 1),
            TimeCategory::CpuGpuParam,
        ),
        _ => (
            costs.tree_collective_time(&costs.gpu_gpu, g),
            TimeCategory::GpuGpuParam,
        ),
    };
    // EASGD3 hides the broadcast under the data + forward/backward path.
    let bcast_cost = match variant {
        SyncVariant::Easgd3 => (coll_cost - costs.fwd_bwd - costs.data_time()).max(0.0),
        _ => coll_cost,
    };
    let reduce_cost = coll_cost;
    let wall_start = Instant::now();

    let outs = VirtualCluster::run(&cluster, |comm: &mut Comm| {
        let me = comm.rank();
        let mut rng = Rng::new(cfg.seed.wrapping_add(me as u64));
        let mut center = proto.params().as_slice().to_vec();
        let n = center.len();
        let mut net = (me != 0).then(|| proto.clone());
        let mut grad = vec![0.0f32; n];
        let mut last_loss = f32::NAN;
        let mut trace = Vec::new();
        for round in 0..cfg.iterations {
            // --- data path: CPU ships one batch per GPU; the copies are
            // issued asynchronously and overlap, so one is charged.
            if me == 0 {
                for j in 1..=g {
                    let batch = train.sample_batch(&mut rng, cfg.batch);
                    let payload = encode_batch(batch.images.as_slice(), &batch.labels);
                    let cost = if j == 1 { costs.data_time() } else { 0.0 };
                    comm.send_costed(j, TAG_DATA, &payload, cost, TimeCategory::CpuGpuData);
                }
                // The CPU waits out the GPUs' compute phase (Table 3
                // attributes that window to for/backward).
                comm.charge(TimeCategory::ForwardBackward, costs.fwd_bwd);
            } else {
                let net = net.as_mut().unwrap();
                let payload = comm.recv(0, TAG_DATA, TimeCategory::Other);
                let (labels, pixels) = decode_batch(&payload, cfg.batch);
                let mut shape = vec![cfg.batch];
                shape.extend_from_slice(net.input_shape());
                let x = Tensor::from_vec(shape, pixels.to_vec());
                let stats = net.forward_backward(&x, &labels);
                last_loss = stats.loss;
                comm.charge(TimeCategory::ForwardBackward, costs.fwd_bwd);
                grad.copy_from_slice(net.grads().as_slice());
            }
            // --- step (2): broadcast W̄_t from the center holder.
            let cat = if me == 0 && center_rank != 0 {
                TimeCategory::Other
            } else {
                coll_cat
            };
            let center_t = comm.broadcast_costed(center_rank, &center, bcast_cost, cat);
            // --- step (3): reduce Σ W_i (CPU contributes zeros).
            let contribution = match &net {
                Some(net) => net.params().as_slice().to_vec(),
                None => vec![0.0f32; n],
            };
            let weight_sum = comm.reduce_sum_costed(&contribution, reduce_cost, cat);
            // --- step (5): center update, Equation (2) with the full sum.
            if me == center_rank {
                let scale = cfg.eta * cfg.rho;
                let p = g as f32;
                for i in 0..n {
                    center[i] += scale * (weight_sum[i] - p * center[i]);
                }
                let (update_cat, update_cost) = match variant {
                    SyncVariant::Easgd1 => (TimeCategory::CpuUpdate, costs.cpu_update),
                    _ => (TimeCategory::GpuUpdate, costs.gpu_update),
                };
                comm.charge(update_cat, update_cost);
            } else {
                // Keep non-center replicas of W̄ in sync for the next
                // broadcast (only the center holder's copy is ever used,
                // but the state must not diverge).
                center.copy_from_slice(&center_t);
                let scale = cfg.eta * cfg.rho;
                let p = g as f32;
                for i in 0..n {
                    center[i] += scale * (weight_sum[i] - p * center[i]);
                }
            }
            // --- step (4): worker update, Equation (1) against W̄_t.
            if let Some(net) = net.as_mut() {
                elastic_worker_update(
                    cfg.eta,
                    cfg.rho,
                    net.params_mut().as_mut_slice(),
                    &grad,
                    &center_t,
                );
                comm.charge(TimeCategory::GpuUpdate, costs.gpu_update);
            }
            if me == center_rank && trace_every > 0 && (round + 1) % trace_every == 0 {
                trace.push(TracePoint {
                    iteration: round + 1,
                    seconds: comm.now(),
                    accuracy: evaluate_center(proto, &center, test),
                });
            }
        }
        if me == center_rank {
            RankOut::Center {
                center,
                report: comm.report(),
                trace,
            }
        } else {
            RankOut::Other {
                report: comm.report(),
                last_loss,
            }
        }
    });

    assemble(
        variant.label(),
        proto,
        test,
        cfg,
        outs,
        wall_start.elapsed().as_secs_f64(),
    )
}

fn assemble(
    method: &str,
    proto: &Network,
    test: &Dataset,
    cfg: &TrainConfig,
    outs: Vec<RankOut>,
    wall: f64,
) -> RunResult {
    let mut center = Vec::new();
    let mut breakdown = None;
    let mut sim = 0.0f64;
    let mut losses = Vec::new();
    let mut trace = Vec::new();
    for o in outs {
        match o {
            RankOut::Center {
                center: c,
                report,
                trace: tr,
            } => {
                center = c;
                sim = sim.max(report.time);
                breakdown = Some(report.breakdown);
                trace = tr;
            }
            RankOut::Other { report, last_loss } => {
                sim = sim.max(report.time);
                if last_loss.is_finite() {
                    losses.push(last_loss);
                }
            }
        }
    }
    RunResult {
        method: method.to_string(),
        iterations: cfg.iterations,
        wall_seconds: wall,
        sim_seconds: Some(sim),
        accuracy: evaluate_center(proto, &center, test),
        final_loss: losses.iter().sum::<f32>() / losses.len().max(1) as f32,
        breakdown,
        trace,
    }
}

/// Sync SGD: plain data-parallel SGD with a summed-gradient exchange —
/// the Figure 10 workhorse and the "well-tuned framework" stand-in for
/// the Intel Caffe baseline. Runs directly on cluster ranks (each worker
/// owns a shard), with the gradient allreduce priced as
/// `2·⌈log₂P⌉` tree hops over the given `link`, under either parameter
/// layout of §5.2.
///
/// `shards.len()` must equal `cfg.workers`. With `trace_every > 0` the
/// rank-0 worker records test accuracy on the simulated timeline.
#[allow(clippy::too_many_arguments)]
pub fn sync_sgd_sim(
    proto: &Network,
    shards: &[Dataset],
    test: &Dataset,
    cfg: &TrainConfig,
    link: &AlphaBeta,
    layout: LayoutKind,
    fwd_bwd_cost: f64,
    trace_every: usize,
) -> RunResult {
    cfg.validate();
    assert_eq!(shards.len(), cfg.workers, "one shard per worker required");
    let g = cfg.workers;
    let cluster = ClusterConfig::new(g);
    let schedule = CommSchedule::from_network(proto, layout);
    // Tree reduce + tree broadcast of the whole schedule per round.
    let hops = 2.0 * easgd_hardware::collective::ceil_log2(g) as f64;
    let allreduce_cost = hops * schedule.time_alpha_beta(link.alpha_s, link.beta_s_per_byte);
    let update_cost = 3.0 * proto.size_bytes() as f64 / 200.0e9;
    let wall_start = Instant::now();

    let outs = VirtualCluster::run(&cluster, |comm: &mut Comm| {
        let me = comm.rank();
        let shard = &shards[me];
        let mut rng = Rng::new(cfg.seed.wrapping_add(1 + me as u64));
        let mut net = proto.clone();
        let scale = cfg.eta / g as f32;
        let mut last_loss = f32::NAN;
        let mut trace = Vec::new();
        for round in 0..cfg.iterations {
            let batch = shard.sample_batch(&mut rng, cfg.batch);
            let stats = net.forward_backward(&batch.images, &batch.labels);
            last_loss = stats.loss;
            comm.charge(TimeCategory::ForwardBackward, fwd_bwd_cost);
            let grad_sum = comm.reduce_sum_costed(
                net.grads().as_slice(),
                allreduce_cost,
                TimeCategory::GpuGpuParam,
            );
            easgd_tensor::ops::axpy(-scale, &grad_sum, net.params_mut().as_mut_slice());
            comm.charge(TimeCategory::GpuUpdate, update_cost);
            if me == 0 && trace_every > 0 && (round + 1) % trace_every == 0 {
                trace.push(TracePoint {
                    iteration: round + 1,
                    seconds: comm.now(),
                    accuracy: evaluate_center(proto, net.params().as_slice(), test),
                });
            }
        }
        if me == 0 {
            RankOut::Center {
                center: net.params().as_slice().to_vec(),
                report: comm.report(),
                trace,
            }
        } else {
            RankOut::Other {
                report: comm.report(),
                last_loss,
            }
        }
    });

    let label = match layout {
        LayoutKind::Packed => "Sync SGD (packed)",
        LayoutKind::PerLayer => "Sync SGD (per-layer)",
    };
    assemble(
        label,
        proto,
        test,
        cfg,
        outs,
        wall_start.elapsed().as_secs_f64(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(71);
        let (train, test) = task.train_test(600, 200, 72);
        (lenet_tiny(73), train, test)
    }

    fn cfg(iters: usize) -> TrainConfig {
        TrainConfig {
            workers: 4,
            batch: 16,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations: iters,
            seed: 81,
            comm_period: 1,
        }
    }

    #[test]
    fn easgd1_learns_and_breaks_down_time() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let r = sync_easgd_sim(
            &proto,
            &train,
            &test,
            &cfg(60),
            &costs,
            SyncVariant::Easgd1,
            0,
        );
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
        let b = r.breakdown.unwrap();
        assert!(b.get(TimeCategory::CpuGpuParam) > 0.0);
        assert!(b.get(TimeCategory::CpuUpdate) > 0.0);
        assert_eq!(b.get(TimeCategory::GpuGpuParam), 0.0);
    }

    #[test]
    fn easgd2_moves_traffic_to_gpu_links() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let r = sync_easgd_sim(
            &proto,
            &train,
            &test,
            &cfg(20),
            &costs,
            SyncVariant::Easgd2,
            0,
        );
        let b = r.breakdown.unwrap();
        assert_eq!(b.get(TimeCategory::CpuGpuParam), 0.0);
        assert!(b.get(TimeCategory::GpuGpuParam) > 0.0);
        assert_eq!(b.get(TimeCategory::CpuUpdate), 0.0);
    }

    #[test]
    fn optimization_chain_strictly_improves() {
        // §6.1: EASGD1 → EASGD2 → EASGD3 each step is faster.
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(20);
        let t1 = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd1, 0)
            .sim_seconds
            .unwrap();
        let t2 = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd2, 0)
            .sim_seconds
            .unwrap();
        let t3 = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd3, 0)
            .sim_seconds
            .unwrap();
        assert!(t1 > t2, "EASGD1 {t1} !> EASGD2 {t2}");
        assert!(t2 > t3, "EASGD2 {t2} !> EASGD3 {t3}");
    }

    #[test]
    fn easgd3_comm_ratio_is_low() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let r = sync_easgd_sim(
            &proto,
            &train,
            &test,
            &cfg(20),
            &costs,
            SyncVariant::Easgd3,
            0,
        );
        let ratio = r.breakdown.unwrap().comm_ratio();
        // Paper: 14%. Anything clearly compute-bound passes.
        assert!(ratio < 0.3, "comm ratio = {ratio}");
    }

    #[test]
    fn trace_records_on_simulated_timeline() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let r = sync_easgd_sim(
            &proto,
            &train,
            &test,
            &cfg(30),
            &costs,
            SyncVariant::Easgd3,
            10,
        );
        assert_eq!(r.trace.len(), 3);
        assert!(r.trace[0].seconds < r.trace[2].seconds);
        assert_eq!(r.trace[2].iteration, 30);
    }

    #[test]
    fn sync_sgd_packed_beats_per_layer_in_time_same_accuracy_per_iteration() {
        // Figure 10: identical heights (same updates), different time axis.
        let (proto, train, test) = setup();
        let c = cfg(40);
        let shards = train.partition(c.workers);
        let link = AlphaBeta::qdr_infiniband();
        let packed = sync_sgd_sim(
            &proto,
            &shards,
            &test,
            &c,
            &link,
            LayoutKind::Packed,
            1e-3,
            0,
        );
        let unpacked = sync_sgd_sim(
            &proto,
            &shards,
            &test,
            &c,
            &link,
            LayoutKind::PerLayer,
            1e-3,
            0,
        );
        // Same gradients, same final weights → identical accuracy.
        assert_eq!(packed.accuracy, unpacked.accuracy);
        assert!(packed.sim_seconds.unwrap() < unpacked.sim_seconds.unwrap());
    }

    #[test]
    fn sync_sgd_learns() {
        let (proto, train, test) = setup();
        let c = cfg(80);
        let shards = train.partition(c.workers);
        let link = AlphaBeta::fdr_infiniband();
        let r = sync_sgd_sim(
            &proto,
            &shards,
            &test,
            &c,
            &link,
            LayoutKind::Packed,
            1e-3,
            0,
        );
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn deterministic_given_seed() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(15);
        let a = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd3, 0);
        let b = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd3, 0);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.sim_seconds, b.sim_seconds);
    }
}
