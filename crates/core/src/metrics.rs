//! Run results and derived metrics.

use easgd_cluster::TimeBreakdown;

/// One point of an accuracy-vs-time curve.
#[derive(Clone, Copy, Debug)]
pub struct TracePoint {
    /// Iterations completed at this point.
    pub iteration: usize,
    /// Seconds elapsed (wall or simulated — see the owning result).
    pub seconds: f64,
    /// Test accuracy at this point, if measured.
    pub accuracy: f32,
}

/// Outcome of one distributed training run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Method name, e.g. `"Hogwild EASGD"`.
    pub method: String,
    /// Iteration budget of the run.
    pub iterations: usize,
    /// Real elapsed seconds.
    pub wall_seconds: f64,
    /// Simulated seconds, for cluster-scheduled methods.
    pub sim_seconds: Option<f64>,
    /// Final test accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Final training loss (mean cross-entropy of the last step).
    pub final_loss: f32,
    /// Time-category breakdown (Table 3), where the method tracks one.
    pub breakdown: Option<TimeBreakdown>,
    /// Intermediate accuracy measurements, if the run recorded any.
    pub trace: Vec<TracePoint>,
    /// Per-step training losses of the canonical worker (worker 0, or
    /// the first computing rank), in step order.
    pub loss_trace: Vec<f32>,
    /// FNV-1a 64 hash of the final center parameters' bit patterns —
    /// a cheap fingerprint for determinism and golden-trace tests.
    pub center_hash: u64,
}

impl RunResult {
    /// The time axis a figure should plot: simulated seconds when
    /// available, wall-clock otherwise.
    pub fn seconds(&self) -> f64 {
        self.sim_seconds.unwrap_or(self.wall_seconds)
    }

    /// Error rate `1 − accuracy` (the y-axis of Figure 8).
    pub fn error_rate(&self) -> f32 {
        1.0 - self.accuracy
    }

    /// `log₁₀` of the error rate, clamped away from −∞ (Figure 8's
    /// "log10 scale of error rate").
    pub fn log10_error(&self) -> f32 {
        self.error_rate().max(1e-4).log10()
    }
}

/// First time at which a sequence of runs (one method at increasing
/// iteration budgets) reaches `target` accuracy; `None` if never.
pub fn time_to_accuracy(runs: &[RunResult], target: f32) -> Option<f64> {
    runs.iter()
        .filter(|r| r.accuracy >= target)
        .map(RunResult::seconds)
        .min_by(f64::total_cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(secs: f64, acc: f32) -> RunResult {
        RunResult {
            method: "m".to_string(),
            iterations: 100,
            wall_seconds: secs,
            sim_seconds: None,
            accuracy: acc,
            final_loss: 0.1,
            breakdown: None,
            trace: Vec::new(),
            loss_trace: Vec::new(),
            center_hash: 0,
        }
    }

    #[test]
    fn seconds_prefers_simulated() {
        let mut r = run(5.0, 0.9);
        assert_eq!(r.seconds(), 5.0);
        r.sim_seconds = Some(2.0);
        assert_eq!(r.seconds(), 2.0);
    }

    #[test]
    fn error_rate_and_log() {
        let r = run(1.0, 0.99);
        assert!((r.error_rate() - 0.01).abs() < 1e-6);
        assert!((r.log10_error() - (-2.0)).abs() < 1e-3);
        // Perfect accuracy clamps instead of -inf.
        assert!(run(1.0, 1.0).log10_error().is_finite());
    }

    #[test]
    fn time_to_accuracy_picks_earliest_hit() {
        let runs = vec![run(10.0, 0.95), run(4.0, 0.96), run(2.0, 0.80)];
        assert_eq!(time_to_accuracy(&runs, 0.95), Some(4.0));
        assert_eq!(time_to_accuracy(&runs, 0.99), None);
    }
}
