//! Table 1: the experimental datasets.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin datasets
//! ```

use easgd_data::{standard_cards, SyntheticSpec};

fn main() {
    println!("Table 1: The Test Datasets");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>8} {:>14}",
        "Dataset", "Train", "Test", "Pixels", "Classes", "Random guess"
    );
    for card in standard_cards() {
        println!(
            "{:<10} {:>12} {:>12} {:>10} {:>8} {:>14.4}",
            card.name,
            card.training_images,
            card.test_images,
            card.pixels,
            card.classes,
            card.random_guess_accuracy()
        );
    }
    println!("\nSynthetic stand-ins used in this offline reproduction (DESIGN.md §2):");
    for spec in [
        SyntheticSpec::mnist(),
        SyntheticSpec::cifar(),
        SyntheticSpec::imagenet(),
    ] {
        println!(
            "  {:<22} {}x{}x{}, {} classes, noise σ={}, shift ±{}",
            spec.name,
            spec.channels,
            spec.size,
            spec.size,
            spec.classes,
            spec.noise,
            spec.max_shift
        );
    }
}
