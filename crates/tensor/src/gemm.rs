//! Single-precision general matrix multiply.
//!
//! `gemm` computes `C ← α·op(A)·op(B) + β·C` for row-major matrices, with
//! optional transposition of either operand — the workhorse behind every
//! worker's forward/backward pass (dense layers and im2col convolution),
//! so its efficiency decides whether the repo's benchmark ratios measure
//! the paper's *communication* co-design or mere kernel waste.
//!
//! Three tiers, picked by a `2·m·n·k` flop count (see DESIGN.md §8):
//!
//! * **tiny** — a direct row loop; packing overhead would dominate.
//! * **blocked serial** — the cache-blocked packed kernel: A- and
//!   B-panels are packed once per `MC×KC` / `KC×NC` block into
//!   contiguous, microkernel-ordered buffers, and the explicit `MR×NR`
//!   broadcast-FMA register tile in [`crate::simd`] (hand-tiled AVX-512 /
//!   AVX2 intrinsics behind a bit-identical scalar fallback — see
//!   DESIGN.md §15) does the flops. All four [`Transpose`] combinations
//!   are normalized away by the packing step, so the microkernel sees
//!   one layout. Skinny outputs (`m ≤ 64` — the fully-connected layers
//!   of a small-batch step) switch to a column-major nest that keeps the
//!   register tiles live across every `KC` block, touching C once
//!   instead of `k/KC` times (the `vgg_fc6` cliff fix, DESIGN.md §15).
//! * **blocked parallel** — the same kernel fanned out over the
//!   persistent [`crate::par::pool()`]: the operands are copied into
//!   `Arc`-shared buffers, each worker runs the serial loop nest on an
//!   owned output band (seeded with its C window so `β` blends exactly
//!   as in the serial kernel), and the caller copies bands back — the
//!   result is bit-identical to `gemm_serial`. The copies are
//!   O(m·k + k·n + m·n) against O(m·n·k) compute, the price of lending
//!   data to persistent threads in safe Rust. Outputs are banded along
//!   their *larger* dimension, so skinny-M layers split over N rather
//!   than serializing on one row band.
//!
//! The seed's naive kernel is retained as [`gemm_naive`] /
//! [`gemm_naive_par`] so every future optimization can be A/B-measured
//! in-repo (`cargo run --release -p easgd-bench --bin kernels`).

use crate::par;
use crate::simd::{self, MR, NR};
use std::sync::Arc;

/// Whether an operand is used as stored or transposed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Transpose {
    /// Use the matrix as stored.
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

/// Rows of packed A per L2-resident block (multiple of `MR`).
const MC: usize = 256;
/// Shared inner dimension per panel: `MR·KC` floats of A-panel and
/// `NR·KC` of B-panel stay L1-resident inside the microkernel.
const KC: usize = 256;
/// Columns of packed B per outer block (multiple of `NR`); bounds the
/// packed-B working set to `KC·NC` floats.
const NC: usize = 2048;

/// Below this many flops (`2·m·n·k`) the direct row loop wins: packing
/// would touch more memory than the multiply itself.
const SMALL_FLOPS: u64 = 1 << 17;
/// Below this many flops parallel dispatch (pool wake + operand copies)
/// costs more than it saves. Applied uniformly to every transpose
/// combination — the old `m·n` element threshold misjudged tall-skinny
/// and wide-flat shapes (an `m×1` weight-gradient GEMM has `m` output
/// elements but `2·m·k` flops).
const PAR_FLOPS: u64 = 8 << 20;

// The microkernel spells out its MR row accumulators as straight-line
// locals, so the row count is pinned at compile time.
const _: () = assert!(MR == 8, "microkernel is hand-unrolled for MR = 8");

/// Output row count at or below which the skinny nest applies (together
/// with `k > KC`, the regime where the standard nest's repeated C passes
/// dominate): a whole `mc0 ≤ SKINNY_M` row block fits one persistent
/// register-tile column of at most `SKINNY_M/MR` accumulators.
const SKINNY_M: usize = 64;
const _: () = assert!(
    SKINNY_M.is_multiple_of(MR),
    "skinny tile column must be whole tiles"
);

/// Column-panel width of the skinny nest: the staged B strips for one
/// panel (`SKINNY_NC·KC` floats ≈ 224 KiB) stay L2-resident, so B's rows
/// are read from DRAM exactly once *in row-major streaming order* — the
/// per-tile strip copy of the standard nest walks rows at an `n`-float
/// stride (16 KiB for the 4096-wide fc layers), which lands every read
/// in the same L1 set and defeats the DRAM prefetcher entirely.
const SKINNY_NC: usize = 224;
const _: () = assert!(
    SKINNY_NC.is_multiple_of(NR),
    "skinny panel must be whole tiles"
);

/// Pad (in floats, one cache line) between consecutive staged strips:
/// an unpadded strip stride of `KC·NR` floats (32 KiB) would alias every
/// strip's row-`p` sliver to the same L1 set during the scatter.
const STRIP_SKEW: usize = 16;

/// Whether a `mc0`-row output window with inner dimension `k` should run
/// the column-major skinny nest ([`skinny_accumulate`]) instead of the
/// standard one. Skinny outputs lose most of their time in the standard
/// nest re-reading and re-writing C once per `KC` block (`k/KC` sweeps of
/// a tile that never leaves a handful of registers in the skinny nest);
/// at `k ≤ KC` there is only one pass, so the nests are identical work.
fn use_skinny_nest(mc0: usize, k: usize) -> bool {
    #[cfg(test)]
    if FORCE_STANDARD_NEST.with(|f| f.get()) {
        return false;
    }
    mc0 <= SKINNY_M && k > KC
}

#[cfg(test)]
thread_local! {
    /// Test-only override: route skinny shapes through the standard nest
    /// so the two nests can be compared bit-for-bit.
    static FORCE_STANDARD_NEST: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with the skinny nest disabled on this thread (test-only; see
/// [`FORCE_STANDARD_NEST`]). Restores the previous state on unwind.
#[cfg(test)]
fn with_standard_nest<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            FORCE_STANDARD_NEST.with(|flag| flag.set(self.0));
        }
    }
    let _guard = Reset(FORCE_STANDARD_NEST.with(|flag| flag.replace(true)));
    f()
}

/// Flop count of one GEMM call (each output element takes `k` fused
/// multiply-adds = `2k` flops).
fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

#[allow(clippy::too_many_arguments)]
fn check_dims(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &[f32]) {
    assert!(
        a.len() >= m * k,
        "A buffer too small: {} < {}",
        a.len(),
        m * k
    );
    assert!(
        b.len() >= k * n,
        "B buffer too small: {} < {}",
        b.len(),
        k * n
    );
    assert!(
        c.len() >= m * n,
        "C buffer too small: {} < {}",
        c.len(),
        m * n
    );
}

/// `C ← β·C` over the `m·n` output region.
fn apply_beta(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.iter_mut().for_each(|x| *x = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|x| *x *= beta);
    }
}

/// `C ← α·op(A)·op(B) + β·C`.
///
/// Dimensions are those of the *operated* matrices: `op(A)` is `m×k`,
/// `op(B)` is `k×n`, `C` is `m×n`. All matrices are dense row-major.
///
/// # Panics
/// Panics if any buffer is smaller than its dimensions imply.
// BLAS sgemm signature by design: callers pass the full (op, dims, scalars,
// buffers) tuple exactly as in the reference interface.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    let c = &mut c[..m * n];
    if k == 0 || alpha == 0.0 {
        apply_beta(c, beta);
        return;
    }
    let flops = gemm_flops(m, n, k);
    if flops < SMALL_FLOPS {
        apply_beta(c, beta);
        naive_rows(ta, tb, m, n, k, alpha, a, b, c);
        return;
    }
    // Only touch the global pool past the parallel threshold: fetching
    // it eagerly would spawn ncores−1 persistent threads in processes
    // that only ever run serial-path GEMMs. A chip-partition group
    // (`par::with_pool`) substitutes its own pool — and with a
    // single-thread group the GEMM must stay serial *without* waking the
    // global pool, or partitions would share threads they don't own.
    if flops >= PAR_FLOPS {
        if let Some(pool) = par::pool_override() {
            if pool.threads() > 1 {
                gemm_blocked_parallel(&pool, ta, tb, m, n, k, alpha, a, b, beta, c);
                return;
            }
        } else {
            let pool = par::pool();
            if pool.threads() > 1 {
                gemm_blocked_parallel(pool, ta, tb, m, n, k, alpha, a, b, beta, c);
                return;
            }
        }
    }
    blocked_accumulate(ta, tb, m, n, k, 0, m, 0, n, alpha, a, b, beta, c, n);
}

/// `C ← α·op(A)·op(B) + β·C` with the kernel chosen by **per-row** work
/// `2·n·k` instead of the total `2·m·n·k`.
///
/// [`gemm`]'s tiny/blocked split keys on total flops, so the same output
/// row can be computed by the direct row loop in one call and the packed
/// FMA kernel in another purely because the calls carry different row
/// counts — the two kernels round differently (`mul_add` vs separate
/// mul/add), so row bits depend on batch size. Serving dispatches
/// *ragged* batches and promises a request the exact bits it would get
/// in any other batch (the eval-mode batch-size-invariance contract, see
/// `easgd-serve`), so its eval path needs a dispatch that is a pure
/// function of the per-row shape `(n, k)`.
///
/// Every blocked variant (serial, skinny, SIMD tiers, pool-parallel) is
/// pinned bit-identical per row, and both kernels compute row `r` from
/// row `r` of `op(A)` alone, so per-row dispatch makes the whole result
/// row-stable: parallelism may still engage by total flops without
/// affecting bits.
///
/// # Panics
/// Panics if any buffer is smaller than its dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn gemm_rowstable(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    let c = &mut c[..m * n];
    if k == 0 || alpha == 0.0 {
        apply_beta(c, beta);
        return;
    }
    if gemm_flops(1, n, k) < SMALL_FLOPS {
        apply_beta(c, beta);
        naive_rows(ta, tb, m, n, k, alpha, a, b, c);
        return;
    }
    // Same pool engagement as `gemm` (total-flops keyed): the parallel
    // path is bit-identical to the serial one, so this m-dependence
    // cannot change bits.
    if gemm_flops(m, n, k) >= PAR_FLOPS {
        if let Some(pool) = par::pool_override() {
            if pool.threads() > 1 {
                gemm_blocked_parallel(&pool, ta, tb, m, n, k, alpha, a, b, beta, c);
                return;
            }
        } else {
            let pool = par::pool();
            if pool.threads() > 1 {
                gemm_blocked_parallel(pool, ta, tb, m, n, k, alpha, a, b, beta, c);
                return;
            }
        }
    }
    blocked_accumulate(ta, tb, m, n, k, 0, m, 0, n, alpha, a, b, beta, c, n);
}

/// The blocked kernel forced onto the calling thread (no pool), for
/// single-threaded A/B measurement against [`gemm_naive`].
///
/// # Panics
/// Panics if any buffer is smaller than its dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn gemm_serial(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    let c = &mut c[..m * n];
    if k == 0 || alpha == 0.0 {
        apply_beta(c, beta);
        return;
    }
    blocked_accumulate(ta, tb, m, n, k, 0, m, 0, n, alpha, a, b, beta, c, n);
}

// ---------------------------------------------------------------------------
// Packing: normalize any (Transpose, layout) into the microkernel order.
// ---------------------------------------------------------------------------

/// Packs `op(A)[ic..ic+mcb, pc..pc+kcb]` into `ap` as row-tiles of `MR`:
/// layout `[tile][p][r]`, short tiles zero-padded so the microkernel
/// always runs full-width.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    ta: Transpose,
    a: &[f32],
    m: usize,
    k: usize,
    ic: usize,
    mcb: usize,
    pc: usize,
    kcb: usize,
    ap: &mut [f32],
) {
    let tiles = mcb.div_ceil(MR);
    for it in 0..tiles {
        let dst = &mut ap[it * kcb * MR..(it + 1) * kcb * MR];
        let rows = MR.min(mcb - it * MR);
        match ta {
            Transpose::No => {
                // op(A)[i][l] = a[i·k + l]: rows are contiguous in `l`.
                for r in 0..MR {
                    if r < rows {
                        let src = &a[(ic + it * MR + r) * k + pc..][..kcb];
                        for (p, &v) in src.iter().enumerate() {
                            dst[p * MR + r] = v;
                        }
                    } else {
                        for p in 0..kcb {
                            dst[p * MR + r] = 0.0;
                        }
                    }
                }
            }
            Transpose::Yes => {
                // op(A)[i][l] = a[l·m + i]: each `p` step is contiguous
                // in `r`, so copy MR-wide slivers.
                let base = ic + it * MR;
                for p in 0..kcb {
                    let d = &mut dst[p * MR..(p + 1) * MR];
                    let src = &a[(pc + p) * m + base..][..rows];
                    d[..rows].copy_from_slice(src);
                    d[rows..].iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }
    }
}

/// Packs `op(B)[pc..pc+kcb, jc..jc+ncb]` into `bp` as column-tiles of
/// `NR`: layout `[tile][p][j]`, zero-padded like [`pack_a`].
#[allow(clippy::too_many_arguments)]
fn pack_b(
    tb: Transpose,
    b: &[f32],
    k: usize,
    n: usize,
    pc: usize,
    kcb: usize,
    jc: usize,
    ncb: usize,
    bp: &mut [f32],
) {
    let tiles = ncb.div_ceil(NR);
    for jt in 0..tiles {
        let dst = &mut bp[jt * kcb * NR..(jt + 1) * kcb * NR];
        let cols = NR.min(ncb - jt * NR);
        match tb {
            Transpose::No => {
                // op(B)[l][j] = b[l·n + j]: each `p` step is contiguous in `j`.
                if cols == NR {
                    // Full-width tile — the hot case: explicit vector
                    // strip copy, which overlaps the strided row misses
                    // where a per-row memcpy call would serialize them.
                    simd::pack_strip(b, pc * n + jc + jt * NR, n, kcb, dst);
                } else {
                    for p in 0..kcb {
                        let d = &mut dst[p * NR..(p + 1) * NR];
                        let src = &b[(pc + p) * n + jc + jt * NR..][..cols];
                        d[..cols].copy_from_slice(src);
                        d[cols..].iter_mut().for_each(|v| *v = 0.0);
                    }
                }
            }
            Transpose::Yes => {
                // op(B)[l][j] = b[j·k + l]: columns are contiguous in `l`.
                for j in 0..NR {
                    if j < cols {
                        let src = &b[(jc + jt * NR + j) * k + pc..][..kcb];
                        for (p, &v) in src.iter().enumerate() {
                            dst[p * NR + j] = v;
                        }
                    } else {
                        for p in 0..kcb {
                            dst[p * NR + j] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Micro / macro kernels.
// ---------------------------------------------------------------------------

/// Adds `α·acc` into the `mr×nr` valid corner of the C tile at
/// `(row0, col0)` of a row-major region with row stride `ldc`.
#[allow(clippy::too_many_arguments)]
fn write_tile(
    acc: &[[f32; NR]; MR],
    alpha: f32,
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
) {
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let crow = &mut c[(row0 + r) * ldc + col0..][..nr];
        for (cj, accj) in crow.iter_mut().zip(accr.iter()) {
            *cj += alpha * accj;
        }
    }
}

/// First-`KC`-pass tile write: `C ← α·acc + β·C`, so the caller needs no
/// separate `β·C` sweep over the output before the loop nest. With
/// `β = 0` the tile is *stored*, not read — the common `C = A·B` case
/// never reads the old C at all, saving one full read-modify-write pass
/// over the output per call.
#[allow(clippy::too_many_arguments)]
fn write_tile_blend(
    acc: &[[f32; NR]; MR],
    alpha: f32,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
) {
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let crow = &mut c[(row0 + r) * ldc + col0..][..nr];
        if beta == 0.0 {
            for (cj, accj) in crow.iter_mut().zip(accr.iter()) {
                *cj = alpha * accj;
            }
        } else {
            for (cj, accj) in crow.iter_mut().zip(accr.iter()) {
                *cj = alpha * accj + beta * *cj;
            }
        }
    }
}

/// `C[i0.., j0..] ← α · op(A)[i0..i0+mc0, :] · op(B)[:, j0..j0+nc0] + β·C`
/// with the full blocked loop nest. `c` is the row-major region holding
/// exactly that output window (row stride `ldc`, origin at `(i0, j0)`).
///
/// `β` is folded into the first `KC` pass (`pc == 0`), which blends or —
/// for `β = 0` — plainly stores each tile; later passes accumulate. The
/// caller must not pre-scale C. Requires `k ≥ 1` so the first pass
/// exists (callers handle `k = 0` as pure `β·C`).
#[allow(clippy::too_many_arguments)]
fn blocked_accumulate(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    i0: usize,
    mc0: usize,
    j0: usize,
    nc0: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    // Packing scratch is thread-local and grows monotonically: a GEMM in
    // a warmed-up training step touches the allocator zero times. The
    // panels are fully overwritten by `pack_a`/`pack_b` (short tiles are
    // zero-padded explicitly), so dirty reuse is safe.
    PACK_SCRATCH.with(|cell| {
        let (ap, bp) = &mut *cell.borrow_mut();
        // The skinny nest packs *all* of op(A)'s K extent up front (the
        // whole row block is at most SKINNY_M·k floats — e.g. 512 KiB for
        // the 32×4096×4096 fc layer); the standard nest packs one MC×KC
        // block at a time.
        let ap_len = if use_skinny_nest(mc0, k) {
            mc0.div_ceil(MR) * MR * k
        } else {
            MC * KC
        };
        if ap.len() < ap_len {
            ap.resize(ap_len, 0.0);
        }
        let bp_cols = NC.min(nc0.next_multiple_of(NR));
        // The skinny nest's staged strips carry a `STRIP_SKEW` pad each,
        // so its panel needs slightly more than `KC·panel_cols` floats.
        let skinny_tiles = nc0.div_ceil(NR).min(SKINNY_NC / NR);
        let bp_len = (KC * bp_cols).max(skinny_tiles * (KC * NR + STRIP_SKEW));
        if bp.len() < bp_len {
            bp.resize(bp_len, 0.0);
        }
        blocked_accumulate_with(
            ta, tb, m, n, k, i0, mc0, j0, nc0, alpha, a, b, beta, c, ldc, ap, bp,
        );
    });
}

thread_local! {
    /// Per-thread (A-panel, B-panel) packing buffers for
    /// [`blocked_accumulate`]; see the reuse note there.
    static PACK_SCRATCH: std::cell::RefCell<(Vec<f32>, Vec<f32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// [`blocked_accumulate`] against caller-provided packing buffers.
#[allow(clippy::too_many_arguments)]
fn blocked_accumulate_with(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    i0: usize,
    mc0: usize,
    j0: usize,
    nc0: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    ap: &mut [f32],
    bp: &mut [f32],
) {
    // Skinny outputs take the column-major nest when the caller sized
    // `ap` for it (always true via `blocked_accumulate`; band jobs and
    // tests reach here the same way).
    if use_skinny_nest(mc0, k) && ap.len() >= mc0.div_ceil(MR) * MR * k {
        skinny_accumulate(
            ta, tb, m, n, k, i0, mc0, j0, nc0, alpha, a, b, beta, c, ldc, ap, bp,
        );
        return;
    }
    let mut jc = j0;
    while jc < j0 + nc0 {
        let ncb = NC.min(j0 + nc0 - jc);
        let mut pc = 0;
        while pc < k {
            let kcb = KC.min(k - pc);
            pack_b(tb, b, k, n, pc, kcb, jc, ncb, bp);
            let mut ic = i0;
            while ic < i0 + mc0 {
                let mcb = MC.min(i0 + mc0 - ic);
                pack_a(ta, a, m, k, ic, mcb, pc, kcb, ap);
                let row_tiles = mcb.div_ceil(MR);
                let col_tiles = ncb.div_ceil(NR);
                for jt in 0..col_tiles {
                    let bpanel = &bp[jt * kcb * NR..(jt + 1) * kcb * NR];
                    for it in 0..row_tiles {
                        let apanel = &ap[it * kcb * MR..(it + 1) * kcb * MR];
                        let acc = simd::microkernel(apanel, bpanel);
                        let row0 = ic - i0 + it * MR;
                        let col0 = jc - j0 + jt * NR;
                        let mr = MR.min(mcb - it * MR);
                        let nr = NR.min(ncb - jt * NR);
                        if pc == 0 {
                            write_tile_blend(&acc, alpha, beta, c, ldc, row0, col0, mr, nr);
                        } else {
                            write_tile(&acc, alpha, c, ldc, row0, col0, mr, nr);
                        }
                    }
                }
                ic += mcb;
            }
            pc += kcb;
        }
        jc += ncb;
    }
}

/// The skinny-output nest: [`blocked_accumulate_with`] reorganized for
/// `mc0 ≤ SKINNY_M`, `k > KC` (small-batch fully-connected layers, e.g.
/// 32×4096×4096 `vgg_fc6`).
///
/// The standard nest walks `pc` outermost, so every `KC` block rewrites
/// the whole `mc0×nc0` output — for `k = 4096` that is 16 read-modify-
/// write sweeps of a C that is itself bigger than L2, and throughput
/// collapses to memory bandwidth. Here the whole row block's A is packed
/// *once* up front (it is at most `SKINNY_M·k` floats), the output is
/// walked in `SKINNY_NC`-column panels, and one panel's worth of
/// accumulator tiles stays live in a stack array across *every* `KC`
/// block, so C is touched exactly once per element.
///
/// Within a panel, each `KC` block of B is staged into `NR`-wide strips
/// by [`stage_b_rows`] *before* any microkernel runs: the stage reads
/// B's rows in contiguous `SKINNY_NC`-float slivers (DRAM-prefetcher
/// friendly; B is read from memory exactly once overall) and the
/// microkernels then consume the ~512 KiB staged panel from L2. A naive
/// per-tile strip copy instead walks B at an `n`-float row stride —
/// 16 KiB for the fc layers, which maps every row to the same L1 set and
/// degenerates to uncovered DRAM latency per 128-byte sliver (measured
/// ~54 vs ~90+ GFLOP/s on 32×4096×4096).
///
/// Bit-identity with the standard nest: per output element the standard
/// nest computes `((α·t₀ ⊕β) + α·t₁) + α·t₂ …` where `t_p` is the
/// microkernel tile of `KC` block `p` (in order) and `⊕β` is the
/// first-pass blend of [`write_tile_blend`]. The accumulator here is
/// seeded `α·t₀ + β·C` with the same expression shape and then adds
/// `α·t_p` in the same `pc` order, so every element sees the identical
/// float operation sequence — only *where* the intermediate lives (stack
/// tile vs C row) changes; the panel/staging reorganization interleaves
/// *which tile* runs when, never the per-element chain order.
#[allow(clippy::too_many_arguments)]
fn skinny_accumulate(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    i0: usize,
    mc0: usize,
    j0: usize,
    nc0: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    ap: &mut [f32],
    bp: &mut [f32],
) {
    debug_assert!(mc0 <= SKINNY_M && mc0 > 0);
    let row_tiles = mc0.div_ceil(MR);

    // Pack every KC block of op(A)'s row stripe once. Block `pc` lands at
    // offset `row_tiles·MR·pc` — the sum of all earlier blocks' `kcb`
    // extents is exactly `pc`.
    let mut pc = 0;
    while pc < k {
        let kcb = KC.min(k - pc);
        pack_a(
            ta,
            a,
            m,
            k,
            i0,
            mc0,
            pc,
            kcb,
            &mut ap[row_tiles * MR * pc..][..row_tiles * MR * kcb],
        );
        pc += kcb;
    }

    // One panel's worth of persistent accumulator tiles, indexed
    // `[t·row_tiles + it]`; `pc == 0` seeds every entry, so dirty reuse
    // across panels is safe. At most 128 KiB of stack.
    let mut acc = [[[0.0f32; NR]; MR]; (SKINNY_NC / NR) * (SKINNY_M / MR)];

    let mut jp = 0;
    while jp < nc0 {
        let pw = SKINNY_NC.min(nc0 - jp);
        let tiles = pw.div_ceil(NR);
        let mut pc = 0;
        while pc < k {
            let kcb = KC.min(k - pc);
            let stride = kcb * NR + STRIP_SKEW;
            // Stage this KC block's panel of B into skewed strips first
            // (row-major streaming reads; see the doc comment above).
            if tb == Transpose::No {
                stage_b_rows(b, n, pc, kcb, j0 + jp, pw, stride, bp);
            } else {
                for t in 0..tiles {
                    let jc = j0 + jp + t * NR;
                    let jn = NR.min(j0 + nc0 - jc);
                    pack_b(
                        tb,
                        b,
                        k,
                        n,
                        pc,
                        kcb,
                        jc,
                        jn,
                        &mut bp[t * stride..][..kcb * NR],
                    );
                }
            }
            for t in 0..tiles {
                let strip = &bp[t * stride..][..kcb * NR];
                let jc = j0 + jp + t * NR;
                let jn = NR.min(j0 + nc0 - jc);
                for it in 0..row_tiles {
                    let at = &mut acc[t * row_tiles + it];
                    let apanel = &ap[row_tiles * MR * pc + it * kcb * MR..][..kcb * MR];
                    // Fused kernel: seeds α·t₀ everywhere at pc == 0
                    // (padding rows/cols included — they are never
                    // written back), adds α·t_p after.
                    simd::microkernel_acc(apanel, strip, alpha, at, pc == 0);
                    if pc == 0 && beta != 0.0 {
                        // Blend β·C into the valid corner with the
                        // `write_tile_blend` expression shape; β = 0
                        // never reads C.
                        let mr = MR.min(mc0 - it * MR);
                        for (r, atr) in at.iter_mut().enumerate().take(mr) {
                            let crow = &c[(it * MR + r) * ldc + (jc - j0)..][..jn];
                            for (av, cv) in atr.iter_mut().zip(crow.iter()) {
                                *av += beta * cv;
                            }
                        }
                    }
                }
            }
            pc += kcb;
        }
        // Single store pass over the panel's valid corners.
        for t in 0..tiles {
            let jc = j0 + jp + t * NR;
            let jn = NR.min(j0 + nc0 - jc);
            for it in 0..row_tiles {
                let at = &acc[t * row_tiles + it];
                let mr = MR.min(mc0 - it * MR);
                for (r, atr) in at.iter().enumerate().take(mr) {
                    let crow = &mut c[(it * MR + r) * ldc + (jc - j0)..][..jn];
                    crow.copy_from_slice(&atr[..jn]);
                }
            }
        }
        jp += pw;
    }
}

/// Stages `B[pc..pc+kcb, jc0..jc0+pw]` (no-transpose, row-major) into
/// `pw.div_ceil(NR)` microkernel strips of layout `[p][j]` at `stride`
/// floats apart in `bp`, zero-padding a short final tile. Reads walk B
/// one contiguous `pw`-float row sliver at a time — the whole point of
/// the skinny nest's staging (see [`skinny_accumulate`]) — and the
/// skewed `stride` keeps the per-row scatter writes out of a single L1
/// set.
#[allow(clippy::too_many_arguments)]
fn stage_b_rows(
    b: &[f32],
    n: usize,
    pc: usize,
    kcb: usize,
    jc0: usize,
    pw: usize,
    stride: usize,
    bp: &mut [f32],
) {
    let full = pw / NR;
    let tail = pw - full * NR;
    for p in 0..kcb {
        let src = &b[(pc + p) * n + jc0..][..pw];
        for (t, chunk) in src.chunks_exact(NR).enumerate() {
            // Fixed-size copy: two zmm (four ymm) moves, no memcpy call.
            // `chunks_exact(NR)` guarantees the chunk is exactly NR long,
            // so `first_chunk` never returns None.
            if let Some(chunk) = chunk.first_chunk::<NR>() {
                let dst = &mut bp[t * stride + p * NR..][..NR];
                dst.copy_from_slice(chunk);
            }
        }
        if tail != 0 {
            let dst = &mut bp[full * stride + p * NR..][..NR];
            dst[..tail].copy_from_slice(&src[full * NR..]);
            dst[tail..].iter_mut().for_each(|v| *v = 0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel dispatch over the persistent pool.
// ---------------------------------------------------------------------------

/// Fans the blocked kernel out over `pool`: the output is split into
/// `MR`/`NR`-aligned bands along its larger dimension, each worker
/// computes an owned band from `Arc`-shared operand copies, and the
/// caller copies the finished bands back into `c`.
///
/// Each band buffer is seeded with its window of the incoming C and run
/// through [`blocked_accumulate`] with the *real* `β`, so the band job
/// performs the exact per-element operation sequence of [`gemm_serial`]
/// (β blended into the first `KC` pass, later passes accumulated in the
/// same `pc` order; bands start on `MR`/`NR` multiples, so register
/// tiles group the same rows/columns as the serial nest). Every output
/// element is owned by exactly one band, making the result bit-identical
/// to the serial kernel — and hence across runs and worker counts (the
/// Sync-EASGD determinism property extends down through the compute
/// kernel).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_blocked_parallel(
    pool: &par::WorkerPool,
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    let c = &mut c[..m * n];
    if k == 0 || alpha == 0.0 {
        apply_beta(c, beta);
        return;
    }
    // Owned copies lend the operands to the persistent workers ('static
    // jobs); O(m·k + k·n) against O(m·n·k) compute.
    let a_shared: Arc<Vec<f32>> = Arc::new(a[..m * k].to_vec());
    let b_shared: Arc<Vec<f32>> = Arc::new(b[..k * n].to_vec());

    // Split the larger output dimension into tile-aligned bands, a few
    // per thread so uneven bands still balance.
    let target = pool.threads() * 3;
    let split_rows = m >= n;
    let (len, tile) = if split_rows { (m, MR) } else { (n, NR) };
    let bands = target.min(len.div_ceil(tile));
    let band_len = len.div_ceil(bands).next_multiple_of(tile);

    let mut jobs: Vec<Box<dyn FnOnce() -> Vec<f32> + Send>> = Vec::new();
    let mut starts = Vec::new();
    let mut start = 0;
    while start < len {
        let this = band_len.min(len - start);
        starts.push((start, this));
        let (a_ref, b_ref) = (a_shared.clone(), b_shared.clone());
        let (i0, mc0, j0, nc0) = if split_rows {
            (start, this, 0, n)
        } else {
            (0, m, start, this)
        };
        let width = if split_rows { n } else { this };
        // Seed the band with its window of the incoming C so the job
        // blends the real β exactly as the serial kernel does; with
        // β = 0 the first KC pass stores without reading, so the seed
        // values are never observed and the copy is skipped.
        let mut out = vec![0.0f32; mc0 * nc0];
        if beta != 0.0 {
            if split_rows {
                out.copy_from_slice(&c[start * n..(start + this) * n]);
            } else {
                for r in 0..m {
                    out[r * this..(r + 1) * this].copy_from_slice(&c[r * n + start..][..this]);
                }
            }
        }
        jobs.push(Box::new(move || {
            blocked_accumulate(
                ta, tb, m, n, k, i0, mc0, j0, nc0, alpha, &a_ref, &b_ref, beta, &mut out, width,
            );
            out
        }));
        start += this;
    }

    let results = pool.run(jobs);
    for ((start, this), band) in starts.into_iter().zip(results) {
        if split_rows {
            // Whole contiguous row band.
            c[start * n..(start + this) * n].copy_from_slice(&band);
        } else {
            // Column band: copy row by row.
            for r in 0..m {
                c[r * n + start..][..this].copy_from_slice(&band[r * this..(r + 1) * this]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Retained naive baseline (the seed kernel) for in-repo A/B measurement.
// ---------------------------------------------------------------------------

/// The seed's row kernel: axpy/dot loops streaming strided operands
/// straight from memory.
#[allow(clippy::too_many_arguments)]
fn naive_rows(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for (i, c_row) in c[..m * n].chunks_mut(n).enumerate() {
        naive_row(ta, tb, m, n, k, alpha, a, b, i, c_row);
    }
}

#[allow(clippy::too_many_arguments)]
fn naive_row(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    i: usize,
    c_row: &mut [f32],
) {
    match (ta, tb) {
        (Transpose::No, Transpose::No) => {
            // C[i,:] += α Σ_l A[i,l]·B[l,:]  (axpy over contiguous B rows)
            for l in 0..k {
                let ail = alpha * a[i * k + l];
                if ail != 0.0 {
                    let b_row = &b[l * n..l * n + n];
                    for (cj, bj) in c_row.iter_mut().zip(b_row) {
                        *cj += ail * bj;
                    }
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            // C[i,j] += α·dot(A.row(i), B.row(j)); B stored n×k.
            let a_row = &a[i * k..i * k + k];
            for (j, cj) in c_row.iter_mut().enumerate() {
                let b_row = &b[j * k..j * k + k];
                *cj += alpha * crate::ops::dot(a_row, b_row);
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // A stored k×m: C[i,j] += α Σ_l A[l,i]·B[l,j].
            for l in 0..k {
                let ali = alpha * a[l * m + i];
                if ali != 0.0 {
                    let b_row = &b[l * n..l * n + n];
                    for (cj, bj) in c_row.iter_mut().zip(b_row) {
                        *cj += ali * bj;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            // Rare; A stored k×m, B stored n×k.
            for (j, cj) in c_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a[l * m + i] * b[j * k + l];
                }
                *cj += alpha * acc;
            }
        }
    }
}

/// The seed GEMM, frozen as the perf baseline: the naive row kernel run
/// serially. See [`gemm_naive_par`] for the seed's fork-join path.
///
/// # Panics
/// Panics if any buffer is smaller than its dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    let c = &mut c[..m * n];
    apply_beta(c, beta);
    if k == 0 || alpha == 0.0 {
        return;
    }
    naive_rows(ta, tb, m, n, k, alpha, a, b, c);
}

/// The seed GEMM with its original spawn-per-call row parallelism
/// ([`par::par_rows`]) and its original `m·n ≥ 64·64 && m > 1` dispatch
/// threshold — the strongest honest multi-threaded baseline for the
/// kernel-trajectory benches.
///
/// # Panics
/// Panics if any buffer is smaller than its dimensions imply.
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive_par(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    check_dims(m, n, k, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    let c = &mut c[..m * n];
    if m * n >= 64 * 64 && m > 1 {
        par::par_rows(c, n, |i, c_row| {
            apply_beta(c_row, beta);
            if k > 0 && alpha != 0.0 {
                naive_row(ta, tb, m, n, k, alpha, a, b, i, c_row);
            }
        });
    } else {
        apply_beta(c, beta);
        if k > 0 && alpha != 0.0 {
            naive_rows(ta, tb, m, n, k, alpha, a, b, c);
        }
    }
}

/// Convenience: `C = A·B` with fresh output.
pub fn matmul(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0; m * n];
    gemm(
        Transpose::No,
        Transpose::No,
        m,
        n,
        k,
        1.0,
        a,
        b,
        0.0,
        &mut c,
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: naive triple loop with explicit indexing.
    fn naive(
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let get_a = |i: usize, l: usize| match ta {
            Transpose::No => a[i * k + l],
            Transpose::Yes => a[l * m + i],
        };
        let get_b = |l: usize, j: usize| match tb {
            Transpose::No => b[l * n + j],
            Transpose::Yes => b[j * k + l],
        };
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += get_a(i, l) * get_b(l, j);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut r = crate::rng::Rng::new(seed);
        (0..n).map(|_| r.uniform_in(-1.0, 1.0)).collect()
    }

    fn assert_all_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol * (1.0 + y.abs()),
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn small_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let c = matmul(2, 2, 2, &[1., 2., 3., 4.], &[5., 6., 7., 8.]);
        assert_eq!(c, vec![19., 22., 43., 50.]);
    }

    #[test]
    fn all_transpose_variants_match_naive() {
        let (m, n, k) = (7, 9, 11);
        for (ta, a_len) in [(Transpose::No, m * k), (Transpose::Yes, k * m)] {
            for (tb, b_len) in [(Transpose::No, k * n), (Transpose::Yes, n * k)] {
                let a = rand_vec(a_len, 1);
                let b = rand_vec(b_len, 2);
                let mut c = vec![0.0; m * n];
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                assert_all_close(&c, &naive(ta, tb, m, n, k, &a, &b), 1e-4);
            }
        }
    }

    #[test]
    fn blocked_serial_matches_naive_across_tile_boundaries() {
        // Sizes straddling MR/NR (8), MC (64) and KC (256) edges.
        for &(m, n, k) in &[
            (1, 1, 1),
            (MR, NR, 3),
            (MR + 1, NR - 1, KC + 3),
            (MC - 1, NR + 1, 5),
            (MC + 7, 2 * NR + 3, KC),
            (3, 130, KC + 1),
            (130, 3, 70),
            (65, 65, 65),
        ] {
            for (ta, a_len) in [(Transpose::No, m * k), (Transpose::Yes, k * m)] {
                for (tb, b_len) in [(Transpose::No, k * n), (Transpose::Yes, n * k)] {
                    let a = rand_vec(a_len, m as u64);
                    let b = rand_vec(b_len, n as u64 + 100);
                    let mut c = vec![0.0; m * n];
                    gemm_serial(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                    let r = naive(ta, tb, m, n, k, &a, &b);
                    assert_all_close(&c, &r, 1e-3);
                }
            }
        }
    }

    #[test]
    fn naive_baselines_match_reference() {
        let (m, n, k) = (65, 67, 33);
        let a = rand_vec(m * k, 21);
        let b = rand_vec(k * n, 22);
        let r = naive(Transpose::No, Transpose::No, m, n, k, &a, &b);
        let mut c1 = vec![0.0; m * n];
        gemm_naive(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            &a,
            &b,
            0.0,
            &mut c1,
        );
        assert_all_close(&c1, &r, 1e-3);
        let mut c2 = vec![0.0; m * n];
        gemm_naive_par(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            &a,
            &b,
            0.0,
            &mut c2,
        );
        assert_all_close(&c2, &r, 1e-3);
    }

    #[test]
    fn alpha_beta_blend() {
        let a = rand_vec(4 * 3, 3);
        let b = rand_vec(3 * 5, 4);
        let c0 = rand_vec(4 * 5, 5);
        let mut c = c0.clone();
        gemm(
            Transpose::No,
            Transpose::No,
            4,
            5,
            3,
            2.0,
            &a,
            &b,
            0.5,
            &mut c,
        );
        let p = naive(Transpose::No, Transpose::No, 4, 5, 3, &a, &b);
        for i in 0..c.len() {
            assert!((c[i] - (2.0 * p[i] + 0.5 * c0[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn alpha_beta_blend_on_blocked_path() {
        // Large enough to take the blocked path; β blends the old C in.
        let (m, n, k) = (70, 71, 72);
        let a = rand_vec(m * k, 31);
        let b = rand_vec(k * n, 32);
        let c0 = rand_vec(m * n, 33);
        let mut c = c0.clone();
        gemm_serial(
            Transpose::No,
            Transpose::Yes,
            m,
            n,
            k,
            -1.5,
            &a,
            &b,
            0.25,
            &mut c,
        );
        let p = naive(Transpose::No, Transpose::Yes, m, n, k, &a, &b);
        for i in 0..c.len() {
            let want = -1.5 * p[i] + 0.25 * c0[i];
            assert!(
                (c[i] - want).abs() < 1e-3 * (1.0 + want.abs()),
                "{i}: {} vs {want}",
                c[i]
            );
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn simd_microkernel_is_bit_identical_to_scalar_fallback() {
        // The whole blocked kernel (both nests, all packing paths) must
        // produce the same bits whether the explicit-SIMD tier or the
        // scalar fallback does the flops — the contract that makes the
        // scalar-build CI leg meaningful and tier choice unobservable.
        for &(m, n, k) in &[
            (70, 90, KC + 37),     // standard nest, ragged tiles
            (32, 300, 2 * KC + 9), // skinny nest, k spanning 3 KC blocks
            (257, 65, 300),        // multi-MC rows
        ] {
            for (ta, a_len) in [(Transpose::No, m * k), (Transpose::Yes, k * m)] {
                for (tb, b_len) in [(Transpose::No, k * n), (Transpose::Yes, n * k)] {
                    for beta in [0.0f32, 0.5, 1.0] {
                        let a = rand_vec(a_len, 7 * m as u64 + 1);
                        let b = rand_vec(b_len, 13 * n as u64 + 2);
                        let c0 = rand_vec(m * n, 17 * k as u64 + 3);
                        let mut c_fast = c0.clone();
                        gemm_serial(ta, tb, m, n, k, 1.25, &a, &b, beta, &mut c_fast);
                        let mut c_scalar = c0.clone();
                        crate::simd::with_scalar_kernels(|| {
                            gemm_serial(ta, tb, m, n, k, 1.25, &a, &b, beta, &mut c_scalar);
                        });
                        assert_eq!(
                            bits(&c_fast),
                            bits(&c_scalar),
                            "tier mismatch: m={m} n={n} k={k} ta={ta:?} tb={tb:?} beta={beta}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn skinny_nest_is_bit_identical_to_standard_nest() {
        // The vgg_fc6-cliff nest must be a pure reassociation-free
        // reordering: same bits as the standard nest (itself pinned to
        // the scalar fallback by the test above), for every transpose
        // combination and β path, including a shape crossing NC.
        for &(m, n, k) in &[
            (32, 300, 2 * KC + 5),
            (SKINNY_M, 97, KC + 1),
            (MR, 2 * NC + 33, KC + 300),
        ] {
            for (ta, a_len) in [(Transpose::No, m * k), (Transpose::Yes, k * m)] {
                for (tb, b_len) in [(Transpose::No, k * n), (Transpose::Yes, n * k)] {
                    for beta in [0.0f32, 0.5, 1.0] {
                        let a = rand_vec(a_len, 3 * m as u64 + 11);
                        let b = rand_vec(b_len, 5 * n as u64 + 12);
                        let c0 = rand_vec(m * n, 7 * k as u64 + 13);
                        let mut c_skinny = c0.clone();
                        gemm_serial(ta, tb, m, n, k, -0.75, &a, &b, beta, &mut c_skinny);
                        let mut c_std = c0.clone();
                        with_standard_nest(|| {
                            gemm_serial(ta, tb, m, n, k, -0.75, &a, &b, beta, &mut c_std);
                        });
                        assert_eq!(
                            bits(&c_skinny),
                            bits(&c_std),
                            "nest mismatch: m={m} n={n} k={k} ta={ta:?} tb={tb:?} beta={beta}"
                        );
                    }
                }
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn gemm_is_tier_and_nest_invariant_at_band_boundaries(
            mi in 0usize..3, ni in 0usize..3, ki in 0usize..2,
            dm in 0usize..3, dn in 0usize..3, dk in 0usize..3,
            bi in 0usize..3,
        ) {
            // Shapes perturbed ±1 around tile/block boundaries — the
            // off-by-one regime where packing pads and ragged corners
            // diverge first if any tier or nest mishandles them.
            let m = [MR, SKINNY_M, MC][mi] + dm - 1;
            let n = [NR, 4 * NR, NC][ni] + dn - 1;
            let k = [KC, 2 * KC][ki] + dk - 1;
            proptest::prop_assume!(m > 0 && n > 0 && k > 0);
            let beta = [0.0f32, 0.5, 1.0][bi];
            let a = rand_vec(m * k, (m * n) as u64);
            let b = rand_vec(k * n, (n + k) as u64);
            let c0 = rand_vec(m * n, (m + k) as u64);
            let mut c_fast = c0.clone();
            gemm_serial(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, beta, &mut c_fast);
            let mut c_ref = c0.clone();
            crate::simd::with_scalar_kernels(|| with_standard_nest(|| {
                gemm_serial(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, beta, &mut c_ref);
            }));
            proptest::prop_assert_eq!(bits(&c_fast), bits(&c_ref));
        }
    }

    #[test]
    fn parallel_path_is_bit_identical_to_serial() {
        // Forced through a local pool regardless of host core count.
        // Shapes cross the KC boundary (k > 256) with β ≠ 0 — the case
        // where a pre-scale-then-add scheme would associate the β·C term
        // differently from the serial kernel — plus row- and column-split
        // bands and a k = 0 degenerate.
        let pool = par::WorkerPool::new(3);
        for &(m, n, k) in &[
            (96, 96, 33),
            (257, 19, 130),
            (19, 257, 130),
            (257, 257, 257),
            (70, 300, KC + 9),
            (32, 600, 300), // skinny nest inside N-split band jobs
            (40, 40, 0),
        ] {
            let a = rand_vec(m * k, 6);
            let b = rand_vec(k * n, 7);
            let mut c_par = rand_vec(m * n, 8);
            let mut c_ser = c_par.clone();
            gemm_blocked_parallel(
                &pool,
                Transpose::No,
                Transpose::No,
                m,
                n,
                k,
                2.0,
                &a,
                &b,
                0.5,
                &mut c_par,
            );
            gemm_serial(
                Transpose::No,
                Transpose::No,
                m,
                n,
                k,
                2.0,
                &a,
                &b,
                0.5,
                &mut c_ser,
            );
            let bits_par: Vec<u32> = c_par.iter().map(|v| v.to_bits()).collect();
            let bits_ser: Vec<u32> = c_ser.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_par, bits_ser, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn rowstable_rows_are_invariant_to_row_count() {
        // Shapes on both sides of the per-row SMALL_FLOPS threshold, with
        // batch sizes that make `gemm`'s *total*-flops dispatch straddle
        // the naive/blocked split (the bug this entry exists to fix: the
        // lenet fc layers served at ragged batch sizes).
        for &(n, k) in &[(32, 288), (64, 700), (500, 800)] {
            let b = rand_vec(k * n, 21);
            let a_full = rand_vec(8 * k, 22);
            let mut c_full = vec![0.0; 8 * n];
            gemm_rowstable(
                Transpose::No,
                Transpose::Yes,
                8,
                n,
                k,
                1.0,
                &a_full,
                &b,
                0.0,
                &mut c_full,
            );
            for (start, rows) in [(0usize, 1usize), (3, 2), (7, 1), (2, 5)] {
                let mut c_sub = vec![0.0; rows * n];
                gemm_rowstable(
                    Transpose::No,
                    Transpose::Yes,
                    rows,
                    n,
                    k,
                    1.0,
                    &a_full[start * k..(start + rows) * k],
                    &b,
                    0.0,
                    &mut c_sub,
                );
                assert_eq!(
                    bits(&c_sub),
                    bits(&c_full[start * n..(start + rows) * n]),
                    "n={n} k={k} rows {start}..{}",
                    start + rows
                );
            }
        }
    }

    #[test]
    fn rowstable_matches_reference_product() {
        let (m, n, k) = (5, 40, 60);
        let a = rand_vec(m * k, 31);
        let b = rand_vec(k * n, 32);
        let mut c = vec![0.0; m * n];
        gemm_rowstable(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
        );
        let want = matmul(m, n, k, &a, &b);
        for (got, want) in c.iter().zip(&want) {
            assert!((got - want).abs() <= 1e-4 * want.abs().max(1.0));
        }
    }

    #[test]
    fn parallel_path_is_bit_deterministic() {
        // Two runs through the pool must agree bit-for-bit: every output
        // element is computed by exactly one job in a fixed loop order,
        // so scheduling cannot perturb float summation order.
        let pool = par::WorkerPool::new(4);
        let (m, n, k) = (203, 111, 97);
        let a = rand_vec(m * k, 40);
        let b = rand_vec(k * n, 41);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        for c in [&mut c1, &mut c2] {
            gemm_blocked_parallel(
                &pool,
                Transpose::Yes,
                Transpose::No,
                m,
                n,
                k,
                1.0,
                &a[..k * m],
                &b,
                0.0,
                c,
            );
        }
        let bits1: Vec<u32> = c1.iter().map(|v| v.to_bits()).collect();
        let bits2: Vec<u32> = c2.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits1, bits2);
    }

    #[test]
    fn repeated_gemm_calls_spawn_no_new_pool_threads() {
        // The global pool is created at most once per process; repeated
        // large GEMMs must reuse its parked workers.
        let (m, n, k) = (160, 160, 160);
        let a = rand_vec(m * k, 50);
        let b = rand_vec(k * n, 51);
        let mut c = vec![0.0; m * n];
        gemm(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
        );
        let baseline = par::pool().threads_spawned();
        assert_eq!(baseline, par::pool().threads() - 1);
        for _ in 0..10 {
            gemm(
                Transpose::No,
                Transpose::No,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
            );
            assert_eq!(par::pool().threads_spawned(), baseline);
        }
    }

    #[test]
    fn flops_threshold_covers_degenerate_shapes() {
        // Tall-skinny m×1 (weight gradients) and wide 1×n — the shapes
        // the old m·n element threshold misjudged — stay correct through
        // whatever path the flop count picks.
        for &(m, n, k) in &[(4096, 1, 300), (1, 4096, 300)] {
            let a = rand_vec(m * k, 60);
            let b = rand_vec(k * n, 61);
            let mut c = vec![0.0; m * n];
            gemm(
                Transpose::No,
                Transpose::No,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut c,
            );
            assert_all_close(
                &c,
                &naive(Transpose::No, Transpose::No, m, n, k, &a, &b),
                1e-3,
            );
        }
    }

    #[test]
    fn pool_override_path_is_bit_identical_to_serial() {
        // A partition-group GEMM (dispatch under `par::with_pool`) must
        // produce exactly the serial result: with a multi-thread group
        // pool via the banded parallel kernel, and with a single-thread
        // group via serial fall-through (which must not wake the global
        // pool — asserted indirectly by the zero-worker pool staying
        // unspawned). Shape chosen above PAR_FLOPS so dispatch actually
        // consults the override.
        let (m, n, k) = (192, 192, 192);
        assert!(gemm_flops(m, n, k) >= PAR_FLOPS);
        let a = rand_vec(m * k, 70);
        let b = rand_vec(k * n, 71);
        let mut reference = vec![0.25; m * n];
        gemm_serial(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            &a,
            &b,
            0.5,
            &mut reference,
        );
        for workers in [0usize, 3] {
            let group = std::sync::Arc::new(par::WorkerPool::new(workers));
            let mut c = vec![0.25; m * n];
            par::with_pool(&group, || {
                gemm(
                    Transpose::No,
                    Transpose::No,
                    m,
                    n,
                    k,
                    1.0,
                    &a,
                    &b,
                    0.5,
                    &mut c,
                );
            });
            for i in 0..m * n {
                assert_eq!(
                    reference[i].to_bits(),
                    c[i].to_bits(),
                    "workers={workers} i={i}"
                );
            }
            assert_eq!(group.threads_spawned(), workers);
        }
    }

    #[test]
    fn zero_k_scales_c_only() {
        let mut c = vec![2.0; 4];
        gemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            0,
            1.0,
            &[],
            &[],
            0.5,
            &mut c,
        );
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn zero_m_or_n_is_noop() {
        let mut c: Vec<f32> = vec![];
        gemm(
            Transpose::No,
            Transpose::No,
            0,
            5,
            3,
            1.0,
            &[],
            &[0.0; 15],
            0.0,
            &mut c,
        );
        gemm(
            Transpose::No,
            Transpose::No,
            5,
            0,
            3,
            1.0,
            &[0.0; 15],
            &[],
            0.0,
            &mut c,
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_short_buffers() {
        let mut c = vec![0.0; 4];
        gemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            1.0,
            &[0.0; 3],
            &[0.0; 4],
            0.0,
            &mut c,
        );
    }
}
