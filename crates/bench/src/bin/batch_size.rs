// xtask: allow(wall-clock) — wall-clock trainer/driver: measures real elapsed time by design.
//! §7.2 — the impact of batch size, measured.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin batch_size
//! ```
//!
//! Two opposing forces, both real here:
//!
//! * throughput — larger batches make the GEMMs fatter and *measurably*
//!   faster per sample (the “BLAS functions run more efficiently” half
//!   of §7.2);
//! * convergence — past a point, larger batches need more epochs to the
//!   same accuracy (the “sharper minima” half).
//!
//! The harness measures both and reports time-to-accuracy, with the
//! linear-scaling learning-rate rule applied (the §7.2 advice to retune
//! η with b).

use easgd::schedule::LrSchedule;
use easgd::serial::{serial_sgd, SerialConfig};
use easgd_bench::figure_task;
use std::time::Instant;

fn main() {
    let (net, train, test) = figure_task();
    let target = 0.90f32;
    let base_batch = 16usize;
    let base_eta = 0.05f32;

    println!(
        "Batch-size study (§7.2): LeNet-tiny on synthetic MNIST, target {:.0}%",
        target * 100.0
    );
    println!(
        "{:>7} {:>8} {:>14} {:>10} {:>12} {:>14}",
        "batch", "eta", "samples/sec", "iters", "acc %", "time-to-acc(s)"
    );

    for &batch in &[8usize, 16, 32, 64, 128, 256, 512] {
        // Throughput: measured wall time of pure forward/backward.
        let mut probe = net.clone();
        let mut rng = easgd_tensor::Rng::new(1);
        let warm = train.sample_batch(&mut rng, batch);
        let _ = probe.forward_backward(&warm.images, &warm.labels);
        let reps = (2_048 / batch).max(2);
        let t0 = Instant::now();
        for _ in 0..reps {
            let b = train.sample_batch(&mut rng, batch);
            let _ = probe.forward_backward(&b.images, &b.labels);
        }
        let per_sample = t0.elapsed().as_secs_f64() / (reps * batch) as f64;
        let throughput = 1.0 / per_sample;

        // Convergence: iterations to target with the linear-scaling rule.
        let schedule =
            LrSchedule::Constant { base: base_eta }.rescaled_for_batch(base_batch, batch);
        let mut cfg = SerialConfig {
            batch,
            schedule,
            mu: 0.0,
            weight_decay: 0.0,
            iterations: 3_000,
            seed: 2,
            trace_every: 10,
        };
        // Cap the η explosion at huge batches (the paper: beyond ~4096
        // the rule breaks and extra tuning is needed).
        if let LrSchedule::Constant { base } = &mut cfg.schedule {
            *base = base.min(1.0);
        }
        let r = serial_sgd(&net, &train, &test, &cfg);
        let hit = r
            .trace
            .iter()
            .find(|p| p.accuracy >= target)
            .map(|p| p.iteration);
        let (iters_str, tta_str) = match hit {
            Some(iters) => (
                iters.to_string(),
                format!("{:.2}", iters as f64 * batch as f64 * per_sample),
            ),
            None => ("--".to_string(), "--".to_string()),
        };
        let eta_used = cfg.schedule.base();
        println!(
            "{:>7} {:>8.3} {:>14.0} {:>10} {:>12.1} {:>14}",
            batch,
            eta_used,
            throughput,
            iters_str,
            r.accuracy * 100.0,
            tta_str
        );
    }
    println!(
        "\nreading (§7.2): iterations-to-target falls with batch size until the\n\
         linearly-scaled rate destabilizes training (the paper's 'beyond a\n\
         threshold … requiring more epochs'); the time-to-accuracy minimum sits\n\
         at a small-to-medium batch. (On a single-core host the BLAS-efficiency\n\
         gain from fatter GEMMs is modest; on the paper's KNL it is the force\n\
         that pushes the optimum toward medium batches.)"
    );
}
