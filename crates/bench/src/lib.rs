//! # easgd-bench
//!
//! The benchmark harness of the `knl-easgd` reproduction: one binary per
//! table/figure of the SC '17 paper's evaluation, plus Criterion
//! microbenches ablating the co-design choices.
//!
//! | target | regenerates |
//! |---|---|
//! | `--bin datasets` | Table 1 (dataset card) |
//! | `--bin table2`   | Table 2 (α-β network parameters) |
//! | `--bin fig6`     | Figure 6 panels 1–4 (ours vs counterparts) |
//! | `--bin fig8`     | Figure 8 (overall shoot-out) |
//! | `--bin fig9`     | Figure 9 (method lineage) |
//! | `--bin fig10`    | Figure 10 (packed vs per-layer communication) |
//! | `--bin table3`   | Table 3 / Figure 11 (time breakdowns, 5.3×) |
//! | `--bin fig12`    | Figure 12 (KNL chip partitioning) |
//! | `--bin fig13`    | Figure 13 (more machines + more data) |
//! | `--bin table4`   | Table 4 (weak scaling vs Intel Caffe) |
//! | `--bin serve`    | `BENCH_serve.json` (micro-batching latency/QPS) |
//! | `--bin schema_check` | validates every checked-in `BENCH_*.json` |
//!
//! Criterion benches (`cargo bench -p easgd-bench`): `gemm`,
//! `collectives`, `packed_comm`, `hogwild`, `elastic_update`.
//!
//! This library hosts the pieces the binaries share: the standard
//! experiment task, iteration sweeps, and table printers.

pub mod schema;

use easgd::metrics::RunResult;
use easgd_data::{Dataset, SyntheticSpec};
use easgd_nn::models::lenet_tiny;
use easgd_nn::Network;

/// The standard Figure 6/8 experiment task: a synthetic MNIST-like
/// problem hard enough that accuracy-vs-time curves separate (noise
/// raised above the mnist-small default).
pub fn figure_task() -> (Network, Dataset, Dataset) {
    let spec = SyntheticSpec {
        noise: 1.1,
        ..SyntheticSpec::mnist_small()
    };
    let task = spec.task(0xF16);
    let (train, test) = task.train_test(2_000, 500, 0xF17);
    (lenet_tiny(0xF18), train, test)
}

/// The iteration budgets swept by the figure experiments — “each point
/// on the figure is a single train and test” (Figure 6 caption).
pub fn figure_budgets() -> Vec<usize> {
    vec![12, 25, 50, 100, 200, 400]
}

/// Prints the standard run-row header.
pub fn print_run_header() {
    println!(
        "{:<20} {:>7} {:>10} {:>8} {:>10}",
        "method", "iters", "seconds", "acc %", "log10 err"
    );
}

/// Prints one run as a figure point.
pub fn print_run(r: &RunResult) {
    println!(
        "{:<20} {:>7} {:>10.3} {:>8.1} {:>10.2}",
        r.method,
        r.iterations,
        r.seconds(),
        r.accuracy * 100.0,
        r.log10_error()
    );
}

/// First CLI argument following `flag`, if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_task_is_learnable_but_not_trivial() {
        let (net, train, test) = figure_task();
        assert_eq!(net.num_classes(), train.classes);
        assert_eq!(train.shape, test.shape);
        assert!(train.len() >= 1000);
    }

    #[test]
    fn budgets_are_increasing() {
        let b = figure_budgets();
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
