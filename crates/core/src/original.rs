// xtask: allow(wall-clock) — wall-clock trainer/driver: measures real elapsed time by design.
//! Original EASGD (Algorithm 1) on the simulated multi-GPU node.
//!
//! The baseline of the whole paper: the master (CPU) serves workers
//! (GPUs) strictly in rank order, one at a time. Two variants appear in
//! Table 3:
//!
//! * **Serialized** (`Original EASGD*`): the master dispatches worker
//!   `j`, waits for its forward/backward, collects the weight, updates —
//!   nothing overlaps. Only one GPU computes at any moment.
//! * **Pipelined** (`Original EASGD`): the master dispatches worker `j`
//!   and collects `j`'s *previous* result one sweep later, so worker
//!   compute hides behind the master's service loop. The master becomes
//!   purely communication-bound — Table 3's 87 % comm ratio.
//!
//! Both use the *unpacked* (per-layer) CPU↔GPU transfer path, because
//! packing (§5.2) is one of the optimizations the paper adds on the way
//! to Sync EASGD.

use crate::config::TrainConfig;
use crate::metrics::RunResult;
use crate::shared::evaluate_center;
use crate::simcost::SimCosts;
use easgd_cluster::{ClusterConfig, Comm, RankReport, TimeCategory, VirtualCluster};
use easgd_data::Dataset;
use easgd_nn::Network;
use easgd_tensor::ops::{elastic_center_update, elastic_worker_update};
use easgd_tensor::Rng;
use std::time::Instant;

const TAG_DATA: u32 = 1;
const TAG_CENTER: u32 = 2;
const TAG_WEIGHT: u32 = 3;

/// Which Algorithm 1 schedule to simulate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OriginalMode {
    /// No overlap (Table 3 row "Original EASGD*").
    Serialized,
    /// Worker compute hidden under the master's round-robin service loop
    /// (Table 3 row "Original EASGD").
    Pipelined,
}

impl OriginalMode {
    fn label(&self) -> &'static str {
        match self {
            OriginalMode::Serialized => "Original EASGD*",
            OriginalMode::Pipelined => "Original EASGD",
        }
    }
}

/// Encodes a batch as one flat message: `[labels…, pixels…]`.
pub(crate) fn encode_batch(images: &[f32], labels: &[usize]) -> Vec<f32> {
    let mut out = Vec::with_capacity(labels.len() + images.len());
    out.extend(labels.iter().map(|&l| l as f32));
    out.extend_from_slice(images);
    out
}

/// Decodes [`encode_batch`]'s framing given the batch size.
pub(crate) fn decode_batch(payload: &[f32], batch: usize) -> (Vec<usize>, &[f32]) {
    let labels = payload[..batch].iter().map(|&l| l as usize).collect();
    (labels, &payload[batch..])
}

enum RankOut {
    Master {
        center: Vec<f32>,
        report: RankReport,
    },
    Worker {
        last_loss: f32,
    },
}

/// Runs Original EASGD on a simulated `cfg.workers`-GPU node.
///
/// `cfg.iterations` is the per-worker step count; the master performs
/// `iterations × workers` round-robin interactions in total. Returns the
/// master's simulated-time breakdown (the Table 3 row).
pub fn original_easgd_sim(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    costs: &SimCosts,
    mode: OriginalMode,
) -> RunResult {
    cfg.validate();
    let g = cfg.workers;
    let total = cfg.iterations * g;
    let cluster = ClusterConfig::new(g + 1);
    let up = costs.unpacked_weight_time();
    let down = costs.unpacked_weight_time();
    let wall_start = Instant::now();

    let outs = VirtualCluster::run(&cluster, |comm: &mut Comm| {
        if comm.rank() == 0 {
            master_loop(comm, proto, train, cfg, costs, mode, total, up, down)
        } else {
            worker_loop(comm, proto, cfg, costs, total)
        }
    });

    let wall = wall_start.elapsed().as_secs_f64();
    let mut center = Vec::new();
    let mut report = None;
    let mut losses = Vec::new();
    for o in outs {
        match o {
            RankOut::Master {
                center: c,
                report: r,
            } => {
                center = c;
                report = Some(r);
            }
            RankOut::Worker { last_loss } => losses.push(last_loss),
        }
    }
    let report = report.expect("master output missing");
    RunResult {
        method: mode.label().to_string(),
        iterations: cfg.iterations,
        wall_seconds: wall,
        sim_seconds: Some(report.time),
        accuracy: evaluate_center(proto, &center, test),
        final_loss: losses.iter().sum::<f32>() / losses.len().max(1) as f32,
        breakdown: Some(report.breakdown),
        trace: Vec::new(),
    }
}

#[allow(clippy::too_many_arguments)]
fn master_loop(
    comm: &mut Comm,
    proto: &Network,
    train: &Dataset,
    cfg: &TrainConfig,
    costs: &SimCosts,
    mode: OriginalMode,
    total: usize,
    up: f64,
    down: f64,
) -> RankOut {
    let g = cfg.workers;
    let mut rng = Rng::new(cfg.seed);
    let mut center = proto.params().as_slice().to_vec();
    let mut inflight = vec![false; g + 1];

    let collect = |comm: &mut Comm, center: &mut [f32], j: usize| {
        // The wait (worker still computing) is attributed to
        // forward/backward, the transfer to CPU↔GPU parameter traffic —
        // Table 3's accounting.
        let w = comm.recv_costed(
            j,
            TAG_WEIGHT,
            up,
            TimeCategory::ForwardBackward,
            TimeCategory::CpuGpuParam,
        );
        elastic_center_update(cfg.eta, cfg.rho, center, &w);
        comm.charge(TimeCategory::CpuUpdate, costs.cpu_update);
    };

    for t in 0..total {
        let j = 1 + (t % g);
        if mode == OriginalMode::Pipelined && inflight[j] {
            collect(comm, &mut center, j);
        }
        let batch = train.sample_batch(&mut rng, cfg.batch);
        let payload = encode_batch(batch.images.as_slice(), &batch.labels);
        comm.send_costed(
            j,
            TAG_DATA,
            &payload,
            costs.data_time(),
            TimeCategory::CpuGpuData,
        );
        comm.send_costed(j, TAG_CENTER, &center, down, TimeCategory::CpuGpuParam);
        inflight[j] = true;
        if mode == OriginalMode::Serialized {
            collect(comm, &mut center, j);
            inflight[j] = false;
        }
    }
    // Drain the pipeline.
    if mode == OriginalMode::Pipelined {
        for (j, flag) in inflight.iter_mut().enumerate().skip(1) {
            if std::mem::take(flag) {
                collect(comm, &mut center, j);
            }
        }
    }
    RankOut::Master {
        center,
        report: comm.report(),
    }
}

fn worker_loop(
    comm: &mut Comm,
    proto: &Network,
    cfg: &TrainConfig,
    costs: &SimCosts,
    total: usize,
) -> RankOut {
    let g = cfg.workers;
    let me = comm.rank();
    let rounds = (0..total).filter(|t| 1 + (t % g) == me).count();
    let mut net = proto.clone();
    let mut jitter_rng = Rng::new(cfg.seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut grad = vec![0.0f32; net.num_params()];
    let mut last_loss = f32::NAN;
    for _ in 0..rounds {
        let payload = comm.recv(0, TAG_DATA, TimeCategory::Other);
        let center = comm.recv(0, TAG_CENTER, TimeCategory::Other);
        let (labels, pixels) = decode_batch(&payload, cfg.batch);
        let mut shape = vec![cfg.batch];
        shape.extend_from_slice(net.input_shape());
        let x = easgd_tensor::Tensor::from_vec(shape, pixels.to_vec());
        let stats = net.forward_backward(&x, &labels);
        last_loss = stats.loss;
        let jit = 1.0 + costs.compute_jitter * jitter_rng.uniform() as f64;
        comm.charge(TimeCategory::ForwardBackward, costs.fwd_bwd * jit);
        grad.copy_from_slice(net.grads().as_slice());
        // Ship W_jt (pre-update, per Algorithm 1 lines 12–14); the master
        // pays the transfer on its own timeline.
        comm.send_costed(
            0,
            TAG_WEIGHT,
            net.params().as_slice(),
            0.0,
            TimeCategory::Other,
        );
        elastic_worker_update(
            cfg.eta,
            cfg.rho,
            net.params_mut().as_mut_slice(),
            &grad,
            &center,
        );
        comm.charge(TimeCategory::GpuUpdate, costs.gpu_update);
    }
    RankOut::Worker { last_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(51);
        let (train, test) = task.train_test(600, 200, 52);
        (lenet_tiny(53), train, test)
    }

    fn cfg(iters: usize) -> TrainConfig {
        TrainConfig {
            workers: 4,
            batch: 16,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations: iters,
            seed: 61,
            comm_period: 1,
        }
    }

    #[test]
    fn batch_codec_roundtrip() {
        let images = vec![0.5f32; 8];
        let labels = vec![3usize, 9];
        let p = encode_batch(&images, &labels);
        let (l2, i2) = decode_batch(&p, 2);
        assert_eq!(l2, labels);
        assert_eq!(i2, &images[..]);
    }

    #[test]
    fn pipelined_learns_and_reports_breakdown() {
        let (proto, train, test) = setup();
        let r = original_easgd_sim(
            &proto,
            &train,
            &test,
            &cfg(50),
            &SimCosts::mnist_lenet_4gpu(),
            OriginalMode::Pipelined,
        );
        assert!(r.accuracy > 0.3, "acc = {}", r.accuracy);
        assert!(r.sim_seconds.unwrap() > 0.0);
        let b = r.breakdown.unwrap();
        assert!(b.get(TimeCategory::CpuGpuParam) > 0.0);
        assert!(b.get(TimeCategory::CpuUpdate) > 0.0);
    }

    #[test]
    fn pipelined_is_comm_bound_serialized_is_not() {
        // The Table 3 contrast: pipelining hides compute under the
        // service loop, pushing the comm ratio way up (52% → 87% in the
        // paper) while *reducing* total time.
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(25);
        let pip = original_easgd_sim(&proto, &train, &test, &c, &costs, OriginalMode::Pipelined);
        let ser = original_easgd_sim(&proto, &train, &test, &c, &costs, OriginalMode::Serialized);
        let pip_t = pip.sim_seconds.unwrap();
        let ser_t = ser.sim_seconds.unwrap();
        assert!(pip_t < ser_t, "pipelined {pip_t} !< serialized {ser_t}");
        let pip_ratio = pip.breakdown.as_ref().unwrap().comm_ratio();
        let ser_ratio = ser.breakdown.as_ref().unwrap().comm_ratio();
        assert!(
            pip_ratio > ser_ratio,
            "pipelined ratio {pip_ratio} !> serialized {ser_ratio}"
        );
        assert!(
            pip_ratio > 0.7,
            "expected comm-bound master, got {pip_ratio}"
        );
    }

    #[test]
    fn serialized_time_matches_phase_sum() {
        // Every serialized iteration is the exact sum of its phases.
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(5);
        let r = original_easgd_sim(&proto, &train, &test, &c, &costs, OriginalMode::Serialized);
        let per_iter = costs.data_time()
            + 2.0 * costs.unpacked_weight_time()
            + costs.fwd_bwd
            + costs.cpu_update;
        let expect = per_iter * (c.iterations * c.workers) as f64;
        let got = r.sim_seconds.unwrap();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "sim {got} vs expected {expect}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(10);
        let a = original_easgd_sim(&proto, &train, &test, &c, &costs, OriginalMode::Pipelined);
        let b = original_easgd_sim(&proto, &train, &test, &c, &costs, OriginalMode::Pipelined);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.sim_seconds, b.sim_seconds);
    }
}
