//! The serving engine: event-ordered dispatch of closed batches onto
//! per-shard replica servers, on deterministic logical time.
//!
//! The engine is the referee between the batcher's two close triggers
//! and the shards' servers. Its dispatch log is a **total order by
//! `(ready time, shard id)`**: a batch that closed earlier always
//! dispatches earlier, and batches closing at the same logical instant
//! (e.g. burst arrivals cap-filling several shards at once) dispatch in
//! shard-id order. The property tests in `tests/batcher_props.rs` hold
//! the engine to exactly that order.
//!
//! Mechanism: closed batches are *staged*, not dispatched inline.
//! Whenever driver time advances past a staged batch's ready time, the
//! stage is stable-sorted by `(ready, shard)` and the strictly-older
//! prefix is flushed. Same-instant closes therefore accumulate in the
//! stage until the clock moves, and leave it in shard order.
//!
//! Time: the driver feeds logical microseconds (`u64`); each shard owns
//! a [`SimClock`] *ticking in microseconds* (the clock is unit-agnostic
//! f64). A dispatch idles the shard clock to the batch's ready time
//! (`TimeCategory::Other`), then charges the pinned
//! [`ServiceModel::step_us`] as `TimeCategory::ForwardBackward` — the
//! same Table 3 accounting the cluster simulator uses for training.

use crate::batcher::{add_stats, Batch, Batcher, BatcherConfig};
use crate::service::ServiceModel;
use easgd_cluster::{SimClock, TimeCategory};
use easgd_tensor::{ScratchStats, TrainScratch};

/// Where dispatched batches run: real sharded replicas
/// ([`crate::ReplicaSet`]) or the modeled-only [`NullBackend`].
pub trait Backend {
    /// Runs one ragged batch. `pixels` packs the batch's request
    /// payloads contiguously, `batch.len() × sample_len` elements.
    fn run_batch(&mut self, shard: usize, batch: &Batch, pixels: &[f32]);

    /// Pooled allocation counters attributable to the backend.
    fn stats(&self) -> ScratchStats {
        ScratchStats::default()
    }
}

/// A backend that runs nothing: latency and allocation behaviour of the
/// batching layer alone, under the service model.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullBackend;

impl Backend for NullBackend {
    fn run_batch(&mut self, _shard: usize, _batch: &Batch, _pixels: &[f32]) {}
}

/// One finished request, for latency accounting.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// Request id (submission order).
    pub id: u64,
    /// Shard that served it.
    pub shard: usize,
    /// Arrival time (µs).
    pub arrival_us: u64,
    /// Completion time (µs, fractional under the service model).
    pub done_us: f64,
}

impl Completion {
    /// End-to-end latency: queueing + batching delay + service (µs).
    pub fn latency_us(&self) -> f64 {
        self.done_us - self.arrival_us as f64
    }
}

/// One dispatched batch, for order/fairness auditing.
#[derive(Clone, Copy, Debug)]
pub struct DispatchRecord {
    /// Shard the batch belonged to.
    pub shard: usize,
    /// When the batch closed (µs).
    pub ready_us: u64,
    /// Ragged batch size.
    pub size: usize,
    /// When the shard's server started it (µs; ≥ `ready_us`).
    pub start_us: f64,
    /// When the server finished it (µs).
    pub done_us: f64,
}

/// The micro-batching serve engine. See the module docs.
#[derive(Debug)]
pub struct ServeEngine<B> {
    batcher: Batcher,
    model: ServiceModel,
    backend: B,
    /// Per-shard server clocks, ticking in logical microseconds.
    clocks: Vec<SimClock>,
    /// Closed-but-undispatched batches; flushed in `(ready, shard)` order.
    staged: Vec<Batch>,
    /// Contiguous pixel slab handed to the backend (pooled, counted).
    staging: Vec<f32>,
    staging_scratch: TrainScratch,
    completions: Vec<Completion>,
    dispatches: Vec<DispatchRecord>,
    now_us: u64,
}

impl<B: Backend> ServeEngine<B> {
    /// An idle engine at t = 0.
    pub fn new(cfg: BatcherConfig, model: ServiceModel, backend: B) -> Self {
        Self {
            clocks: (0..cfg.shards).map(|_| SimClock::new()).collect(),
            batcher: Batcher::new(cfg),
            model,
            backend,
            staged: Vec::new(),
            staging: Vec::new(),
            staging_scratch: TrainScratch::default(),
            completions: Vec::new(),
            dispatches: Vec::new(),
            now_us: 0,
        }
    }

    /// The batcher configuration.
    pub fn config(&self) -> BatcherConfig {
        self.batcher.config()
    }

    /// The pinned service model.
    pub fn model(&self) -> ServiceModel {
        self.model
    }

    /// Pre-sizes the completion and dispatch logs so a measured run's
    /// bookkeeping stays off the allocator.
    pub fn reserve(&mut self, requests: usize) {
        self.completions.reserve(requests);
        self.dispatches.reserve(requests);
        self.staged.reserve(self.batcher.config().shards);
    }

    /// Submits a request arriving at `now_us` on `shard`; `fill` writes
    /// its payload into a pooled buffer. Fires every deadline due by
    /// `now_us` first (deadline closes precede a same-instant arrival),
    /// then dispatches everything that closed strictly earlier. Returns
    /// the request id.
    ///
    /// # Panics
    /// Panics if time runs backwards or `shard` is out of range.
    pub fn submit(&mut self, now_us: u64, shard: usize, fill: &mut dyn FnMut(&mut [f32])) -> u64 {
        self.advance(now_us);
        let (id, closed) = self.batcher.submit(now_us, shard, fill);
        if let Some(batch) = closed {
            self.staged.push(batch);
        }
        id
    }

    /// Moves driver time forward to `now_us` with no arrival: fires due
    /// deadlines and dispatches batches that closed strictly earlier.
    ///
    /// # Panics
    /// Panics if `now_us` is before the engine's current time.
    pub fn advance(&mut self, now_us: u64) {
        assert!(
            now_us >= self.now_us,
            "driver time ran backwards: {} -> {now_us}",
            self.now_us
        );
        self.now_us = now_us;
        while let Some(batch) = self.batcher.close_due(now_us) {
            self.staged.push(batch);
        }
        self.flush_staged_before(now_us);
    }

    /// End of run: closes every pending partial batch at its deadline
    /// and dispatches the whole stage in `(ready, shard)` order.
    pub fn drain(&mut self) {
        while let Some(batch) = self.batcher.close_next() {
            self.staged.push(batch);
        }
        self.flush_staged_before(u64::MAX);
    }

    /// Dispatches staged batches with `ready < limit_us`, in the
    /// `(ready, shard)` total order. The sort is stable and the stage is
    /// small (at most one batch per shard plus the current instant's
    /// closes), so the scan cost is noise.
    fn flush_staged_before(&mut self, limit_us: u64) {
        if self.staged.is_empty() {
            return;
        }
        self.staged.sort_by_key(|b| (b.ready_us(), b.shard()));
        while !self.staged.is_empty() && self.staged[0].ready_us() < limit_us {
            let batch = self.staged.remove(0);
            self.dispatch(batch);
        }
    }

    /// Runs one closed batch on its shard's server: gathers the ragged
    /// payloads into the pooled slab, advances the shard clock (idle →
    /// `Other`, service → `ForwardBackward`), logs the dispatch and its
    /// completions, and recycles the batch storage.
    fn dispatch(&mut self, batch: Batch) {
        let shard = batch.shard();
        let size = batch.len();
        let sample_len = self.batcher.config().sample_len;
        // Size the slab for a full cap regardless of raggedness: the
        // first dispatch then reaches the steady-state capacity.
        self.staging_scratch.ensure_f32(
            &mut self.staging,
            self.batcher.config().batch_cap * sample_len,
        );
        if sample_len > 0 {
            for (slot, req) in self.staging.chunks_exact_mut(sample_len).zip(batch.reqs()) {
                slot.copy_from_slice(req.pixels());
            }
        }
        let clock = &mut self.clocks[shard];
        clock.advance_to(batch.ready_us() as f64, TimeCategory::Other);
        let start_us = clock.now();
        clock.charge(TimeCategory::ForwardBackward, self.model.step_us(size));
        let done_us = clock.now();
        self.backend
            .run_batch(shard, &batch, &self.staging[..size * sample_len]);
        self.dispatches.push(DispatchRecord {
            shard,
            ready_us: batch.ready_us(),
            size,
            start_us,
            done_us,
        });
        for req in batch.reqs() {
            self.completions.push(Completion {
                id: req.id(),
                shard,
                arrival_us: req.arrival_us(),
                done_us,
            });
        }
        self.batcher.recycle(batch);
    }

    /// Finished requests, in dispatch order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Dispatched batches, in dispatch order.
    pub fn dispatches(&self) -> &[DispatchRecord] {
        &self.dispatches
    }

    /// Requests queued but not yet dispatched.
    pub fn pending(&self) -> usize {
        self.batcher.pending() + self.staged.iter().map(Batch::len).sum::<usize>()
    }

    /// A shard's server clock (µs ticks, Table 3 categories).
    pub fn clock(&self, shard: usize) -> &SimClock {
        &self.clocks[shard]
    }

    /// Pooled allocation counters across the whole request path:
    /// batcher queues/slots + engine staging slab + backend replicas.
    pub fn pool_stats(&self) -> ScratchStats {
        add_stats(
            add_stats(self.batcher.stats(), self.staging_scratch.stats()),
            self.backend.stats(),
        )
    }

    /// The backend, for post-run inspection.
    pub fn backend(&self) -> &B {
        &self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize, cap: usize, deadline: u64) -> BatcherConfig {
        BatcherConfig {
            shards,
            batch_cap: cap,
            deadline_us: deadline,
            sample_len: 2,
        }
    }

    fn engine(shards: usize, cap: usize, deadline: u64) -> ServeEngine<NullBackend> {
        ServeEngine::new(
            cfg(shards, cap, deadline),
            ServiceModel::new(80.0, 5.0),
            NullBackend,
        )
    }

    fn push(e: &mut ServeEngine<NullBackend>, t: u64, shard: usize) -> u64 {
        e.submit(t, shard, &mut |px| px.fill(0.5))
    }

    #[test]
    fn same_instant_cap_closes_dispatch_in_shard_order() {
        let mut e = engine(3, 1, 10_000);
        // A burst at t = 100 cap-fills shards 2, 0, 1 in that submit
        // order; dispatch must come out 0, 1, 2.
        for shard in [2, 0, 1] {
            let _ = push(&mut e, 100, shard);
        }
        e.drain();
        let shards: Vec<usize> = e.dispatches().iter().map(|d| d.shard).collect();
        assert_eq!(shards, vec![0, 1, 2]);
        assert!(e.dispatches().iter().all(|d| d.ready_us == 100));
    }

    #[test]
    fn dispatch_log_is_ready_shard_sorted() {
        let mut e = engine(2, 2, 300);
        let _ = push(&mut e, 0, 1);
        let _ = push(&mut e, 50, 0);
        let _ = push(&mut e, 60, 1); // cap-closes shard 1 at 60
        let _ = push(&mut e, 400, 0); // fires shard 0's deadline (350) first
        e.drain();
        let order: Vec<(u64, usize)> = e
            .dispatches()
            .iter()
            .map(|d| (d.ready_us, d.shard))
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "dispatch log must be (ready, shard) sorted");
        assert_eq!(order[0], (60, 1));
        assert_eq!(order[1], (350, 0));
    }

    #[test]
    fn deadline_bounds_latency_under_light_load() {
        let mut e = engine(1, 8, 200);
        // One request every 10 ms: every batch is a singleton closed by
        // the deadline, so latency = deadline + step(1) exactly.
        for i in 0..20u64 {
            let _ = push(&mut e, i * 10_000, 0);
        }
        e.drain();
        assert_eq!(e.completions().len(), 20);
        let step1 = e.model().step_us(1);
        for c in e.completions() {
            assert!((c.latency_us() - (200.0 + step1)).abs() < 1e-9);
        }
    }

    #[test]
    fn busy_server_queues_batches_back_to_back() {
        let mut e = engine(1, 1, 1_000_000);
        // Cap 1: every arrival closes instantly; step(1) = 85 µs but
        // arrivals come every 10 µs, so the server runs back-to-back.
        for i in 0..5u64 {
            let _ = push(&mut e, i * 10, 0);
        }
        e.drain();
        let d = e.dispatches();
        assert_eq!(d.len(), 5);
        for w in d.windows(2) {
            assert!((w[1].start_us - w[0].done_us).abs() < 1e-9);
        }
        assert!((d[4].done_us - 5.0 * 85.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_dispatches_without_pooled_allocations() {
        let mut e = engine(2, 4, 500);
        e.reserve(400);
        let mut t = 0u64;
        for i in 0..80u64 {
            t += 37;
            let _ = push(&mut e, t, (i % 2) as usize);
        }
        t += 10_000;
        e.advance(t);
        let warm = e.pool_stats();
        for i in 0..320u64 {
            t += 37;
            let _ = push(&mut e, t, (i % 2) as usize);
        }
        t += 10_000;
        e.advance(t);
        let delta = e.pool_stats().since(&warm);
        assert_eq!(delta.allocations(), 0, "steady-state serving allocated");
        assert!(delta.reused > 0);
    }

    #[test]
    fn drain_completes_every_submitted_request() {
        let mut e = engine(3, 4, 700);
        for i in 0..50u64 {
            let _ = push(&mut e, i * 13, (i % 3) as usize);
        }
        e.drain();
        assert_eq!(e.completions().len(), 50);
        assert_eq!(e.pending(), 0);
        let mut ids: Vec<u64> = e.completions().iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "ran backwards")]
    fn time_must_be_monotone() {
        let mut e = engine(1, 4, 100);
        let _ = push(&mut e, 50, 0);
        let _ = push(&mut e, 10, 0);
    }
}
