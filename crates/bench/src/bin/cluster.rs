// xtask: allow(wall-clock) — a benchmark harness measures real time by
// definition; the pragma is confined to this bench timer binary.
//! Cluster-scale harness on the discrete-event backend (ISSUE 8).
//!
//! Every number here comes out of a *live* [`VirtualCluster`] hosted on
//! `ClusterBackend::Events` — the same `Comm` methods every trainer
//! calls, at rank counts the thread backend cannot reach:
//!
//! * **Table 4** (weak scaling, GoogLeNet / VGG on ImageNet): each rank
//!   charges the model's measured single-node iteration time and then
//!   allreduces a parameter buffer priced at the calibrated MPI-on-KNL
//!   cost, at P = 1…64 (the paper's Cori range) and P = 512…8192 (the
//!   extrapolation the event engine exists for). The emergent efficiency
//!   `T(1)/T(P)` must match the closed-form [`WeakScalingModel`] to
//!   ≤ 1e-9 — the simulation and the analysis are the same physics.
//! * **Tree exchange ~ log P**: the *executable* `tree_allreduce_sum`
//!   (real messages, real α-β pricing, no closed form anywhere) swept
//!   over power-of-two P; simulated completion time must fit
//!   `t = a + b·log₂P` with R² > 0.999 and grow < 2× from P=512 to 8192.
//! * **Figure 13** (more machines): speedup `P·efficiency(P)` derived
//!   from the Table 4 rows at the five large-P points.
//!
//! ```text
//! cargo run --release -p easgd-bench --bin cluster            # full run, writes JSON
//! cargo run --release -p easgd-bench --bin cluster -- --smoke # P ≤ 512 + validate checked-in JSON
//! cargo run --release -p easgd-bench --bin cluster -- --out p # write JSON to `p`
//! ```
//!
//! Acceptance (checked in as `BENCH_cluster.json`, re-validated by
//! `--smoke` in CI): emergent-vs-model efficiency delta ≤ 1e-9 at every
//! point, GoogLeNet ≥ Intel Caffe's 0.87 and VGG ≥ 0.62 at 2176 cores,
//! GoogLeNet above VGG at 8192 nodes, tree fit R² > 0.999 with the
//! 512→8192 growth ratio < 2 (log, not linear), and Figure 13 speedup
//! monotone in P.

use easgd::weak_scaling::{
    knl_mpi_effective_link, INTEL_CAFFE_GOOGLENET_2176, INTEL_CAFFE_VGG_2176,
};
use easgd::WeakScalingModel;
use easgd_bench::arg_value;
use easgd_cluster::collectives::tree_allreduce_sum;
use easgd_cluster::{ClusterBackend, ClusterConfig, TimeCategory, VirtualCluster};

/// Iterations charged per rank in the Table 4 runs — two is enough to
/// exercise steady-state accumulation (the efficiency is per-iteration).
const TABLE4_ITERS: usize = 2;
/// Parameter-buffer floats carried by the Table 4 allreduce. The traffic
/// is priced explicitly (the calibrated per-iteration cost), so the
/// payload only needs to be big enough to be a real reduction.
const TABLE4_PAYLOAD: usize = 64;
/// Payload for the executable tree sweep (α-dominated on purpose: the
/// log₂P round count is what's under test, not the bandwidth term).
const TREE_PAYLOAD: usize = 256;
/// Fibers in the big sweeps only charge clocks and run one shallow
/// collective; a slim stack keeps 8192 ranks cheap to map.
const SWEEP_STACK: usize = 512 * 1024;

/// The paper's Cori node counts plus the large-P extrapolation points.
fn table4_nodes(smoke: bool) -> Vec<usize> {
    let mut nodes = vec![1, 2, 4, 8, 16, 32, 64, 512];
    if !smoke {
        nodes.extend([1024, 2048, 4096, 8192]);
    }
    nodes
}

/// Power-of-two rank counts for the executable tree sweep.
fn tree_nodes(smoke: bool) -> Vec<usize> {
    let top = if smoke { 9 } else { 13 }; // 512 or 8192
    (1..=top).map(|k| 1usize << k).collect()
}

/// One measured point (simulated time; the engine is deterministic, so a
/// single run per point is exact).
struct Entry {
    bench: &'static str,
    shape: String,
    implementation: &'static str,
    /// Simulated milliseconds (max across ranks).
    sim_ms: f64,
    /// The point's headline metric (efficiency, speedup, or log₂P).
    metric: &'static str,
    value: f64,
}

/// One Table 4 point measured on the live cluster: every rank charges
/// the base iteration and allreduces at the calibrated cost, and the
/// emergent efficiency is read off the slowest rank's clock.
struct Table4Point {
    nodes: usize,
    sim_seconds: f64,
    emergent_efficiency: f64,
    model_efficiency: f64,
}

fn run_table4_point(model: &WeakScalingModel, nodes: usize) -> Table4Point {
    let comm_cost = model.comm_seconds(nodes);
    let base = model.base_iteration_seconds;
    let cfg = ClusterConfig::new(nodes)
        .with_backend(ClusterBackend::Events)
        .with_event_stack(SWEEP_STACK);
    let times = VirtualCluster::run(&cfg, |comm| {
        let buf = vec![1.0f32; TABLE4_PAYLOAD];
        let mut out = Vec::new();
        for _ in 0..TABLE4_ITERS {
            comm.charge(TimeCategory::ForwardBackward, base);
            comm.allreduce_sum_costed_into(&buf, comm_cost, TimeCategory::GpuGpuParam, &mut out);
        }
        comm.now()
    });
    let sim_seconds = times.iter().fold(0.0f64, |a, &t| a.max(t));
    Table4Point {
        nodes,
        sim_seconds,
        emergent_efficiency: base * TABLE4_ITERS as f64 / sim_seconds,
        model_efficiency: model.efficiency(nodes),
    }
}

fn bench_table4(
    entries: &mut Vec<Entry>,
    smoke: bool,
    name: &'static str,
    model: &WeakScalingModel,
) -> Vec<Table4Point> {
    table4_nodes(smoke)
        .into_iter()
        .map(|nodes| {
            let p = run_table4_point(model, nodes);
            entries.push(Entry {
                bench: "weak_scaling_table4",
                shape: format!("{name}/nodes{nodes}/cores{}", nodes * model.cores_per_node),
                implementation: "event_backend",
                sim_ms: p.sim_seconds * 1e3,
                metric: "efficiency",
                value: p.emergent_efficiency,
            });
            p
        })
        .collect()
}

/// One executable tree-allreduce point: real messages over the
/// calibrated KNL link, completion time from the slowest rank.
fn run_tree_point(nodes: usize) -> f64 {
    let cfg = ClusterConfig::new(nodes)
        .with_link(knl_mpi_effective_link())
        .with_backend(ClusterBackend::Events)
        .with_event_stack(SWEEP_STACK);
    let times = VirtualCluster::run(&cfg, |comm| {
        let mut data = vec![comm.rank() as f32; TREE_PAYLOAD];
        tree_allreduce_sum(comm, &mut data, TimeCategory::GpuGpuParam);
        // Every rank must hold the same reduced vector: sum of 0..P.
        let p = comm.size() as f64;
        let want = (p - 1.0) * p / 2.0;
        assert_eq!(data[0] as f64, want, "allreduce result at P={p}");
        comm.now()
    });
    times.iter().fold(0.0f64, |a, &t| a.max(t))
}

/// Least-squares fit `y = a + b·x`; returns `(a, b, r²)`.
fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let b = sxy / sxx;
    let a = my - b * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (a + b * x);
            e * e
        })
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    (a, b, r2)
}

struct TreeFit {
    r2: f64,
    /// Seconds added per doubling of P.
    slope_per_doubling: f64,
    /// `t(P_max) / t(512)` — must look logarithmic, not linear.
    growth_ratio: f64,
    max_nodes: usize,
}

fn bench_tree(entries: &mut Vec<Entry>, smoke: bool) -> TreeFit {
    let nodes = tree_nodes(smoke);
    let times: Vec<f64> = nodes.iter().map(|&p| run_tree_point(p)).collect();
    let logs: Vec<f64> = nodes.iter().map(|&p| (p as f64).log2()).collect();
    for ((&p, &t), &l) in nodes.iter().zip(&times).zip(&logs) {
        entries.push(Entry {
            bench: "tree_allreduce_sim",
            shape: format!("p{p}/n{TREE_PAYLOAD}"),
            implementation: "event_backend",
            sim_ms: t * 1e3,
            metric: "log2_p",
            value: l,
        });
    }
    let (_, slope, r2) = linear_fit(&logs, &times);
    let at = |want: usize| {
        nodes
            .iter()
            .position(|&p| p == want)
            .map(|i| times[i])
            .expect("sweep includes the anchor point")
    };
    TreeFit {
        r2,
        slope_per_doubling: slope,
        growth_ratio: times[times.len() - 1] / at(512),
        max_nodes: *nodes.last().expect("non-empty sweep"),
    }
}

/// Figure 13 "more machines" rows derived from the Table 4 points:
/// throughput speedup over one node is `P·efficiency(P)`.
fn bench_figure13(
    entries: &mut Vec<Entry>,
    name: &'static str,
    points: &[Table4Point],
) -> Vec<f64> {
    points
        .iter()
        .filter(|p| p.nodes >= 512)
        .map(|p| {
            let speedup = p.nodes as f64 * p.emergent_efficiency;
            entries.push(Entry {
                bench: "figure13_speedup",
                shape: format!("{name}/nodes{}", p.nodes),
                implementation: "event_backend",
                sim_ms: p.sim_seconds * 1e3,
                metric: "speedup",
                value: speedup,
            });
            speedup
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct Acceptance {
    /// Worst |emergent − closed-form| efficiency across every point.
    max_model_delta: f64,
    googlenet_eff_2176_cores: f64,
    vgg_eff_2176_cores: f64,
    googlenet_eff_max_p: f64,
    vgg_eff_max_p: f64,
    tree_fit_r2: f64,
    tree_slope_s_per_doubling: f64,
    tree_growth_ratio_max_over_512: f64,
    max_event_ranks: usize,
    figure13_monotone: bool,
}

fn render_json(entries: &[Entry], acc: &Acceptance) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"generated_by\": \"cargo run --release -p easgd-bench --bin cluster\",\n");
    out.push_str("  \"acceptance\": {\n");
    out.push_str(&format!(
        "    \"max_abs_efficiency_delta_vs_model\": {:.3e},\n",
        acc.max_model_delta
    ));
    out.push_str(&format!(
        "    \"googlenet_efficiency_2176_cores\": {:.4},\n",
        acc.googlenet_eff_2176_cores
    ));
    out.push_str(&format!(
        "    \"vgg_efficiency_2176_cores\": {:.4},\n",
        acc.vgg_eff_2176_cores
    ));
    out.push_str(&format!(
        "    \"googlenet_efficiency_p8192\": {:.4},\n",
        acc.googlenet_eff_max_p
    ));
    out.push_str(&format!(
        "    \"vgg_efficiency_p8192\": {:.4},\n",
        acc.vgg_eff_max_p
    ));
    out.push_str(&format!("    \"tree_fit_r2\": {:.6},\n", acc.tree_fit_r2));
    out.push_str(&format!(
        "    \"tree_slope_s_per_doubling\": {:.6},\n",
        acc.tree_slope_s_per_doubling
    ));
    out.push_str(&format!(
        "    \"tree_growth_ratio_8192_over_512\": {:.4},\n",
        acc.tree_growth_ratio_max_over_512
    ));
    out.push_str(&format!(
        "    \"max_event_ranks\": {},\n",
        acc.max_event_ranks
    ));
    out.push_str(&format!(
        "    \"figure13_speedup_monotone\": {}\n",
        acc.figure13_monotone
    ));
    out.push_str("  },\n");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"shape\": \"{}\", \"impl\": \"{}\", \"sim_ms\": {:.6}, \"{}\": {:.6}}}{}\n",
            json_escape(e.bench),
            json_escape(&e.shape),
            json_escape(e.implementation),
            e.sim_ms,
            e.metric,
            e.value,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"key": <number>` out of the checked-in JSON (hand-rolled like
/// the writer; the bench has no JSON dependency by design).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `--smoke` re-validates the checked-in acceptance numbers, so CI fails
/// if someone regenerates `BENCH_cluster.json` below the bar (or forgets
/// to check it in).
fn validate_checked_in(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let num = |key: &str| json_number(&text, key).ok_or_else(|| format!("missing {key}"));
    let delta = num("max_abs_efficiency_delta_vs_model")?;
    let g2176 = num("googlenet_efficiency_2176_cores")?;
    let v2176 = num("vgg_efficiency_2176_cores")?;
    let g8192 = num("googlenet_efficiency_p8192")?;
    let v8192 = num("vgg_efficiency_p8192")?;
    let r2 = num("tree_fit_r2")?;
    let growth = num("tree_growth_ratio_8192_over_512")?;
    let ranks = num("max_event_ranks")?;
    if delta > 1e-9 {
        return Err(format!(
            "max_abs_efficiency_delta_vs_model = {delta:e}, want <= 1e-9"
        ));
    }
    if g2176 < INTEL_CAFFE_GOOGLENET_2176 {
        return Err(format!(
            "googlenet_efficiency_2176_cores = {g2176}, want >= {INTEL_CAFFE_GOOGLENET_2176} (Intel Caffe)"
        ));
    }
    if v2176 < INTEL_CAFFE_VGG_2176 {
        return Err(format!(
            "vgg_efficiency_2176_cores = {v2176}, want >= {INTEL_CAFFE_VGG_2176} (Intel Caffe)"
        ));
    }
    if !(0.0 < v8192 && v8192 < g8192 && g8192 < 1.0) {
        return Err(format!(
            "expected 0 < vgg ({v8192}) < googlenet ({g8192}) < 1 at P=8192"
        ));
    }
    if r2 < 0.999 {
        return Err(format!("tree_fit_r2 = {r2}, want > 0.999"));
    }
    if growth >= 2.0 {
        return Err(format!(
            "tree_growth_ratio_8192_over_512 = {growth}, want < 2 (log growth)"
        ));
    }
    if ranks < 8192.0 {
        return Err(format!("max_event_ranks = {ranks}, want >= 8192"));
    }
    if !text.contains("\"figure13_speedup_monotone\": true") {
        return Err("figure13_speedup_monotone is not true".into());
    }
    Ok(())
}

fn fail(msg: &str) -> ! {
    eprintln!("cluster bench acceptance failed: {msg}");
    std::process::exit(1);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut entries = Vec::new();

    let googlenet = WeakScalingModel::googlenet_imagenet();
    let vgg = WeakScalingModel::vgg_imagenet();
    let g_points = bench_table4(&mut entries, smoke, "googlenet", &googlenet);
    let v_points = bench_table4(&mut entries, smoke, "vgg", &vgg);
    let tree = bench_tree(&mut entries, smoke);
    let g_speedups = bench_figure13(&mut entries, "googlenet", &g_points);
    let v_speedups = bench_figure13(&mut entries, "vgg", &v_points);

    // The live simulation must reproduce the closed-form model exactly
    // (same α-β physics, just executed instead of summed).
    let max_model_delta = g_points
        .iter()
        .chain(&v_points)
        .map(|p| (p.emergent_efficiency - p.model_efficiency).abs())
        .fold(0.0f64, f64::max);
    let eff_at = |points: &[Table4Point], nodes: usize| {
        points
            .iter()
            .find(|p| p.nodes == nodes)
            .map(|p| p.emergent_efficiency)
            .expect("sweep includes the anchor point")
    };
    let max_p = g_points.last().expect("non-empty table").nodes;
    let figure13_monotone = [&g_speedups, &v_speedups]
        .iter()
        .all(|s| s.windows(2).all(|w| w[1] > w[0]));
    let acc = Acceptance {
        max_model_delta,
        googlenet_eff_2176_cores: eff_at(&g_points, 32),
        vgg_eff_2176_cores: eff_at(&v_points, 32),
        googlenet_eff_max_p: eff_at(&g_points, max_p),
        vgg_eff_max_p: eff_at(&v_points, max_p),
        tree_fit_r2: tree.r2,
        tree_slope_s_per_doubling: tree.slope_per_doubling,
        tree_growth_ratio_max_over_512: tree.growth_ratio,
        max_event_ranks: tree.max_nodes.max(max_p),
        figure13_monotone,
    };

    println!(
        "{:<22} {:<28} {:<14} {:>14} {:>12}",
        "bench", "shape", "impl", "sim_ms", "metric"
    );
    for e in &entries {
        println!(
            "{:<22} {:<28} {:<14} {:>14.4} {:>9.4} {}",
            e.bench, e.shape, e.implementation, e.sim_ms, e.value, e.metric,
        );
    }
    println!(
        "\nmax |emergent - model| efficiency delta {:.2e} | GoogLeNet @2176 cores {:.4} (Intel Caffe {INTEL_CAFFE_GOOGLENET_2176}) | VGG @2176 {:.4} (Intel Caffe {INTEL_CAFFE_VGG_2176})",
        acc.max_model_delta, acc.googlenet_eff_2176_cores, acc.vgg_eff_2176_cores,
    );
    println!(
        "tree fit R² {:.6} | slope {:.4} s/doubling | t({})/t(512) = {:.3} | max event ranks {}",
        acc.tree_fit_r2,
        acc.tree_slope_s_per_doubling,
        tree.max_nodes,
        acc.tree_growth_ratio_max_over_512,
        acc.max_event_ranks,
    );

    // Structural invariants hold at any sweep size, smoke included.
    if acc.max_model_delta > 1e-9 {
        fail(&format!(
            "emergent efficiency deviates from the closed form by {:.2e} (> 1e-9)",
            acc.max_model_delta
        ));
    }
    if acc.googlenet_eff_2176_cores < INTEL_CAFFE_GOOGLENET_2176
        || acc.vgg_eff_2176_cores < INTEL_CAFFE_VGG_2176
    {
        fail("weak-scaling efficiency fell below the paper's Intel Caffe comparison");
    }
    if acc.tree_fit_r2 < 0.999 {
        fail(&format!(
            "tree time is not ~log2(P): R² = {:.6}",
            acc.tree_fit_r2
        ));
    }
    if !figure13_monotone {
        fail("figure 13 speedup is not monotone in P");
    }

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    let out_path = arg_value("--out").unwrap_or_else(|| default_out.to_string());
    if smoke {
        // Full-sweep-only bars (P=8192, the 512→8192 growth ratio) are
        // checked against the checked-in JSON instead of re-measured.
        match validate_checked_in(&out_path) {
            Ok(()) => println!("smoke run ok; checked-in {out_path} acceptance holds"),
            Err(e) => fail(&format!("checked-in {out_path}: {e}")),
        }
        return;
    }
    if acc.tree_growth_ratio_max_over_512 >= 2.0 {
        fail(&format!(
            "tree time grew {:.3}x from 512 to {} ranks (want < 2x)",
            acc.tree_growth_ratio_max_over_512, tree.max_nodes
        ));
    }
    let json = render_json(&entries, &acc);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => fail(&format!("failed to write {out_path}: {e}")),
    }
}
