//! CLI for the workspace static-analysis subsystem.
//!
//! ```text
//! cargo run -p easgd-xtask -- lint                      # lint every workspace .rs file
//! cargo run -p easgd-xtask -- lint --json               # findings as JSON
//! cargo run -p easgd-xtask -- explore                   # CAS interleaving scenarios
//! cargo run -p easgd-xtask -- explore --protocol        # comm protocol model checker
//! cargo run -p easgd-xtask -- explore --protocol --smoke  # P=4 subset (per-push CI)
//! ```
//!
//! `lint` exits non-zero if any finding is reported; `explore` exits
//! non-zero if a correct kernel/protocol shows a violation or a
//! deliberately broken negative scenario fails to produce one.

use easgd_xtask::interleave::{
    scenario_elastic_center, scenario_fetch_add, scenario_racy_add_negative,
    scenario_two_component, Outcome,
};
use easgd_xtask::lint::{findings_to_json, lint_workspace};
use easgd_xtask::protocol;
use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // Under `cargo run`, CARGO_MANIFEST_DIR points at crates/xtask; the
    // workspace root is two levels up. Fall back to the current directory
    // when invoked as a bare binary.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(".")),
        Err(_) => PathBuf::from("."),
    }
}

fn run_lint(json: bool) -> ExitCode {
    let root = workspace_root();
    match lint_workspace(&root) {
        Ok(findings) if json => {
            println!("{}", findings_to_json(&findings));
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_explore() -> ExitCode {
    let mut failed = false;
    let scenarios: Vec<(&str, Outcome, bool)> = vec![
        (
            "fetch_add 2 threads x 2 adds",
            scenario_fetch_add(2, 2),
            true,
        ),
        (
            "fetch_add 3 threads x 1 add",
            scenario_fetch_add(3, 1),
            true,
        ),
        (
            "elastic center, workers {1.0, -0.5}, alpha 0.25, 2 rounds",
            scenario_elastic_center(&[1.0, -0.5], 0.25, 2),
            true,
        ),
        (
            "two-component adds, 2 threads",
            scenario_two_component(2),
            true,
        ),
        (
            "racy blind-store add (negative: must violate)",
            scenario_racy_add_negative(2),
            false,
        ),
    ];
    for (name, outcome, expect_pass) in scenarios {
        let stats = outcome.stats();
        match (&outcome, expect_pass) {
            (Outcome::Pass(_), true) => {
                println!(
                    "ok   {name}: {} interleavings, {} steps",
                    stats.executions, stats.steps
                );
            }
            (Outcome::Fail(v, _), false) => {
                println!(
                    "ok   {name}: counterexample found after {} interleavings ({v})",
                    stats.executions
                );
            }
            (Outcome::Fail(v, _), true) => {
                println!("FAIL {name}: {v}");
                failed = true;
            }
            (Outcome::Pass(_), false) => {
                println!(
                    "FAIL {name}: exhaustive search ({} interleavings) found no \
                     violation in a kernel that is racy by construction",
                    stats.executions
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the comm-protocol model-checking suite. For each production
/// scenario: the reduced (sleep-set) exhaustive search must pass, and —
/// where `compare_naive` — the unreduced search is run too so the
/// partial-order-reduction factor can be reported. Negative controls
/// must fail, and their minimal counterexample schedule is printed.
fn run_explore_protocol(smoke: bool) -> ExitCode {
    let mode = if smoke { "smoke (P=4)" } else { "full" };
    println!("protocol model checker — {mode} suite");
    let mut failed = false;
    for sc in protocol::suite(smoke) {
        let reduced = protocol::check(&sc.programs, true, Some(protocol::REDUCED_CAP));
        let stats = *reduced.stats();
        if stats.truncated {
            println!(
                "FAIL {}: reduced search truncated at {} executions — not exhaustive",
                sc.name, stats.executions
            );
            failed = true;
            continue;
        }
        match (&reduced, sc.expect_pass) {
            (protocol::Outcome::Pass(_), true) => {
                let reduction = if sc.compare_naive {
                    let naive = protocol::check(&sc.programs, false, Some(protocol::NAIVE_CAP));
                    let n = naive.stats().executions.max(1);
                    let r = stats.executions.max(1);
                    let bound = if naive.stats().truncated { "≥ " } else { "" };
                    format!(
                        ", naive {} {n} → reduction {bound}{:.0}x",
                        if naive.stats().truncated {
                            "(capped)"
                        } else {
                            "executions"
                        },
                        n as f64 / r as f64
                    )
                } else {
                    String::new()
                };
                println!(
                    "ok   {}: {} schedules verified deadlock-, loss-, and leak-free \
                     ({} steps, {} slept{reduction})",
                    sc.name, stats.executions, stats.steps, stats.slept
                );
            }
            (protocol::Outcome::Fail(v, _), false) => {
                println!(
                    "ok   {}: violation found after {} schedule(s): {}",
                    sc.name,
                    stats.executions,
                    v.message.lines().next().unwrap_or("")
                );
                match protocol::shortest_violation(&sc.programs, 1_000_000) {
                    Some(minimal) => println!(
                        "     minimal counterexample schedule ({} visible steps): {:?}",
                        minimal.schedule.len(),
                        minimal.schedule
                    ),
                    None => {
                        println!("FAIL {}: no minimal counterexample within BFS cap", sc.name);
                        failed = true;
                    }
                }
            }
            (protocol::Outcome::Fail(v, _), true) => {
                println!("FAIL {}: {v}", sc.name);
                failed = true;
            }
            (protocol::Outcome::Pass(_), false) => {
                println!(
                    "FAIL {}: exhaustive search ({} schedules) found no violation in a \
                     protocol that is broken by construction",
                    sc.name, stats.executions
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(flag("--json")),
        Some("explore") if flag("--protocol") => run_explore_protocol(flag("--smoke")),
        Some("explore") => run_explore(),
        _ => {
            eprintln!("usage: easgd-xtask <lint [--json] | explore [--protocol [--smoke]]>");
            ExitCode::FAILURE
        }
    }
}
