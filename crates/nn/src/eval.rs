//! Evaluation metrics beyond plain accuracy: top-k (the standard
//! ImageNet report — the paper's large-scale workloads are ImageNet
//! models) and per-class confusion.

use crate::network::Network;
use easgd_tensor::Tensor;

/// Counts of true class vs predicted class.
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    classes: usize,
    /// `counts[true * classes + predicted]`.
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// An empty matrix over `classes` classes.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Records one prediction.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(
            truth < self.classes && predicted < self.classes,
            "class out of range"
        );
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Count at `(truth, predicted)`.
    pub fn get(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth * self.classes + predicted]
    }

    /// Total samples recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass).
    pub fn accuracy(&self) -> f32 {
        let correct: usize = (0..self.classes).map(|c| self.get(c, c)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        }
    }

    /// Recall of one class (diagonal / row sum); 0 for an unseen class.
    pub fn recall(&self, class: usize) -> f32 {
        let row: usize = (0..self.classes).map(|p| self.get(class, p)).sum();
        if row == 0 {
            0.0
        } else {
            self.get(class, class) as f32 / row as f32
        }
    }

    /// The most-confused off-diagonal pair `(truth, predicted, count)`,
    /// if any misclassification occurred.
    pub fn worst_confusion(&self) -> Option<(usize, usize, usize)> {
        let mut best = None;
        for t in 0..self.classes {
            for p in 0..self.classes {
                if t != p {
                    let c = self.get(t, p);
                    if c > 0 && best.is_none_or(|(_, _, bc)| c > bc) {
                        best = Some((t, p, c));
                    }
                }
            }
        }
        best
    }
}

/// Result of a top-k evaluation.
#[derive(Clone, Copy, Debug)]
pub struct TopKAccuracy {
    /// Fraction with the true label ranked first.
    pub top1: f32,
    /// Fraction with the true label in the top k.
    pub topk: f32,
    /// The k used.
    pub k: usize,
}

/// Indices of the `k` largest entries of `row`, best first.
pub fn top_k_indices(row: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| {
        row[b]
            .partial_cmp(&row[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

/// Evaluates top-1/top-k accuracy and the confusion matrix over a
/// labelled set, in inference mode.
///
/// # Panics
/// Panics if shapes disagree or `k` is 0.
pub fn evaluate_topk(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    batch: usize,
    k: usize,
) -> (TopKAccuracy, ConfusionMatrix) {
    assert!(k >= 1, "k must be at least 1");
    let n = labels.len();
    assert!(n > 0, "empty evaluation set");
    let classes = net.num_classes();
    let per: usize = net.input_shape().iter().product();
    assert_eq!(images.len(), n * per, "images/labels mismatch");
    let k = k.min(classes);
    let mut top1 = 0usize;
    let mut topk = 0usize;
    let mut confusion = ConfusionMatrix::new(classes);
    let mut start = 0;
    while start < n {
        let end = (start + batch).min(n);
        let bsz = end - start;
        let mut shape = vec![bsz];
        shape.extend_from_slice(net.input_shape());
        let x = Tensor::from_vec(shape, images.as_slice()[start * per..end * per].to_vec());
        let logits = net.forward(&x, false);
        for (s, &label) in labels[start..end].iter().enumerate() {
            let row = &logits.as_slice()[s * classes..(s + 1) * classes];
            let ranked = top_k_indices(row, k);
            if ranked[0] == label {
                top1 += 1;
            }
            if ranked.contains(&label) {
                topk += 1;
            }
            confusion.record(label, ranked[0]);
        }
        start = end;
    }
    (
        TopKAccuracy {
            top1: top1 as f32 / n as f32,
            topk: topk as f32 / n as f32,
            k,
        },
        confusion,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;

    #[test]
    fn top_k_indices_ranked_descending() {
        let row = [0.1f32, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&row, 3), vec![1, 3, 2]);
        assert_eq!(top_k_indices(&row, 1), vec![1]);
    }

    #[test]
    fn confusion_matrix_accounting() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        m.record(0, 0);
        m.record(0, 1);
        m.record(2, 2);
        assert_eq!(m.total(), 4);
        assert!((m.accuracy() - 0.75).abs() < 1e-6);
        assert!((m.recall(0) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(m.recall(1), 0.0);
        assert_eq!(m.worst_confusion(), Some((0, 1, 1)));
    }

    #[test]
    fn topk_always_at_least_top1() {
        let mut net = mlp(8, &[12], 5, 1);
        let mut rng = easgd_tensor::Rng::new(2);
        let mut images = Tensor::zeros([30, 8]);
        rng.fill_normal(images.as_mut_slice(), 0.0, 1.0);
        let labels: Vec<usize> = (0..30).map(|i| i % 5).collect();
        let (acc, confusion) = evaluate_topk(&mut net, &images, &labels, 10, 3);
        assert!(acc.topk >= acc.top1);
        assert_eq!(acc.k, 3);
        assert_eq!(confusion.total(), 30);
        assert!((confusion.accuracy() - acc.top1).abs() < 1e-6);
    }

    #[test]
    fn top_classes_equals_certain_hit() {
        // k = classes → topk accuracy is 1 by definition.
        let mut net = mlp(4, &[6], 3, 3);
        let images = Tensor::zeros([6, 4]);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let (acc, _) = evaluate_topk(&mut net, &images, &labels, 3, 99);
        assert_eq!(acc.k, 3);
        assert!((acc.topk - 1.0).abs() < 1e-6);
    }
}
