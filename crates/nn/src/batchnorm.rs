//! Batch normalization (Ioffe & Szegedy 2015) — per-channel for feature
//! maps, per-feature for dense activations.
//!
//! Not used by the paper's 2017 Caffe models, but inseparable from the
//! batch-size discussion (§7.2): BN couples the loss to the batch
//! statistics, which is one reason large-batch regimes need retuning.
//! Included as an extension layer with full analytic backward and
//! running-statistics inference.

use crate::layer::{batch_of, Init, Layer, ParamSpec};
use easgd_tensor::{ParamArena, Tensor, TrainScratch};

/// Batch normalization over `[B, C, …spatial]` inputs: statistics per
/// channel across batch and spatial positions, learnable scale `γ` and
/// shift `β`.
pub struct BatchNorm {
    name: String,
    /// Channels (normalization groups).
    channels: usize,
    /// Spatial elements per channel (1 for dense activations).
    plane: usize,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Running-statistics momentum (inference uses the running values).
    pub momentum: f32,
    gamma_seg: usize,
    beta_seg: usize,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Forward cache for backward.
    x_hat: Vec<f32>,
    batch_mean: Vec<f32>,
    batch_inv_std: Vec<f32>,
    last_batch: usize,
    last_train: bool,
}

impl BatchNorm {
    /// BN over per-sample shape `[channels, …spatial]`; `plane` is the
    /// product of the spatial dims (1 for `[features]`).
    pub fn new(name: impl Into<String>, channels: usize, plane: usize) -> Self {
        assert!(channels > 0 && plane > 0, "batchnorm dims must be positive");
        Self {
            name: name.into(),
            channels,
            plane,
            eps: 1e-5,
            momentum: 0.1,
            gamma_seg: usize::MAX,
            beta_seg: usize::MAX,
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            x_hat: Vec::new(),
            batch_mean: vec![0.0; channels],
            batch_inv_std: vec![0.0; channels],
            last_batch: 0,
            last_train: false,
        }
    }

    fn stat_count(&self, batch: usize) -> f32 {
        (batch * self.plane) as f32
    }
}

impl Layer for BatchNorm {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec {
                name: format!("{}.gamma", self.name),
                len: self.channels,
                init: Init::Constant(1.0),
            },
            ParamSpec {
                name: format!("{}.beta", self.name),
                len: self.channels,
                init: Init::Constant(0.0),
            },
        ]
    }

    fn bind(&mut self, segments: &[usize]) {
        assert_eq!(segments.len(), 2, "batchnorm expects gamma+beta segments");
        self.gamma_seg = segments[0];
        self.beta_seg = segments[1];
    }

    fn out_shape(&self) -> Vec<usize> {
        vec![self.channels, self.plane]
    }

    fn forward_into(
        &mut self,
        params: &ParamArena,
        input: &Tensor,
        train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let b = batch_of(input);
        let per = self.channels * self.plane;
        assert_eq!(input.len(), b * per, "batchnorm input shape mismatch");
        self.last_batch = b;
        self.last_train = train;
        let gamma = params.segment(self.gamma_seg);
        let beta = params.segment(self.beta_seg);
        let x = input.as_slice();
        let n = self.stat_count(b);
        // Every element of out and x_hat is assigned in the channel loop,
        // so neither buffer needs zeroing.
        scratch.shape_tensor(out, input.shape().dims());
        scratch.ensure_f32(&mut self.x_hat, input.len());

        for c in 0..self.channels {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                let mut sumsq = 0.0f64;
                for s in 0..b {
                    for p in 0..self.plane {
                        let v = x[s * per + c * self.plane + p] as f64;
                        sum += v;
                        sumsq += v * v;
                    }
                }
                let mean = (sum / n as f64) as f32;
                let var = ((sumsq / n as f64) as f32 - mean * mean).max(0.0);
                // Update running statistics (exponential moving average).
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean;
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[c], self.running_var[c])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.batch_mean[c] = mean;
            self.batch_inv_std[c] = inv_std;
            for s in 0..b {
                for p in 0..self.plane {
                    let idx = s * per + c * self.plane + p;
                    let xh = (x[idx] - mean) * inv_std;
                    self.x_hat[idx] = xh;
                    out.as_mut_slice()[idx] = gamma[c] * xh + beta[c];
                }
            }
        }
    }

    fn backward_into(
        &mut self,
        params: &ParamArena,
        grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let b = self.last_batch;
        let per = self.channels * self.plane;
        assert_eq!(grad_out.len(), b * per, "backward before forward");
        assert!(
            self.last_train,
            "batchnorm backward requires a training-mode forward"
        );
        let gamma = params.segment(self.gamma_seg);
        let gy = grad_out.as_slice();
        let n = self.stat_count(b);
        // Every element of grad_in is assigned in the channel loop.
        scratch.shape_tensor(grad_in, grad_out.shape().dims());

        for (c, &gamma_c) in gamma.iter().enumerate().take(self.channels) {
            // Accumulate dγ, dβ and the two reduction terms of the BN
            // backward formula.
            let mut dgamma = 0.0f32;
            let mut dbeta = 0.0f32;
            for s in 0..b {
                for p in 0..self.plane {
                    let idx = s * per + c * self.plane + p;
                    dgamma += gy[idx] * self.x_hat[idx];
                    dbeta += gy[idx];
                }
            }
            grads.segment_mut(self.gamma_seg)[c] += dgamma;
            grads.segment_mut(self.beta_seg)[c] += dbeta;
            // dx = γ·inv_std/n · (n·dy − Σdy − x̂·Σ(dy·x̂))
            let scale = gamma_c * self.batch_inv_std[c] / n;
            for s in 0..b {
                for p in 0..self.plane {
                    let idx = s * per + c * self.plane + p;
                    grad_in.as_mut_slice()[idx] =
                        scale * (n * gy[idx] - dbeta - self.x_hat[idx] * dgamma);
                }
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(BatchNorm {
            name: self.name.clone(),
            channels: self.channels,
            plane: self.plane,
            eps: self.eps,
            momentum: self.momentum,
            gamma_seg: self.gamma_seg,
            beta_seg: self.beta_seg,
            running_mean: self.running_mean.clone(),
            running_var: self.running_var.clone(),
            x_hat: Vec::new(),
            batch_mean: vec![0.0; self.channels],
            batch_inv_std: vec![0.0; self.channels],
            last_batch: 0,
            last_train: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::build_arenas;
    use easgd_tensor::Rng;

    #[test]
    fn training_output_is_normalized() {
        let mut l = BatchNorm::new("bn", 2, 4);
        let (params, _) = build_arenas(&mut l, 1);
        let mut rng = Rng::new(2);
        let mut x = Tensor::zeros([8, 2, 4]);
        rng.fill_normal(x.as_mut_slice(), 3.0, 2.0);
        let y = l.forward(&params, &x, true);
        // Per channel: mean ≈ 0, var ≈ 1 (γ=1, β=0 at init).
        for c in 0..2 {
            let mut vals = Vec::new();
            for s in 0..8 {
                for p in 0..4 {
                    vals.push(y.as_slice()[s * 8 + c * 4 + p]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let mut l = BatchNorm::new("bn", 1, 2);
        let (mut params, _) = build_arenas(&mut l, 1);
        params.segment_mut(0)[0] = 2.0; // γ
        params.segment_mut(1)[0] = 5.0; // β
        let x = Tensor::from_vec([2, 1, 2], vec![-1.0, -1.0, 1.0, 1.0]);
        let y = l.forward(&params, &x, true);
        // x̂ = ±1, so y = ±2 + 5.
        for v in y.as_slice() {
            assert!((v - 3.0).abs() < 1e-4 || (v - 7.0).abs() < 1e-4, "{v}");
        }
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut l = BatchNorm::new("bn", 1, 1);
        l.momentum = 1.0; // running stats = last batch stats
        let (params, _) = build_arenas(&mut l, 1);
        let x = Tensor::from_vec([4, 1, 1], vec![0.0, 2.0, 4.0, 6.0]);
        let _ = l.forward(&params, &x, true); // mean 3, var 5
        let probe = Tensor::from_vec([1, 1, 1], vec![3.0]);
        let y = l.forward(&params, &probe, false);
        assert!(y.as_slice()[0].abs() < 1e-4, "{}", y.as_slice()[0]);
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        use crate::gradcheck::check_layer_mode;
        let mut l = BatchNorm::new("bn", 3, 4);
        let (mut params, grads) = build_arenas(&mut l, 3);
        // Non-trivial γ/β so all gradient paths are exercised; train-mode
        // gradcheck because BN's backward is defined against the batch
        // statistics.
        let mut rng = Rng::new(4);
        rng.fill_normal(params.segment_mut(0), 1.0, 0.2);
        rng.fill_normal(params.segment_mut(1), 0.0, 0.2);
        check_layer_mode(&mut l, params, grads, &[3, 4], 4, 3e-2, 5, true);
    }

    #[test]
    fn clone_carries_running_stats() {
        let mut l = BatchNorm::new("bn", 1, 1);
        l.momentum = 1.0;
        let (params, _) = build_arenas(&mut l, 6);
        let x = Tensor::from_vec([2, 1, 1], vec![10.0, 14.0]);
        let _ = l.forward(&params, &x, true);
        let mut c = l.boxed_clone();
        let probe = Tensor::from_vec([1, 1, 1], vec![12.0]);
        let y = c.forward(&params, &probe, false);
        assert!(y.as_slice()[0].abs() < 1e-3);
    }
}
