//! Building a custom architecture with the network builder — batch norm,
//! an inception module, dropout — training it distributed, and
//! checkpointing the result.
//!
//! ```sh
//! cargo run --release --example custom_network
//! ```

use knl_easgd::nn::checkpoint::{load_network, save_network};
use knl_easgd::nn::inception::InceptionConfig;
use knl_easgd::prelude::*;

fn main() {
    let task = SyntheticSpec::cifar_small().task(0xC057);
    let (train, test) = task.train_test(1_500, 400, 0xC058);

    // A custom stack: conv stem → BN → inception → classifier.
    let net = NetworkBuilder::new([3, 16, 16])
        .conv2d(8, 3, 1, 1)
        .batchnorm()
        .relu()
        .maxpool(2, 2)
        .inception(InceptionConfig {
            c1: 4,
            c3_reduce: 4,
            c3: 6,
            c5_reduce: 2,
            c5: 3,
            pool_proj: 3,
        })
        .relu()
        .flatten()
        .dropout(0.25)
        .dense(64)
        .relu()
        .dense(10)
        .build(7);
    println!(
        "custom network: {} layers, {} parameters ({} packed bytes)",
        net.num_layers(),
        net.num_params(),
        net.size_bytes()
    );
    for (name, len) in net.segment_sizes() {
        println!("  {name:<24} {len:>8}");
    }

    // Train it with Hogwild EASGD (fastest asynchronous method).
    let cfg = TrainConfig::figure6(250);
    let result = hogwild_easgd(&net, &train, &test, &cfg);
    println!(
        "\n{}: {:.1}% test accuracy in {:.2}s",
        result.method,
        result.accuracy * 100.0,
        result.wall_seconds
    );

    // Checkpoint and restore.
    let path = std::env::temp_dir().join("custom_network.ckpt");
    save_network(&net, &path).expect("checkpoint write failed");
    let mut restored = net.clone();
    load_network(&mut restored, &path).expect("checkpoint read failed");
    println!(
        "checkpoint round-trip OK: {} bytes at {}",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display()
    );
}
