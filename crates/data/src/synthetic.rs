//! Deterministic synthetic datasets standing in for MNIST / CIFAR /
//! ImageNet (offline substitution; see DESIGN.md §2).
//!
//! Construction: each class gets a smooth random *prototype* image (a
//! coarse random field, bilinearly upsampled). A sample is its class
//! prototype, randomly shifted by up to `max_shift` pixels, plus white
//! noise. The result is a real classification task: classes overlap
//! through noise and shift, gradients are informative, and the same CNNs
//! that fit MNIST/CIFAR fit these at comparable speed.

use crate::dataset::Dataset;
use easgd_tensor::Rng;

/// Which standard benchmark a synthetic spec mirrors.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Handwritten-digit-like: 1 channel, 10 classes.
    Mnist,
    /// Object-recognition-like: 3 channels, 10 classes.
    Cifar,
    /// Large-scale: 3 channels, 1000 classes.
    ImageNet,
}

/// Parameters of a synthetic dataset.
#[derive(Clone, Debug)]
pub struct SyntheticSpec {
    /// Name for the produced [`Dataset`].
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height = width.
    pub size: usize,
    /// Coarse-grid resolution of the class prototypes (smoothness knob).
    pub coarse: usize,
    /// Per-pixel noise standard deviation (difficulty knob; prototypes
    /// have roughly unit variance).
    pub noise: f32,
    /// Maximum random translation in pixels (augmentation-like jitter).
    pub max_shift: usize,
}

impl SyntheticSpec {
    /// MNIST-shaped: 1×28×28, 10 classes (Table 1 row 1).
    pub fn mnist() -> Self {
        Self {
            name: "synthetic-mnist".to_string(),
            classes: 10,
            channels: 1,
            size: 28,
            coarse: 7,
            noise: 0.6,
            max_shift: 2,
        }
    }

    /// A reduced MNIST-like task (1×12×12) for experiments that run many
    /// hundreds of independent trainings.
    pub fn mnist_small() -> Self {
        Self {
            name: "synthetic-mnist-small".to_string(),
            classes: 10,
            channels: 1,
            size: 12,
            coarse: 4,
            noise: 0.6,
            max_shift: 1,
        }
    }

    /// CIFAR-shaped: 3×32×32, 10 classes (Table 1 row 2).
    pub fn cifar() -> Self {
        Self {
            name: "synthetic-cifar".to_string(),
            classes: 10,
            channels: 3,
            size: 32,
            coarse: 8,
            noise: 0.7,
            max_shift: 2,
        }
    }

    /// A reduced CIFAR-like task (3×16×16).
    pub fn cifar_small() -> Self {
        Self {
            name: "synthetic-cifar-small".to_string(),
            classes: 10,
            channels: 3,
            size: 16,
            coarse: 4,
            noise: 0.7,
            max_shift: 1,
        }
    }

    /// ImageNet-shaped: 3×256×256, 1000 classes (Table 1 row 3). Generate
    /// small counts only — one sample is 768 KB of f32.
    pub fn imagenet() -> Self {
        Self {
            name: "synthetic-imagenet".to_string(),
            classes: 1000,
            channels: 3,
            size: 256,
            coarse: 16,
            noise: 0.7,
            max_shift: 8,
        }
    }

    /// The spec mirroring a standard benchmark.
    pub fn of(kind: TaskKind) -> Self {
        match kind {
            TaskKind::Mnist => Self::mnist(),
            TaskKind::Cifar => Self::cifar(),
            TaskKind::ImageNet => Self::imagenet(),
        }
    }

    /// Elements per sample.
    pub fn sample_len(&self) -> usize {
        self.channels * self.size * self.size
    }

    /// Instantiates the *task*: draws the class prototypes from `seed`.
    /// Datasets sampled from the same task share the prototypes — which
    /// is what makes a held-out test set meaningful.
    pub fn task(&self, seed: u64) -> SyntheticTask {
        let mut rng = Rng::new(seed);
        SyntheticTask {
            spec: self.clone(),
            prototypes: self.prototypes(&mut rng),
        }
    }

    /// Convenience: one dataset of `n` samples from a task seeded with
    /// `seed` (prototype seed = sample seed). For a train/test pair use
    /// [`task`](Self::task) + [`SyntheticTask::generate`], or
    /// [`SyntheticTask::train_test`].
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        self.task(seed).generate(n, seed.wrapping_add(0x5A11))
    }

    /// Class prototypes: per channel, a `coarse × coarse` standard-normal
    /// field bilinearly upsampled to `size × size`.
    fn prototypes(&self, rng: &mut Rng) -> Vec<Vec<f32>> {
        (0..self.classes)
            .map(|_| {
                let mut proto = Vec::with_capacity(self.sample_len());
                for _ in 0..self.channels {
                    let mut grid = vec![0.0f32; self.coarse * self.coarse];
                    rng.fill_normal(&mut grid, 0.0, 1.0);
                    upsample_bilinear(&grid, self.coarse, self.size, &mut proto);
                }
                proto
            })
            .collect()
    }

    fn emit_sample(&self, proto: &[f32], rng: &mut Rng, out: &mut Vec<f32>) {
        let s = self.size;
        let (dx, dy) = if self.max_shift == 0 {
            (0isize, 0isize)
        } else {
            let span = 2 * self.max_shift + 1;
            (
                rng.below(span) as isize - self.max_shift as isize,
                rng.below(span) as isize - self.max_shift as isize,
            )
        };
        for c in 0..self.channels {
            let plane = &proto[c * s * s..(c + 1) * s * s];
            for y in 0..s {
                // Toroidal shift keeps energy constant across samples.
                let sy = (y as isize + dy).rem_euclid(s as isize) as usize;
                for x in 0..s {
                    let sx = (x as isize + dx).rem_euclid(s as isize) as usize;
                    out.push(plane[sy * s + sx] + self.noise * rng.normal());
                }
            }
        }
    }
}

/// An instantiated synthetic task: a fixed set of class prototypes.
///
/// All datasets generated from one task are draws from the *same*
/// distribution, so train/test splits and per-worker shards are
/// statistically coherent.
#[derive(Clone, Debug)]
pub struct SyntheticTask {
    spec: SyntheticSpec,
    prototypes: Vec<Vec<f32>>,
}

impl SyntheticTask {
    /// The spec this task was instantiated from.
    pub fn spec(&self) -> &SyntheticSpec {
        &self.spec
    }

    /// Generates `n` samples (labels round-robin over classes so every
    /// class is evenly represented), normalized to zero mean / unit
    /// variance. Determined by `sample_seed` given the task.
    pub fn generate(&self, n: usize, sample_seed: u64) -> Dataset {
        let mut rng = Rng::new(sample_seed);
        let per = self.spec.sample_len();
        let mut images = Vec::with_capacity(n * per);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.spec.classes;
            self.spec
                .emit_sample(&self.prototypes[class], &mut rng, &mut images);
            labels.push(class);
        }
        let mut d = Dataset::new(
            self.spec.name.clone(),
            vec![self.spec.channels, self.spec.size, self.spec.size],
            self.spec.classes,
            images,
            labels,
        );
        d.normalize();
        d
    }

    /// A train/test pair drawn from the same prototypes with independent
    /// sample noise.
    pub fn train_test(&self, n_train: usize, n_test: usize, seed: u64) -> (Dataset, Dataset) {
        (
            self.generate(n_train, seed),
            self.generate(n_test, seed.wrapping_add(0x7E57)),
        )
    }
}

/// Bilinear upsample of a `c × c` grid to `s × s`, appended to `out`.
fn upsample_bilinear(grid: &[f32], c: usize, s: usize, out: &mut Vec<f32>) {
    debug_assert_eq!(grid.len(), c * c);
    if c == 1 {
        out.extend(std::iter::repeat_n(grid[0], s * s));
        return;
    }
    let scale = (c - 1) as f32 / (s - 1).max(1) as f32;
    for y in 0..s {
        let fy = y as f32 * scale;
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(c - 1);
        let wy = fy - y0 as f32;
        for x in 0..s {
            let fx = x as f32 * scale;
            let x0 = fx.floor() as usize;
            let x1 = (x0 + 1).min(c - 1);
            let wx = fx - x0 as f32;
            let v = grid[y0 * c + x0] * (1.0 - wy) * (1.0 - wx)
                + grid[y0 * c + x1] * (1.0 - wy) * wx
                + grid[y1 * c + x0] * wy * (1.0 - wx)
                + grid[y1 * c + x1] * wy * wx;
            out.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_table_1() {
        assert_eq!(SyntheticSpec::mnist().sample_len(), 28 * 28);
        assert_eq!(SyntheticSpec::cifar().sample_len(), 3 * 32 * 32);
        assert_eq!(SyntheticSpec::imagenet().sample_len(), 3 * 256 * 256);
        assert_eq!(SyntheticSpec::imagenet().classes, 1000);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::mnist_small();
        let a = spec.generate(50, 9);
        let b = spec.generate(50, 9);
        assert_eq!(a.image(17), b.image(17));
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_give_different_data() {
        let spec = SyntheticSpec::mnist_small();
        let a = spec.generate(10, 1);
        let b = spec.generate(10, 2);
        assert_ne!(a.image(0), b.image(0));
    }

    #[test]
    fn labels_cycle_over_classes() {
        let d = SyntheticSpec::mnist_small().generate(25, 3);
        for i in 0..25 {
            assert_eq!(d.label(i), i % 10);
        }
    }

    #[test]
    fn output_is_normalized() {
        let d = SyntheticSpec::cifar_small().generate(200, 4);
        let n = (d.len() * d.sample_len()) as f32;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..d.len() {
            for &v in d.image(i) {
                sum += v;
                sumsq += v * v;
            }
        }
        let mean = sum / n;
        let var = sumsq / n - mean * mean;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn same_class_samples_are_correlated_across_noise() {
        let spec = SyntheticSpec {
            max_shift: 0,
            ..SyntheticSpec::mnist_small()
        };
        let d = spec.generate(40, 5);
        // Samples 0 and 10 share class 0; 0 and 5 differ (classes 0 vs 5).
        let corr = |a: &[f32], b: &[f32]| {
            let n = a.len() as f32;
            let (ma, mb) = (a.iter().sum::<f32>() / n, b.iter().sum::<f32>() / n);
            let cov: f32 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
            let va: f32 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
            let vb: f32 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
            cov / (va.sqrt() * vb.sqrt())
        };
        let same = corr(d.image(0), d.image(10));
        let diff = corr(d.image(0), d.image(5));
        assert!(
            same > diff + 0.2,
            "same-class corr {same} vs cross-class {diff}"
        );
    }

    #[test]
    fn upsample_constant_grid_is_constant() {
        let mut out = Vec::new();
        upsample_bilinear(&[2.0, 2.0, 2.0, 2.0], 2, 8, &mut out);
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn upsample_interpolates_between_corners() {
        // 2x2 grid [0,1;0,1] → values increase left to right.
        let mut out = Vec::new();
        upsample_bilinear(&[0.0, 1.0, 0.0, 1.0], 2, 5, &mut out);
        assert!((out[0] - 0.0).abs() < 1e-6);
        assert!((out[4] - 1.0).abs() < 1e-6);
        assert!((out[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn a_small_mlp_can_learn_the_task() {
        // End-to-end sanity: the synthetic task must be learnable well
        // above chance, otherwise every accuracy-vs-time figure collapses.
        use easgd_tensor::ops::sgd_update;
        let spec = SyntheticSpec::mnist_small();
        let task = spec.task(6);
        let (train, test) = task.train_test(400, 100, 7);
        let mut net = easgd_nn::models::mlp(spec.sample_len(), &[32], 10, 8);
        let mut rng = Rng::new(9);
        for _ in 0..300 {
            let b = train.sample_batch(&mut rng, 32);
            let flat = b.images.clone().reshape([b.len(), spec.sample_len()]);
            let _ = net.forward_backward(&flat, &b.labels);
            let g = net.grads().as_slice().to_vec();
            sgd_update(0.1, net.params_mut().as_mut_slice(), &g);
        }
        let images = test.as_tensor().reshape([100, spec.sample_len()]);
        let acc = net.evaluate(&images, test.labels(), 50);
        assert!(acc > 0.5, "synthetic task not learnable: acc = {acc}");
    }
}
