//! Result assembly for the simulated-cluster trainers.
//!
//! Every `VirtualCluster` method returns one [`RankOutcome`] per rank
//! (in rank order); [`assemble_sim`] folds them into a [`RunResult`]
//! with the family's shared conventions:
//!
//! * **simulated time** is the max over the reports that ranks chose to
//!   expose — master-only for the parameter-server methods (workers pass
//!   `report: None`), all-ranks for the bulk-synchronous ones;
//! * **breakdown and accuracy trace** come from the center rank;
//! * **final loss** is the mean of the finite worker last-step losses
//!   (the center's own loss, where it computes, is deliberately not
//!   counted — matching the historical per-trainer assemblers);
//! * **canonical loss trace** is the first non-empty per-step trace in
//!   rank order (the first computing rank).

use crate::engine::trace::RunAssembler;
use crate::metrics::{RunResult, TracePoint};
use easgd_cluster::RankReport;
use easgd_data::Dataset;
use easgd_nn::Network;

/// What one simulated rank contributed to the run.
pub enum RankOutcome {
    /// The rank holding the final center weights (master or center GPU).
    Center {
        /// Final center parameters.
        center: Vec<f32>,
        /// The rank's simulated-time report.
        report: RankReport,
        /// Accuracy trace recorded on this rank's simulated timeline.
        trace: Vec<TracePoint>,
        /// Per-step losses, when the center rank also computes.
        loss_trace: Vec<f32>,
    },
    /// Any other rank.
    Worker {
        /// Simulated-time report, or `None` to keep this rank's clock
        /// out of the run's total (parameter-server convention: the
        /// master's timeline is the measurement).
        report: Option<RankReport>,
        /// Loss of the rank's last step (NaN if it never computed).
        last_loss: f32,
        /// Per-step losses of this rank.
        loss_trace: Vec<f32>,
    },
}

/// Folds per-rank outcomes into a [`RunResult`].
///
/// # Panics
/// Panics if no rank produced a [`RankOutcome::Center`].
pub fn assemble_sim(
    method: &str,
    proto: &Network,
    test: &Dataset,
    iterations: usize,
    wall_seconds: f64,
    outcomes: Vec<RankOutcome>,
) -> RunResult {
    let mut center = None;
    let mut breakdown = None;
    let mut sim = 0.0f64;
    let mut losses = Vec::new();
    let mut trace = Vec::new();
    let mut loss_trace = Vec::new();
    for o in outcomes {
        match o {
            RankOutcome::Center {
                center: c,
                report,
                trace: tr,
                loss_trace: lt,
            } => {
                sim = sim.max(report.time);
                breakdown = Some(report.breakdown);
                trace = tr;
                if loss_trace.is_empty() {
                    loss_trace = lt;
                }
                center = Some(c);
            }
            RankOutcome::Worker {
                report,
                last_loss,
                loss_trace: lt,
            } => {
                if let Some(r) = report {
                    sim = sim.max(r.time);
                }
                if last_loss.is_finite() {
                    losses.push(last_loss);
                }
                if loss_trace.is_empty() {
                    loss_trace = lt;
                }
            }
        }
    }
    let Some(center) = center else {
        panic!("{method}: no rank returned the center weights");
    };
    RunAssembler::new(method, proto, test, iterations)
        .wall(wall_seconds)
        .sim(sim)
        .breakdown(breakdown)
        .trace(trace)
        .loss_trace(loss_trace)
        .worker_losses(losses)
        .finish(&center)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_cluster::TimeBreakdown;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset) {
        let task = SyntheticSpec::mnist_small().task(27);
        let (_, test) = task.train_test(32, 32, 28);
        (lenet_tiny(29), test)
    }

    fn report(time: f64) -> RankReport {
        RankReport {
            rank: 0,
            time,
            breakdown: TimeBreakdown::default(),
        }
    }

    #[test]
    fn master_only_timing_ignores_worker_clocks() {
        let (proto, test) = setup();
        let w = proto.params().as_slice().to_vec();
        let r = assemble_sim(
            "m",
            &proto,
            &test,
            3,
            0.1,
            vec![
                RankOutcome::Center {
                    center: w,
                    report: report(5.0),
                    trace: Vec::new(),
                    loss_trace: Vec::new(),
                },
                RankOutcome::Worker {
                    report: None,
                    last_loss: 1.0,
                    loss_trace: vec![2.0, 1.0],
                },
            ],
        );
        assert_eq!(r.sim_seconds, Some(5.0));
        assert_eq!(r.final_loss, 1.0);
        assert_eq!(r.loss_trace, vec![2.0, 1.0]);
        assert!(r.breakdown.is_some());
    }

    #[test]
    fn all_rank_timing_takes_the_max() {
        let (proto, test) = setup();
        let w = proto.params().as_slice().to_vec();
        let r = assemble_sim(
            "m",
            &proto,
            &test,
            3,
            0.1,
            vec![
                RankOutcome::Center {
                    center: w,
                    report: report(2.0),
                    trace: Vec::new(),
                    loss_trace: vec![0.5],
                },
                RankOutcome::Worker {
                    report: Some(report(7.0)),
                    last_loss: f32::NAN,
                    loss_trace: Vec::new(),
                },
            ],
        );
        assert_eq!(r.sim_seconds, Some(7.0));
        // NaN losses are filtered; empty mean divides by max(1).
        assert_eq!(r.final_loss, 0.0);
        // First non-empty trace in rank order: the center's.
        assert_eq!(r.loss_trace, vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "no rank returned the center weights")]
    fn missing_center_is_a_loud_failure() {
        let (proto, test) = setup();
        assemble_sim(
            "m",
            &proto,
            &test,
            1,
            0.0,
            vec![RankOutcome::Worker {
                report: None,
                last_loss: 0.0,
                loss_trace: Vec::new(),
            }],
        );
    }
}
