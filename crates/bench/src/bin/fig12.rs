//! Figure 12: partitioning a KNL chip into groups, each processing a
//! local weight/data replica, improves time-to-accuracy until the
//! MCDRAM capacity limit.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin fig12
//! ```

use easgd::{knl_partition_run, TrainConfig};
use easgd_data::SyntheticSpec;
use easgd_hardware::knl::KnlChip;
use easgd_nn::models::alexnet_cifar_tiny;

fn main() {
    let task = SyntheticSpec::cifar_small().task(0xF12);
    let (train, test) = task.train_test(2_000, 500, 0xF13);
    let net = alexnet_cifar_tiny(0xF14);
    let chip = KnlChip::cori_node();
    let target = 0.88;
    let base_round = 0.5; // G = 1 full-chip seconds per iteration

    println!(
        "Figure 12: partitioned KNL training, target accuracy {:.1}%",
        target * 100.0
    );
    println!(
        "{:>6} {:>6} {:>8} {:>10} {:>8} {:>12} {:>9}",
        "parts", "fits?", "rounds", "s/round", "acc %", "sim secs", "speedup"
    );
    let mut base: Option<f64> = None;
    for groups in [1usize, 4, 8, 16] {
        let cfg = TrainConfig {
            workers: groups,
            batch: 32,
            eta: 0.004,
            rho: 0.3,
            mu: 0.9,
            iterations: 5_000,
            seed: 0xF15,
            comm_period: 1,
        };
        let out = knl_partition_run(&net, &train, &test, &cfg, &chip, base_round, target, 2);
        let speedup = match (base, out.seconds_to_target) {
            (Some(b), Some(s)) => format!("{:.2}x", b / s),
            _ => "--".to_string(),
        };
        println!(
            "{:>6} {:>6} {:>8} {:>10.3} {:>8.1} {:>12} {:>9}",
            out.partitions,
            if out.fits_fast_memory { "yes" } else { "no" },
            out.rounds_run,
            out.round_seconds,
            out.final_accuracy * 100.0,
            out.seconds_to_target
                .map_or("--".to_string(), |s| format!("{s:.1}")),
            speedup,
        );
        if base.is_none() {
            base = out.seconds_to_target;
        }
    }

    // The capacity cliff (§6.2: "MCDRAM can hold at most 16 copies of
    // weight and data" for the paper's 249 MB + 687 MB working set).
    println!("\nMCDRAM capacity gate for the paper's full-size working set:");
    let weights = 249_000_000usize;
    let data = 687_000_000usize;
    for p in [1usize, 4, 8, 16, 32] {
        let fits = chip.max_partitions(weights, data, &[p]) == p;
        println!(
            "  {p:>2} copies of (249 MB weights + 687 MB data): {}",
            if fits {
                "fits in 16 GB MCDRAM"
            } else {
                "SPILLS to DDR4"
            }
        );
    }
    println!(
        "\npaper: 1 part 1605 s, 4 parts 1025 s (1.6x), 8 parts 823 s (2.0x), \
         16 parts 490 s (3.3x); 32 parts impossible (capacity)"
    );
}
