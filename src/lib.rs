//! # knl-easgd
//!
//! A Rust reproduction of *“Scaling Deep Learning on GPU and Knights
//! Landing clusters”* (You, Buluç, Demmel, SC '17): the EASGD algorithm
//! family for HPC clusters, the DNN / dataset / cluster substrates it
//! runs on, and a benchmark harness regenerating every table and figure
//! of the paper's evaluation.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`tensor`] — dense tensors, parallel GEMM, packed parameter arenas,
//!   lock-free atomic buffers (`easgd-tensor`).
//! * [`nn`] — layers, networks, the model zoo and full-size cost specs
//!   (`easgd-nn`).
//! * [`data`] — synthetic MNIST/CIFAR/ImageNet and real-format loaders
//!   (`easgd-data`).
//! * [`hardware`] — α-β networks, collective cost formulas, device and
//!   KNL chip models (`easgd-hardware`).
//! * [`cluster`] — the virtual cluster: ranks as threads, priced
//!   collectives, simulated clocks (`easgd-cluster`).
//! * [`algorithms`] — the paper's contribution: Original / Async /
//!   Hogwild / Sync EASGD and their baselines, the KNL partitioning
//!   study and the weak-scaling model (`easgd`).
//!
//! ## Quickstart
//!
//! ```
//! use knl_easgd::prelude::*;
//!
//! // A synthetic MNIST-like task and a small LeNet-shaped model.
//! let task = SyntheticSpec::mnist_small().task(1);
//! let (train, test) = task.train_test(600, 200, 2);
//! let net = lenet_tiny(3);
//!
//! // Train with the paper's fastest method on 4 workers; every method
//! // in the Figure 9 lineage dispatches through the same registry.
//! let cfg = TrainConfig::figure6(100);
//! let result = run_method(MethodId::SyncEasgd, &net, &train, &test, &cfg);
//! assert!(result.accuracy > 0.3);
//! ```

pub use easgd as algorithms;
pub use easgd_cluster as cluster;
pub use easgd_data as data;
pub use easgd_hardware as hardware;
pub use easgd_nn as nn;
pub use easgd_tensor as tensor;

/// The most common imports in one place.
pub mod prelude {
    pub use easgd::{
        async_easgd, async_measgd, async_msgd, async_sgd, hogwild_easgd, hogwild_sgd,
        knl_partition_run, original_easgd_sim, original_easgd_turns, run_method, sync_easgd_shared,
        sync_easgd_sim, sync_sgd_sim, MethodId, OriginalMode, RunResult, SimCosts, SyncVariant,
        TrainConfig, WeakScalingModel,
    };
    pub use easgd_cluster::{
        ClusterBackend, ClusterConfig, Comm, SimClock, TimeCategory, VirtualCluster,
    };
    pub use easgd_data::{Dataset, SyntheticSpec, SyntheticTask};
    pub use easgd_hardware::{AlphaBeta, ComputeModel, KnlChip};
    pub use easgd_nn::models::{alexnet_cifar, alexnet_cifar_tiny, lenet, lenet_tiny, mlp};
    pub use easgd_nn::{LayoutKind, Network, NetworkBuilder};
    pub use easgd_tensor::{ParamArena, Rng, Tensor};
}
