//! CLI for the workspace static-analysis subsystem.
//!
//! ```text
//! cargo run -p easgd-xtask -- lint       # lint every workspace .rs file
//! cargo run -p easgd-xtask -- explore    # run the interleaving scenarios
//! ```
//!
//! `lint` exits non-zero if any finding is reported; `explore` exits
//! non-zero if a correct kernel shows a violation or the deliberately racy
//! negative scenario fails to produce one.

use easgd_xtask::interleave::{
    scenario_elastic_center, scenario_fetch_add, scenario_racy_add_negative,
    scenario_two_component, Outcome,
};
use easgd_xtask::lint::lint_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // Under `cargo run`, CARGO_MANIFEST_DIR points at crates/xtask; the
    // workspace root is two levels up. Fall back to the current directory
    // when invoked as a bare binary.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(".")),
        Err(_) => PathBuf::from("."),
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    match lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_explore() -> ExitCode {
    let mut failed = false;
    let scenarios: Vec<(&str, Outcome, bool)> = vec![
        (
            "fetch_add 2 threads x 2 adds",
            scenario_fetch_add(2, 2),
            true,
        ),
        (
            "fetch_add 3 threads x 1 add",
            scenario_fetch_add(3, 1),
            true,
        ),
        (
            "elastic center, workers {1.0, -0.5}, alpha 0.25, 2 rounds",
            scenario_elastic_center(&[1.0, -0.5], 0.25, 2),
            true,
        ),
        (
            "two-component adds, 2 threads",
            scenario_two_component(2),
            true,
        ),
        (
            "racy blind-store add (negative: must violate)",
            scenario_racy_add_negative(2),
            false,
        ),
    ];
    for (name, outcome, expect_pass) in scenarios {
        let stats = outcome.stats();
        match (&outcome, expect_pass) {
            (Outcome::Pass(_), true) => {
                println!(
                    "ok   {name}: {} interleavings, {} steps",
                    stats.executions, stats.steps
                );
            }
            (Outcome::Fail(v, _), false) => {
                println!(
                    "ok   {name}: counterexample found after {} interleavings ({v})",
                    stats.executions
                );
            }
            (Outcome::Fail(v, _), true) => {
                println!("FAIL {name}: {v}");
                failed = true;
            }
            (Outcome::Pass(_), false) => {
                println!(
                    "FAIL {name}: exhaustive search ({} interleavings) found no \
                     violation in a kernel that is racy by construction",
                    stats.executions
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("explore") => run_explore(),
        _ => {
            eprintln!("usage: easgd-xtask <lint|explore>");
            ExitCode::FAILURE
        }
    }
}
