//! Local response normalization (across channels), as used by AlexNet.
//!
//! `y_c = x_c · (k + (α/n)·Σ_{c'∈window(c)} x_{c'}²)^{-β}` where the window
//! spans `n` adjacent channels centred on `c` (clipped at the edges).

use crate::layer::{batch_of, Layer};
use easgd_tensor::{ParamArena, Tensor, TrainScratch};

/// Across-channel LRN layer.
#[derive(Clone, Debug)]
pub struct LocalResponseNorm {
    name: String,
    channels: usize,
    plane: usize,
    /// Window size `n` (number of channels summed).
    pub n: usize,
    /// Additive constant `k`.
    pub k: f32,
    /// Scale `α`.
    pub alpha: f32,
    /// Exponent `β`.
    pub beta: f32,
    x_cache: Vec<f32>,
    /// `s_c = k + (α/n)Σ x²` per element of the last forward.
    s_cache: Vec<f32>,
    last_batch: usize,
}

impl LocalResponseNorm {
    /// LRN over `[channels, h, w]` maps with AlexNet-style defaults
    /// (`n = 5, k = 2, α = 1e-4, β = 0.75`).
    pub fn new(name: impl Into<String>, channels: usize, h: usize, w: usize) -> Self {
        Self::with_params(name, channels, h, w, 5, 2.0, 1e-4, 0.75)
    }

    /// LRN with explicit hyperparameters.
    ///
    /// # Panics
    /// Panics if `n == 0` or `channels == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_params(
        name: impl Into<String>,
        channels: usize,
        h: usize,
        w: usize,
        n: usize,
        k: f32,
        alpha: f32,
        beta: f32,
    ) -> Self {
        assert!(n > 0, "LRN window must be > 0");
        assert!(channels > 0, "LRN channels must be > 0");
        Self {
            name: name.into(),
            channels,
            plane: h * w,
            n,
            k,
            alpha,
            beta,
            x_cache: Vec::new(),
            s_cache: Vec::new(),
            last_batch: 0,
        }
    }

    fn window(&self, c: usize) -> (usize, usize) {
        let half = self.n / 2;
        let lo = c.saturating_sub(half);
        let hi = (c + half + 1).min(self.channels);
        (lo, hi)
    }

    fn shape_of(&self) -> Vec<usize> {
        // plane was stored as h*w; reconstruct as [channels, plane] view is
        // enough for the math, but we keep the original [C, H, W] promise
        // in out_shape through the builder, which passes h and w.
        vec![self.channels, self.plane]
    }
}

impl Layer for LocalResponseNorm {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn out_shape(&self) -> Vec<usize> {
        self.shape_of()
    }

    fn forward_into(
        &mut self,
        _params: &ParamArena,
        input: &Tensor,
        _train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let b = batch_of(input);
        let per = self.channels * self.plane;
        assert_eq!(input.len(), b * per, "LRN input shape mismatch");
        self.last_batch = b;
        scratch.ensure_f32(&mut self.x_cache, input.len());
        self.x_cache.copy_from_slice(input.as_slice());
        // Every element of s_cache and out is assigned below, so neither
        // buffer needs zeroing.
        scratch.ensure_f32(&mut self.s_cache, input.len());
        scratch.shape_tensor(out, input.shape().dims());
        let scale = self.alpha / self.n as f32;
        let x = input.as_slice();
        for s in 0..b {
            for c in 0..self.channels {
                let (lo, hi) = self.window(c);
                for p in 0..self.plane {
                    let mut acc = 0.0;
                    for cc in lo..hi {
                        let v = x[s * per + cc * self.plane + p];
                        acc += v * v;
                    }
                    let idx = s * per + c * self.plane + p;
                    let denom = self.k + scale * acc;
                    self.s_cache[idx] = denom;
                    out.as_mut_slice()[idx] = x[idx] * denom.powf(-self.beta);
                }
            }
        }
    }

    fn backward_into(
        &mut self,
        _params: &ParamArena,
        _grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let b = self.last_batch;
        let per = self.channels * self.plane;
        assert_eq!(grad_out.len(), b * per, "backward before forward");
        let scale = self.alpha / self.n as f32;
        let x = &self.x_cache;
        let s = &self.s_cache;
        let gy = grad_out.as_slice();
        // Every element of grad_in is assigned below.
        scratch.shape_tensor(grad_in, grad_out.shape().dims());
        let gx = grad_in.as_mut_slice();
        // ∂L/∂x_m = g_m·s_m^{-β} − 2βα/n · x_m · Σ_{i: m∈window(i)} g_i·x_i·s_i^{-β-1}
        for sb in 0..b {
            for c in 0..self.channels {
                let (lo, hi) = self.window(c);
                for p in 0..self.plane {
                    let idx = sb * per + c * self.plane + p;
                    // Direct term.
                    let mut acc = gy[idx] * s[idx].powf(-self.beta);
                    // Cross terms: channels i whose window contains c are the
                    // same channels as c's own (symmetric) window.
                    let cross: f32 = (lo..hi)
                        .map(|i| {
                            let ii = sb * per + i * self.plane + p;
                            gy[ii] * x[ii] * s[ii].powf(-self.beta - 1.0)
                        })
                        .sum();
                    acc -= 2.0 * self.beta * scale * x[idx] * cross;
                    gx[idx] = acc;
                }
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        let mut c = self.clone();
        c.x_cache = Vec::new();
        c.s_cache = Vec::new();
        Box::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{build_arenas, check_layer};

    #[test]
    fn normalizes_toward_unit_scale() {
        let mut l = LocalResponseNorm::with_params("lrn", 4, 1, 1, 5, 1.0, 1.0, 0.5);
        let x = Tensor::from_vec([1, 4, 1, 1], vec![1.0, 1.0, 1.0, 1.0]);
        let y = l.forward(&ParamArena::flat(0), &x, true);
        // s for middle channels: 1 + (1/5)*sum of squares in window.
        for v in y.as_slice() {
            assert!(*v < 1.0 && *v > 0.5);
        }
    }

    #[test]
    fn identity_when_alpha_zero() {
        let mut l = LocalResponseNorm::with_params("lrn", 3, 2, 2, 3, 1.0, 0.0, 0.75);
        let x = Tensor::from_vec([1, 3, 2, 2], (0..12).map(|i| i as f32).collect());
        let y = l.forward(&ParamArena::flat(0), &x, true);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn window_clips_at_edges() {
        let l = LocalResponseNorm::new("lrn", 6, 1, 1);
        assert_eq!(l.window(0), (0, 3));
        assert_eq!(l.window(3), (1, 6));
        assert_eq!(l.window(5), (3, 6));
    }

    #[test]
    fn gradcheck_small_map() {
        let mut l = LocalResponseNorm::with_params("lrn", 5, 2, 2, 3, 2.0, 0.5, 0.75);
        let (params, grads) = build_arenas(&mut l, 1);
        check_layer(&mut l, params, grads, &[5, 2, 2], 2, 2e-2, 9);
    }

    #[test]
    fn gradcheck_alexnet_defaults() {
        let mut l = LocalResponseNorm::new("lrn", 8, 3, 3);
        let (params, grads) = build_arenas(&mut l, 2);
        check_layer(&mut l, params, grads, &[8, 3, 3], 2, 2e-2, 10);
    }
}
