//! Figure 4 / §2.3: data parallelism vs model parallelism — the paper's
//! argument for choosing data parallelism, made quantitative.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin fig4
//! ```

use easgd::model_parallel::model_parallel_speedup;
use easgd_hardware::net::AlphaBeta;

fn main() {
    let link = AlphaBeta::fdr_infiniband();
    let sustained = 1.8e12; // K80-class sustained flops

    println!("Model parallelism speedup for one dense-layer GEMM (batch x in x out),");
    println!("FDR InfiniBand, K80-class compute. Values near/below 1 mean it loses.\n");
    println!(
        "{:>24} {:>8} {:>8} {:>8} {:>8}",
        "layer", "P=2", "P=4", "P=8", "P=16"
    );
    for (batch, inf, outf, label) in [
        (64usize, 256usize, 256usize, "64 x 256 x 256"),
        (64, 1024, 1024, "64 x 1024 x 1024"),
        (512, 1024, 1024, "512 x 1024 x 1024"),
        (2048, 1024, 1024, "2048 x 1024 x 1024"),
        (2048, 4096, 4096, "2048 x 4096 x 4096"),
    ] {
        print!("{label:>24}");
        for p in [2usize, 4, 8, 16] {
            print!(
                " {:>7.2}x",
                model_parallel_speedup(batch, inf, outf, p, sustained, &link)
            );
        }
        println!();
    }

    println!(
        "\n§2.3's reading: at DNN batch sizes (<= 2048) and layer sizes, the matrix\n\
         operations are too small — \"parallelizing a 2048x1024x1024 matrix\n\
         multiplication only needs one or two machines\" — so state-of-the-art\n\
         methods (and this paper) use data parallelism. The executable distributed\n\
         dense layer (easgd::model_parallel) verifies the partitioned math is\n\
         bit-compatible with the single-machine layer."
    );
}
