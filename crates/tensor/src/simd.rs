//! Explicit-SIMD kernel tier: the hand-tiled FMA microkernel behind the
//! blocked GEMM ([`crate::gemm`]) and the wide-lane bodies behind the
//! elastic-update kernels ([`crate::ops`], Equations 1/2/5/6 and axpy).
//!
//! # Tier selection
//!
//! The tier is fixed at **compile time** from the build's target features
//! (the repo builds with `-C target-cpu=native`, see `.cargo/config.toml`);
//! there is no runtime dispatch on the hot path:
//!
//! * `avx512f` + `fma` — 8×32 tile as 16 zmm accumulator chains; two
//!   B-vector loads and eight broadcast-FMA pairs per `p` step.
//! * `avx2` + `fma` (without AVX-512) — the same 8×32 tile as two 8×16
//!   half-passes, 16 ymm accumulator chains each, so the register file
//!   never spills.
//! * anything else — the scalar microkernel (straight-line `mul_add`
//!   rows, autovectorized by LLVM), which is also the reference every
//!   SIMD tier is tested bit-identical against.
//!
//! # Bit-identity contract
//!
//! Every tier performs, per output element, the *same* IEEE-754 operation
//! sequence as the scalar reference within one build:
//!
//! * microkernel: one in-order FMA chain over `p` per `(r, j)` element —
//!   vector width only changes how many independent chains run at once,
//!   never the order within a chain;
//! * elastic kernels: the exact scalar expression tree (multiplies, adds,
//!   subtracts — **no** FMA contraction, because the scalar kernels do
//!   not contract either), so the golden training digests pinned by the
//!   core crate do not move.
//!
//! [`with_scalar_kernels`] forces the scalar tier on the current thread;
//! the bit-identity tests (and `easgd-bench` A/B runs) compare a normal
//! call against a forced-scalar call of the same routine.
//!
//! # Safety story
//!
//! This module is the **only** place in the workspace allowed to use
//! `unsafe` (the tensor crate denies `unsafe_code`; this module opts out
//! file-wide below, and `cargo run -p easgd-xtask -- lint` enforces that
//! the allowlist stays exactly this file and that every `unsafe` site
//! carries a `SAFETY:` justification). The public surface is entirely
//! safe: slice lengths are asserted before any raw-pointer arithmetic,
//! and `#[target_feature]` functions are only reachable through
//! dispatchers that are compiled solely when the feature is statically
//! enabled for the whole binary.
#![allow(unsafe_code)]

use std::cell::Cell;

/// Microkernel tile rows (C rows accumulated in registers).
pub(crate) const MR: usize = 8;
/// Microkernel tile columns: two AVX-512 vectors (or four AVX2 vectors)
/// wide, giving `MR·2 = 16` independent zmm accumulator chains — enough
/// to hide the 4-cycle FMA latency across two FMA ports, while halving
/// the A-broadcast traffic per FMA relative to an `8×16` tile (measured
/// 108 vs 71 GFLOP/s at 1024³ on an Ice-Lake-class Xeon; the tile sweep
/// lives in DESIGN.md §8).
pub(crate) const NR: usize = 32;

/// The compile-time SIMD tier this build selected (see module docs).
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx512f",
    target_feature = "fma"
))]
const TIER: &str = "avx512f";
/// The compile-time SIMD tier this build selected (see module docs).
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(target_feature = "avx512f")
))]
const TIER: &str = "avx2+fma";
/// The compile-time SIMD tier this build selected (see module docs).
#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "fma",
    any(target_feature = "avx512f", target_feature = "avx2")
)))]
const TIER: &str = "scalar";

thread_local! {
    /// Per-thread override routing every dispatcher to the scalar tier;
    /// set only through [`with_scalar_kernels`].
    static FORCE_SCALAR: Cell<bool> = const { Cell::new(false) };
}

#[inline]
fn scalar_forced() -> bool {
    FORCE_SCALAR.with(Cell::get)
}

/// Runs `f` with every kernel dispatch on *this thread* forced to the
/// scalar reference tier — the hook behind the microkernel-vs-scalar
/// bit-identity tests and the bench's tier A/B columns. Nests and
/// unwinds safely (the previous state is restored on panic).
pub fn with_scalar_kernels<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            let prev = self.0;
            FORCE_SCALAR.with(|c| c.set(prev));
        }
    }
    let _reset = Reset(FORCE_SCALAR.with(|c| c.replace(true)));
    f()
}

/// Name of the kernel tier calls on this thread currently use —
/// recorded per entry in `BENCH_kernels.json`.
pub fn active_tier() -> &'static str {
    if scalar_forced() {
        "scalar"
    } else {
        TIER
    }
}

// ---------------------------------------------------------------------------
// Scalar reference tier.
// ---------------------------------------------------------------------------

/// One row of the register tile: `acc[j] += a · b[j]` for all `NR` lanes.
///
/// Takes and returns the row *by value* so each row lives in an SSA
/// value LLVM can keep in one zmm (or two ymm) register across the whole
/// `p` loop; in-place `&mut` rows tend to stay memory-resident and the
/// vectorizer then emits gather/scatter traffic instead.
///
/// `mul_add` is gated on compile-time FMA support: with the feature it is
/// one `vfmadd` (double throughput, one rounding) — the same operation
/// the explicit tiers perform, which is what makes them bit-identical to
/// this reference; without it each call would lower to a *libm `fmaf`
/// routine per element* — measured 20× slower than the naive kernel — so
/// non-FMA builds (anything overriding the repo's `target-cpu=native` in
/// `.cargo/config.toml`, e.g. an external `RUSTFLAGS`) fall back to
/// separate multiply-add, which stays autovectorizable on any target.
#[inline(always)]
fn fma_row(mut acc: [f32; NR], a: f32, b: &[f32; NR]) -> [f32; NR] {
    if cfg!(target_feature = "fma") {
        for j in 0..NR {
            acc[j] = b[j].mul_add(a, acc[j]);
        }
    } else {
        for j in 0..NR {
            acc[j] += a * b[j];
        }
    }
    acc
}

/// The scalar register-tiled core: returns the `MR×NR` tile
/// `acc[r][j] = Σ_p ap[p][r] · bp[p][j]` accumulated over one packed
/// A-panel (`kc×MR`) and B-panel (`kc×NR`).
fn microkernel_scalar(apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    // MR independent row accumulators as straight-line locals: constant
    // trip counts everywhere, so LLVM fully unrolls and SLP-vectorizes
    // each row to vector FMAs with the accumulators register-resident.
    let mut c0 = [0.0f32; NR];
    let mut c1 = [0.0f32; NR];
    let mut c2 = [0.0f32; NR];
    let mut c3 = [0.0f32; NR];
    let mut c4 = [0.0f32; NR];
    let mut c5 = [0.0f32; NR];
    let mut c6 = [0.0f32; NR];
    let mut c7 = [0.0f32; NR];
    for (ak, bk) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        let (Ok(ak), Ok(bk)) = (<&[f32; MR]>::try_from(ak), <&[f32; NR]>::try_from(bk)) else {
            // Unreachable: chunks_exact yields exactly MR/NR elements.
            continue;
        };
        c0 = fma_row(c0, ak[0], bk);
        c1 = fma_row(c1, ak[1], bk);
        c2 = fma_row(c2, ak[2], bk);
        c3 = fma_row(c3, ak[3], bk);
        c4 = fma_row(c4, ak[4], bk);
        c5 = fma_row(c5, ak[5], bk);
        c6 = fma_row(c6, ak[6], bk);
        c7 = fma_row(c7, ak[7], bk);
    }
    [c0, c1, c2, c3, c4, c5, c6, c7]
}

/// Scalar strip pack: `dst[p·NR..][..NR] = src[off + p·ld..][..NR]`.
fn pack_strip_scalar(src: &[f32], off: usize, ld: usize, rows: usize, dst: &mut [f32]) {
    for p in 0..rows {
        dst[p * NR..(p + 1) * NR].copy_from_slice(&src[off + p * ld..][..NR]);
    }
}

/// Scalar fused accumulate: `acc = α·tile` (seed) or `acc += α·tile`,
/// where `tile` is the [`microkernel_scalar`] result. The two arms are
/// the expression trees of `gemm.rs`'s first-pass seed and later-pass
/// accumulate, so the fused kernel stays bit-identical to the unfused
/// tile-then-update sequence.
fn microkernel_acc_scalar(
    apanel: &[f32],
    bpanel: &[f32],
    alpha: f32,
    acc: &mut [[f32; NR]; MR],
    seed: bool,
) {
    let tile = microkernel_scalar(apanel, bpanel);
    for (accr, tr) in acc.iter_mut().zip(tile.iter()) {
        if seed {
            for (av, tv) in accr.iter_mut().zip(tr.iter()) {
                *av = alpha * tv;
            }
        } else {
            for (av, tv) in accr.iter_mut().zip(tr.iter()) {
                *av += alpha * tv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX-512F tier.
// ---------------------------------------------------------------------------

#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx512f",
    target_feature = "fma"
))]
mod x86 {
    //! 512-bit kernels. Compiled only when AVX-512F and FMA are enabled
    //! for the *whole build* (`-C target-cpu=native` on such a host), so
    //! every call site in this binary may execute them.
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// 8×32 microkernel: 16 zmm accumulators, two B loads and eight
    /// broadcast-FMA pairs per `p`. Each `(r, j)` element is one in-order
    /// FMA chain over `p` — bit-identical to the scalar `mul_add` chain.
    #[target_feature(enable = "avx512f")]
    pub(super) fn microkernel(apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
        let kc = apanel.len() / MR;
        assert!(apanel.len() == kc * MR && bpanel.len() == kc * NR);
        let mut out = [[0.0f32; NR]; MR];
        // SAFETY: all pointer reads stay inside `apanel` (kc·MR floats,
        // advanced MR per step for kc steps, offsets 0..8 within a step)
        // and `bpanel` (kc·NR floats, advanced NR per step, two 16-lane
        // loads per step); the stores cover exactly the MR rows of `out`,
        // NR floats each. Lengths are asserted above. Unaligned
        // load/store intrinsics are used throughout, so no alignment
        // requirement exists beyond f32's.
        unsafe {
            let mut acc = [_mm512_setzero_ps(); 16];
            let mut ap = apanel.as_ptr();
            let mut bp = bpanel.as_ptr();
            for _ in 0..kc {
                let b0 = _mm512_loadu_ps(bp);
                let b1 = _mm512_loadu_ps(bp.add(16));
                macro_rules! row {
                    ($r:expr) => {
                        let a = _mm512_set1_ps(*ap.add($r));
                        acc[2 * $r] = _mm512_fmadd_ps(a, b0, acc[2 * $r]);
                        acc[2 * $r + 1] = _mm512_fmadd_ps(a, b1, acc[2 * $r + 1]);
                    };
                }
                row!(0);
                row!(1);
                row!(2);
                row!(3);
                row!(4);
                row!(5);
                row!(6);
                row!(7);
                ap = ap.add(MR);
                bp = bp.add(NR);
            }
            for (r, orow) in out.iter_mut().enumerate() {
                _mm512_storeu_ps(orow.as_mut_ptr(), acc[2 * r]);
                _mm512_storeu_ps(orow.as_mut_ptr().add(16), acc[2 * r + 1]);
            }
        }
        out
    }

    /// [`microkernel`] with the tile update fused in: the finished zmm
    /// accumulators are scaled by α and written into (`seed`) or added
    /// onto (`!seed`) the caller's persistent tile without ever leaving
    /// the register file. The skinny GEMM nest calls this once per
    /// `(tile, KC block)` — the unfused path's store + reload of a 1 KiB
    /// scratch tile per call is what it saves. α is applied as a separate
    /// multiply (`add(acc, mul(α, t))`), matching the uncontracted scalar
    /// `acc += α·t` bit-for-bit.
    #[target_feature(enable = "avx512f")]
    pub(super) fn microkernel_acc(
        apanel: &[f32],
        bpanel: &[f32],
        alpha: f32,
        out: &mut [[f32; NR]; MR],
        seed: bool,
    ) {
        let kc = apanel.len() / MR;
        assert!(apanel.len() == kc * MR && bpanel.len() == kc * NR);
        // SAFETY: identical access pattern to `microkernel` (see its
        // SAFETY note) — panel reads bounded by the assert, stores (and
        // the `!seed` loads) cover exactly the MR×NR floats of `out`.
        unsafe {
            let mut acc = [_mm512_setzero_ps(); 16];
            let mut ap = apanel.as_ptr();
            let mut bp = bpanel.as_ptr();
            for _ in 0..kc {
                let b0 = _mm512_loadu_ps(bp);
                let b1 = _mm512_loadu_ps(bp.add(16));
                macro_rules! row {
                    ($r:expr) => {
                        let a = _mm512_set1_ps(*ap.add($r));
                        acc[2 * $r] = _mm512_fmadd_ps(a, b0, acc[2 * $r]);
                        acc[2 * $r + 1] = _mm512_fmadd_ps(a, b1, acc[2 * $r + 1]);
                    };
                }
                row!(0);
                row!(1);
                row!(2);
                row!(3);
                row!(4);
                row!(5);
                row!(6);
                row!(7);
                ap = ap.add(MR);
                bp = bp.add(NR);
            }
            let av = _mm512_set1_ps(alpha);
            for (r, orow) in out.iter_mut().enumerate() {
                let t0 = _mm512_mul_ps(av, acc[2 * r]);
                let t1 = _mm512_mul_ps(av, acc[2 * r + 1]);
                if seed {
                    _mm512_storeu_ps(orow.as_mut_ptr(), t0);
                    _mm512_storeu_ps(orow.as_mut_ptr().add(16), t1);
                } else {
                    let o0 = _mm512_loadu_ps(orow.as_ptr());
                    let o1 = _mm512_loadu_ps(orow.as_ptr().add(16));
                    _mm512_storeu_ps(orow.as_mut_ptr(), _mm512_add_ps(o0, t0));
                    _mm512_storeu_ps(orow.as_mut_ptr().add(16), _mm512_add_ps(o1, t1));
                }
            }
        }
    }

    /// Strip pack with explicit vector copies: four strided rows per
    /// iteration (two zmm loads + stores each) so the loads to different
    /// rows overlap their cache misses — `copy_from_slice`'s per-row
    /// memcpy call serializes them (measured ~8 → ~20 GB/s effective on
    /// the skinny-GEMM pack phase).
    #[target_feature(enable = "avx512f")]
    pub(super) fn pack_strip(src: &[f32], off: usize, ld: usize, rows: usize, dst: &mut [f32]) {
        assert!(rows == 0 || (off + (rows - 1) * ld + NR <= src.len() && rows * NR <= dst.len()));
        // SAFETY: row p reads src[off + p·ld .. +NR] and writes
        // dst[p·NR .. +NR] for p < rows — both in bounds by the assert
        // (ld ≥ 0 and the last row is the furthest read). Unaligned
        // intrinsics, so no alignment requirement.
        unsafe {
            let base = src.as_ptr().add(off);
            let out = dst.as_mut_ptr();
            let mut p = 0;
            while p + 4 <= rows {
                let s0 = base.add(p * ld);
                let s1 = base.add((p + 1) * ld);
                let s2 = base.add((p + 2) * ld);
                let s3 = base.add((p + 3) * ld);
                let v00 = _mm512_loadu_ps(s0);
                let v01 = _mm512_loadu_ps(s0.add(16));
                let v10 = _mm512_loadu_ps(s1);
                let v11 = _mm512_loadu_ps(s1.add(16));
                let v20 = _mm512_loadu_ps(s2);
                let v21 = _mm512_loadu_ps(s2.add(16));
                let v30 = _mm512_loadu_ps(s3);
                let v31 = _mm512_loadu_ps(s3.add(16));
                let d = out.add(p * NR);
                _mm512_storeu_ps(d, v00);
                _mm512_storeu_ps(d.add(16), v01);
                _mm512_storeu_ps(d.add(32), v10);
                _mm512_storeu_ps(d.add(48), v11);
                _mm512_storeu_ps(d.add(64), v20);
                _mm512_storeu_ps(d.add(80), v21);
                _mm512_storeu_ps(d.add(96), v30);
                _mm512_storeu_ps(d.add(112), v31);
                p += 4;
            }
            while p < rows {
                let s = base.add(p * ld);
                let v0 = _mm512_loadu_ps(s);
                let v1 = _mm512_loadu_ps(s.add(16));
                let d = out.add(p * NR);
                _mm512_storeu_ps(d, v0);
                _mm512_storeu_ps(d.add(16), v1);
                p += 1;
            }
        }
    }

    /// Generates one 16-lane elastic band kernel: the vector body applies
    /// the *same* mul/add/sub tree as the scalar expression (no FMA
    /// contraction), and the tail runs the scalar expression itself.
    /// An optional `[mut x]`-marked second operand is a second mutable
    /// slice (the Eq 5/6 velocity); the rest are read-only.
    macro_rules! band_kernel {
        ($name:ident, ($($scalars:ident),*), ($y:ident $(, [mut $y2:ident])? $(, $rd:ident)*),
         vec: |$i:ident| $vbody:block, tail: |$j:ident| $tbody:block) => {
            #[target_feature(enable = "avx512f")]
            #[allow(clippy::too_many_arguments)]
            pub(super) fn $name($($scalars: f32,)* $y: &mut [f32] $(, $y2: &mut [f32])? $(, $rd: &[f32])*) {
                let n = $y.len();
                $(assert_eq!(n, $y2.len());)?
                $(assert_eq!(n, $rd.len());)*
                let mut $i = 0;
                // SAFETY: every load/store in the vector body touches
                // lanes [$i, $i+16) of slices asserted equal-length above,
                // and the loop bound keeps $i+16 ≤ n. Unaligned
                // intrinsics, so no alignment requirement.
                unsafe {
                    while $i + 16 <= n {
                        $vbody
                        $i += 16;
                    }
                }
                for $j in $i..n {
                    $tbody
                }
            }
        };
    }

    band_kernel!(axpy, (alpha), (y, x),
        vec: |i| {
            let xv = _mm512_loadu_ps(x.as_ptr().add(i));
            let yv = _mm512_loadu_ps(y.as_ptr().add(i));
            let r = _mm512_add_ps(yv, _mm512_mul_ps(_mm512_set1_ps(alpha), xv));
            _mm512_storeu_ps(y.as_mut_ptr().add(i), r);
        },
        tail: |j| { y[j] += alpha * x[j]; });

    band_kernel!(eq1, (eta, rho), (local, grad, center),
        vec: |i| {
            let lv = _mm512_loadu_ps(local.as_ptr().add(i));
            let gv = _mm512_loadu_ps(grad.as_ptr().add(i));
            let cv = _mm512_loadu_ps(center.as_ptr().add(i));
            // l − η·(g + ρ·(l − c)), evaluated exactly as the scalar tree.
            let pull = _mm512_mul_ps(_mm512_set1_ps(rho), _mm512_sub_ps(lv, cv));
            let step = _mm512_mul_ps(_mm512_set1_ps(eta), _mm512_add_ps(gv, pull));
            _mm512_storeu_ps(local.as_mut_ptr().add(i), _mm512_sub_ps(lv, step));
        },
        tail: |j| { local[j] -= eta * (grad[j] + rho * (local[j] - center[j])); });

    band_kernel!(eq2, (c), (center, local),
        vec: |i| {
            let cv = _mm512_loadu_ps(center.as_ptr().add(i));
            let lv = _mm512_loadu_ps(local.as_ptr().add(i));
            // c + ηρ·(l − c)
            let pull = _mm512_mul_ps(_mm512_set1_ps(c), _mm512_sub_ps(lv, cv));
            _mm512_storeu_ps(center.as_mut_ptr().add(i), _mm512_add_ps(cv, pull));
        },
        tail: |j| { center[j] += c * (local[j] - center[j]); });

    band_kernel!(eq56, (eta, mu, er), (local, [mut velocity], grad, center),
    vec: |i| {
        let lv = _mm512_loadu_ps(local.as_ptr().add(i));
        let vv = _mm512_loadu_ps(velocity.as_ptr().add(i));
        let gv = _mm512_loadu_ps(grad.as_ptr().add(i));
        let cv = _mm512_loadu_ps(center.as_ptr().add(i));
        // v′ = µ·v − η·g
        let vnew = _mm512_sub_ps(
            _mm512_mul_ps(_mm512_set1_ps(mu), vv),
            _mm512_mul_ps(_mm512_set1_ps(eta), gv),
        );
        // l + (v′ − ηρ·(l − c))
        let pull = _mm512_mul_ps(_mm512_set1_ps(er), _mm512_sub_ps(lv, cv));
        let lnew = _mm512_add_ps(lv, _mm512_sub_ps(vnew, pull));
        _mm512_storeu_ps(velocity.as_mut_ptr().add(i), vnew);
        _mm512_storeu_ps(local.as_mut_ptr().add(i), lnew);
    },
    tail: |j| {
        velocity[j] = mu * velocity[j] - eta * grad[j];
        local[j] += velocity[j] - er * (local[j] - center[j]);
    });

    band_kernel!(dilution, (scale, p), (center, weight_sum),
        vec: |i| {
            let cv = _mm512_loadu_ps(center.as_ptr().add(i));
            let sv = _mm512_loadu_ps(weight_sum.as_ptr().add(i));
            // c + ηρ·(Σw − P·c)
            let drift = _mm512_sub_ps(sv, _mm512_mul_ps(_mm512_set1_ps(p), cv));
            let r = _mm512_add_ps(cv, _mm512_mul_ps(_mm512_set1_ps(scale), drift));
            _mm512_storeu_ps(center.as_mut_ptr().add(i), r);
        },
        tail: |j| { center[j] += scale * (weight_sum[j] - p * center[j]); });

    band_kernel!(dilution_from, (scale, p), (out, center_t, weight_sum),
        vec: |i| {
            let tv = _mm512_loadu_ps(center_t.as_ptr().add(i));
            let sv = _mm512_loadu_ps(weight_sum.as_ptr().add(i));
            let drift = _mm512_sub_ps(sv, _mm512_mul_ps(_mm512_set1_ps(p), tv));
            let r = _mm512_add_ps(tv, _mm512_mul_ps(_mm512_set1_ps(scale), drift));
            _mm512_storeu_ps(out.as_mut_ptr().add(i), r);
        },
        tail: |j| { out[j] = center_t[j] + scale * (weight_sum[j] - p * center_t[j]); });
}

// ---------------------------------------------------------------------------
// AVX2+FMA tier (microkernel + strip pack; the memory-bound elastic
// kernels keep their autovectorized scalar bodies on this tier).
// ---------------------------------------------------------------------------

#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(target_feature = "avx512f")
))]
mod x86 {
    //! 256-bit kernels. Compiled only when AVX2 and FMA are enabled for
    //! the whole build and AVX-512F is not.
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// 8×32 microkernel as two 8×16 half-passes over the same packed
    /// panels: each half keeps 16 ymm accumulators (the full ymm file),
    /// so nothing spills. Per `(r, j)` element the FMA chain over `p` is
    /// identical to the scalar `mul_add` chain — the half split only
    /// changes which chains run concurrently.
    #[target_feature(enable = "avx2,fma")]
    pub(super) fn microkernel(apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
        let kc = apanel.len() / MR;
        assert!(apanel.len() == kc * MR && bpanel.len() == kc * NR);
        let mut out = [[0.0f32; NR]; MR];
        for half in 0..2 {
            let col = half * 16;
            // SAFETY: reads stay inside `apanel` (offsets r < MR within
            // each MR-stride step, kc steps) and `bpanel` (two 8-lane
            // loads at p·NR + col + {0, 8}, col ≤ 16, so ≤ p·NR + 31);
            // stores cover out[r][col..col+16]. Lengths asserted above;
            // unaligned intrinsics throughout.
            unsafe {
                let mut acc = [_mm256_setzero_ps(); 16];
                let mut ap = apanel.as_ptr();
                let mut bp = bpanel.as_ptr().add(col);
                for _ in 0..kc {
                    let b0 = _mm256_loadu_ps(bp);
                    let b1 = _mm256_loadu_ps(bp.add(8));
                    macro_rules! row {
                        ($r:expr) => {
                            let a = _mm256_set1_ps(*ap.add($r));
                            acc[2 * $r] = _mm256_fmadd_ps(a, b0, acc[2 * $r]);
                            acc[2 * $r + 1] = _mm256_fmadd_ps(a, b1, acc[2 * $r + 1]);
                        };
                    }
                    row!(0);
                    row!(1);
                    row!(2);
                    row!(3);
                    row!(4);
                    row!(5);
                    row!(6);
                    row!(7);
                    ap = ap.add(MR);
                    bp = bp.add(NR);
                }
                for (r, orow) in out.iter_mut().enumerate() {
                    _mm256_storeu_ps(orow.as_mut_ptr().add(col), acc[2 * r]);
                    _mm256_storeu_ps(orow.as_mut_ptr().add(col + 8), acc[2 * r + 1]);
                }
            }
        }
        out
    }

    /// [`microkernel`] with the tile update fused in (see the AVX-512
    /// tier's `microkernel_acc` for the rationale): per half-pass the
    /// finished ymm accumulators are scaled by α and written into
    /// (`seed`) or added onto (`!seed`) the caller's tile. α is a
    /// separate multiply — no contraction — matching the scalar
    /// `acc += α·t` bit-for-bit.
    #[target_feature(enable = "avx2,fma")]
    pub(super) fn microkernel_acc(
        apanel: &[f32],
        bpanel: &[f32],
        alpha: f32,
        out: &mut [[f32; NR]; MR],
        seed: bool,
    ) {
        let kc = apanel.len() / MR;
        assert!(apanel.len() == kc * MR && bpanel.len() == kc * NR);
        for half in 0..2 {
            let col = half * 16;
            // SAFETY: identical access pattern to `microkernel` (see its
            // SAFETY note) — panel reads bounded by the assert, stores
            // (and the `!seed` loads) cover out[r][col..col+16].
            unsafe {
                let mut acc = [_mm256_setzero_ps(); 16];
                let mut ap = apanel.as_ptr();
                let mut bp = bpanel.as_ptr().add(col);
                for _ in 0..kc {
                    let b0 = _mm256_loadu_ps(bp);
                    let b1 = _mm256_loadu_ps(bp.add(8));
                    macro_rules! row {
                        ($r:expr) => {
                            let a = _mm256_set1_ps(*ap.add($r));
                            acc[2 * $r] = _mm256_fmadd_ps(a, b0, acc[2 * $r]);
                            acc[2 * $r + 1] = _mm256_fmadd_ps(a, b1, acc[2 * $r + 1]);
                        };
                    }
                    row!(0);
                    row!(1);
                    row!(2);
                    row!(3);
                    row!(4);
                    row!(5);
                    row!(6);
                    row!(7);
                    ap = ap.add(MR);
                    bp = bp.add(NR);
                }
                let av = _mm256_set1_ps(alpha);
                for (r, orow) in out.iter_mut().enumerate() {
                    let t0 = _mm256_mul_ps(av, acc[2 * r]);
                    let t1 = _mm256_mul_ps(av, acc[2 * r + 1]);
                    let p0 = orow.as_mut_ptr().add(col);
                    let p1 = orow.as_mut_ptr().add(col + 8);
                    if seed {
                        _mm256_storeu_ps(p0, t0);
                        _mm256_storeu_ps(p1, t1);
                    } else {
                        let o0 = _mm256_loadu_ps(p0);
                        let o1 = _mm256_loadu_ps(p1);
                        _mm256_storeu_ps(p0, _mm256_add_ps(o0, t0));
                        _mm256_storeu_ps(p1, _mm256_add_ps(o1, t1));
                    }
                }
            }
        }
    }

    /// Strip pack with explicit ymm copies (four loads + stores per row)
    /// — avoids the per-row memcpy call of `copy_from_slice`.
    #[target_feature(enable = "avx2")]
    pub(super) fn pack_strip(src: &[f32], off: usize, ld: usize, rows: usize, dst: &mut [f32]) {
        assert!(rows == 0 || (off + (rows - 1) * ld + NR <= src.len() && rows * NR <= dst.len()));
        // SAFETY: row p reads src[off + p·ld .. +NR] and writes
        // dst[p·NR .. +NR] for p < rows — in bounds by the assert.
        // Unaligned intrinsics, so no alignment requirement.
        unsafe {
            let base = src.as_ptr().add(off);
            let out = dst.as_mut_ptr();
            for p in 0..rows {
                let s = base.add(p * ld);
                let v0 = _mm256_loadu_ps(s);
                let v1 = _mm256_loadu_ps(s.add(8));
                let v2 = _mm256_loadu_ps(s.add(16));
                let v3 = _mm256_loadu_ps(s.add(24));
                let d = out.add(p * NR);
                _mm256_storeu_ps(d, v0);
                _mm256_storeu_ps(d.add(8), v1);
                _mm256_storeu_ps(d.add(16), v2);
                _mm256_storeu_ps(d.add(24), v3);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Safe dispatchers — the only entry points the rest of the crate sees.
// ---------------------------------------------------------------------------

/// The register-tiled GEMM core: returns the `MR×NR` tile
/// `acc[r][j] = Σ_p ap[p][r] · bp[p][j]` over one packed A-panel
/// (`kc×MR`, layout `[p][r]`) and B-panel (`kc×NR`, layout `[p][j]`).
///
/// # Panics
/// Panics if `apanel.len()` is not a multiple of `MR` or the panel
/// lengths disagree on `kc`.
#[inline]
pub(crate) fn microkernel(apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    assert_eq!(apanel.len() % MR, 0, "A panel not a whole number of steps");
    assert_eq!(
        apanel.len() / MR * NR,
        bpanel.len(),
        "panel kc mismatch between A and B"
    );
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "fma",
        any(target_feature = "avx512f", target_feature = "avx2")
    ))]
    if !scalar_forced() {
        // SAFETY: the `x86` module — and this call — are compiled only
        // when its required target features are statically enabled for
        // the entire binary (`cfg` above), so the CPU executing this code
        // supports them.
        return unsafe { x86::microkernel(apanel, bpanel) };
    }
    microkernel_scalar(apanel, bpanel)
}

/// [`microkernel`] with the tile update fused: computes the `MR×NR` tile
/// over the packed panels, then applies `acc = α·tile` (`seed`) or
/// `acc += α·tile` (`!seed`) without the tile ever reaching memory on
/// the SIMD tiers. Exactly the operation sequence of `microkernel`
/// followed by the corresponding update loop — the skinny GEMM nest's
/// hot call.
///
/// # Panics
/// Panics if `apanel.len()` is not a multiple of `MR` or the panel
/// lengths disagree on `kc`.
#[inline]
pub(crate) fn microkernel_acc(
    apanel: &[f32],
    bpanel: &[f32],
    alpha: f32,
    acc: &mut [[f32; NR]; MR],
    seed: bool,
) {
    assert_eq!(apanel.len() % MR, 0, "A panel not a whole number of steps");
    assert_eq!(
        apanel.len() / MR * NR,
        bpanel.len(),
        "panel kc mismatch between A and B"
    );
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "fma",
        any(target_feature = "avx512f", target_feature = "avx2")
    ))]
    if !scalar_forced() {
        // SAFETY: the `x86` module — and this call — are compiled only
        // when its required target features are statically enabled for
        // the entire binary (`cfg` above), so the CPU executing this code
        // supports them.
        unsafe { x86::microkernel_acc(apanel, bpanel, alpha, acc, seed) };
        return;
    }
    microkernel_acc_scalar(apanel, bpanel, alpha, acc, seed);
}

/// Packs a full-width `rows × NR` strip of a row-major matrix into the
/// microkernel's `[p][j]` order: `dst[p·NR..][..NR] = src[off + p·ld..][..NR]`.
/// A plain strided copy — no arithmetic — so the tiers are trivially
/// bit-identical; the SIMD versions exist because the pack phase is the
/// bottleneck of skinny-M GEMMs (see `gemm.rs`).
///
/// # Panics
/// Panics if the last row read or the destination would be out of bounds.
#[inline]
pub(crate) fn pack_strip(src: &[f32], off: usize, ld: usize, rows: usize, dst: &mut [f32]) {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "fma",
        any(target_feature = "avx512f", target_feature = "avx2")
    ))]
    if !scalar_forced() {
        // SAFETY: the `x86` module — and this call — are compiled only
        // when its required target features are statically enabled for
        // the entire binary (`cfg` above), so the CPU executing this code
        // supports them.
        return unsafe { x86::pack_strip(src, off, ld, rows, dst) };
    }
    pack_strip_scalar(src, off, ld, rows, dst);
}

/// Generates the safe dispatcher for one elastic band kernel: AVX-512
/// body when that tier is compiled in (and not overridden), the scalar
/// expression otherwise. The scalar arm *is* the kernel's definition;
/// the vector arm is tested bit-identical to it.
macro_rules! band_dispatch {
    ($(#[$doc:meta])* $name:ident / $inner:ident, ($($scalars:ident),*),
     ($y:ident $(, [mut $y2:ident])? $(, $rd:ident)*),
     |$j:ident| $tbody:block) => {
        $(#[$doc])*
        #[inline]
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name($($scalars: f32,)* $y: &mut [f32] $(, $y2: &mut [f32])? $(, $rd: &[f32])*) {
            $(assert_eq!($y.len(), $y2.len(), "band kernel length mismatch");)?
            $(assert_eq!($y.len(), $rd.len(), "band kernel length mismatch");)*
            #[cfg(all(
                target_arch = "x86_64",
                target_feature = "avx512f",
                target_feature = "fma"
            ))]
            if !scalar_forced() {
                // SAFETY: the `x86` module — and this call — are compiled
                // only when AVX-512F and FMA are statically enabled for
                // the entire binary (`cfg` above), so the CPU executing
                // this code supports them.
                unsafe { x86::$inner($($scalars,)* $y $(, $y2)? $(, $rd)*) };
                return;
            }
            for $j in 0..$y.len() {
                $tbody
            }
        }
    };
}

band_dispatch!(
    /// `y += α·x` — the axpy band body.
    axpy_band / axpy, (alpha), (y, x),
    |j| { y[j] += alpha * x[j]; });

band_dispatch!(
    /// Equation (1) band body: `l ← l − η(g + ρ(l − c))`.
    eq1_band / eq1, (eta, rho), (local, grad, center),
    |j| { local[j] -= eta * (grad[j] + rho * (local[j] - center[j])); });

band_dispatch!(
    /// Equation (2) band body for one worker: `c ← c + ηρ(l − c)`
    /// (`c` here is the premultiplied `η·ρ`).
    eq2_band / eq2, (c), (center, local),
    |j| { center[j] += c * (local[j] - center[j]); });

band_dispatch!(
/// Equations (5)–(6) band body: `v ← µv − ηg; l ← l + v − ηρ(l − c)`
/// (`er` is the premultiplied `η·ρ`).
eq56_band / eq56, (eta, mu, er), (local, [mut velocity], grad, center),
|j| {
    velocity[j] = mu * velocity[j] - eta * grad[j];
    local[j] += velocity[j] - er * (local[j] - center[j]);
});

band_dispatch!(
    /// Σ-form Equation (2) band body: `c ← c + ηρ(Σw − P·c)`
    /// (`scale` is the premultiplied `η·ρ`, `p` the worker count).
    dilution_band / dilution, (scale, p), (center, weight_sum),
    |j| { center[j] += scale * (weight_sum[j] - p * center[j]); });

band_dispatch!(
    /// Out-of-place Σ-form Equation (2): `o ← t + ηρ(Σw − P·t)`.
    dilution_from_band / dilution_from, (scale, p), (out, center_t, weight_sum),
    |j| { out[j] = center_t[j] + scale * (weight_sum[j] - p * center_t[j]); });

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut r = crate::rng::Rng::new(seed);
        (0..n).map(|_| r.uniform_in(-1.0, 1.0)).collect()
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn microkernel_matches_scalar_bitwise() {
        // Odd kc values straddle any unroll width in the SIMD tiers.
        for kc in [1usize, 3, 17, 256, 301] {
            let ap = rand_vec(kc * MR, kc as u64);
            let bp = rand_vec(kc * NR, kc as u64 + 7);
            let fast = microkernel(&ap, &bp);
            let slow = with_scalar_kernels(|| microkernel(&ap, &bp));
            for r in 0..MR {
                assert_bits_eq(&fast[r], &slow[r], "tile row");
            }
        }
    }

    #[test]
    fn fused_microkernel_matches_tile_then_update_bitwise() {
        // The fused kernel must equal `microkernel` + the seed/accumulate
        // update loops, on both the SIMD tier and the forced-scalar tier.
        for kc in [1usize, 17, 256] {
            let ap = rand_vec(kc * MR, kc as u64 + 31);
            let bp = rand_vec(kc * NR, kc as u64 + 41);
            let alpha = -1.25f32;
            for seed in [true, false] {
                for force_scalar in [false, true] {
                    let run = |f: &dyn Fn() -> [[f32; NR]; MR]| {
                        if force_scalar {
                            with_scalar_kernels(f)
                        } else {
                            f()
                        }
                    };
                    let fused = run(&|| {
                        let mut acc = [[0.5f32; NR]; MR];
                        microkernel_acc(&ap, &bp, alpha, &mut acc, seed);
                        acc
                    });
                    let unfused = run(&|| {
                        let mut acc = [[0.5f32; NR]; MR];
                        let tile = microkernel(&ap, &bp);
                        for (accr, tr) in acc.iter_mut().zip(tile.iter()) {
                            for (av, tv) in accr.iter_mut().zip(tr.iter()) {
                                if seed {
                                    *av = alpha * tv;
                                } else {
                                    *av += alpha * tv;
                                }
                            }
                        }
                        acc
                    });
                    for r in 0..MR {
                        assert_bits_eq(&fused[r], &unfused[r], "fused tile row");
                    }
                }
            }
        }
    }

    #[test]
    fn pack_strip_matches_scalar() {
        let ld = 100;
        let src = rand_vec(40 * ld, 5);
        for rows in [0usize, 1, 3, 4, 7, 33] {
            let mut fast = vec![0.0f32; rows * NR];
            let mut slow = vec![0.0f32; rows * NR];
            pack_strip(&src, 11, ld, rows, &mut fast);
            with_scalar_kernels(|| pack_strip(&src, 11, ld, rows, &mut slow));
            assert_bits_eq(&fast, &slow, "strip");
        }
    }

    #[test]
    fn with_scalar_kernels_restores_tier_on_unwind() {
        let before = active_tier();
        let caught = std::panic::catch_unwind(|| {
            with_scalar_kernels(|| {
                assert_eq!(active_tier(), "scalar");
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert_eq!(active_tier(), before);
    }

    /// Checks one band kernel against its scalar definition, bit for bit,
    /// on a length that exercises both the vector body and the tail.
    fn check_band(
        n: usize,
        fast: impl Fn(&mut [f32], &mut [f32]),
        slow: impl Fn(&mut [f32], &mut [f32]),
    ) {
        let mut y_fast = rand_vec(n, 1);
        let mut y2_fast = rand_vec(n, 2);
        let mut y_slow = y_fast.clone();
        let mut y2_slow = y2_fast.clone();
        fast(&mut y_fast, &mut y2_fast);
        with_scalar_kernels(|| slow(&mut y_slow, &mut y2_slow));
        assert_bits_eq(&y_fast, &y_slow, "primary");
        assert_bits_eq(&y2_fast, &y2_slow, "secondary");
    }

    #[test]
    fn band_kernels_match_scalar_bitwise() {
        let n = 1037; // 64 full vectors + a 13-lane tail
        let a = rand_vec(n, 11);
        let b = rand_vec(n, 12);
        check_band(
            n,
            |y, _| axpy_band(0.37, y, &a),
            |y, _| axpy_band(0.37, y, &a),
        );
        check_band(
            n,
            |l, _| eq1_band(0.05, 0.3, l, &a, &b),
            |l, _| eq1_band(0.05, 0.3, l, &a, &b),
        );
        check_band(
            n,
            |c, _| eq2_band(0.015, c, &a),
            |c, _| eq2_band(0.015, c, &a),
        );
        check_band(
            n,
            |l, v| eq56_band(0.05, 0.9, 0.05 * 0.3, l, v, &a, &b),
            |l, v| eq56_band(0.05, 0.9, 0.05 * 0.3, l, v, &a, &b),
        );
        check_band(
            n,
            |c, _| dilution_band(0.015, 4.0, c, &a),
            |c, _| dilution_band(0.015, 4.0, c, &a),
        );
        check_band(
            n,
            |o, _| dilution_from_band(0.015, 4.0, o, &a, &b),
            |o, _| dilution_from_band(0.015, 4.0, o, &a, &b),
        );
    }
}
