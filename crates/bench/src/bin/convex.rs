//! The convex case (§1's proof claim), run as a table: (Hogwild) EASGD
//! on least squares with a closed-form optimum — safety and speedup
//! measured directly.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin convex
//! ```

use easgd::convex::{easgd_on_quadratic, hogwild_easgd_on_quadratic, QuadraticProblem};

fn main() {
    let problem = QuadraticProblem::random(400, 10, 0.05, 0xC0);
    println!(
        "Convex study: least squares, {} rows x {} unknowns, noise 0.05.",
        problem.m, problem.n
    );
    println!("Distance² of the EASGD center to the exact optimum:\n");
    println!(
        "{:>8} {:>16} {:>20}",
        "workers", "EASGD (seq)", "Hogwild EASGD (threads)"
    );
    for &workers in &[1usize, 2, 4, 8] {
        let d_seq = easgd_on_quadratic(&problem, workers, 150, 4, 0.02, 2.0, 0xC1);
        let d_hog = hogwild_easgd_on_quadratic(&problem, workers, 150, 4, 0.02, 2.0, 0xC2);
        println!("{workers:>8} {d_seq:>16.5} {d_hog:>20.5}");
    }
    println!(
        "\nper-worker budget fixed at 150 steps: more workers land the center closer\n\
         (\"faster\"), and the lock-free rows stay bounded and convergent (\"safe\") —\n\
         the two properties the paper's appendix proof establishes."
    );

    println!("\nStep-size / neighbourhood trade (4 workers, 2000 steps):");
    for &(eta, rho) in &[(0.05f32, 1.0f32), (0.02, 2.5), (0.005, 10.0)] {
        let d = easgd_on_quadratic(&problem, 4, 2000, 4, eta, rho, 0xC3);
        println!("  eta {eta:<6} rho {rho:<5} -> distance² {d:.6}");
    }
}
