//! Typed codec for shipping training batches over [`crate::Comm`]'s
//! `f32`-payload messages.
//!
//! The simulated trainers move mini-batches from the data-holding rank
//! to the compute ranks as flat `Vec<f32>` messages. This module gives
//! that convention one implementation with a validating decoder, instead
//! of each trainer hand-rolling `[labels…, pixels…]` framing and
//! panicking on malformed input.
//!
//! Wire format (all `f32`, exactly representable integers for the
//! header fields):
//!
//! ```text
//! [ MAGIC, label_count, pixel_count, labels…, pixels… ]
//! ```
//!
//! Framing costs three floats per message; simulated transfer *times*
//! are unaffected because every data send prices the transfer explicitly
//! (`send_costed` and friends), never by payload length.

use std::fmt;

/// Sentinel first element of every encoded batch (`0x5EA5` — exactly
/// representable in `f32`, compared bit-for-bit on decode).
pub const BATCH_MAGIC: f32 = 0x5EA5 as f32;

/// Largest count encodable exactly in an `f32` header field.
const MAX_EXACT: usize = 1 << 24;

/// Why a payload failed to decode as a [`BatchMsg`].
#[derive(Clone, Debug, PartialEq)]
pub enum CodecError {
    /// Payload shorter than the three-float header.
    Truncated {
        /// Floats present.
        got: usize,
    },
    /// First element is not [`BATCH_MAGIC`] — the message is not a
    /// batch (mis-tagged or mis-routed).
    BadMagic {
        /// Bit pattern found where the magic was expected.
        got_bits: u32,
    },
    /// Header declares a different batch size than the receiver expects.
    BatchMismatch {
        /// Label count declared in the header.
        declared: usize,
        /// Label count the receiver expected.
        expected: usize,
    },
    /// Header field is not a non-negative integer.
    BadHeader {
        /// Offending header value.
        value: f32,
    },
    /// Payload length disagrees with the declared label + pixel counts.
    LengthMismatch {
        /// Floats the header implies.
        declared: usize,
        /// Floats actually present.
        got: usize,
    },
    /// A label slot holds something other than a non-negative integer.
    BadLabel {
        /// Index of the bad label.
        index: usize,
        /// Its value.
        value: f32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { got } => {
                write!(f, "batch payload truncated: {got} floats, header needs 3")
            }
            CodecError::BadMagic { got_bits } => {
                write!(f, "not a batch message: magic bits 0x{got_bits:08x}")
            }
            CodecError::BatchMismatch { declared, expected } => {
                write!(
                    f,
                    "batch size mismatch: message has {declared}, expected {expected}"
                )
            }
            CodecError::BadHeader { value } => {
                write!(
                    f,
                    "batch header field {value} is not a non-negative integer"
                )
            }
            CodecError::LengthMismatch { declared, got } => {
                write!(
                    f,
                    "batch length mismatch: header declares {declared} floats, got {got}"
                )
            }
            CodecError::BadLabel { index, value } => {
                write!(f, "label {index} is {value}, not a non-negative integer")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Reads a header count field: a finite, non-negative, exact integer.
fn header_count(value: f32) -> Result<usize, CodecError> {
    let ok = value.is_finite() && value >= 0.0 && value.fract() == 0.0;
    if !ok {
        return Err(CodecError::BadHeader { value });
    }
    Ok(value as usize)
}

/// One mini-batch on the wire. Stateless namespace for the codec.
pub struct BatchMsg;

impl BatchMsg {
    /// Encodes `pixels` + `labels` into one flat message.
    ///
    /// # Panics
    /// Panics if either count exceeds 2²⁴ (no longer exactly
    /// representable in the `f32` header) — a caller bug, not a wire
    /// condition.
    pub fn encode(pixels: &[f32], labels: &[usize]) -> Vec<f32> {
        let mut out = Vec::with_capacity(3 + labels.len() + pixels.len());
        Self::encode_into(pixels, labels, &mut out);
        out
    }

    /// [`encode`](Self::encode) into a caller-provided buffer (cleared
    /// first) — the zero-allocation framing path once `out` has warmed
    /// up to the batch size.
    pub fn encode_into(pixels: &[f32], labels: &[usize], out: &mut Vec<f32>) {
        assert!(
            labels.len() <= MAX_EXACT && pixels.len() <= MAX_EXACT,
            "batch too large for exact f32 framing"
        );
        out.clear();
        out.reserve(3 + labels.len() + pixels.len());
        out.push(BATCH_MAGIC);
        out.push(labels.len() as f32);
        out.push(pixels.len() as f32);
        out.extend(labels.iter().map(|&l| l as f32));
        out.extend_from_slice(pixels);
    }

    /// Decodes a payload produced by [`BatchMsg::encode`], validating
    /// magic, shape, and label integrity. `expected_batch` is the label
    /// count the receiver was configured for.
    pub fn decode(
        payload: &[f32],
        expected_batch: usize,
    ) -> Result<(Vec<usize>, &[f32]), CodecError> {
        let mut labels = Vec::with_capacity(expected_batch);
        let pixels = Self::decode_into(payload, expected_batch, &mut labels)?;
        Ok((labels, pixels))
    }

    /// [`decode`](Self::decode) writing the labels into a caller-provided
    /// buffer (cleared first) — the zero-allocation receive path once
    /// `labels` has warmed up to the batch size.
    pub fn decode_into<'a>(
        payload: &'a [f32],
        expected_batch: usize,
        labels: &mut Vec<usize>,
    ) -> Result<&'a [f32], CodecError> {
        labels.clear();
        if payload.len() < 3 {
            return Err(CodecError::Truncated { got: payload.len() });
        }
        if payload[0].to_bits() != BATCH_MAGIC.to_bits() {
            return Err(CodecError::BadMagic {
                got_bits: payload[0].to_bits(),
            });
        }
        let n_labels = header_count(payload[1])?;
        let n_pixels = header_count(payload[2])?;
        if n_labels != expected_batch {
            return Err(CodecError::BatchMismatch {
                declared: n_labels,
                expected: expected_batch,
            });
        }
        let declared = 3 + n_labels + n_pixels;
        if payload.len() != declared {
            return Err(CodecError::LengthMismatch {
                declared,
                got: payload.len(),
            });
        }
        labels.reserve(n_labels);
        for (i, &l) in payload[3..3 + n_labels].iter().enumerate() {
            if !(l.is_finite() && l >= 0.0 && l.fract() == 0.0) {
                return Err(CodecError::BadLabel { index: i, value: l });
            }
            labels.push(l as usize);
        }
        Ok(&payload[3 + n_labels..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let pixels = vec![0.25f32, -1.5, 3.0, 0.0, 9.75, 2.5, -0.125, 7.0];
        let labels = vec![3usize, 9];
        let msg = BatchMsg::encode(&pixels, &labels);
        let (l2, p2) = BatchMsg::decode(&msg, 2).expect("roundtrip decodes");
        assert_eq!(l2, labels);
        assert_eq!(p2, &pixels[..]);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let msg = BatchMsg::encode(&[], &[]);
        let (l, p) = BatchMsg::decode(&msg, 0).expect("empty decodes");
        assert!(l.is_empty() && p.is_empty());
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let msg = BatchMsg::encode(&[1.0; 6], &[0, 1, 2]);
        // Chop mid-pixels: header now over-declares.
        let cut = &msg[..msg.len() - 4];
        assert_eq!(
            BatchMsg::decode(cut, 3),
            Err(CodecError::LengthMismatch {
                declared: 12,
                got: 8
            })
        );
        // Chop into the header itself.
        assert_eq!(
            BatchMsg::decode(&msg[..2], 3),
            Err(CodecError::Truncated { got: 2 })
        );
    }

    #[test]
    fn mistagged_payload_is_a_typed_error() {
        // A weight vector (arbitrary floats) mis-routed to a batch recv.
        let weights = vec![0.17f32, -0.3, 1.2, 0.9];
        let err = BatchMsg::decode(&weights, 2).unwrap_err();
        assert!(matches!(err, CodecError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn corrupted_fields_are_typed_errors() {
        let mut msg = BatchMsg::encode(&[1.0; 4], &[1, 2]);
        msg[1] = f32::NAN; // label count corrupted
        assert!(matches!(
            BatchMsg::decode(&msg, 2),
            Err(CodecError::BadHeader { .. })
        ));

        let mut msg = BatchMsg::encode(&[1.0; 4], &[1, 2]);
        msg[3] = 2.5; // non-integral label
        assert_eq!(
            BatchMsg::decode(&msg, 2),
            Err(CodecError::BadLabel {
                index: 0,
                value: 2.5
            })
        );

        let msg = BatchMsg::encode(&[1.0; 4], &[1, 2]);
        assert_eq!(
            BatchMsg::decode(&msg, 4),
            Err(CodecError::BatchMismatch {
                declared: 2,
                expected: 4
            })
        );
    }

    #[test]
    fn error_messages_name_the_failure() {
        let e = CodecError::LengthMismatch {
            declared: 12,
            got: 8,
        };
        assert!(e.to_string().contains("12"));
        let e = CodecError::BadMagic {
            got_bits: 0xDEAD_BEEF,
        };
        assert!(e.to_string().contains("deadbeef"));
    }
}
