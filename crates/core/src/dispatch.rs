//! Uniform dispatch from [`crate::lineage::MethodId`] to the
//! wall-clock implementations — one entry point for sweeps and harnesses
//! that iterate over the whole Figure 8/9 method family.
//!
//! Dispatch goes through the [`crate::engine::trainer`] registry, whose
//! match over [`MethodId`] is exhaustive with no fallback arm: adding a
//! lineage method without registering a trainer is a compile error, not a
//! runtime surprise.

use crate::config::TrainConfig;
use crate::lineage::MethodId;
use crate::metrics::RunResult;
use easgd_data::Dataset;
use easgd_nn::Network;

/// Runs the shared-memory (wall-clock) implementation of `method`.
///
/// Momentum methods are sensitive to the raw learning rate (the
/// effective rate is `η/(1−µ)`); callers comparing across methods
/// typically pass a smaller `η` for [`MethodId::AsyncMsgd`] /
/// [`MethodId::AsyncMeasgd`], as the paper's experiments do.
pub fn run_method(
    method: MethodId,
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    crate::engine::trainer(method).run(proto, train, test, cfg)
}

/// Runs a method and its Figure 6 counterpart under identical settings;
/// returns `(ours, counterpart)`. `None` for the existing methods, which
/// have no counterpart.
pub fn run_comparison(
    method: MethodId,
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> Option<(RunResult, RunResult)> {
    let counterpart = method.counterpart()?;
    Some((
        run_method(method, proto, train, test, cfg),
        run_method(counterpart, proto, train, test, cfg),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    #[test]
    fn dispatch_covers_all_methods_with_matching_names() {
        let task = SyntheticSpec::mnist_small().task(121);
        let (train, test) = task.train_test(200, 80, 122);
        let net = lenet_tiny(123);
        let cfg = TrainConfig::figure6(5).with_eta(0.02);
        for m in MethodId::ALL {
            let r = run_method(m, &net, &train, &test, &cfg);
            assert_eq!(r.method, m.name(), "dispatch mismatch for {m:?}");
            assert!(r.final_loss.is_finite(), "{m:?} diverged instantly");
        }
    }

    #[test]
    fn every_lineage_method_is_constructible_and_runnable() {
        // Satellite guarantee: each Fig 9 lineage MethodId resolves to a
        // registered trainer that reports the right id and completes a
        // tiny task end-to-end, populating the engine's trace fields.
        let task = SyntheticSpec::mnist_small().task(221);
        let (train, test) = task.train_test(120, 48, 222);
        let net = lenet_tiny(223);
        let cfg = TrainConfig::figure6(3).with_eta(0.02).with_workers(2);
        for m in MethodId::ALL {
            let t = crate::engine::trainer(m);
            assert_eq!(t.id(), m, "registry id mismatch for {m:?}");
            let r = t.run(&net, &train, &test, &cfg);
            assert_eq!(r.method, m.name());
            assert_eq!(r.iterations, 3);
            assert_ne!(r.center_hash, 0, "{m:?} left the center unfingerprinted");
            assert!(!r.loss_trace.is_empty(), "{m:?} produced no loss trace");
        }
    }

    #[test]
    fn comparison_pairs_match_lineage() {
        let task = SyntheticSpec::mnist_small().task(131);
        let (train, test) = task.train_test(200, 80, 132);
        let net = lenet_tiny(133);
        let cfg = TrainConfig::figure6(5).with_eta(0.02);
        let (ours, theirs) =
            run_comparison(MethodId::HogwildEasgd, &net, &train, &test, &cfg).unwrap();
        assert_eq!(ours.method, "Hogwild EASGD");
        assert_eq!(theirs.method, "Hogwild SGD");
        assert!(run_comparison(MethodId::AsyncSgd, &net, &train, &test, &cfg).is_none());
    }
}
