//! Model-checks the comm layer via the xtask protocol checker: per-rank
//! programs recorded from the *production* collectives and the Sync
//! EASGD exchange (serial and nonblocking-pipelined) are exhaustively
//! interleaved, and every terminal state is checked for deadlock,
//! message loss, pool leaks, FIFO delivery, and lost completions.
//!
//! The negative controls keep the harness honest: deliberately broken
//! protocols must produce a violation with a minimal counterexample
//! schedule.

use easgd_xtask::protocol::{
    check, negative_cyclic_pair, negative_leaky_broadcast, negative_lost_message,
    negative_recv_any_starvation, negative_unmatched_wait, shortest_violation, suite,
    trace_pipelined_exchange, trace_sync_exchange, trace_tree_allreduce, trace_tree_reduce,
    Outcome, NAIVE_CAP, REDUCED_CAP,
};
use knl_easgd::cluster::TraceOp;

// --- Production scenarios: exhaustively verified -------------------------

#[test]
fn production_collectives_and_exchange_verify_at_p4() {
    for sc in suite(true) {
        let outcome = check(&sc.programs, true, Some(REDUCED_CAP));
        assert!(
            !outcome.stats().truncated,
            "{}: exploration truncated — not exhaustive",
            sc.name
        );
        match (sc.expect_pass, &outcome) {
            (true, Outcome::Pass(_)) | (false, Outcome::Fail(..)) => {}
            (true, Outcome::Fail(v, _)) => panic!("{}: {v}", sc.name),
            (false, Outcome::Pass(s)) => {
                panic!("{}: broken protocol passed ({s:?})", sc.name)
            }
        }
    }
}

#[test]
fn exchange_has_a_nontrivial_schedule_space() {
    // The reduced search may collapse to few representatives; the naive
    // count certifies the schedule space the reduction stands in for.
    let programs = trace_sync_exchange(3);
    let naive = check(&programs, false, Some(NAIVE_CAP));
    assert!(
        matches!(naive, Outcome::Pass(_)),
        "naive search must agree: {:?}",
        naive.stats()
    );
    assert!(
        naive.stats().executions > 100 || naive.stats().truncated,
        "expected a non-trivial schedule space, got {:?}",
        naive.stats()
    );
}

#[test]
fn reduction_preserves_the_verdict_and_prunes_work() {
    for programs in [trace_tree_reduce(4, 0), trace_tree_allreduce(4)] {
        let naive = check(&programs, false, None);
        let reduced = check(&programs, true, None);
        assert!(matches!(naive, Outcome::Pass(_)));
        assert!(matches!(reduced, Outcome::Pass(_)));
        assert!(
            reduced.stats().executions <= naive.stats().executions,
            "reduction explored more than naive: {:?} vs {:?}",
            reduced.stats(),
            naive.stats()
        );
        assert!(reduced.stats().slept > 0, "no pruning happened");
    }
}

#[test]
fn recorded_programs_are_deterministic_and_send_recv_balanced() {
    let a = trace_sync_exchange(3);
    assert_eq!(
        a,
        trace_sync_exchange(3),
        "trace recording must be deterministic"
    );
    let count = |pred: fn(&TraceOp) -> bool| a.iter().flatten().filter(|op| pred(op)).count();
    let sends = count(|op| matches!(op, TraceOp::Send { .. }));
    let recvs = count(|op| matches!(op, TraceOp::Recv { .. } | TraceOp::RecvAny { .. }));
    assert_eq!(
        sends, recvs,
        "unbalanced send/recv in the recorded exchange"
    );
    let takes = count(|op| matches!(op, TraceOp::TakeBuf));
    let discharges = count(|op| matches!(op, TraceOp::Recycle | TraceOp::Retire));
    assert_eq!(
        takes, discharges,
        "unbalanced pool ledger in the recorded exchange"
    );
}

// --- Negative controls: each class of violation is caught ---------------

#[test]
fn cyclic_pair_deadlocks_with_cycle_and_empty_minimal_schedule() {
    let programs = negative_cyclic_pair();
    let Outcome::Fail(v, _) = check(&programs, true, None) else {
        panic!("cyclic send/recv pair must deadlock");
    };
    assert!(v.message.contains("deadlock"), "{v}");
    assert!(v.message.contains("wait-for cycle"), "{v}");
    let minimal = shortest_violation(&programs, 10_000).expect("minimal counterexample");
    assert!(
        minimal.schedule.is_empty(),
        "deadlocked before any visible step"
    );
}

#[test]
fn schedule_dependent_starvation_is_found_even_under_reduction() {
    let programs = negative_recv_any_starvation();
    for reduce in [false, true] {
        let Outcome::Fail(v, _) = check(&programs, reduce, None) else {
            panic!("starvation must be found (reduce={reduce})");
        };
        assert!(v.message.contains("deadlock"), "{v}");
    }
    let minimal = shortest_violation(&programs, 100_000).expect("minimal counterexample");
    assert_eq!(minimal.schedule.len(), 3, "schedule {:?}", minimal.schedule);
}

#[test]
fn pool_leak_in_a_production_trace_is_caught() {
    let Outcome::Fail(v, _) = check(&negative_leaky_broadcast(), true, None) else {
        panic!("leaking broadcast must fail");
    };
    assert!(v.message.contains("holding"), "{v}");
    assert!(
        shortest_violation(&negative_leaky_broadcast(), 100_000).is_some(),
        "leak needs a counterexample schedule"
    );
}

#[test]
fn undelivered_message_is_caught() {
    let Outcome::Fail(v, _) = check(&negative_lost_message(), true, None) else {
        panic!("lost message must fail");
    };
    assert!(v.message.contains("never received"), "{v}");
}

#[test]
fn pipelined_exchange_records_nonblocking_ops_and_verifies() {
    let programs = trace_pipelined_exchange(3, 2);
    let count =
        |pred: fn(&TraceOp) -> bool| programs.iter().flatten().filter(|op| pred(op)).count();
    let irecvs = count(|op| matches!(op, TraceOp::Irecv { .. }));
    let waits = count(|op| matches!(op, TraceOp::Wait { .. }));
    assert!(
        count(|op| matches!(op, TraceOp::Isend { .. })) > 0,
        "pipelined exchange must post isends"
    );
    assert!(irecvs > 0, "pipelined exchange must pre-post irecvs");
    assert_eq!(irecvs, waits, "every irecv must be waited exactly once");
    let outcome = check(&programs, true, Some(REDUCED_CAP));
    assert!(!outcome.stats().truncated, "not exhaustive");
    assert!(matches!(outcome, Outcome::Pass(_)), "{:?}", outcome.stats());
}

#[test]
fn unmatched_wait_deadlocks_with_empty_minimal_schedule() {
    let programs = negative_unmatched_wait();
    let Outcome::Fail(v, _) = check(&programs, true, None) else {
        panic!("unmatched wait must deadlock");
    };
    assert!(v.message.contains("deadlock"), "{v}");
    assert!(v.message.contains("wait(irecv"), "{v}");
    let minimal = shortest_violation(&programs, 10_000).expect("minimal counterexample");
    assert!(
        minimal.schedule.is_empty(),
        "wait deadlocks before any visible step"
    );
}

#[test]
fn checker_is_deterministic() {
    let programs = trace_tree_allreduce(4);
    let a = check(&programs, true, None);
    let b = check(&programs, true, None);
    assert_eq!(
        a.stats(),
        b.stats(),
        "same programs must explore identically"
    );
}
