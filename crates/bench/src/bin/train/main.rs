// xtask: allow(wall-clock) — a benchmark harness measures real time by
// definition; the pragma is confined to this bench timer binary.
//! Training-step perf harness.
//!
//! Measures the zero-allocation training step of ISSUE 5 — the pooled
//! `forward_backward` path (activations, gradients, masks, and im2col
//! panels sized through the counted [`TrainScratch`]) against the **seed
//! allocating path**, frozen byte-faithfully in [`seed`]: the pre-arena
//! layer code, per-element im2col/col2im, and the seed GEMM with its
//! per-call packing allocations. Freezing the baseline keeps the A/B
//! honest — kernel improvements in the live library cannot leak into the
//! side they are measured against — and the harness asserts the two
//! paths produce bit-identical losses *and* bit-identical gradients
//! before any timing, so the speedup column measures implementation
//! cost only. Results are recorded at the thread count in the JSON
//! (`threads`); the frozen baseline keeps the seed's serial kernels.
//!
//! ```text
//! cargo run --release -p easgd-bench --bin train            # full run, writes JSON
//! cargo run --release -p easgd-bench --bin train -- --smoke # short run + validate checked-in JSON
//! cargo run --release -p easgd-bench --bin train -- --out p # write JSON to `p`
//! ```
//!
//! Acceptance (checked in, re-validated by `--smoke` in CI): the pooled
//! path must report 0 scratch allocations per steady-state training step
//! (the frozen seed path must report a nonzero count), must produce
//! bit-identical losses and gradients to the seed path, and must run the
//! VGG-shaped step ≥ 1.2× faster.

mod seed;

use easgd_bench::arg_value;
use easgd_nn::models::lenet;
use easgd_nn::{Network, NetworkBuilder};
use easgd_tensor::{Rng, ScratchPolicy, Tensor};
use std::time::Instant;

/// One measured training-step row.
struct Entry {
    model: &'static str,
    shape: String,
    implementation: &'static str,
    ms: f64,
    /// Samples per step (the batch size).
    batch: usize,
}

impl Entry {
    /// Throughput in samples per second.
    fn rate(&self) -> f64 {
        self.batch as f64 / (self.ms / 1e3).max(1e-12)
    }
}

/// Interleaved A/B measurement (see `comm.rs`): alternating the two
/// sides spreads cache state and thermal drift over both, and the
/// per-side minimum estimates true cost under transient load.
fn time_pair_ms(
    smoke: bool,
    budget_s: f64,
    mut fa: impl FnMut(),
    mut fb: impl FnMut(),
) -> (f64, f64) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut spent = 0.0;
    let mut rounds = 0u32;
    let min_rounds = if smoke { 1 } else { 5 };
    let max_rounds = if smoke { 1 } else { 60 };
    while rounds < min_rounds || (spent < budget_s && rounds < max_rounds) {
        for (best, f) in [
            (&mut best_a, &mut fa as &mut dyn FnMut()),
            (&mut best_b, &mut fb),
        ] {
            let t = Instant::now();
            f();
            let s = t.elapsed().as_secs_f64();
            *best = best.min(s);
            spent += s;
        }
        rounds += 1;
    }
    (best_a * 1e3, best_b * 1e3)
}

/// A VGG-shaped classifier: stacked 3×3 same-pad conv blocks with
/// channel doubling between max-pools, then a dense head — the
/// conv-dominated step profile whose im2col panels dominate the seed
/// path's allocation churn.
fn vgg_shaped(seed: u64) -> Network {
    NetworkBuilder::new([3, 32, 32])
        .conv2d(32, 3, 1, 1)
        .relu()
        .conv2d(32, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .conv2d(64, 3, 1, 1)
        .relu()
        .conv2d(64, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .conv2d(128, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .flatten()
        .dense(256)
        .relu()
        .dense(10)
        .build(seed)
}

/// The frozen-seed mirror of [`lenet`] — same stack, same segment order.
fn seed_lenet() -> seed::SeedNet {
    seed::SeedNet::new([1, 28, 28])
        .conv2d(20, 5, 1, 0)
        .maxpool(2, 2)
        .conv2d(50, 5, 1, 0)
        .maxpool(2, 2)
        .flatten()
        .dense(500)
        .relu()
        .dense(10)
}

/// The frozen-seed mirror of [`vgg_shaped`].
fn seed_vgg_shaped() -> seed::SeedNet {
    seed::SeedNet::new([3, 32, 32])
        .conv2d(32, 3, 1, 1)
        .relu()
        .conv2d(32, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .conv2d(64, 3, 1, 1)
        .relu()
        .conv2d(64, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .conv2d(128, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .flatten()
        .dense(256)
        .relu()
        .dense(10)
}

/// What one model's A/B run produced.
struct ModelOutcome {
    seed_ms: f64,
    pooled_ms: f64,
    pooled_allocs_per_step: f64,
    seed_allocs_per_step: f64,
}

impl ModelOutcome {
    fn speedup(&self) -> f64 {
        if self.pooled_ms > 0.0 {
            self.seed_ms / self.pooled_ms
        } else {
            0.0
        }
    }
}

/// Runs the frozen-seed-vs-pooled comparison on one model: asserts the
/// two paths produce bit-identical losses and gradients (and that the
/// `Churn` scratch policy still cross-checks against the pooled one),
/// windows the allocation counters over pure steady-state steps, then
/// interleaves the wall timing.
fn bench_model(
    entries: &mut Vec<Entry>,
    smoke: bool,
    model: &'static str,
    net: Network,
    mut seed_net: seed::SeedNet,
    batch: usize,
) -> ModelOutcome {
    let mut pooled = net;
    let mut churn = pooled.clone();
    churn.set_scratch_policy(ScratchPolicy::Churn);

    let mut shape = vec![batch];
    shape.extend_from_slice(pooled.input_shape());
    let mut rng = Rng::new(0xbe7c);
    let mut x = Tensor::zeros(shape);
    rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
    let labels: Vec<usize> = (0..batch).map(|i| i % pooled.num_classes()).collect();

    // Warm-up (the pooled path's one allowed allocating step), plus the
    // policy cross-check: Churn (fresh buffer per request) and Pooled
    // (reused buffers) must agree to the bit.
    let lp = pooled.forward_backward(&x, &labels).loss;
    let lc = churn.forward_backward(&x, &labels).loss;
    assert_eq!(
        lp.to_bits(),
        lc.to_bits(),
        "{model}: pooled and churn losses diverged"
    );

    // The frozen seed step runs on a clone of the same parameters and
    // must reproduce the pooled loss AND every gradient bit — the
    // honesty gate for the whole A/B: any baseline drift or live-kernel
    // reordering fails here, loudly, before a single timing sample.
    let params = pooled.params().clone();
    let mut seed_grads = pooled.grads().clone();
    let ls = seed_net.step(&params, &mut seed_grads, x.as_slice(), batch, &labels);
    assert_eq!(
        lp.to_bits(),
        ls.to_bits(),
        "{model}: frozen seed loss diverged from pooled path"
    );
    assert_eq!(
        seed_grads.segments().len(),
        pooled.grads().segments().len(),
        "{model}: frozen seed and pooled paths disagree on segment count"
    );
    for i in 0..seed_grads.segments().len() {
        let (sg, pg) = (seed_grads.segment(i), pooled.grads().segment(i));
        assert_eq!(sg.len(), pg.len(), "{model}: grad segment {i} shape");
        for (j, (a, b)) in sg.iter().zip(pg).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{model}: grad segment {i} elem {j} diverged between frozen seed and pooled paths"
            );
        }
    }

    // Allocation counters over a pure steady-state window per path.
    let alloc_steps: u64 = if smoke { 1 } else { 4 };
    let before = pooled.scratch_stats();
    for _ in 0..alloc_steps {
        let _ = pooled.forward_backward(&x, &labels);
    }
    let pooled_delta = pooled.scratch_stats().since(&before);
    let churn_before = churn.scratch_stats();
    let _ = churn.forward_backward(&x, &labels);
    assert!(
        churn.scratch_stats().since(&churn_before).allocations() > 0,
        "{model}: churn policy reported no allocations — counter broken"
    );
    let seed_before = seed_net.allocs;
    for _ in 0..alloc_steps {
        let _ = seed_net.step(&params, &mut seed_grads, x.as_slice(), batch, &labels);
    }
    let seed_allocs_per_step = (seed_net.allocs - seed_before) as f64 / alloc_steps as f64;

    let (seed_ms, pooled_ms) = time_pair_ms(
        smoke,
        8.0,
        || {
            let _ = seed_net.step(&params, &mut seed_grads, x.as_slice(), batch, &labels);
        },
        || {
            let _ = pooled.forward_backward(&x, &labels);
        },
    );
    for (implementation, ms) in [("seed", seed_ms), ("pooled", pooled_ms)] {
        entries.push(Entry {
            model,
            shape: format!("b{batch}"),
            implementation,
            ms,
            batch,
        });
    }
    ModelOutcome {
        seed_ms,
        pooled_ms,
        pooled_allocs_per_step: pooled_delta.allocations() as f64 / alloc_steps as f64,
        seed_allocs_per_step,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct Acceptance {
    lenet_speedup: f64,
    vgg_speedup: f64,
    pooled_allocs_per_step: f64,
    seed_allocs_per_step: f64,
}

fn render_json(entries: &[Entry], acc: &Acceptance) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"generated_by\": \"cargo run --release -p easgd-bench --bin train\",\n");
    out.push_str(&format!(
        "  \"threads\": {},\n",
        easgd_tensor::par::max_threads()
    ));
    out.push_str("  \"acceptance\": {\n");
    out.push_str(&format!(
        "    \"lenet_step_speedup_vs_seed\": {:.2},\n",
        acc.lenet_speedup
    ));
    out.push_str(&format!(
        "    \"vgg_step_speedup_vs_seed\": {:.2},\n",
        acc.vgg_speedup
    ));
    out.push_str(&format!(
        "    \"pooled_allocs_per_train_step\": {:.2},\n",
        acc.pooled_allocs_per_step
    ));
    out.push_str(&format!(
        "    \"seed_allocs_per_train_step\": {:.2}\n",
        acc.seed_allocs_per_step
    ));
    out.push_str("  },\n");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"shape\": \"{}\", \"impl\": \"{}\", \"ms\": {:.4}, \"samples_per_s\": {:.1}}}{}\n",
            json_escape(e.model),
            json_escape(&e.shape),
            json_escape(e.implementation),
            e.ms,
            e.rate(),
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"key": <number>` out of the checked-in JSON (hand-rolled like
/// the writer; the bench has no JSON dependency by design).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `--smoke` also re-validates the checked-in acceptance numbers, so CI
/// fails if someone regenerates `BENCH_train.json` below the bar (or
/// forgets to check it in).
fn validate_checked_in(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let allocs = json_number(&text, "pooled_allocs_per_train_step")
        .ok_or("missing pooled_allocs_per_train_step")?;
    let seed_allocs = json_number(&text, "seed_allocs_per_train_step")
        .ok_or("missing seed_allocs_per_train_step")?;
    let vgg =
        json_number(&text, "vgg_step_speedup_vs_seed").ok_or("missing vgg_step_speedup_vs_seed")?;
    if allocs != 0.0 {
        return Err(format!("pooled_allocs_per_train_step = {allocs}, want 0"));
    }
    if seed_allocs <= 0.0 {
        return Err(format!(
            "seed_allocs_per_train_step = {seed_allocs}, want > 0 (baseline must churn)"
        ));
    }
    if vgg < 1.2 {
        return Err(format!("vgg_step_speedup_vs_seed = {vgg}, want >= 1.2"));
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut entries = Vec::new();

    let (lenet_batch, vgg_batch) = if smoke { (4, 2) } else { (32, 8) };
    let lenet_out = bench_model(
        &mut entries,
        smoke,
        "lenet",
        lenet(41),
        seed_lenet(),
        lenet_batch,
    );
    let vgg_out = bench_model(
        &mut entries,
        smoke,
        "vgg_shaped",
        vgg_shaped(42),
        seed_vgg_shaped(),
        vgg_batch,
    );

    let acc = Acceptance {
        lenet_speedup: lenet_out.speedup(),
        vgg_speedup: vgg_out.speedup(),
        pooled_allocs_per_step: lenet_out
            .pooled_allocs_per_step
            .max(vgg_out.pooled_allocs_per_step),
        seed_allocs_per_step: lenet_out
            .seed_allocs_per_step
            .min(vgg_out.seed_allocs_per_step),
    };

    println!(
        "{:<12} {:<8} {:<12} {:>10} {:>14}",
        "model", "shape", "impl", "ms", "samples/s"
    );
    for e in &entries {
        println!(
            "{:<12} {:<8} {:<12} {:>10.3} {:>14.1}",
            e.model,
            e.shape,
            e.implementation,
            e.ms,
            e.rate(),
        );
    }
    println!(
        "\nlenet speedup {:.2}x | vgg speedup {:.2}x | allocs/step pooled {:.2} seed {:.2}",
        acc.lenet_speedup, acc.vgg_speedup, acc.pooled_allocs_per_step, acc.seed_allocs_per_step,
    );

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    let out_path = arg_value("--out").unwrap_or_else(|| default_out.to_string());
    if smoke {
        // Smoke runs must still hold the structural invariants that do
        // not depend on timing.
        if acc.pooled_allocs_per_step != 0.0 {
            eprintln!(
                "smoke: pooled path allocated ({} allocs/step)",
                acc.pooled_allocs_per_step
            );
            std::process::exit(1);
        }
        if acc.seed_allocs_per_step <= 0.0 {
            eprintln!("smoke: frozen seed baseline reported no allocations — counter broken");
            std::process::exit(1);
        }
        match validate_checked_in(&out_path) {
            Ok(()) => println!("smoke run ok; checked-in {out_path} acceptance holds"),
            Err(e) => {
                eprintln!("checked-in {out_path} fails acceptance: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let json = render_json(&entries, &acc);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
