//! In-tree unbounded MPSC channel.
//!
//! The workspace is hermetic (no registry access), so the rank mailboxes
//! use this small Mutex+Condvar channel instead of `crossbeam::channel`.
//! Semantics match what [`crate::comm::Comm`] needs from crossbeam's
//! unbounded channel: FIFO per sender, cloneable senders, blocking
//! `recv` that errors once every sender is gone, and non-blocking
//! `try_recv`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SendError;

/// Error returned by [`Receiver::recv`] / [`Receiver::try_recv`] when no
/// message is (or will ever be) available.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RecvError;

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
}

/// The sending half; cloneable, one per peer rank.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half; exactly one per channel.
pub struct Receiver<T>(Arc<Shared<T>>);

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        cv: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A poisoned mailbox means a rank thread already panicked; that
        // panic is what surfaces to the user, so recover the guard here.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`; fails if the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError> {
        let mut inner = self.0.lock();
        if !inner.receiver_alive {
            return Err(SendError);
        }
        inner.queue.push_back(value);
        drop(inner);
        self.0.cv.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.lock().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.lock();
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake a receiver blocked in recv() so it can observe
            // disconnection.
            self.0.cv.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; errors once the queue is empty and
    /// every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.0.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive: `Err` if nothing is queued right now.
    pub fn try_recv(&self) -> Result<T, RecvError> {
        self.0.lock().queue.pop_front().ok_or(RecvError)
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.lock().receiver_alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn try_recv_empty_is_err() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(RecvError));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx2.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7)); // drained before disconnect error
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::yield_now();
                tx.send(42u64).unwrap();
            });
            assert_eq!(rx.recv(), Ok(42));
        });
    }

    #[test]
    fn cross_thread_volume() {
        let (tx, rx) = unbounded();
        let n = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..n {
                        tx.send(t * n + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got = 0u64;
            let mut sum = 0u64;
            while let Ok(v) = rx.recv() {
                got += 1;
                sum += v;
            }
            assert_eq!(got, 4 * n);
            assert_eq!(sum, (0..4 * n).sum());
        });
    }
}
