//! Model-checks the Hogwild kernels via the xtask interleaving explorer,
//! and cross-validates the model against the real `AtomicF32` /
//! `AtomicBuffer` implementations under genuine thread contention.
//!
//! The explorer enumerates EVERY interleaving of the modeled atomic steps
//! (exhaustively, deterministically); the contention tests then hammer the
//! real implementations with OS threads. The model proves the algorithm;
//! the contention tests tie the model to the shipped code.

use easgd_tensor::{AtomicBuffer, AtomicF32};
use easgd_xtask::interleave::{
    scenario_elastic_center, scenario_fetch_add, scenario_racy_add_negative,
    scenario_two_component, Outcome,
};
use std::sync::atomic::{AtomicUsize, Ordering};

// --- Exhaustive model checking (the xtask explorer) ---------------------

#[test]
fn model_fetch_add_loses_no_updates_in_any_interleaving() {
    match scenario_fetch_add(2, 2) {
        Outcome::Pass(stats) => assert!(
            stats.executions > 100,
            "expected a non-trivial schedule space, got {stats:?}"
        ),
        Outcome::Fail(v, _) => panic!("CAS fetch_add lost an update: {v}"),
    }
    assert!(matches!(scenario_fetch_add(3, 1), Outcome::Pass(_)));
}

#[test]
fn model_elastic_center_iterates_stay_bounded_in_any_interleaving() {
    // center += alpha (w_i - center) with workers at 1.0 and -0.5: every
    // update is a convex combination, so no schedule can push the center
    // outside [-0.5, 1.0].
    match scenario_elastic_center(&[1.0, -0.5], 0.25, 2) {
        Outcome::Pass(_) => {}
        Outcome::Fail(v, _) => panic!("elastic center escaped its hull: {v}"),
    }
}

#[test]
fn model_per_component_updates_are_independent() {
    assert!(matches!(scenario_two_component(2), Outcome::Pass(_)));
}

#[test]
fn model_negative_racy_kernel_is_caught() {
    // Sanity check on the harness itself: a blind load/store add MUST
    // exhibit a lost update under some schedule, and the explorer must
    // find it. If this fails, the explorer has lost its teeth.
    match scenario_racy_add_negative(2) {
        Outcome::Fail(v, _) => assert!(v.message.contains("lost update"), "{v}"),
        Outcome::Pass(s) => {
            panic!("explorer failed to find the racy-add lost update ({s:?})")
        }
    }
}

// --- Real-thread contention (satellite c) -------------------------------

#[test]
fn atomic_f32_contended_fetch_add_loses_no_updates() {
    let threads = 8;
    let adds_per_thread = 10_000;
    let cell = AtomicF32::new(0.0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..adds_per_thread {
                    cell.fetch_add(1.0);
                }
            });
        }
    });
    // 80_000 < 2^24, so every intermediate sum is exactly representable
    // in f32 and any lost update would show as a shortfall.
    assert_eq!(cell.load(), (threads * adds_per_thread) as f32);
}

#[test]
fn atomic_buffer_contended_fetch_add_loses_no_updates() {
    let threads = 4;
    let adds_per_thread = 2_500;
    let len = 64;
    let buf = AtomicBuffer::zeros(len);
    let barrier = std::sync::Barrier::new(threads);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                barrier.wait();
                for _ in 0..adds_per_thread {
                    for i in 0..len {
                        buf.fetch_add(i, 1.0);
                    }
                }
            });
        }
    });
    let expected = (threads * adds_per_thread) as f32;
    let snap = buf.snapshot();
    assert!(
        snap.iter().all(|&v| v == expected),
        "lost updates: min {:?} expected {expected}",
        snap.iter().cloned().fold(f32::INFINITY, f32::min)
    );
}

#[test]
fn atomic_f32_contended_update_applies_every_closure_exactly_once() {
    // `update` must behave like a serial fold of all closures: count the
    // invocations that *won* (CAS success is exactly one win per call) by
    // pairing the f32 cell with a side effect-free check on the final sum.
    let threads = 4;
    let per_thread = 5_000;
    let cell = AtomicF32::new(0.0);
    let attempts = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..per_thread {
                    cell.update(|v| v + 1.0);
                    // ordering: statistics only; no synchronization implied.
                    attempts.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(attempts.load(Ordering::Relaxed), threads * per_thread); // ordering: read after join
    assert_eq!(cell.load(), (threads * per_thread) as f32);
}
