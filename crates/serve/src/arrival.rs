//! Deterministic open-loop arrival processes.
//!
//! Open-loop means requests arrive on their own schedule, independent
//! of how fast the server drains them — the honest way to measure tail
//! latency (a closed loop self-throttles and hides queueing). All three
//! processes are driven by logical microseconds and the repo's seeded
//! xorshift RNG, so a load trace is a pure function of its parameters.

use easgd_tensor::Rng;

/// An open-loop arrival process over logical microseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// Evenly spaced: one request every `period_us`.
    Uniform {
        /// Gap between consecutive requests (µs).
        period_us: u64,
    },
    /// Poisson: independent exponential gaps with mean `mean_gap_us`,
    /// drawn from the seeded xorshift generator and rounded to ≥ 1 µs.
    Poisson {
        /// Mean inter-arrival gap (µs).
        mean_gap_us: f64,
        /// RNG seed; equal seeds give bit-equal traces.
        seed: u64,
    },
    /// `size` simultaneous requests, then silence for `gap_us` — the
    /// adversarial case for a coalescing batcher (same-instant arrivals
    /// across shards exercise the `(time, shard)` tie-break).
    Burst {
        /// Requests per burst instant.
        size: u32,
        /// Gap between burst instants (µs).
        gap_us: u64,
    },
}

impl Arrival {
    /// Short label for tables and JSON (`uniform` / `poisson` / `burst`).
    pub fn label(&self) -> &'static str {
        match self {
            Arrival::Uniform { .. } => "uniform",
            Arrival::Poisson { .. } => "poisson",
            Arrival::Burst { .. } => "burst",
        }
    }

    /// Mean request rate in requests per second.
    pub fn rate_per_s(&self) -> f64 {
        match *self {
            Arrival::Uniform { period_us } => 1e6 / period_us.max(1) as f64,
            Arrival::Poisson { mean_gap_us, .. } => 1e6 / mean_gap_us.max(1.0),
            Arrival::Burst { size, gap_us } => f64::from(size.max(1)) * 1e6 / gap_us.max(1) as f64,
        }
    }

    /// An infinite arrival-timestamp generator starting at `start_us`.
    pub fn timestamps(self, start_us: u64) -> ArrivalGen {
        let seed = match self {
            Arrival::Poisson { seed, .. } => seed,
            _ => 0,
        };
        ArrivalGen {
            kind: self,
            rng: Rng::new(seed),
            next_us: start_us,
            burst_emitted: 0,
        }
    }
}

/// Infinite iterator of arrival timestamps (µs), monotone non-decreasing
/// and deterministic per seed.
#[derive(Debug)]
pub struct ArrivalGen {
    kind: Arrival,
    rng: Rng,
    next_us: u64,
    burst_emitted: u32,
}

impl Iterator for ArrivalGen {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let t = self.next_us;
        match self.kind {
            Arrival::Uniform { period_us } => {
                self.next_us += period_us.max(1);
            }
            Arrival::Poisson { mean_gap_us, .. } => {
                // Inverse-CDF exponential; uniform() < 1 strictly, so the
                // log argument stays positive.
                let u = f64::from(self.rng.uniform());
                let gap = -mean_gap_us * (1.0 - u).ln();
                self.next_us += gap.round().max(1.0) as u64;
            }
            Arrival::Burst { size, gap_us } => {
                self.burst_emitted += 1;
                if self.burst_emitted >= size.max(1) {
                    self.burst_emitted = 0;
                    self.next_us += gap_us.max(1);
                }
            }
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_evenly_spaced() {
        let ts: Vec<u64> = Arrival::Uniform { period_us: 250 }
            .timestamps(10)
            .take(4)
            .collect();
        assert_eq!(ts, vec![10, 260, 510, 760]);
    }

    #[test]
    fn poisson_is_seed_deterministic_and_monotone() {
        let p = Arrival::Poisson {
            mean_gap_us: 200.0,
            seed: 7,
        };
        let a: Vec<u64> = p.timestamps(0).take(200).collect();
        let b: Vec<u64> = p.timestamps(0).take(200).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "gaps are >= 1 µs");
        // Mean gap lands near the parameter (law of large numbers at n=200,
        // very loose bounds).
        let mean = (a[199] - a[0]) as f64 / 199.0;
        assert!((50.0..800.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn burst_emits_simultaneous_arrivals() {
        let ts: Vec<u64> = Arrival::Burst {
            size: 3,
            gap_us: 1000,
        }
        .timestamps(5)
        .take(7)
        .collect();
        assert_eq!(ts, vec![5, 5, 5, 1005, 1005, 1005, 2005]);
    }

    #[test]
    fn rates_match_parameters() {
        assert_eq!(Arrival::Uniform { period_us: 250 }.rate_per_s(), 4000.0);
        assert_eq!(
            Arrival::Burst {
                size: 4,
                gap_us: 1000
            }
            .rate_per_s(),
            4000.0
        );
    }
}
