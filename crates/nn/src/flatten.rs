//! Shape adapter between convolutional and dense stages.

use crate::layer::{batch_of, Layer};
use easgd_tensor::{ParamArena, Tensor, TrainScratch};

/// Flattens `[B, C, H, W]` (or any rank) into `[B, features]`.
///
/// Pure bookkeeping: the data is already contiguous row-major, so forward
/// and backward are copies with a different shape stamp (the pooled path
/// cannot alias the caller's input, so a copy replaces the old
/// `clone().reshape(..)`).
#[derive(Clone, Debug)]
pub struct Flatten {
    name: String,
    in_shape: Vec<usize>,
    /// `[batch, …in_shape]` dims for backward, batch slot patched per
    /// call — persistent so the hot path never rebuilds the list.
    back_dims: Vec<usize>,
}

impl Flatten {
    /// Flattens the per-sample shape `in_shape`.
    pub fn new(name: impl Into<String>, in_shape: Vec<usize>) -> Self {
        assert!(!in_shape.is_empty(), "flatten needs an input shape");
        let back_dims = std::iter::once(0).chain(in_shape.iter().copied()).collect();
        Self {
            name: name.into(),
            in_shape,
            back_dims,
        }
    }

    fn features(&self) -> usize {
        self.in_shape.iter().product()
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn out_shape(&self) -> Vec<usize> {
        vec![self.features()]
    }

    fn forward_into(
        &mut self,
        _params: &ParamArena,
        input: &Tensor,
        _train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let b = batch_of(input);
        assert_eq!(
            input.len(),
            b * self.features(),
            "flatten input shape mismatch"
        );
        scratch.shape_tensor(out, &[b, self.features()]);
        out.as_mut_slice().copy_from_slice(input.as_slice());
    }

    fn backward_into(
        &mut self,
        _params: &ParamArena,
        _grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        self.back_dims[0] = batch_of(grad_out);
        scratch.shape_tensor(grad_in, &self.back_dims);
        grad_in.as_mut_slice().copy_from_slice(grad_out.as_slice());
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_reshapes_only() {
        let mut l = Flatten::new("f", vec![2, 3, 4]);
        let x = Tensor::from_vec([2, 2, 3, 4], (0..48).map(|i| i as f32).collect());
        let y = l.forward(&ParamArena::flat(0), &x, true);
        assert_eq!(y.shape().dims(), &[2, 24]);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn backward_restores_shape() {
        let mut l = Flatten::new("f", vec![3, 2]);
        let x = Tensor::zeros([4, 3, 2]);
        let _ = l.forward(&ParamArena::flat(0), &x, true);
        let gy = Tensor::zeros([4, 6]);
        let mut g = ParamArena::flat(0);
        let gx = l.backward(&ParamArena::flat(0), &mut g, &gy);
        assert_eq!(gx.shape().dims(), &[4, 3, 2]);
    }
}
