//! Bitwise eval-mode batch-size invariance.
//!
//! The batcher dispatches **ragged** batches — whatever coalesced before
//! the cap or deadline hit. That is only sound if eval-mode forward is
//! batch-size invariant *bitwise*: serving a request in a batch of k
//! must produce the exact bits it would get in a batch of B. Every
//! layer is per-sample in eval mode (batchnorm normalizes by *running*
//! statistics, LRN by within-sample neighborhoods, dropout is the
//! identity), and the GEMM kernels reduce each output row in a fixed
//! k-order independent of the row count — so equality must be exact,
//! not approximate. These tests pin that contract for the layer zoo and
//! for LeNet through the real serving session.

use easgd_nn::{models, Network, NetworkBuilder};
use easgd_serve::InferSession;
use easgd_tensor::Tensor;

/// A network exercising every eval-mode-sensitive layer in the zoo:
/// batchnorm (conv and dense placements), LRN, dropout, both pools,
/// and all three activations.
fn zoo_net() -> Network {
    NetworkBuilder::new([2, 8, 8])
        .conv2d(4, 3, 1, 1)
        .batchnorm()
        .relu()
        .lrn()
        .maxpool(2, 2)
        .conv2d(4, 3, 1, 1)
        .tanh()
        .avgpool(2, 2)
        .flatten()
        .dense(16)
        .batchnorm()
        .sigmoid()
        .dropout(0.5)
        .dense(10)
        .build(0xBEEF)
}

fn pixels(n: usize, phase: f32) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.37 + phase).sin()).collect()
}

/// Runs a few train-mode forwards so batchnorm running statistics move
/// away from their (0, 1) init — eval must then depend on them, not on
/// batch statistics.
fn warm_running_stats(net: &mut Network, sample_len: usize) {
    for step in 0..3 {
        let x = Tensor::from_vec([5, 2, 8, 8], pixels(5 * sample_len, step as f32));
        let _ = net.forward(&x, true);
    }
}

#[test]
fn zoo_eval_rows_are_batch_size_invariant_bitwise() {
    let mut net = zoo_net();
    let sample_len: usize = net.input_shape().iter().product();
    warm_running_stats(&mut net, sample_len);

    let full = 7usize;
    let px = pixels(full * sample_len, 0.5);
    let x_full = Tensor::from_vec([full, 2, 8, 8], px.clone());
    let y_full = net.forward(&x_full, false);
    let classes = net.num_classes();

    // Every ragged window of the batch, served alone, must reproduce
    // the full batch's rows bit-for-bit.
    for (start, k) in [(0usize, 1usize), (1, 3), (3, 4), (2, 5), (6, 1)] {
        let sub = &px[start * sample_len..(start + k) * sample_len];
        let y_sub = net.forward(&Tensor::from_vec([k, 2, 8, 8], sub.to_vec()), false);
        assert_eq!(
            y_sub.as_slice(),
            &y_full.as_slice()[start * classes..(start + k) * classes],
            "rows [{start}, {}) changed bits when served as a batch of {k}",
            start + k
        );
    }
}

#[test]
fn zoo_session_matches_full_batch_rows_bitwise() {
    let mut net = zoo_net();
    let sample_len: usize = net.input_shape().iter().product();
    warm_running_stats(&mut net, sample_len);

    let full = 6usize;
    let px = pixels(full * sample_len, 2.0);
    let y_full = net.forward(&Tensor::from_vec([full, 2, 8, 8], px.clone()), false);
    let classes = net.num_classes();

    // The pooled serving path (gradient-stripped replica, InferScratch,
    // infer_from_slice) must agree with the allocating reference.
    let mut session = InferSession::new(net.clone());
    for (start, k) in [(0usize, 2usize), (2, 3), (5, 1), (0, 6)] {
        let sub = &px[start * sample_len..(start + k) * sample_len];
        let got = session.infer(k, sub);
        assert_eq!(
            got,
            &y_full.as_slice()[start * classes..(start + k) * classes],
            "session batch of {k} at row {start} diverged from the full batch"
        );
    }
}

#[test]
fn zoo_session_ragged_schedule_is_zero_alloc_once_warm() {
    let mut net = zoo_net();
    let sample_len: usize = net.input_shape().iter().product();
    warm_running_stats(&mut net, sample_len);
    let mut session = InferSession::new(net);
    let px = pixels(8 * sample_len, 1.0);

    // Warm the two extreme sizes; every intermediate ragged size then
    // reuses their buffers (grow-only layer caches, pooled slots).
    let _ = session.infer(8, &px);
    let _ = session.infer(1, &px[..sample_len]);
    let warm = session.stats();
    for k in [3usize, 8, 1, 5, 2, 8, 7, 4, 1, 6] {
        let _ = session.infer(k, &px[..k * sample_len]);
    }
    let delta = session.stats().since(&warm);
    assert_eq!(
        delta.allocations(),
        0,
        "ragged zoo inference allocated after warm-up: {delta:?}"
    );
    assert!(delta.reused > 0, "counters saw no pooled traffic");
}

#[test]
fn lenet_session_serves_full_batch_rows_bitwise() {
    let mut net = models::lenet_tiny(42);
    let sample_len: usize = net.input_shape().iter().product();
    let full = 8usize;
    let px = pixels(full * sample_len, 0.0);
    let y_full = net.forward(&Tensor::from_vec([full, 1, 12, 12], px.clone()), false);
    let classes = net.num_classes();

    let mut session = InferSession::new(net.clone());
    for (start, k) in [(0usize, 1usize), (4, 4), (1, 7), (0, 8)] {
        let sub = &px[start * sample_len..(start + k) * sample_len];
        let got = session.infer(k, sub);
        assert_eq!(
            got,
            &y_full.as_slice()[start * classes..(start + k) * classes],
            "LeNet batch of {k} at row {start} diverged"
        );
    }
}
