//! The trace pipeline: off-clock evaluation, timestamped accuracy
//! traces, parameter fingerprints, and [`RunResult`] assembly.

use crate::metrics::{RunResult, TracePoint};
use easgd_cluster::TimeBreakdown;
use easgd_data::Dataset;
use easgd_nn::Network;

/// Evaluates `weights` on the test set using a fresh replica of `proto`.
/// Off-clock: the replica is thrown away and no trainer state is touched.
pub fn evaluate_center(proto: &Network, weights: &[f32], test: &Dataset) -> f32 {
    let mut net = proto.clone();
    net.set_params(weights);
    net.evaluate(&test.as_tensor(), test.labels(), 256)
}

/// FNV-1a 64 over the bit patterns of `weights` — the cheap determinism
/// fingerprint stored in [`RunResult::center_hash`].
pub fn center_fingerprint(weights: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in weights {
        for b in w.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Collects `(iteration, seconds, accuracy)` points every `every`
/// rounds (`every = 0` disables tracing). The caller supplies the clock
/// value — simulated or wall — so evaluation stays off-clock.
pub struct TraceRecorder {
    every: usize,
    points: Vec<TracePoint>,
}

impl TraceRecorder {
    /// A recorder firing every `every` rounds (0 = never).
    pub fn new(every: usize) -> Self {
        Self {
            every,
            points: Vec::new(),
        }
    }

    /// Whether 0-indexed `round` is a recording round: rounds
    /// `every−1, 2·every−1, …`, i.e. after `every` complete rounds.
    pub fn due(&self, round: usize) -> bool {
        self.every > 0 && (round + 1).is_multiple_of(self.every)
    }

    /// Evaluates `weights` and appends a point at `(round+1, seconds)`.
    /// Callers gate on [`TraceRecorder::due`] so the (expensive)
    /// evaluation runs only on recording rounds.
    pub fn record(
        &mut self,
        round: usize,
        seconds: f64,
        proto: &Network,
        weights: &[f32],
        test: &Dataset,
    ) {
        self.points.push(TracePoint {
            iteration: round + 1,
            seconds,
            accuracy: evaluate_center(proto, weights, test),
        });
    }

    /// Consumes the recorder into its points.
    pub fn into_points(self) -> Vec<TracePoint> {
        self.points
    }
}

/// Builder assembling a [`RunResult`] from whatever a trainer produced.
/// Centralizes the final-loss rule (mean of the reported per-worker
/// losses), the off-clock final evaluation, and the center fingerprint.
pub struct RunAssembler<'a> {
    method: String,
    proto: &'a Network,
    test: &'a Dataset,
    iterations: usize,
    wall_seconds: f64,
    sim_seconds: Option<f64>,
    breakdown: Option<TimeBreakdown>,
    trace: Vec<TracePoint>,
    loss_trace: Vec<f32>,
    worker_losses: Vec<f32>,
    final_loss: Option<f32>,
}

impl<'a> RunAssembler<'a> {
    /// Starts a result for `method` over `iterations` iterations.
    pub fn new(
        method: impl Into<String>,
        proto: &'a Network,
        test: &'a Dataset,
        iterations: usize,
    ) -> Self {
        Self {
            method: method.into(),
            proto,
            test,
            iterations,
            wall_seconds: 0.0,
            sim_seconds: None,
            breakdown: None,
            trace: Vec::new(),
            loss_trace: Vec::new(),
            worker_losses: Vec::new(),
            final_loss: None,
        }
    }

    /// Sets the measured wall-clock seconds.
    pub fn wall(mut self, seconds: f64) -> Self {
        self.wall_seconds = seconds;
        self
    }

    /// Sets the simulated seconds.
    pub fn sim(mut self, seconds: f64) -> Self {
        self.sim_seconds = Some(seconds);
        self
    }

    /// Attaches a time-category breakdown.
    pub fn breakdown(mut self, b: Option<TimeBreakdown>) -> Self {
        self.breakdown = b;
        self
    }

    /// Attaches the accuracy trace.
    pub fn trace(mut self, t: Vec<TracePoint>) -> Self {
        self.trace = t;
        self
    }

    /// Attaches the canonical worker's per-step loss trace.
    pub fn loss_trace(mut self, t: Vec<f32>) -> Self {
        self.loss_trace = t;
        self
    }

    /// Reports the workers' last-step losses; the final loss becomes
    /// their mean (NaN-free filtering is the caller's policy).
    pub fn worker_losses(mut self, losses: Vec<f32>) -> Self {
        self.worker_losses = losses;
        self
    }

    /// Overrides the final loss (e.g. serial SGD reports the literal
    /// last-step loss rather than a worker mean).
    pub fn final_loss(mut self, loss: f32) -> Self {
        self.final_loss = Some(loss);
        self
    }

    /// Evaluates `center`, fingerprints it, and produces the result.
    pub fn finish(self, center: &[f32]) -> RunResult {
        let mean = self.worker_losses.iter().sum::<f32>() / self.worker_losses.len().max(1) as f32;
        let final_loss = match self.final_loss {
            Some(l) => l,
            None => mean,
        };
        RunResult {
            method: self.method,
            iterations: self.iterations,
            wall_seconds: self.wall_seconds,
            sim_seconds: self.sim_seconds,
            accuracy: evaluate_center(self.proto, center, self.test),
            final_loss,
            breakdown: self.breakdown,
            trace: self.trace,
            loss_trace: self.loss_trace,
            center_hash: center_fingerprint(center),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset) {
        let task = SyntheticSpec::mnist_small().task(7);
        let (_, test) = task.train_test(32, 32, 8);
        (lenet_tiny(9), test)
    }

    #[test]
    fn fingerprint_is_bit_sensitive() {
        let a = center_fingerprint(&[1.0, 2.0, 3.0]);
        let b = center_fingerprint(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        // ±0.0 differ in bits, so the fingerprint must differ.
        assert_ne!(center_fingerprint(&[0.0]), center_fingerprint(&[-0.0]));
        assert_ne!(a, center_fingerprint(&[1.0, 2.0]));
    }

    #[test]
    fn recorder_fires_on_the_historical_schedule() {
        let rec = TraceRecorder::new(10);
        assert!(!rec.due(0));
        assert!(rec.due(9));
        assert!(rec.due(19));
        assert!(!rec.due(10));
        // Disabled recorder never fires.
        assert!(!TraceRecorder::new(0).due(9));
    }

    #[test]
    fn recorder_points_carry_one_based_iterations() {
        let (proto, test) = setup();
        let w = proto.params().as_slice().to_vec();
        let mut rec = TraceRecorder::new(5);
        rec.record(4, 1.5, &proto, &w, &test);
        let pts = rec.into_points();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].iteration, 5);
        assert_eq!(pts[0].seconds, 1.5);
    }

    #[test]
    fn assembler_applies_the_mean_loss_rule() {
        let (proto, test) = setup();
        let w = proto.params().as_slice().to_vec();
        let r = RunAssembler::new("m", &proto, &test, 7)
            .wall(2.0)
            .worker_losses(vec![1.0, 3.0])
            .finish(&w);
        assert_eq!(r.final_loss, 2.0);
        assert_eq!(r.iterations, 7);
        assert_eq!(r.center_hash, center_fingerprint(&w));
        assert!(r.sim_seconds.is_none());
        // Empty losses divide by max(1), not zero.
        let e = RunAssembler::new("m", &proto, &test, 1).finish(&w);
        assert_eq!(e.final_loss, 0.0);
    }

    #[test]
    fn assembler_final_loss_override_wins() {
        let (proto, test) = setup();
        let w = proto.params().as_slice().to_vec();
        let r = RunAssembler::new("m", &proto, &test, 1)
            .worker_losses(vec![1.0, 3.0])
            .final_loss(9.0)
            .finish(&w);
        assert_eq!(r.final_loss, 9.0);
    }
}
