//! Cross-crate integration: data → model → distributed training, for
//! every method in the paper, on one shared task.

use knl_easgd::prelude::*;

fn setup() -> (Network, Dataset, Dataset) {
    let task = SyntheticSpec::mnist_small().task(7001);
    let (train, test) = task.train_test(800, 240, 7002);
    (lenet_tiny(7003), train, test)
}

fn cfg(iters: usize) -> TrainConfig {
    TrainConfig::figure6(iters).with_seed(7010)
}

#[test]
fn every_wallclock_method_trains_end_to_end() {
    let (net, train, test) = setup();
    let c = cfg(120);
    let mut msgd = c.clone();
    msgd.eta = 0.01;
    let results = vec![
        async_sgd(&net, &train, &test, &c),
        async_msgd(&net, &train, &test, &msgd),
        async_easgd(&net, &train, &test, &c),
        async_measgd(&net, &train, &test, &msgd),
        hogwild_sgd(&net, &train, &test, &c),
        hogwild_easgd(&net, &train, &test, &c),
        original_easgd_turns(&net, &train, &test, &c),
        sync_easgd_shared(&net, &train, &test, &c),
    ];
    for r in &results {
        assert!(
            r.accuracy > 0.3,
            "{} failed to learn: acc {}",
            r.method,
            r.accuracy
        );
        assert!(r.final_loss.is_finite(), "{} diverged", r.method);
        assert!(r.wall_seconds > 0.0);
    }
    // All eight methods, all distinct names.
    let mut names: Vec<_> = results.iter().map(|r| r.method.clone()).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 8);
}

#[test]
fn simulated_cluster_methods_train_end_to_end() {
    let (net, train, test) = setup();
    let costs = SimCosts::mnist_lenet_4gpu();
    let c = cfg(60);
    let orig = original_easgd_sim(&net, &train, &test, &c, &costs, OriginalMode::Pipelined);
    let sync3 = sync_easgd_sim(&net, &train, &test, &c, &costs, SyncVariant::Easgd3, 0);
    assert!(orig.accuracy > 0.3, "original acc {}", orig.accuracy);
    assert!(sync3.accuracy > 0.3, "sync3 acc {}", sync3.accuracy);
    // Same per-worker iteration budget: Sync EASGD3 must be much faster
    // in simulated time (the 5.3× headline mechanism).
    assert!(sync3.sim_seconds.unwrap() < orig.sim_seconds.unwrap());
}

#[test]
fn elastic_methods_beat_their_counterparts_on_equal_budget() {
    // Figure 6's qualitative claim, checked on accuracy at equal
    // iteration budget and hyperparameters. Elastic averaging stabilizes
    // the asynchronous methods; at minimum it must not lose badly.
    let (net, train, test) = setup();
    let c = cfg(150);
    let pairs = [
        (
            async_easgd(&net, &train, &test, &c),
            async_sgd(&net, &train, &test, &c),
        ),
        (
            hogwild_easgd(&net, &train, &test, &c),
            hogwild_sgd(&net, &train, &test, &c),
        ),
    ];
    for (ours, theirs) in &pairs {
        assert!(
            ours.accuracy >= theirs.accuracy - 0.08,
            "{} ({}) much worse than {} ({})",
            ours.method,
            ours.accuracy,
            theirs.method,
            theirs.accuracy
        );
    }
}

#[test]
fn real_mnist_format_roundtrips_through_training() {
    // Write a tiny synthetic dataset in the *real* MNIST idx format,
    // load it back through the production loader, and train on it.
    use knl_easgd::data::loaders::load_mnist;
    use std::io::Write;

    let spec = SyntheticSpec {
        size: 28,
        ..SyntheticSpec::mnist()
    };
    let d = spec.task(7020).generate(64, 7021);
    let dir = std::env::temp_dir().join("knl_easgd_e2e_mnist");
    std::fs::create_dir_all(&dir).unwrap();
    let img_path = dir.join("images-idx3");
    let lbl_path = dir.join("labels-idx1");
    let mut img = Vec::new();
    img.extend_from_slice(&0x0000_0803u32.to_be_bytes());
    img.extend_from_slice(&(d.len() as u32).to_be_bytes());
    img.extend_from_slice(&28u32.to_be_bytes());
    img.extend_from_slice(&28u32.to_be_bytes());
    for i in 0..d.len() {
        for &v in d.image(i) {
            // Quantize the normalized floats into the byte range.
            img.push(((v.clamp(-3.0, 3.0) + 3.0) / 6.0 * 255.0) as u8);
        }
    }
    let mut lbl = Vec::new();
    lbl.extend_from_slice(&0x0000_0801u32.to_be_bytes());
    lbl.extend_from_slice(&(d.len() as u32).to_be_bytes());
    lbl.extend(d.labels().iter().map(|&l| l as u8));
    std::fs::File::create(&img_path)
        .unwrap()
        .write_all(&img)
        .unwrap();
    std::fs::File::create(&lbl_path)
        .unwrap()
        .write_all(&lbl)
        .unwrap();

    let loaded = load_mnist(&img_path, &lbl_path).unwrap();
    assert_eq!(loaded.len(), 64);
    assert_eq!(loaded.shape, vec![1, 28, 28]);
    let mut net = lenet(7022);
    let mut rng = Rng::new(7023);
    let batch = loaded.sample_batch(&mut rng, 16);
    let stats = net.forward_backward(&batch.images, &batch.labels);
    assert!(stats.loss.is_finite());
}

#[test]
fn knl_partitioning_respects_capacity_and_learns() {
    let (net, train, test) = setup();
    let mut c = cfg(400).with_workers(4);
    c.eta = 0.02; // the §6.2 update applies the gradient *sum*
    let out = knl_partition_run(&net, &train, &test, &c, &KnlChip::cori_node(), 0.5, 0.6, 25);
    assert!(out.fits_fast_memory);
    assert!(
        out.final_accuracy > 0.5,
        "partitioned training stalled at {}",
        out.final_accuracy
    );
}
