//! Finite-difference gradient verification.
//!
//! Every layer's backward pass is certified against central finite
//! differences of its forward pass. The check probes a random linear
//! functional `L(y) = Σᵢ cᵢ·yᵢ` of the layer output, whose analytic
//! gradient is exactly what `backward` computes when fed `c` as the
//! upstream gradient.
//!
//! This lives in the library (not just the test tree) so integration
//! tests and downstream users can certify custom layers too.

use crate::layer::Layer;
use easgd_tensor::{ParamArena, Rng, Tensor};

/// Result of probing one coordinate.
#[derive(Debug, Clone, Copy)]
struct Probe {
    analytic: f64,
    numeric: f64,
}

impl Probe {
    fn agrees(&self, tol: f64) -> bool {
        let scale = self.analytic.abs().max(self.numeric.abs()).max(1.0);
        (self.analytic - self.numeric).abs() <= tol * scale
    }
}

fn loss(c: &[f32], y: &Tensor) -> f64 {
    assert_eq!(c.len(), y.len(), "probe functional length mismatch");
    c.iter()
        .zip(y.as_slice())
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum()
}

/// Verifies `layer.backward` against finite differences.
///
/// * `in_shape` — per-sample input shape (batch is prepended).
/// * `batch` — batch size to probe with.
/// * `tol` — relative tolerance (1e-2 is appropriate for `f32` kernels).
/// * `seed` — RNG seed; the check is deterministic.
///
/// The layer must be deterministic across repeated forwards (pass
/// `train = false` semantics internally if needed); stochastic layers
/// (dropout in train mode) need bespoke tests.
///
/// # Panics
/// Panics with a diagnostic if any probed coordinate disagrees.
pub fn check_layer(
    layer: &mut dyn Layer,
    params: ParamArena,
    grads: ParamArena,
    in_shape: &[usize],
    batch: usize,
    tol: f64,
    seed: u64,
) {
    check_layer_mode(layer, params, grads, in_shape, batch, tol, seed, false)
}

/// [`check_layer`] with an explicit train/eval mode. Use `train = true`
/// for layers whose backward depends on training-mode statistics (batch
/// normalization); the layer must still be deterministic across repeated
/// forwards in that mode.
#[allow(clippy::too_many_arguments)]
pub fn check_layer_mode(
    layer: &mut dyn Layer,
    mut params: ParamArena,
    mut grads: ParamArena,
    in_shape: &[usize],
    batch: usize,
    tol: f64,
    seed: u64,
    train: bool,
) {
    let mut rng = Rng::new(seed);
    let mut full_shape = vec![batch];
    full_shape.extend_from_slice(in_shape);
    let in_len: usize = full_shape.iter().product();

    let mut x = Tensor::zeros(full_shape.clone());
    rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);

    // Forward once to learn the output size, then draw the probe functional.
    let y0 = layer.forward(&params, &x, train);
    let mut c = vec![0.0f32; y0.len()];
    rng.fill_normal(&mut c, 0.0, 1.0);

    // Analytic gradients.
    grads.zero();
    let grad_out = Tensor::from_vec(y0.shape().clone(), c.clone());
    let grad_in = layer.backward(&params, &mut grads, &grad_out);
    assert_eq!(
        grad_in.shape().dims(),
        &full_shape[..],
        "grad_in shape must match input shape"
    );

    let eps = 1e-3f32;
    let n_probes = 24;

    // Probe parameter coordinates.
    if !params.is_empty() {
        for _ in 0..n_probes {
            let idx = rng.below(params.len());
            let orig = params.as_slice()[idx];
            params.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&c, &layer.forward(&params, &x, train));
            params.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&c, &layer.forward(&params, &x, train));
            params.as_mut_slice()[idx] = orig;
            let probe = Probe {
                analytic: grads.as_slice()[idx] as f64,
                numeric: (lp - lm) / (2.0 * eps as f64),
            };
            assert!(
                probe.agrees(tol),
                "layer '{}' param[{idx}]: analytic {:.6} vs numeric {:.6}",
                layer.name(),
                probe.analytic,
                probe.numeric
            );
        }
        // Restore the forward cache to the unperturbed input.
        let _ = layer.forward(&params, &x, train);
    }

    // Probe input coordinates.
    for _ in 0..n_probes {
        let idx = rng.below(in_len);
        let orig = x.as_slice()[idx];
        x.as_mut_slice()[idx] = orig + eps;
        let lp = loss(&c, &layer.forward(&params, &x, train));
        x.as_mut_slice()[idx] = orig - eps;
        let lm = loss(&c, &layer.forward(&params, &x, train));
        x.as_mut_slice()[idx] = orig;
        let probe = Probe {
            analytic: grad_in.as_slice()[idx] as f64,
            numeric: (lp - lm) / (2.0 * eps as f64),
        };
        assert!(
            probe.agrees(tol),
            "layer '{}' input[{idx}]: analytic {:.6} vs numeric {:.6}",
            layer.name(),
            probe.analytic,
            probe.numeric
        );
    }
}

/// Builds a layer's arenas (params + zeroed grads), initializing
/// parameters with the layer's declared schemes — the standard harness
/// for layer-level tests.
pub fn build_arenas(layer: &mut dyn Layer, seed: u64) -> (ParamArena, ParamArena) {
    let mut rng = Rng::new(seed);
    let specs = layer.param_specs();
    let mut b = ParamArena::builder();
    let mut segs = Vec::new();
    for spec in &specs {
        segs.push(b.push(spec.name.clone(), spec.len));
    }
    let mut params = b.build();
    for (i, spec) in specs.iter().enumerate() {
        spec.init.fill(params.segment_mut(segs[i]), &mut rng);
    }
    layer.bind(&segs);
    let grads = ParamArena::like(&params);
    (params, grads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;

    #[test]
    fn build_arenas_allocates_declared_segments() {
        let mut l = Dense::new("fc", 3, 2);
        let (params, grads) = build_arenas(&mut l, 1);
        assert_eq!(params.segments().len(), 2);
        assert_eq!(params.len(), 3 * 2 + 2);
        assert_eq!(grads.len(), params.len());
        // Weights initialized, biases zero.
        assert!(params.segment(0).iter().any(|&x| x != 0.0));
        assert!(params.segment(1).iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "analytic")]
    fn check_layer_catches_wrong_gradient() {
        /// A deliberately broken layer: forward is x², backward claims 1.
        #[derive(Clone)]
        struct Broken;
        impl Layer for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn out_shape(&self) -> Vec<usize> {
                vec![4]
            }
            fn forward(&mut self, _p: &ParamArena, input: &Tensor, _t: bool) -> Tensor {
                let data = input.as_slice().iter().map(|x| x * x).collect();
                Tensor::from_vec(input.shape().clone(), data)
            }
            fn backward(
                &mut self,
                _p: &ParamArena,
                _g: &mut ParamArena,
                grad_out: &Tensor,
            ) -> Tensor {
                grad_out.clone()
            }
            fn boxed_clone(&self) -> Box<dyn Layer> {
                Box::new(self.clone())
            }
        }
        let mut l = Broken;
        let (params, grads) = build_arenas(&mut l, 2);
        check_layer(&mut l, params, grads, &[4], 2, 1e-2, 7);
    }
}
