//! `easgd-xtask` — workspace static analysis and model checking.
//!
//! Two subsystems, exposed as a library (so the root test suite can drive
//! them) and as a `cargo run -p easgd-xtask` CLI:
//!
//! * [`lint`] — a source-level lint pass over every workspace `.rs` file
//!   enforcing the repo's concurrency/determinism rules (no `unsafe`, no
//!   wall-clock reads in simulated-clock code, justified atomic orderings,
//!   no `unwrap` in library hot paths).
//! * [`interleave`] — a bounded, exhaustive, deterministic interleaving
//!   explorer for the Hogwild CAS kernels (`fetch_add`, elastic center
//!   update), with a deliberately racy kernel as a negative self-test.

pub mod interleave;
pub mod lint;
