//! Cost specifications of the paper's full-size models.
//!
//! The large-scale experiments (Table 4 weak scaling, Figure 10 layer
//! packing) never require *training* GoogLeNet or VGG here — they require
//! knowing, per layer, how many parameters must be communicated and how
//! many flops one sample costs. These specs encode exactly that, built
//! from the published architectures so the derived totals can be checked
//! against well-known figures (AlexNet ≈ 249 MB of weights, VGG-19 ≈
//! 575 MB — both quoted in the paper).

/// Cost of one layer: parameters to communicate, flops to compute.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerCost {
    /// Layer name.
    pub name: String,
    /// Parameter count (weights + biases).
    pub params: usize,
    /// Forward flops for ONE sample (multiply-add counted as 2 flops).
    pub flops_fwd: f64,
}

/// A full model as a list of layer costs.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Model name, e.g. `"GoogLeNet"`.
    pub name: String,
    /// Per-layer costs in forward order.
    pub layers: Vec<LayerCost>,
}

impl ModelSpec {
    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Weight size in bytes (f32).
    pub fn weight_bytes(&self) -> usize {
        self.num_params() * 4
    }

    /// Forward flops for one sample.
    pub fn flops_fwd(&self) -> f64 {
        self.layers.iter().map(|l| l.flops_fwd).sum()
    }

    /// Training flops for one sample. Backward propagation costs about
    /// twice the forward pass (one GEMM for the input gradient, one for
    /// the weight gradient), the standard 3× rule.
    pub fn flops_train(&self) -> f64 {
        3.0 * self.flops_fwd()
    }

    /// Byte sizes of the parameter messages in the *per-layer* (unpacked)
    /// communication schedule. Only layers that carry parameters send.
    pub fn layer_message_bytes(&self) -> Vec<usize> {
        self.layers
            .iter()
            .filter(|l| l.params > 0)
            .map(|l| l.params * 4)
            .collect()
    }
}

/// Cost of a conv layer: `out_c` filters of `in_c·k·k` over an
/// `out_h × out_w` output map.
fn conv(name: &str, in_c: usize, out_c: usize, k: usize, out_hw: usize) -> LayerCost {
    let params = out_c * in_c * k * k + out_c;
    let flops = 2.0 * (out_c * in_c * k * k) as f64 * (out_hw * out_hw) as f64;
    LayerCost {
        name: name.to_string(),
        params,
        flops_fwd: flops,
    }
}

/// Cost of a dense layer.
fn fc(name: &str, in_f: usize, out_f: usize) -> LayerCost {
    LayerCost {
        name: name.to_string(),
        params: in_f * out_f + out_f,
        flops_fwd: 2.0 * (in_f * out_f) as f64,
    }
}

/// Caffe LeNet on 28×28 MNIST (the Table 3 / Figure 11 workload).
pub fn spec_lenet() -> ModelSpec {
    ModelSpec {
        name: "LeNet".to_string(),
        layers: vec![
            conv("conv1", 1, 20, 5, 24),
            conv("conv2", 20, 50, 5, 8),
            fc("fc1", 50 * 4 * 4, 500),
            fc("fc2", 500, 10),
        ],
    }
}

/// AlexNet on 224×224 ImageNet (group-free variant, ≈ 62 M parameters ≈
/// 249 MB — the figure §6.1.1 quotes for the CPU↔GPU traffic analysis).
pub fn spec_alexnet() -> ModelSpec {
    ModelSpec {
        name: "AlexNet".to_string(),
        layers: vec![
            conv("conv1", 3, 96, 11, 55),
            conv("conv2", 96, 256, 5, 27),
            conv("conv3", 256, 384, 3, 13),
            conv("conv4", 384, 384, 3, 13),
            conv("conv5", 384, 256, 3, 13),
            fc("fc6", 256 * 6 * 6, 4096),
            fc("fc7", 4096, 4096),
            fc("fc8", 4096, 1000),
        ],
    }
}

/// One VGG conv block: `n` 3×3 convolutions at `ch` channels on `hw²` maps.
fn vgg_block(
    layers: &mut Vec<LayerCost>,
    block: usize,
    in_c: usize,
    ch: usize,
    n: usize,
    hw: usize,
) {
    let mut prev = in_c;
    for i in 0..n {
        layers.push(conv(&format!("conv{block}_{}", i + 1), prev, ch, 3, hw));
        prev = ch;
    }
}

/// VGG-16 on 224×224 ImageNet (≈ 138 M parameters).
pub fn spec_vgg16() -> ModelSpec {
    let mut layers = Vec::new();
    vgg_block(&mut layers, 1, 3, 64, 2, 224);
    vgg_block(&mut layers, 2, 64, 128, 2, 112);
    vgg_block(&mut layers, 3, 128, 256, 3, 56);
    vgg_block(&mut layers, 4, 256, 512, 3, 28);
    vgg_block(&mut layers, 5, 512, 512, 3, 14);
    layers.push(fc("fc6", 512 * 7 * 7, 4096));
    layers.push(fc("fc7", 4096, 4096));
    layers.push(fc("fc8", 4096, 1000));
    ModelSpec {
        name: "VGG-16".to_string(),
        layers,
    }
}

/// VGG-19 on 224×224 ImageNet (≈ 144 M parameters ≈ 575 MB, the size the
/// paper quotes when arguing weights fit on one GPU, §6.1.2). This is the
/// Table 4 "VGG" workload.
pub fn spec_vgg19() -> ModelSpec {
    let mut layers = Vec::new();
    vgg_block(&mut layers, 1, 3, 64, 2, 224);
    vgg_block(&mut layers, 2, 64, 128, 2, 112);
    vgg_block(&mut layers, 3, 128, 256, 4, 56);
    vgg_block(&mut layers, 4, 256, 512, 4, 28);
    vgg_block(&mut layers, 5, 512, 512, 4, 14);
    layers.push(fc("fc6", 512 * 7 * 7, 4096));
    layers.push(fc("fc7", 4096, 4096));
    layers.push(fc("fc8", 4096, 1000));
    ModelSpec {
        name: "VGG-19".to_string(),
        layers,
    }
}

/// One GoogLeNet inception module: parallel 1×1 / 3×3 / 5×5 / pool-proj
/// branches, concatenated.
#[allow(clippy::too_many_arguments)]
fn inception(
    layers: &mut Vec<LayerCost>,
    name: &str,
    in_c: usize,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    proj: usize,
    hw: usize,
) {
    layers.push(conv(&format!("{name}.1x1"), in_c, c1, 1, hw));
    layers.push(conv(&format!("{name}.3x3r"), in_c, c3r, 1, hw));
    layers.push(conv(&format!("{name}.3x3"), c3r, c3, 3, hw));
    layers.push(conv(&format!("{name}.5x5r"), in_c, c5r, 1, hw));
    layers.push(conv(&format!("{name}.5x5"), c5r, c5, 5, hw));
    layers.push(conv(&format!("{name}.proj"), in_c, proj, 1, hw));
}

/// GoogLeNet (Inception v1) on 224×224 ImageNet, auxiliary classifiers
/// omitted (≈ 7 M parameters ≈ 27 MB). This is the Table 4 "GoogleNet"
/// workload; its tiny weight size relative to VGG is exactly why it
/// weak-scales so much better (91.6 % vs 80.2 % at 4352 cores).
pub fn spec_googlenet() -> ModelSpec {
    let mut layers = Vec::new();
    layers.push(conv("conv1", 3, 64, 7, 112));
    layers.push(conv("conv2r", 64, 64, 1, 56));
    layers.push(conv("conv2", 64, 192, 3, 56));
    inception(&mut layers, "3a", 192, 64, 96, 128, 16, 32, 32, 28);
    inception(&mut layers, "3b", 256, 128, 128, 192, 32, 96, 64, 28);
    inception(&mut layers, "4a", 480, 192, 96, 208, 16, 48, 64, 14);
    inception(&mut layers, "4b", 512, 160, 112, 224, 24, 64, 64, 14);
    inception(&mut layers, "4c", 512, 128, 128, 256, 24, 64, 64, 14);
    inception(&mut layers, "4d", 512, 112, 144, 288, 32, 64, 64, 14);
    inception(&mut layers, "4e", 528, 256, 160, 320, 32, 128, 128, 14);
    inception(&mut layers, "5a", 832, 256, 160, 320, 32, 128, 128, 7);
    inception(&mut layers, "5b", 832, 384, 192, 384, 48, 128, 128, 7);
    layers.push(fc("fc", 1024, 1000));
    ModelSpec {
        name: "GoogLeNet".to_string(),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_matches_runnable_model() {
        // The spec and the runnable `models::lenet` must agree exactly.
        let spec = spec_lenet();
        assert_eq!(spec.num_params(), 520 + 25_050 + 400_500 + 5_010);
    }

    #[test]
    fn alexnet_weights_about_249_mb() {
        let spec = spec_alexnet();
        let mb = spec.weight_bytes() as f64 / 1e6;
        // The paper quotes 249 MB (§6.1.1).
        assert!((230.0..260.0).contains(&mb), "AlexNet = {mb:.1} MB");
    }

    #[test]
    fn vgg19_weights_about_575_mb() {
        let spec = spec_vgg19();
        let mb = spec.weight_bytes() as f64 / 1e6;
        // The paper quotes 575 MB (§6.1.2).
        assert!((550.0..590.0).contains(&mb), "VGG-19 = {mb:.1} MB");
    }

    #[test]
    fn vgg16_has_about_138m_params() {
        let m = spec_vgg16().num_params() as f64 / 1e6;
        assert!((135.0..142.0).contains(&m), "VGG-16 = {m:.1} M");
    }

    #[test]
    fn googlenet_has_about_7m_params() {
        let m = spec_googlenet().num_params() as f64 / 1e6;
        assert!((6.0..8.0).contains(&m), "GoogLeNet = {m:.2} M");
    }

    #[test]
    fn googlenet_is_much_smaller_than_vgg_but_still_deep() {
        // The weak-scaling contrast of Table 4 rests on this ratio.
        let g = spec_googlenet();
        let v = spec_vgg19();
        assert!(v.num_params() > 15 * g.num_params());
        assert!(g.layers.len() > 50);
    }

    #[test]
    fn vgg_flops_dominated_by_convs() {
        let spec = spec_vgg19();
        let conv_flops: f64 = spec
            .layers
            .iter()
            .filter(|l| l.name.starts_with("conv"))
            .map(|l| l.flops_fwd)
            .sum();
        assert!(conv_flops / spec.flops_fwd() > 0.9);
        // VGG-19 forward ≈ 39 GFLOPs/sample (2 flops per MAC).
        let g = spec.flops_fwd() / 1e9;
        assert!((35.0..45.0).contains(&g), "VGG-19 fwd = {g:.1} GFLOPs");
    }

    #[test]
    fn per_layer_messages_sum_to_total() {
        let spec = spec_googlenet();
        let total: usize = spec.layer_message_bytes().iter().sum();
        assert_eq!(total, spec.weight_bytes());
    }

    #[test]
    fn train_flops_are_triple_forward() {
        let spec = spec_lenet();
        assert!((spec.flops_train() - 3.0 * spec.flops_fwd()).abs() < 1.0);
    }
}
