//! The §6.1 optimization story on the simulated 4-GPU node: Original
//! EASGD → Sync EASGD1 → 2 → 3, with the Table 3 time breakdown at each
//! step.
//!
//! ```sh
//! cargo run --release --example multi_gpu_breakdown
//! ```

use knl_easgd::algorithms::{sync_easgd_sim, RunResult, SimCosts};
use knl_easgd::cluster::TimeCategory;
use knl_easgd::prelude::*;

fn print_row(r: &RunResult) {
    let b = r.breakdown.as_ref().unwrap();
    let t = r.sim_seconds.unwrap();
    print!("{:<16} {:>7.1}% {:>8.2}s", r.method, r.accuracy * 100.0, t);
    for c in TimeCategory::ALL.iter().take(6) {
        print!(" {:>6.1}%", 100.0 * b.get(*c) / b.total());
    }
    println!(" {:>6.0}%", b.comm_ratio() * 100.0);
}

fn main() {
    let task = SyntheticSpec::mnist_small().task(3001);
    let (train, test) = task.train_test(2_000, 500, 3002);
    let net = lenet_tiny(3003);
    let costs = SimCosts::mnist_lenet_4gpu();

    // The paper gives round-robin 5× the iteration budget of the sync
    // methods (5000 vs 1000) so every method reaches the same accuracy.
    let sync_cfg = TrainConfig::figure6(250);
    let rr_cfg = sync_cfg.clone().with_iterations(312); // ≈ 5/4× per worker

    println!(
        "{:<16} {:>8} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "method",
        "acc",
        "sim time",
        "g-g",
        "c-g dat",
        "c-g par",
        "fwdbwd",
        "gpu-up",
        "cpu-up",
        "comm"
    );
    let ser = original_easgd_sim(
        &net,
        &train,
        &test,
        &rr_cfg,
        &costs,
        OriginalMode::Serialized,
    );
    print_row(&ser);
    let pip = original_easgd_sim(
        &net,
        &train,
        &test,
        &rr_cfg,
        &costs,
        OriginalMode::Pipelined,
    );
    print_row(&pip);
    let mut last = 0.0;
    for v in [
        SyncVariant::Easgd1,
        SyncVariant::Easgd2,
        SyncVariant::Easgd3,
    ] {
        let r = sync_easgd_sim(&net, &train, &test, &sync_cfg, &costs, v, 0);
        print_row(&r);
        last = r.sim_seconds.unwrap();
    }
    println!(
        "\nspeedup of Sync EASGD3 over Original EASGD: {:.1}x (paper: 5.3x)",
        pip.sim_seconds.unwrap() / last
    );
}
