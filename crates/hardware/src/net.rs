//! α-β network links (Table 2 of the paper).
//!
//! Sending an `n`-byte message costs `α + β·n` seconds: `α` is latency,
//! `β` the reciprocal bandwidth. The paper's point (§5.2): `β ≪ α` per
//! byte, so message *count* dominates and packing layers into one message
//! wins.

/// One α-β link.
#[derive(Clone, Debug, PartialEq)]
pub struct AlphaBeta {
    /// Human-readable name, e.g. `"Mellanox 56Gb/s FDR IB"`.
    pub name: String,
    /// Latency per message, seconds.
    pub alpha_s: f64,
    /// Seconds per byte (reciprocal bandwidth).
    pub beta_s_per_byte: f64,
}

impl AlphaBeta {
    /// A custom link.
    pub fn new(name: impl Into<String>, alpha_s: f64, beta_s_per_byte: f64) -> Self {
        assert!(alpha_s >= 0.0 && beta_s_per_byte >= 0.0, "negative cost");
        Self {
            name: name.into(),
            alpha_s,
            beta_s_per_byte,
        }
    }

    /// Table 2 row 1: Mellanox 56 Gb/s FDR InfiniBand
    /// (α = 0.7 µs, β = 0.2 ns/byte).
    pub fn fdr_infiniband() -> Self {
        Self::new("Mellanox 56Gb/s FDR IB", 0.7e-6, 0.2e-9)
    }

    /// Table 2 row 2: Intel 40 Gb/s QDR InfiniBand
    /// (α = 1.2 µs, β = 0.3 ns/byte).
    pub fn qdr_infiniband() -> Self {
        Self::new("Intel 40Gb/s QDR IB", 1.2e-6, 0.3e-9)
    }

    /// Table 2 row 3: Intel 10 GbE NetEffect NE020
    /// (α = 7.2 µs, β = 0.9 ns/byte).
    pub fn ten_gbe() -> Self {
        Self::new("Intel 10GbE NetEffect NE020", 7.2e-6, 0.9e-9)
    }

    /// All of Table 2, in row order.
    pub fn table2() -> Vec<Self> {
        vec![
            Self::fdr_infiniband(),
            Self::qdr_infiniband(),
            Self::ten_gbe(),
        ]
    }

    /// Cray Aries (Cori's interconnect, §10.4): sub-microsecond latency,
    /// ~10 GB/s per-node injection bandwidth.
    pub fn aries() -> Self {
        Self::new("Cray Aries (Cori)", 0.6e-6, 0.1e-9)
    }

    /// PCIe 3.0 ×16 through a switch (the multi-GPU node fabric, §10.4):
    /// ~12 GB/s effective, a few µs of driver + switch latency per
    /// transfer.
    pub fn pcie_gen3_x16() -> Self {
        Self::new("PCIe 3.0 x16 switch", 4.0e-6, 1.0 / 12.0e9)
    }

    /// Transfer time of an `n`-byte message.
    pub fn time(&self, bytes: usize) -> f64 {
        self.alpha_s + self.beta_s_per_byte * bytes as f64
    }

    /// Effective bandwidth in bytes/second (∞-message asymptote).
    pub fn bandwidth(&self) -> f64 {
        if self.beta_s_per_byte == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.beta_s_per_byte
        }
    }

    /// Message size at which latency and transfer cost are equal — below
    /// this, batching messages is (more than) half the cost.
    pub fn half_bandwidth_bytes(&self) -> f64 {
        if self.beta_s_per_byte == 0.0 {
            f64::INFINITY
        } else {
            self.alpha_s / self.beta_s_per_byte
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let t = AlphaBeta::table2();
        assert_eq!(t.len(), 3);
        assert!((t[0].alpha_s - 0.7e-6).abs() < 1e-12);
        assert!((t[0].beta_s_per_byte - 0.2e-9).abs() < 1e-15);
        assert!((t[1].alpha_s - 1.2e-6).abs() < 1e-12);
        assert!((t[2].beta_s_per_byte - 0.9e-9).abs() < 1e-15);
    }

    #[test]
    fn time_is_affine_in_bytes() {
        let l = AlphaBeta::fdr_infiniband();
        let t0 = l.time(0);
        let t1 = l.time(1_000_000);
        assert!((t0 - 0.7e-6).abs() < 1e-12);
        assert!((t1 - t0 - 0.2e-9 * 1e6).abs() < 1e-12);
    }

    #[test]
    fn beta_much_smaller_than_alpha_for_small_messages() {
        // The §5.2 argument: for a 1 KB message latency dominates.
        for l in AlphaBeta::table2() {
            assert!(l.alpha_s > l.beta_s_per_byte * 1024.0);
        }
    }

    #[test]
    fn one_big_message_beats_many_small_ones() {
        // Figure 10's mechanism, stated directly on the model.
        let l = AlphaBeta::qdr_infiniband();
        let total = 10_000_000;
        let packed = l.time(total);
        let split: f64 = (0..20).map(|_| l.time(total / 20)).sum();
        assert!(packed < split);
        assert!((split - packed - 19.0 * l.alpha_s).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_inverts_beta() {
        let l = AlphaBeta::ten_gbe();
        assert!((l.bandwidth() - 1.0 / 0.9e-9).abs() / l.bandwidth() < 1e-12);
    }

    #[test]
    fn half_bandwidth_point() {
        let l = AlphaBeta::new("x", 1e-6, 1e-9);
        assert!((l.half_bandwidth_bytes() - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_costs() {
        let _ = AlphaBeta::new("bad", -1.0, 0.0);
    }
}
