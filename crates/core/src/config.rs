//! Training hyperparameters shared by every algorithm.

/// Hyperparameters of one distributed training run.
///
/// The paper's evaluation rule (§2.4): “All algorithmic comparisons used
/// the same hardware and the same hyper-parameters (e.g. batch size,
/// learning rate).” One `TrainConfig` drives every method in a
/// comparison.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of workers `P` (the master, where one exists, is extra).
    pub workers: usize,
    /// Mini-batch size `b` per worker per step (§2.2: typically 16–2048).
    pub batch: usize,
    /// Learning rate `η`.
    pub eta: f32,
    /// Elastic strength `ρ` (Equations 1–2). The EASGD paper recommends
    /// `ρ = β/(η·P)`-style small values; 0.1–1.0 works for these tasks.
    pub rho: f32,
    /// Momentum rate `µ` (Equations 3–6); rule of thumb 0.9 (§5.1).
    pub mu: f32,
    /// Iteration budget. For synchronous methods this is the number of
    /// bulk-synchronous rounds (every worker steps once per round); for
    /// asynchronous and round-robin methods it is the number of steps
    /// *per worker*, so the total gradient evaluations match.
    pub iterations: usize,
    /// RNG seed; every run is a pure function of this.
    pub seed: u64,
    /// Communication period `τ` for the elastic methods: workers take
    /// `τ` local SGD steps between elastic exchanges (the EASGD paper's
    /// knob; `τ = 1` reproduces the SC '17 algorithms exactly). Ignored
    /// by the non-elastic baselines.
    pub comm_period: usize,
}

impl TrainConfig {
    /// A sensible default for the Figure 6/8 experiments: 4 workers (the
    /// paper's 4-GPU node), batch 64, µ = 0.9, an aggressive η = 0.2 (the
    /// regime where asynchronous staleness hurts plain SGD and elastic
    /// averaging's stabilization — the paper's headline effect — shows),
    /// and the elastic strength from the EASGD paper's rule `ρ = β/(η·P)`
    /// with β = 0.9, so the center tracks the workers closely.
    pub fn figure6(iterations: usize) -> Self {
        let workers = 4;
        let eta = 0.2;
        Self {
            workers,
            batch: 64,
            eta,
            rho: 0.9 / (eta * workers as f32),
            mu: 0.9,
            iterations,
            seed: 0x5C17,
            comm_period: 1,
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the learning rate, re-deriving the elastic strength from
    /// the `ρ = β/(η·P)` rule (β = 0.9) so the center-tracking speed is
    /// preserved.
    pub fn with_eta(mut self, eta: f32) -> Self {
        self.eta = eta;
        self.rho = 0.9 / (eta * self.workers as f32);
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on zero workers/batch/iterations or out-of-range rates.
    pub fn validate(&self) {
        assert!(self.workers > 0, "need at least one worker");
        assert!(self.batch > 0, "batch size must be positive");
        assert!(self.iterations > 0, "iteration budget must be positive");
        assert!(
            self.eta > 0.0 && self.eta.is_finite(),
            "learning rate must be positive"
        );
        assert!(
            self.rho >= 0.0 && self.rho.is_finite(),
            "elastic strength must be non-negative"
        );
        assert!((0.0..1.0).contains(&self.mu), "momentum must be in [0, 1)");
        assert!(self.comm_period >= 1, "communication period must be >= 1");
    }

    /// Overrides the communication period `τ`.
    pub fn with_comm_period(mut self, tau: usize) -> Self {
        self.comm_period = tau;
        self
    }

    /// The `(η, ρ, µ)` elastic triple of this configuration, as an
    /// [`crate::engine::ElasticRule`].
    pub fn elastic(&self) -> crate::engine::ElasticRule {
        crate::engine::ElasticRule::from_config(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_defaults_are_valid() {
        let c = TrainConfig::figure6(1000);
        c.validate();
        assert_eq!(c.workers, 4);
        assert_eq!(c.batch, 64);
        assert_eq!(c.iterations, 1000);
    }

    #[test]
    fn builders_override_fields() {
        let c = TrainConfig::figure6(10)
            .with_workers(8)
            .with_seed(99)
            .with_iterations(20);
        assert_eq!(c.workers, 8);
        assert_eq!(c.seed, 99);
        assert_eq!(c.iterations, 20);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_invalid() {
        TrainConfig::figure6(10).with_workers(0).validate();
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn momentum_of_one_invalid() {
        let mut c = TrainConfig::figure6(10);
        c.mu = 1.0;
        c.validate();
    }
}
