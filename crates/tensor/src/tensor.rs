//! Owned dense tensors.

use crate::arena::BufGrowth;
use crate::shape::Shape;
use std::fmt;
use std::ops::{Index, IndexMut};

/// An owned, row-major, dense `f32` tensor.
///
/// This is deliberately simple: contiguous storage, no lazy evaluation, no
/// autograd graph. The paper's algorithms need fast kernels and predictable
/// memory layout (contiguity is itself one of the paper's optimizations,
/// §5.2), not framework machinery.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.len()];
        Self { shape, data }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.len()];
        Self { shape, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the number of elements implied
    /// by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            data.len(),
            "shape {shape} implies {} elements but buffer has {}",
            shape.len(),
            data.len()
        );
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into {shape}",
            self.data.len()
        );
        self.shape = shape;
        self
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Re-shapes the tensor in place to `dims`, reusing both the backing
    /// buffer's capacity and the shape's dims vector. Newly exposed
    /// elements (a growth beyond the previous length) are zero; elements
    /// kept from before are left as-is — pooled-path callers fully
    /// overwrite the contents. Returns how the request touched the
    /// allocator so counted callers ([`crate::arena::TrainScratch`]) can
    /// tally it.
    pub fn resize_in_place(&mut self, dims: &[usize]) -> BufGrowth {
        let len: usize = dims.iter().product();
        let growth = if len == 0 || self.data.capacity() >= len {
            BufGrowth::Reused
        } else if self.data.capacity() == 0 {
            BufGrowth::Fresh
        } else {
            BufGrowth::Grown
        };
        if self.data.len() > len {
            self.data.truncate(len);
        } else {
            self.data.resize(len, 0.0);
        }
        self.shape.set_dims(dims);
        growth
    }

    /// Index of the maximum element (first one on ties). Returns `None`
    /// for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        crate::ops::argmax(&self.data)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Interprets the tensor as a matrix `(rows, cols)` per
    /// [`Shape::as_matrix`].
    pub fn matrix_dims(&self) -> (usize, usize) {
        self.shape.as_matrix()
    }

    /// Row `r` of the matrix view of this tensor.
    pub fn row(&self, r: usize) -> &[f32] {
        let (rows, cols) = self.matrix_dims();
        assert!(r < rows, "row {r} out of bounds for {rows} rows");
        &self.data[r * cols..(r + 1) * cols]
    }
}

/// The empty tensor (shape `[0]`): the placeholder the pooled training
/// path hands to `mem::take` when checking scratch tensors in and out.
impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros([0])
    }
}

impl Index<usize> for Tensor {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}, ", self.shape)?;
        if self.len() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(f, "[{} elements])", self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Tensor::full([4], 2.5);
        assert!(f.as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn from_vec_rejects_mismatch() {
        Tensor::from_vec([2, 2], vec![1.0]);
    }

    #[test]
    fn set_and_at() {
        let mut t = Tensor::zeros([3, 3]);
        t.set(&[2, 1], 7.0);
        assert_eq!(t.at(&[2, 1]), 7.0);
        assert_eq!(t[2 * 3 + 1], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).reshape([3, 2]);
        assert_eq!(t.at(&[2, 1]), 6.0);
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_bad_size() {
        let _ = Tensor::zeros([2, 3]).reshape([4, 2]);
    }

    #[test]
    fn argmax_finds_first_max() {
        let t = Tensor::from_vec([5], vec![1.0, 9.0, 3.0, 9.0, 2.0]);
        assert_eq!(t.argmax(), Some(1));
        assert_eq!(Tensor::zeros([0]).argmax(), None);
    }

    #[test]
    fn row_slices_matrix_view() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }
}
