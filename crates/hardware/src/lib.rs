//! # easgd-hardware
//!
//! Analytic hardware cost models for the `knl-easgd` reproduction of
//! *“Scaling Deep Learning on GPU and Knights Landing clusters”* (SC '17).
//!
//! The paper analyses communication with the classic α-β model (§5.2,
//! Table 2) and reasons about devices through peak compute, memory
//! capacity and bandwidth (KNL's MCDRAM, GPU on-chip memory, PCIe links).
//! This crate encodes those models so the simulated cluster can charge
//! realistic costs without the physical hardware:
//!
//! * [`net`] — α-β links with the Table 2 presets (FDR/QDR InfiniBand,
//!   10 GbE), PCIe switches, and Cori's Aries interconnect.
//! * [`collective`] — closed-form costs of the communication patterns the
//!   algorithms use: round-robin / linear Θ(P) vs binomial-tree Θ(log P),
//!   the crux of Sync EASGD1 (§6.1.1).
//! * [`compute`] — device compute rates (K80, M40, KNL 7250, Haswell) for
//!   converting model flops into simulated seconds.
//! * [`gpu`] — GPU device descriptors (memory capacity gates what can be
//!   resident, §6.1.2).
//! * [`knl`] — the KNL chip: 68 cores, 16 GB MCDRAM at 475 GB/s vs DDR4
//!   at 90 GB/s, cluster modes, and the §6.2 partition-capacity rule.

pub mod collective;
pub mod compute;
pub mod gpu;
pub mod knl;
pub mod net;

pub use collective::{
    allreduce_rabenseifner, broadcast_tree, linear_exchange, reduce_tree, round_robin_exchange,
};
pub use compute::ComputeModel;
pub use gpu::GpuDevice;
pub use knl::{ClusterMode, KnlChip, McdramMode};
pub use net::AlphaBeta;
