//! The Intel Knights Landing chip model (§2.1, §6.2).
//!
//! What the Figure 12 experiment needs from the hardware: the MCDRAM
//! capacity rule (“the fast memory should be able to handle P copies of
//! weight and P copies of data”, §6.2) and the bandwidth cliff between
//! MCDRAM (475 GB/s measured) and DDR4 (90 GB/s).

/// MCDRAM operating modes (§2.1 item 2, Figure 2).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum McdramMode {
    /// MCDRAM is the last-level cache.
    Cache,
    /// MCDRAM is addressable memory alongside DDR4.
    Flat,
    /// A fraction in `[0,1]` of MCDRAM acts as cache, the rest as RAM.
    Hybrid(f64),
}

/// On-chip clustering modes (§2.1 item 3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ClusterMode {
    /// Addresses uniformly distributed over all tag directories.
    AllToAll,
    /// Four spatially-local quadrants.
    Quadrant,
    /// Two hemispheres.
    Hemisphere,
    /// Quadrants exposed as 4 NUMA nodes.
    Snc4,
    /// Hemispheres exposed as 2 NUMA nodes.
    Snc2,
}

impl ClusterMode {
    /// How many NUMA-like groups software sees.
    pub fn numa_groups(&self) -> usize {
        match self {
            ClusterMode::AllToAll | ClusterMode::Quadrant | ClusterMode::Hemisphere => 1,
            ClusterMode::Snc4 => 4,
            ClusterMode::Snc2 => 2,
        }
    }
}

/// A Knights Landing chip.
#[derive(Clone, Debug)]
pub struct KnlChip {
    /// Core count (68 on the paper's Cori nodes; 72 exists).
    pub cores: usize,
    /// Hardware threads per core (4).
    pub threads_per_core: usize,
    /// MCDRAM capacity in bytes (16 GB).
    pub mcdram_bytes: usize,
    /// DDR4 capacity in bytes (384 GB per §2.1).
    pub ddr_bytes: usize,
    /// Measured MCDRAM STREAM bandwidth, bytes/s (475 GB/s, §2.1).
    pub mcdram_bw: f64,
    /// Measured DDR4 bandwidth, bytes/s (90 GB/s, §2.1).
    pub ddr_bw: f64,
    /// MCDRAM mode.
    pub mcdram_mode: McdramMode,
    /// Clustering mode.
    pub cluster_mode: ClusterMode,
}

impl Default for KnlChip {
    fn default() -> Self {
        Self::cori_node()
    }
}

impl KnlChip {
    /// The paper's Cori KNL node: Xeon Phi 7250, 68 cores @ 1.4 GHz.
    pub fn cori_node() -> Self {
        Self {
            cores: 68,
            threads_per_core: 4,
            mcdram_bytes: 16 * (1 << 30),
            ddr_bytes: 384 * (1usize << 30),
            mcdram_bw: 475.0e9,
            ddr_bw: 90.0e9,
            mcdram_mode: McdramMode::Flat,
            cluster_mode: ClusterMode::Quadrant,
        }
    }

    /// Total hardware threads.
    pub fn hardware_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Bytes of MCDRAM usable as addressable fast RAM under the current
    /// mode (cache-mode MCDRAM is not directly allocatable).
    pub fn fast_memory_bytes(&self) -> usize {
        match self.mcdram_mode {
            McdramMode::Cache => 0,
            McdramMode::Flat => self.mcdram_bytes,
            McdramMode::Hybrid(cache_frac) => {
                let f = cache_frac.clamp(0.0, 1.0);
                (self.mcdram_bytes as f64 * (1.0 - f)) as usize
            }
        }
    }

    /// Effective bandwidth for a working set of `bytes`: MCDRAM speed
    /// while it fits in fast memory, DDR speed once it spills.
    pub fn effective_bandwidth(&self, working_set: usize) -> f64 {
        if working_set
            <= self.fast_memory_bytes().max(match self.mcdram_mode {
                // In cache mode a working set within MCDRAM capacity still
                // enjoys MCDRAM bandwidth through the cache.
                McdramMode::Cache => self.mcdram_bytes,
                _ => 0,
            })
        {
            self.mcdram_bw
        } else {
            self.ddr_bw
        }
    }

    /// The §6.2 capacity rule: the largest partition count `P` (from the
    /// candidate list) such that `P` copies of (weights + data shard)
    /// fit in fast memory. Returns 1 if even one copy spills to DDR.
    ///
    /// “The limitation of this method is that the fast memory … should be
    /// able to handle P copies of weight and P copies of data.”
    pub fn max_partitions(
        &self,
        weight_bytes: usize,
        data_copy_bytes: usize,
        candidates: &[usize],
    ) -> usize {
        let budget = match self.mcdram_mode {
            McdramMode::Cache => self.mcdram_bytes,
            _ => self.fast_memory_bytes(),
        };
        let per_copy = weight_bytes + data_copy_bytes;
        let mut best = 1;
        for &p in candidates {
            if p >= 1 && p.saturating_mul(per_copy) <= budget && p > best {
                best = p;
            }
        }
        best
    }

    /// Cores available to each of `p` partitions (§6.2 divides the chip
    /// evenly).
    pub fn cores_per_partition(&self, p: usize) -> usize {
        assert!(p > 0, "partition count must be positive");
        self.cores / p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cori_node_matches_section_2_1() {
        let k = KnlChip::cori_node();
        assert_eq!(k.cores, 68);
        assert_eq!(k.hardware_threads(), 272);
        assert_eq!(k.mcdram_bytes, 16 * (1 << 30));
        assert!((k.mcdram_bw - 475.0e9).abs() < 1.0);
        assert!((k.ddr_bw - 90.0e9).abs() < 1.0);
    }

    #[test]
    fn bandwidth_cliff_at_fast_memory_boundary() {
        let k = KnlChip::cori_node();
        assert!((k.effective_bandwidth(1 << 30) - 475.0e9).abs() < 1.0);
        assert!((k.effective_bandwidth(32 * (1 << 30)) - 90.0e9).abs() < 1.0);
    }

    #[test]
    fn hybrid_mode_splits_capacity() {
        let mut k = KnlChip::cori_node();
        k.mcdram_mode = McdramMode::Hybrid(0.25);
        assert_eq!(k.fast_memory_bytes(), 12 * (1 << 30));
        k.mcdram_mode = McdramMode::Cache;
        assert_eq!(k.fast_memory_bytes(), 0);
    }

    #[test]
    fn figure_12_capacity_rule() {
        // §6.2: AlexNet = 249 MB weights, one CIFAR copy = 687 MB →
        // MCDRAM (16 GB) holds at most 16 copies (16·936 MB ≈ 14.6 GB) but
        // not 32 (29.9 GB).
        let k = KnlChip::cori_node();
        let weights = 249 * 1_000_000;
        let data = 687 * 1_000_000;
        let p = k.max_partitions(weights, data, &[1, 4, 8, 16, 32]);
        assert_eq!(p, 16);
    }

    #[test]
    fn capacity_rule_degrades_to_one() {
        let k = KnlChip::cori_node();
        // A 20 GB working set can't even hold one copy in MCDRAM.
        let p = k.max_partitions(20 * (1 << 30), 0, &[1, 4, 8, 16]);
        assert_eq!(p, 1);
    }

    #[test]
    fn snc4_exposes_four_numa_groups() {
        assert_eq!(ClusterMode::Snc4.numa_groups(), 4);
        assert_eq!(ClusterMode::Snc2.numa_groups(), 2);
        assert_eq!(ClusterMode::Quadrant.numa_groups(), 1);
    }

    #[test]
    fn cores_split_evenly() {
        let k = KnlChip::cori_node();
        assert_eq!(k.cores_per_partition(4), 17);
        assert_eq!(k.cores_per_partition(16), 4);
    }
}
