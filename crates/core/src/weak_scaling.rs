//! The Table 4 weak-scaling model: GoogLeNet / VGG on ImageNet over
//! 68 → 4352 KNL cores.
//!
//! Weak scaling fixes the per-node work (each node holds a full ImageNet
//! copy and a fixed batch) and grows the node count, so per-iteration
//! time is
//!
//! ```text
//! T(P) = T(1) + allreduce(P, |W|)
//! ```
//!
//! and efficiency is `T(1)/T(P)`. The allreduce follows the
//! reduce-scatter + allgather (Rabenseifner) cost `2·log₂P·α +
//! 2·((P−1)/P)·|W|·β` — which is why the paper's VGG efficiency *flattens*
//! around 78–80 % instead of collapsing: the bandwidth term saturates at
//! `2·|W|·β`.
//!
//! The effective α/β are calibrated from the paper's own 2-node
//! measurements (GoogLeNet 1533 s → 1590 s, VGG 1318 s → 1440 s): MPI
//! allreduce driven by 1.4 GHz KNL cores in 2017 achieved a few hundred
//! MB/s effective — far below wire speed — and tens of milliseconds of
//! per-iteration fixed overhead. Absolute times are the paper's own
//! baselines; the model contributes the *scaling shape*.

use easgd_hardware::collective::allreduce_rabenseifner;
use easgd_hardware::net::AlphaBeta;
use easgd_nn::spec::ModelSpec;

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct WeakScalingRow {
    /// Total cores (nodes × 68).
    pub cores: usize,
    /// KNL nodes.
    pub nodes: usize,
    /// Modelled seconds for the row's iteration budget.
    pub total_seconds: f64,
    /// Weak-scaling efficiency `T(1)/T(P)` in `[0, 1]`.
    pub efficiency: f64,
}

/// Weak-scaling model for one model/dataset pair.
#[derive(Clone, Debug)]
pub struct WeakScalingModel {
    /// The neural network being trained.
    pub spec: ModelSpec,
    /// Measured (or modelled) single-node seconds per iteration.
    pub base_iteration_seconds: f64,
    /// Effective allreduce link (calibrated, see module docs).
    pub link: AlphaBeta,
    /// Cores per node (68 on Cori's KNL partition).
    pub cores_per_node: usize,
}

/// The calibrated effective MPI-on-KNL allreduce link.
pub fn knl_mpi_effective_link() -> AlphaBeta {
    AlphaBeta::new("MPI allreduce on KNL (effective)", 0.04, 2.4e-9)
}

impl WeakScalingModel {
    /// Table 4's GoogLeNet row set: base time 1533 s / 300 iterations on
    /// one 68-core KNL node.
    pub fn googlenet_imagenet() -> Self {
        Self {
            spec: easgd_nn::spec::spec_googlenet(),
            base_iteration_seconds: 1533.0 / 300.0,
            link: knl_mpi_effective_link(),
            cores_per_node: 68,
        }
    }

    /// Table 4's VGG row set: base time 1318 s / 80 iterations on one
    /// node.
    pub fn vgg_imagenet() -> Self {
        Self {
            spec: easgd_nn::spec::spec_vgg19(),
            base_iteration_seconds: 1318.0 / 80.0,
            link: knl_mpi_effective_link(),
            cores_per_node: 68,
        }
    }

    /// Per-iteration communication seconds at `nodes` nodes.
    pub fn comm_seconds(&self, nodes: usize) -> f64 {
        allreduce_rabenseifner(&self.link, nodes, self.spec.weight_bytes())
    }

    /// Per-iteration seconds at `nodes` nodes.
    pub fn iteration_seconds(&self, nodes: usize) -> f64 {
        self.base_iteration_seconds + self.comm_seconds(nodes)
    }

    /// Weak-scaling efficiency at `nodes` nodes.
    pub fn efficiency(&self, nodes: usize) -> f64 {
        self.base_iteration_seconds / self.iteration_seconds(nodes)
    }

    /// Builds the Table 4 rows for the given node counts and iteration
    /// budget.
    pub fn table(&self, node_counts: &[usize], iterations: usize) -> Vec<WeakScalingRow> {
        node_counts
            .iter()
            .map(|&nodes| WeakScalingRow {
                cores: nodes * self.cores_per_node,
                nodes,
                total_seconds: self.iteration_seconds(nodes) * iterations as f64,
                efficiency: self.efficiency(nodes),
            })
            .collect()
    }
}

/// Intel Caffe's weak-scaling efficiencies reported by the paper (§7.1)
/// for the 2176-core point, used for the comparison print-out.
pub const INTEL_CAFFE_GOOGLENET_2176: f64 = 0.87;
/// See [`INTEL_CAFFE_GOOGLENET_2176`].
pub const INTEL_CAFFE_VGG_2176: f64 = 0.62;

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's node counts: 1, 2, 4, …, 64 (68 → 4352 cores).
    fn nodes() -> Vec<usize> {
        vec![1, 2, 4, 8, 16, 32, 64]
    }

    #[test]
    fn single_node_is_the_baseline() {
        let m = WeakScalingModel::googlenet_imagenet();
        assert_eq!(m.comm_seconds(1), 0.0);
        assert!((m.efficiency(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_decreases_with_nodes() {
        for m in [
            WeakScalingModel::googlenet_imagenet(),
            WeakScalingModel::vgg_imagenet(),
        ] {
            let effs: Vec<f64> = nodes().iter().map(|&n| m.efficiency(n)).collect();
            for w in effs.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "efficiency increased: {effs:?}");
            }
        }
    }

    #[test]
    fn googlenet_scales_better_than_vgg() {
        // Table 4's headline contrast: 91.6% vs 80.2% at 4352 cores,
        // driven by the 20× weight-size difference.
        let g = WeakScalingModel::googlenet_imagenet();
        let v = WeakScalingModel::vgg_imagenet();
        for &n in &nodes()[1..] {
            assert!(g.efficiency(n) > v.efficiency(n), "at {n} nodes");
        }
    }

    #[test]
    fn efficiencies_land_near_paper_values() {
        // Paper: GoogLeNet 92.3% @ 2176 cores (32 nodes), 91.6% @ 4352;
        // VGG 78.5% @ 2176, 80.2% @ 4352. The model must land in the
        // right bands.
        let g = WeakScalingModel::googlenet_imagenet();
        let v = WeakScalingModel::vgg_imagenet();
        let g32 = g.efficiency(32);
        let v32 = v.efficiency(32);
        assert!((0.88..0.98).contains(&g32), "GoogLeNet @32 = {g32}");
        assert!((0.72..0.90).contains(&v32), "VGG @32 = {v32}");
        assert!(g.efficiency(64) > 0.85);
        assert!(v.efficiency(64) > 0.70);
    }

    #[test]
    fn vgg_efficiency_flattens_at_scale() {
        // The saturating (P−1)/P bandwidth term: the drop from 32 → 64
        // nodes is much smaller than from 2 → 4.
        let v = WeakScalingModel::vgg_imagenet();
        let early_drop = v.efficiency(2) - v.efficiency(4);
        let late_drop = v.efficiency(32) - v.efficiency(64);
        assert!(late_drop < early_drop);
    }

    #[test]
    fn beats_intel_caffe_at_2176_cores() {
        // §7.1's comparison point.
        let g = WeakScalingModel::googlenet_imagenet();
        let v = WeakScalingModel::vgg_imagenet();
        assert!(g.efficiency(32) > INTEL_CAFFE_GOOGLENET_2176);
        assert!(v.efficiency(32) > INTEL_CAFFE_VGG_2176);
    }

    #[test]
    fn table_rows_are_consistent() {
        let m = WeakScalingModel::googlenet_imagenet();
        let rows = m.table(&nodes(), 300);
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].cores, 68);
        assert_eq!(rows[6].cores, 4352);
        // Total time at 1 node matches the paper's measured base.
        assert!((rows[0].total_seconds - 1533.0).abs() < 1.0);
        // Time grows, efficiency shrinks.
        assert!(rows[6].total_seconds > rows[0].total_seconds);
        assert!(rows[6].efficiency < rows[0].efficiency);
    }

    #[test]
    fn two_node_times_near_paper_measurements() {
        // GoogLeNet 2-node: paper 1590 s for 300 iterations.
        let g = WeakScalingModel::googlenet_imagenet();
        let t = g.iteration_seconds(2) * 300.0;
        assert!((1550.0..1650.0).contains(&t), "GoogLeNet 2-node = {t}");
        // VGG 2-node: paper 1440 s for 80 iterations.
        let v = WeakScalingModel::vgg_imagenet();
        let t = v.iteration_seconds(2) * 80.0;
        assert!((1380.0..1500.0).contains(&t), "VGG 2-node = {t}");
    }
}
