// xtask: allow(wall-clock) — a benchmark harness measures real time by
// definition; the pragma is confined to this bench timer binary.
//! Kernel perf-trajectory harness.
//!
//! Runs the dense-compute kernels — GEMM (blocked vs the retained naive
//! seed baseline), im2col, and the Eq. 1/2/5–6 elastic updates — at fixed
//! paper-era shapes (GoogleNet/VGG-class layers, LeNet/VGG-class packed
//! arenas) and emits `BENCH_kernels.json` at the repo root so the perf
//! trajectory is machine-readable from PR 2 onward.
//!
//! ```text
//! cargo run --release -p easgd-bench --bin kernels            # full run, writes JSON
//! cargo run --release -p easgd-bench --bin kernels -- --smoke # one short iteration, no JSON
//! cargo run --release -p easgd-bench --bin kernels -- --out p # write JSON to `p`
//! ```
//!
//! Every entry records wall milliseconds (best of several runs) and a
//! derived rate, plus the two acceptance ratios of ISSUE 2: blocked vs
//! naive single-threaded at 256³ and blocked vs the seed's fork-join
//! path at 1024³.

use easgd::{partitioned_hogwild_easgd, partitioned_sync_easgd, TrainConfig};
use easgd_bench::arg_value;
use easgd_data::SyntheticSpec;
use easgd_nn::models::lenet_tiny;
use easgd_tensor::ops;
use easgd_tensor::par::{self, PartitionedPool, WorkerPool};
use easgd_tensor::{
    active_tier, gemm, gemm_naive, gemm_naive_par, gemm_serial, im2col, Conv2dGeometry, Rng,
    Transpose,
};
use std::sync::Arc;
use std::time::Instant;

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
}

/// One measured point of the trajectory.
struct Entry {
    bench: &'static str,
    shape: String,
    implementation: &'static str,
    /// Threads the measured implementation actually used — per entry,
    /// because one file now mixes serial kernels, pool-wide kernels, the
    /// thread-scaling curve, and partitioned trainers at P·T threads.
    threads: usize,
    ms: f64,
    /// Work per iteration: flops for GEMM, moved elements for the
    /// bandwidth kernels, rounds for the trainer benches.
    work: u64,
    /// `"gflops"`, `"melem_per_s"`, or `"rounds_per_s"`.
    rate_unit: &'static str,
}

impl Entry {
    fn rate(&self) -> f64 {
        let per_sec = self.work as f64 / (self.ms / 1e3).max(1e-12);
        match self.rate_unit {
            "gflops" => per_sec / 1e9,
            "rounds_per_s" => per_sec,
            _ => per_sec / 1e6,
        }
    }
}

/// Best-of-several wall time for `f`, in milliseconds. In smoke mode a
/// single iteration (compile-and-run sanity, no timing claims).
fn time_ms(smoke: bool, mut f: impl FnMut()) -> f64 {
    if smoke {
        let t = Instant::now();
        f();
        return t.elapsed().as_secs_f64() * 1e3;
    }
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut iters = 0u32;
    while iters < 3 || (spent < 0.6 && iters < 40) {
        let t = Instant::now();
        f();
        let s = t.elapsed().as_secs_f64();
        best = best.min(s);
        spent += s;
        iters += 1;
    }
    best * 1e3
}

/// Interleaved A/B measurement: alternates the two implementations and
/// reports the minimum wall time of each side. A sequential "time A, then
/// time B" layout hands whichever side runs first the colder cache and
/// higher turbo headroom; interleaving spreads thermal drift over both
/// sides, and the per-side minimum estimates true cost under transient
/// noisy-neighbor load (which only ever adds time, never subtracts it).
fn time_pair_ms(
    smoke: bool,
    budget_s: f64,
    mut fa: impl FnMut(),
    mut fb: impl FnMut(),
) -> (f64, f64) {
    if smoke {
        let (a, b) = (time_ms(true, &mut fa), time_ms(true, &mut fb));
        return (a, b);
    }
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut spent = 0.0;
    let mut rounds = 0u32;
    // The rounds cap bounds pathological cases only — fast pairs must be
    // allowed to fill their whole budget, otherwise a sub-millisecond
    // kernel samples a ~100 ms window and the minimum never sees a calm
    // slice of this (noisy, shared) box.
    while rounds < 5 || (spent < budget_s && rounds < 4000) {
        for (best, f) in [
            (&mut best_a, &mut fa as &mut dyn FnMut()),
            (&mut best_b, &mut fb),
        ] {
            let t = Instant::now();
            f();
            let s = t.elapsed().as_secs_f64();
            *best = best.min(s);
            spent += s;
        }
        rounds += 1;
    }
    (best_a * 1e3, best_b * 1e3)
}

/// One naive-vs-blocked GEMM comparison point, measured interleaved.
#[allow(clippy::too_many_arguments)]
fn gemm_pair(
    entries: &mut Vec<Entry>,
    smoke: bool,
    budget_s: f64,
    bench: &'static str,
    label: Option<&str>,
    m: usize,
    n: usize,
    k: usize,
    naive: (&'static str, NaiveFn, usize),
    blocked: (&'static str, NaiveFn, usize),
) {
    let a = rand_vec(m * k, 0xA + m as u64);
    let b = rand_vec(k * n, 0xB + n as u64);
    let mut c_naive = vec![0.0f32; m * n];
    let mut c_blocked = vec![0.0f32; m * n];
    let (naive_ms, blocked_ms) = time_pair_ms(
        smoke,
        budget_s,
        || naive.1(m, n, k, &a, &b, &mut c_naive),
        || blocked.1(m, n, k, &a, &b, &mut c_blocked),
    );
    let shape = match label {
        Some(l) => format!("{l}/{m}x{n}x{k}"),
        None => format!("{m}x{n}x{k}"),
    };
    for (implementation, ms, threads) in [
        (naive.0, naive_ms, naive.2),
        (blocked.0, blocked_ms, blocked.2),
    ] {
        entries.push(Entry {
            bench,
            shape: shape.clone(),
            implementation,
            threads,
            ms,
            work: 2 * (m * n * k) as u64,
            rate_unit: "gflops",
        });
    }
}

type NaiveFn = fn(usize, usize, usize, &[f32], &[f32], &mut [f32]);

fn run_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_naive(Transpose::No, Transpose::No, m, n, k, 1.0, a, b, 0.0, c);
}
fn run_naive_par(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_naive_par(Transpose::No, Transpose::No, m, n, k, 1.0, a, b, 0.0, c);
}
fn run_blocked_serial(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_serial(Transpose::No, Transpose::No, m, n, k, 1.0, a, b, 0.0, c);
}
fn run_blocked(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm(Transpose::No, Transpose::No, m, n, k, 1.0, a, b, 0.0, c);
}

fn bench_gemm(entries: &mut Vec<Entry>, smoke: bool) {
    // Acceptance point 1: single-threaded blocked vs naive at 256³.
    let s = if smoke { 64 } else { 256 };
    // The two acceptance points get a longer window: the checked-in
    // ratios should reflect kernel cost, not whichever transient load
    // happened to coincide with a short run.
    gemm_pair(
        entries,
        smoke,
        8.0,
        "gemm",
        None,
        s,
        s,
        s,
        ("naive_serial", run_naive, 1),
        ("blocked_serial", run_blocked_serial, 1),
    );

    // Acceptance point 2: full blocked dispatch (persistent pool) vs the
    // seed's spawn-per-call fork-join at 1024³.
    let s = if smoke { 96 } else { 1024 };
    gemm_pair(
        entries,
        smoke,
        8.0,
        "gemm",
        None,
        s,
        s,
        s,
        ("naive_fork_join", run_naive_par, par::max_threads()),
        ("blocked_pool", run_blocked, par::max_threads()),
    );

    // Paper-era layer shapes (im2col GEMM dims: m=out_ch, k=in_ch·k²,
    // n=out_h·out_w) and a VGG-class dense layer, blocked vs naive.
    let layer_shapes: &[(&'static str, usize, usize, usize)] = &[
        // GoogleNet inception 3a 3×3 branch @28×28.
        ("googlenet_3a_3x3", 128, 784, 96 * 9),
        // VGG conv3_1-class layer @28×28.
        ("vgg_conv3_1", 256, 784, 128 * 9),
        // VGG fc6-class dense forward, batch 32.
        ("vgg_fc6_b32", 32, 4096, 4096),
    ];
    for &(name, m, n, k) in layer_shapes {
        let (m, n, k) = if smoke {
            (m.min(32), n.min(64), k.min(64))
        } else {
            (m, n, k)
        };
        // The fc layer is an acceptance point (the skinny-nest cliff
        // fix); it gets the long window like the other gated pairs.
        let budget_s = if name == "vgg_fc6_b32" { 8.0 } else { 3.0 };
        gemm_pair(
            entries,
            smoke,
            budget_s,
            "gemm_layer",
            Some(name),
            m,
            n,
            k,
            ("naive_fork_join", run_naive_par, par::max_threads()),
            ("blocked_pool", run_blocked, par::max_threads()),
        );
    }
}

/// The tentpole's thread-scaling curve: one GEMM shape swept over worker
/// counts `1..=ncores` (powers of two plus the full chip) by installing
/// a sized pool override around the standard dispatch — the same seam
/// the chip partitions use, so the curve measures exactly the code the
/// partitioned trainers run.
fn bench_gemm_scaling(entries: &mut Vec<Entry>, smoke: bool) {
    let s = if smoke { 96 } else { 512 };
    let a = rand_vec(s * s, 0x51);
    let b = rand_vec(s * s, 0x52);
    let mut c = vec![0.0f32; s * s];
    let max = par::max_threads();
    let mut counts: Vec<usize> = Vec::new();
    let mut t = 1usize;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    counts.push(max);
    for &threads in &counts {
        let pool = Arc::new(WorkerPool::new(threads - 1));
        let ms = par::with_pool(&pool, || {
            time_ms(smoke, || {
                gemm(
                    Transpose::No,
                    Transpose::No,
                    s,
                    s,
                    s,
                    1.0,
                    &a,
                    &b,
                    0.0,
                    &mut c,
                )
            })
        });
        entries.push(Entry {
            bench: "gemm_scaling",
            shape: format!("{s}x{s}x{s}"),
            implementation: "blocked_pool",
            threads,
            ms,
            work: 2 * (s * s * s) as u64,
            rate_unit: "gflops",
        });
    }
}

/// The Figure 12-style table on real threads: the §6.2 chip partition
/// swept over `P ∈ {1, 2, 4, 8}` groups, each running the full local
/// optimizer on its share of the cores, under both combine rules
/// (bulk-synchronous tree and lock-free Hogwild). Reported per round —
/// the partitioned trainers are bit-identical to the cluster schedule at
/// every width, so this row measures hardware scaling, not algorithm
/// drift.
fn bench_partitioned(entries: &mut Vec<Entry>, smoke: bool) {
    let spec = SyntheticSpec::mnist_small();
    let task = spec.task(0x62);
    let (train, test) = task.train_test(if smoke { 128 } else { 512 }, 64, 0x63);
    let proto = lenet_tiny(0x64);
    let rounds = if smoke { 2 } else { 8 };
    let widths: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    for &p in widths {
        let group_threads = (par::max_threads() / p).max(1);
        let pool = PartitionedPool::with_group_threads(p, group_threads);
        let cfg = TrainConfig {
            workers: p,
            batch: 16,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations: rounds,
            seed: 0x65,
            comm_period: 1,
        };
        for (implementation, run_fn) in [
            (
                "sync_tree",
                &(|| partitioned_sync_easgd(&proto, &train, &test, &cfg, &pool, 0))
                    as &dyn Fn() -> easgd::RunResult,
            ),
            (
                "hogwild",
                &(|| partitioned_hogwild_easgd(&proto, &train, &test, &cfg, &pool)),
            ),
        ] {
            // One warm-up run (thread spawn, allocator), then the timed
            // runs; per-round cost is the best run divided by rounds.
            run_fn();
            let reps = if smoke { 1 } else { 3 };
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                best = best.min(run_fn().wall_seconds);
            }
            entries.push(Entry {
                bench: "partitioned_easgd",
                shape: format!("lenet_tiny/P{p}"),
                implementation,
                threads: p * group_threads,
                ms: best * 1e3 / rounds as f64,
                work: 1,
                rate_unit: "rounds_per_s",
            });
        }
    }
}

fn bench_im2col(entries: &mut Vec<Entry>, smoke: bool) {
    let geoms: &[(&'static str, Conv2dGeometry)] = &[
        (
            // VGG conv2-class lowering: 64 channels @56×56, 3×3 s1 p1.
            "vgg_conv2_64x56x56_k3",
            Conv2dGeometry {
                in_channels: 64,
                in_h: 56,
                in_w: 56,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
        ),
        (
            // GoogleNet inception-3 input: 192 channels @28×28, 3×3 s1 p1.
            "googlenet_192x28x28_k3",
            Conv2dGeometry {
                in_channels: 192,
                in_h: 28,
                in_w: 28,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
        ),
    ];
    for (name, geom) in geoms {
        let geom = if smoke {
            Conv2dGeometry {
                in_channels: 4,
                in_h: 8,
                in_w: 8,
                ..*geom
            }
        } else {
            *geom
        };
        let image = rand_vec(geom.input_len(), 0xE);
        let mut col = vec![0.0f32; geom.col_rows() * geom.col_cols()];
        let ms = time_ms(smoke, || im2col(&geom, &image, &mut col));
        entries.push(Entry {
            bench: "im2col",
            shape: (*name).to_string(),
            implementation: "row_sliver",
            threads: 1,
            ms,
            work: col.len() as u64,
            rate_unit: "melem_per_s",
        });
    }
}

fn bench_elastic(entries: &mut Vec<Entry>, smoke: bool) {
    // Packed-arena sizes: LeNet-class (431k) and a VGG-conv-class stack
    // (14.7M) — §5.2's single-layer layout applies the update to the
    // whole arena in one flat pass.
    let sizes: &[(&'static str, usize)] =
        &[("lenet_arena", 431_080), ("vgg_conv_arena", 14_710_464)];
    for &(name, len) in sizes {
        let n = if smoke { 4096 } else { len };
        let grad = rand_vec(n, 1);
        let center = rand_vec(n, 2);
        let mut local = rand_vec(n, 3);
        let mut vel = vec![0.0f32; n];
        for (implementation, ms) in [
            (
                "eq1_worker",
                time_ms(smoke, || {
                    ops::elastic_worker_update(0.05, 0.3, &mut local, &grad, &center)
                }),
            ),
            (
                "eq2_center",
                time_ms(smoke, || {
                    ops::elastic_center_update(0.05, 0.3, &mut local, &center)
                }),
            ),
            (
                "eq5_6_momentum",
                time_ms(smoke, || {
                    ops::elastic_momentum_update(
                        0.05, 0.9, 0.3, &mut local, &mut vel, &grad, &center,
                    )
                }),
            ),
            (
                "axpy",
                time_ms(smoke, || ops::axpy(0.01, &grad, &mut local)),
            ),
        ] {
            entries.push(Entry {
                bench: "elastic_update",
                shape: format!("{name}/{n}"),
                implementation,
                // Threads the banded BLAS-1 path may fan out over (the
                // large-slice gate decides per call).
                threads: par::max_threads(),
                ms,
                work: n as u64,
                rate_unit: "melem_per_s",
            });
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn find(entries: &[Entry], bench: &str, implementation: &str, shape_prefix: &str) -> Option<f64> {
    entries
        .iter()
        .find(|e| {
            e.bench == bench
                && e.implementation == implementation
                && e.shape.starts_with(shape_prefix)
        })
        .map(|e| e.ms)
}

fn gflops(entries: &[Entry], bench: &str, implementation: &str, shape_prefix: &str) -> f64 {
    entries
        .iter()
        .find(|e| {
            e.bench == bench
                && e.implementation == implementation
                && e.shape.starts_with(shape_prefix)
        })
        .map(Entry::rate)
        .unwrap_or(0.0)
}

fn render_json(entries: &[Entry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str("  \"generated_by\": \"cargo run --release -p easgd-bench --bin kernels\",\n");
    out.push_str(&format!(
        "  \"simd_tier\": \"{}\",\n",
        json_escape(active_tier())
    ));
    // The acceptance ratios of ISSUE 2 (higher = blocked is faster).
    let serial = match (
        find(entries, "gemm", "naive_serial", "256x"),
        find(entries, "gemm", "blocked_serial", "256x"),
    ) {
        (Some(naive), Some(blocked)) if blocked > 0.0 => naive / blocked,
        _ => 0.0,
    };
    let par = match (
        find(entries, "gemm", "naive_fork_join", "1024x"),
        find(entries, "gemm", "blocked_pool", "1024x"),
    ) {
        (Some(naive), Some(blocked)) if blocked > 0.0 => naive / blocked,
        _ => 0.0,
    };
    // The ISSUE 9 acceptance points: absolute serial GFLOPS at 256³ (the
    // explicit-SIMD microkernel's headline) and the skinny-shape cliff
    // fix at the vgg_fc6 batch-32 dense layer, both absolute and
    // relative to the seed's fork-join path.
    let serial_gf = gflops(entries, "gemm", "blocked_serial", "256x");
    let vgg_gf = gflops(entries, "gemm_layer", "blocked_pool", "vgg_fc6_b32");
    let vgg_speedup = match (
        find(entries, "gemm_layer", "naive_fork_join", "vgg_fc6_b32"),
        find(entries, "gemm_layer", "blocked_pool", "vgg_fc6_b32"),
    ) {
        (Some(naive), Some(blocked)) if blocked > 0.0 => naive / blocked,
        _ => 0.0,
    };
    out.push_str("  \"acceptance\": {\n");
    out.push_str(&format!(
        "    \"gemm_256_serial_speedup_vs_naive\": {serial:.2},\n"
    ));
    out.push_str(&format!(
        "    \"gemm_1024_speedup_vs_seed_fork_join\": {par:.2},\n"
    ));
    out.push_str(&format!(
        "    \"gemm_256_serial_gflops\": {serial_gf:.2},\n"
    ));
    out.push_str(&format!("    \"vgg_fc6_b32_gflops\": {vgg_gf:.2},\n"));
    out.push_str(&format!(
        "    \"vgg_fc6_b32_speedup_vs_seed_fork_join\": {vgg_speedup:.2}\n"
    ));
    out.push_str("  },\n");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"shape\": \"{}\", \"impl\": \"{}\", \"threads\": {}, \"ms\": {:.4}, \"{}\": {:.3}}}{}\n",
            json_escape(e.bench),
            json_escape(&e.shape),
            json_escape(e.implementation),
            e.threads,
            e.ms,
            e.rate_unit,
            e.rate(),
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Smoke-mode schema check: the rendered JSON must carry every
/// acceptance field the driver greps for, the per-entry `threads`
/// field (ISSUE 9 replaced the old top-level count), and at least one
/// row of the thread-scaling curve and the Figure 12-style partition
/// table. Panics loudly on any miss so CI's smoke leg fails.
fn validate_schema(json: &str, entries: &[Entry]) {
    for key in [
        "\"simd_tier\"",
        "\"gemm_256_serial_speedup_vs_naive\"",
        "\"gemm_1024_speedup_vs_seed_fork_join\"",
        "\"gemm_256_serial_gflops\"",
        "\"vgg_fc6_b32_gflops\"",
        "\"vgg_fc6_b32_speedup_vs_seed_fork_join\"",
    ] {
        assert!(json.contains(key), "schema check: missing {key}");
    }
    assert!(
        !json.contains("\n  \"threads\""),
        "schema check: stale top-level threads field"
    );
    let body = json.split("\"entries\"").nth(1).unwrap_or("");
    assert_eq!(
        body.matches("\"threads\":").count(),
        entries.len(),
        "schema check: every entry must carry its own threads count"
    );
    for bench in ["gemm_scaling", "partitioned_easgd"] {
        assert!(
            entries.iter().any(|e| e.bench == bench),
            "schema check: no {bench} rows"
        );
    }
    println!("schema check: acceptance fields + per-entry threads OK");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut entries = Vec::new();

    bench_gemm(&mut entries, smoke);
    bench_gemm_scaling(&mut entries, smoke);
    bench_im2col(&mut entries, smoke);
    bench_elastic(&mut entries, smoke);
    bench_partitioned(&mut entries, smoke);

    println!(
        "{:<18} {:<28} {:<16} {:>7} {:>10} {:>12}",
        "bench", "shape", "impl", "threads", "ms", "rate"
    );
    for e in &entries {
        println!(
            "{:<18} {:<28} {:<16} {:>7} {:>10.3} {:>9.2} {}",
            e.bench,
            e.shape,
            e.implementation,
            e.threads,
            e.ms,
            e.rate(),
            e.rate_unit,
        );
    }

    let json = render_json(&entries);
    if smoke {
        validate_schema(&json, &entries);
        println!("\nsmoke run: all kernel benches executed once; JSON not written");
        return;
    }
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let out_path = arg_value("--out").unwrap_or_else(|| default_out.to_string());
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
