//! Golden-trace determinism suite.
//!
//! Every trainer is run on a fixed-seed tiny task and reduced to an
//! FNV-1a digest over its *observable* outputs: the loss trace, the
//! final center hash, accuracy, simulated time, and the per-category
//! `TimeBreakdown`. The digests are checked into
//! `tests/golden/digests.txt`; a mismatch means a change altered
//! numerical behavior for a fixed seed.
//!
//! The file has two digest columns per method:
//!
//! * `base` — fields that existed before the engine refactor (accuracy,
//!   final loss, sim seconds, breakdown, accuracy trace). These were
//!   recorded from the pre-engine trainers, so they prove the port is
//!   behavior-preserving bit-for-bit.
//! * `full` — `base` plus the engine-era observables (per-step loss
//!   trace and final-center hash). These lock the ported trainers
//!   against future regressions.
//!
//! Wall-clock trainers are digested at `workers = 1` (the only
//! configuration where thread scheduling cannot reorder float ops);
//! the simulated-clock trainers are deterministic at any rank count and
//! are digested at multiple workers. Wall-clock *seconds* are never
//! digested.
//!
//! To regenerate after an intentional numerical change:
//! `GOLDEN_RECORD=1 cargo test --test golden_traces` and commit the
//! rewritten digest file.
//!
//! Caveat: digests assume one build environment (same libm, same
//! target features). They are regenerated, not hand-edited.

use knl_easgd::algorithms as alg;
use knl_easgd::prelude::*;

use alg::{
    async_server_sim, hierarchical_sync_easgd, knl_partition_run, run_method, serial_sgd,
    AsyncVariant, GpuClusterTopology, LrSchedule, MethodId, OriginalMode, RunResult, SerialConfig,
};
use easgd_nn::LayoutKind;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher — stable across platforms and runs.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f32_bits(&mut self, v: f32) {
        self.bytes(&v.to_bits().to_le_bytes());
    }
    fn f64_bits(&mut self, v: f64) {
        self.bytes(&v.to_bits().to_le_bytes());
    }
}

/// Digest of the pre-engine observables of a run (everything except
/// wall-clock time, which is real time and never reproducible).
fn base_digest(r: &RunResult) -> u64 {
    let mut h = Fnv::new();
    h.bytes(r.method.as_bytes());
    h.u64(r.iterations as u64);
    h.f32_bits(r.accuracy);
    h.f32_bits(r.final_loss);
    match r.sim_seconds {
        Some(s) => {
            h.u64(1);
            h.f64_bits(s);
        }
        None => h.u64(0),
    }
    match &r.breakdown {
        Some(b) => {
            h.u64(1);
            for cat in TimeCategory::ALL {
                h.f64_bits(b.get(cat));
            }
        }
        None => h.u64(0),
    }
    h.u64(r.trace.len() as u64);
    for p in &r.trace {
        h.u64(p.iteration as u64);
        h.f32_bits(p.accuracy);
        // Trace timestamps are digestible only on the simulated clock.
        if r.sim_seconds.is_some() {
            h.f64_bits(p.seconds);
        }
    }
    h.0
}

/// Digest of the engine-era observables: the per-step loss trace and
/// the hash of the final center parameters.
fn engine_digest(r: &RunResult) -> u64 {
    let mut h = Fnv::new();
    h.u64(r.loss_trace.len() as u64);
    for &l in &r.loss_trace {
        h.f32_bits(l);
    }
    h.u64(r.center_hash);
    h.0
}

fn full_digest(r: &RunResult) -> u64 {
    let mut h = Fnv::new();
    h.u64(base_digest(r));
    h.u64(engine_digest(r));
    h.0
}

/// The fixed tiny task every golden run trains on.
fn task() -> (Network, Dataset, Dataset) {
    let t = SyntheticSpec::mnist_small().task(7);
    let (train, test) = t.train_test(240, 80, 11);
    (lenet_tiny(23), train, test)
}

/// Fixed-seed config: small batch to keep the suite fast, η low enough
/// that every method (including the µ = 0.9 momentum family) stays
/// finite over the budget.
fn cfg(workers: usize, iterations: usize) -> TrainConfig {
    TrainConfig {
        workers,
        batch: 16,
        eta: 0.02,
        rho: 0.9 / (0.02 * workers as f32),
        mu: 0.9,
        iterations,
        seed: 0x90_1d_e2,
        comm_period: 1,
    }
}

/// Runs every golden case, returning `name -> RunResult` in a stable
/// order.
fn run_all() -> BTreeMap<String, RunResult> {
    let (net, train, test) = task();
    let costs = SimCosts::mnist_lenet_4gpu();
    let mut out = BTreeMap::new();
    let mut put = |name: &str, r: RunResult| {
        assert!(
            out.insert(name.to_string(), r).is_none(),
            "duplicate golden case {name}"
        );
    };

    // Wall-clock family: single worker is the one deterministic config.
    for m in MethodId::ALL {
        let name = format!("wall_{}_w1", m.slug());
        put(&name, run_method(m, &net, &train, &test, &cfg(1, 30)));
    }

    // Simulated cluster family: deterministic at any rank count.
    for (suffix, mode) in [
        ("serialized", OriginalMode::Serialized),
        ("pipelined", OriginalMode::Pipelined),
    ] {
        let r = alg::original_easgd_sim(&net, &train, &test, &cfg(4, 15), &costs, mode);
        put(&format!("sim_original_{suffix}_w4"), r);
    }
    for (suffix, v) in [
        ("easgd1", SyncVariant::Easgd1),
        ("easgd2", SyncVariant::Easgd2),
        ("easgd3", SyncVariant::Easgd3),
    ] {
        let r = alg::sync_easgd_sim(&net, &train, &test, &cfg(4, 20), &costs, v, 5);
        put(&format!("sim_sync_{suffix}_w4"), r);
    }
    {
        let c = cfg(2, 20);
        let shards = train.partition(2);
        let link = AlphaBeta::pcie_gen3_x16();
        for (suffix, layout) in [
            ("packed", LayoutKind::Packed),
            ("perlayer", LayoutKind::PerLayer),
        ] {
            let r = alg::sync_sgd_sim(&net, &shards, &test, &c, &link, layout, 1.5e-3, 10);
            put(&format!("sim_sync_sgd_{suffix}_w2"), r);
        }
    }
    // FCFS server: arrival order is real-time for >1 worker, so golden
    // at one worker only.
    for (suffix, v) in [("sgd", AsyncVariant::Sgd), ("easgd", AsyncVariant::Easgd)] {
        let r = async_server_sim(&net, &train, &test, &cfg(1, 30), &costs, v);
        put(&format!("sim_async_{suffix}_w1"), r);
    }
    {
        let topo = GpuClusterTopology {
            nodes: 2,
            gpus_per_node: 2,
            intra: AlphaBeta::pcie_gen3_x16(),
            inter: AlphaBeta::fdr_infiniband(),
        };
        let r = hierarchical_sync_easgd(&net, &train, &test, &cfg(4, 15), &topo);
        put("sim_hierarchical_2x2", r);
    }
    {
        let scfg = SerialConfig {
            batch: 16,
            schedule: LrSchedule::Step {
                base: 0.05,
                gamma: 0.5,
                every: 20,
            },
            mu: 0.9,
            weight_decay: 1e-4,
            iterations: 40,
            seed: 0x90_1d_e2,
            trace_every: 10,
        };
        put("serial_sgd_step", serial_sgd(&net, &train, &test, &scfg));
    }
    out
}

/// The KNL partition study returns its own outcome type; digest it
/// directly.
fn knl_digest() -> u64 {
    let (net, train, test) = task();
    let chip = KnlChip::cori_node();
    let outcome = knl_partition_run(&net, &train, &test, &cfg(4, 12), &chip, 0.8, 0.95, 4);
    let mut h = Fnv::new();
    h.u64(outcome.partitions as u64);
    h.u64(u64::from(outcome.fits_fast_memory));
    h.f64_bits(outcome.memory_penalty);
    h.f64_bits(outcome.round_seconds);
    match outcome.seconds_to_target {
        Some(s) => {
            h.u64(1);
            h.f64_bits(s);
        }
        None => h.u64(0),
    }
    h.f32_bits(outcome.final_accuracy);
    h.u64(outcome.rounds_run as u64);
    h.0
}

fn digest_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("digests.txt")
}

fn parse_goldens(text: &str) -> BTreeMap<String, (u64, Option<u64>)> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("golden line missing name");
        let base = parts
            .next()
            .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
            .unwrap_or_else(|| panic!("bad base digest on line: {line}"));
        let full = parts
            .next()
            .map(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("bad full digest"));
        map.insert(name.to_string(), (base, full));
    }
    map
}

#[test]
fn golden_digests_match() {
    let results = run_all();
    let mut actual: BTreeMap<String, (u64, Option<u64>)> = results
        .iter()
        .map(|(k, r)| (k.clone(), (base_digest(r), Some(full_digest(r)))))
        .collect();
    actual.insert("knl_partition_w4".to_string(), (knl_digest(), None));

    if std::env::var_os("GOLDEN_RECORD").is_some() {
        let mut text = String::from(
            "# Golden fixed-seed digests — regenerate with\n\
             # GOLDEN_RECORD=1 cargo test --test golden_traces\n\
             # name base_digest full_digest\n",
        );
        for (name, (base, full)) in &actual {
            match full {
                Some(f) => writeln!(text, "{name} 0x{base:016x} 0x{f:016x}").unwrap(),
                None => writeln!(text, "{name} 0x{base:016x}").unwrap(),
            }
        }
        std::fs::write(digest_path(), text).expect("write golden digests");
        return;
    }

    let text = std::fs::read_to_string(digest_path())
        .expect("tests/golden/digests.txt missing — run with GOLDEN_RECORD=1 to create");
    let expected = parse_goldens(&text);
    let mut failures = Vec::new();
    for (name, (base, full)) in &expected {
        match actual.get(name) {
            None => failures.push(format!("{name}: golden present but case no longer runs")),
            Some((ab, af)) => {
                if ab != base {
                    failures.push(format!("{name}: base digest 0x{ab:016x} != 0x{base:016x}"));
                }
                if let (Some(ef), Some(af)) = (full, af) {
                    if ef != af {
                        failures.push(format!("{name}: full digest 0x{af:016x} != 0x{ef:016x}"));
                    }
                }
            }
        }
    }
    for name in actual.keys() {
        if !expected.contains_key(name) {
            failures.push(format!(
                "{name}: no golden recorded (GOLDEN_RECORD=1 to add)"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden digest mismatches:\n  {}",
        failures.join("\n  ")
    );
}

/// Every golden case must itself be run-to-run deterministic — if this
/// fails, the digest above is meaningless for that method.
#[test]
fn golden_cases_are_run_to_run_deterministic() {
    let a = run_all();
    let b = run_all();
    assert_eq!(a.len(), b.len());
    for (name, ra) in &a {
        let rb = &b[name];
        assert_eq!(
            full_digest(ra),
            full_digest(rb),
            "{name} is not deterministic run-to-run"
        );
    }
    assert_eq!(knl_digest(), knl_digest(), "knl partition nondeterministic");
}
