//! Packed vs per-layer communication schedules (§5.2, Figure 10).
//!
//! Frameworks of the paper's era allocated each layer separately and sent
//! one message per layer. The paper packs all layers contiguously and
//! sends one message, paying the network latency α once instead of once
//! per layer. [`CommSchedule`] materializes both schedules so harnesses
//! can charge them against any α-β network model.

use crate::network::Network;
use crate::spec::ModelSpec;

/// Which parameter layout a schedule models.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LayoutKind {
    /// One contiguous arena, one message (the paper's §5.2 optimization).
    Packed,
    /// One message per parameter-carrying layer (the baseline).
    PerLayer,
}

/// A sequence of message sizes (bytes) that one model-exchange costs.
#[derive(Clone, Debug, PartialEq)]
pub struct CommSchedule {
    /// Layout this schedule was derived from.
    pub kind: LayoutKind,
    /// Message sizes in bytes, in transmission order.
    pub messages: Vec<usize>,
}

impl CommSchedule {
    /// Schedule for a runnable [`Network`].
    ///
    /// Per-layer mode sends one message per parameter *segment pair*
    /// grouped by layer (weight+bias together, as frameworks did), packed
    /// mode sends the whole arena at once.
    pub fn from_network(net: &Network, kind: LayoutKind) -> Self {
        match kind {
            LayoutKind::Packed => Self {
                kind,
                messages: vec![net.size_bytes()],
            },
            LayoutKind::PerLayer => {
                // Group `<layer>.weight` + `<layer>.bias` into one message.
                let mut messages = Vec::new();
                let mut cur_layer = String::new();
                for (name, len) in net.segment_sizes() {
                    let layer = name.split('.').next().unwrap_or(&name).to_string();
                    if let (true, Some(last)) = (layer == cur_layer, messages.last_mut()) {
                        *last += len * 4;
                    } else {
                        messages.push(len * 4);
                        cur_layer = layer;
                    }
                }
                Self { kind, messages }
            }
        }
    }

    /// Schedule for a cost-model [`ModelSpec`].
    pub fn from_spec(spec: &ModelSpec, kind: LayoutKind) -> Self {
        match kind {
            LayoutKind::Packed => Self {
                kind,
                messages: vec![spec.weight_bytes()],
            },
            LayoutKind::PerLayer => Self {
                kind,
                messages: spec.layer_message_bytes(),
            },
        }
    }

    /// Number of messages (α payments).
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    /// Total bytes moved (β payments) — identical across layouts.
    pub fn total_bytes(&self) -> usize {
        self.messages.iter().sum()
    }

    /// Transfer time in seconds under the α-β model:
    /// `Σ (α + β · bytes)` (§5.2 and Table 2 of the paper).
    pub fn time_alpha_beta(&self, alpha_s: f64, beta_s_per_byte: f64) -> f64 {
        self.messages
            .iter()
            .map(|&b| alpha_s + beta_s_per_byte * b as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::lenet_tiny;
    use crate::spec::spec_googlenet;

    #[test]
    fn packed_is_one_message_with_same_bytes() {
        let net = lenet_tiny(1);
        let packed = CommSchedule::from_network(&net, LayoutKind::Packed);
        let unpacked = CommSchedule::from_network(&net, LayoutKind::PerLayer);
        assert_eq!(packed.num_messages(), 1);
        assert!(unpacked.num_messages() > 1);
        assert_eq!(packed.total_bytes(), unpacked.total_bytes());
    }

    #[test]
    fn per_layer_groups_weight_and_bias() {
        let net = lenet_tiny(1);
        // conv1 + fc? lenet_tiny has conv, fc, fc → 3 layer messages.
        let unpacked = CommSchedule::from_network(&net, LayoutKind::PerLayer);
        assert_eq!(unpacked.num_messages(), 3);
    }

    #[test]
    fn spec_schedules_match_totals() {
        let spec = spec_googlenet();
        let packed = CommSchedule::from_spec(&spec, LayoutKind::Packed);
        let unpacked = CommSchedule::from_spec(&spec, LayoutKind::PerLayer);
        assert_eq!(packed.total_bytes(), unpacked.total_bytes());
        assert_eq!(unpacked.num_messages(), spec.layer_message_bytes().len());
    }

    #[test]
    fn packed_always_wins_under_alpha_beta() {
        // With any α > 0 the packed schedule is strictly faster — the
        // Figure 10 claim.
        let spec = spec_googlenet();
        let packed = CommSchedule::from_spec(&spec, LayoutKind::Packed);
        let unpacked = CommSchedule::from_spec(&spec, LayoutKind::PerLayer);
        // Table 2 FDR InfiniBand: α = 0.7 µs, β = 0.2 ns/byte.
        let (a, b) = (0.7e-6, 0.2e-9);
        assert!(packed.time_alpha_beta(a, b) < unpacked.time_alpha_beta(a, b));
        // And equal when latency is free.
        let p0 = packed.time_alpha_beta(0.0, b);
        let u0 = unpacked.time_alpha_beta(0.0, b);
        assert!((p0 - u0).abs() < 1e-12);
    }

    #[test]
    fn latency_saving_scales_with_message_count() {
        let spec = spec_googlenet();
        let unpacked = CommSchedule::from_spec(&spec, LayoutKind::PerLayer);
        let (a, b) = (0.7e-6, 0.2e-9);
        let saving = unpacked.time_alpha_beta(a, b)
            - CommSchedule::from_spec(&spec, LayoutKind::Packed).time_alpha_beta(a, b);
        let expect = a * (unpacked.num_messages() - 1) as f64;
        assert!((saving - expect).abs() < 1e-12);
    }
}
