//! Dataset statistics and splits: per-channel moments (the per-channel
//! normalization real pipelines use) and class-stratified splitting.

use crate::dataset::Dataset;

/// Per-channel mean and standard deviation.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelStats {
    /// Mean per channel.
    pub mean: Vec<f32>,
    /// Standard deviation per channel.
    pub std: Vec<f32>,
}

/// Computes per-channel statistics of a `[C, H, W]`-shaped dataset.
///
/// # Panics
/// Panics if samples are not rank-3 or the dataset is empty.
pub fn channel_stats(d: &Dataset) -> ChannelStats {
    assert_eq!(d.shape.len(), 3, "channel stats need [C,H,W] samples");
    assert!(!d.is_empty(), "empty dataset");
    let (c, h, w) = (d.shape[0], d.shape[1], d.shape[2]);
    let plane = h * w;
    let count = (d.len() * plane) as f64;
    let mut sum = vec![0.0f64; c];
    let mut sumsq = vec![0.0f64; c];
    for i in 0..d.len() {
        let img = d.image(i);
        for ch in 0..c {
            for &v in &img[ch * plane..(ch + 1) * plane] {
                sum[ch] += v as f64;
                sumsq[ch] += v as f64 * v as f64;
            }
        }
    }
    let mean: Vec<f32> = sum.iter().map(|&s| (s / count) as f32).collect();
    let std: Vec<f32> = sumsq
        .iter()
        .zip(&mean)
        .map(|(&sq, &m)| (((sq / count) as f32 - m * m).max(0.0)).sqrt())
        .collect();
    ChannelStats { mean, std }
}

/// Class histogram: samples per class.
pub fn class_histogram(d: &Dataset) -> Vec<usize> {
    let mut counts = vec![0usize; d.classes];
    for &l in d.labels() {
        counts[l] += 1;
    }
    counts
}

/// Splits a dataset into (head, tail) with the head containing
/// approximately `fraction` of *every class* (stratified). Sample order
/// within a class is preserved.
///
/// # Panics
/// Panics unless `0 < fraction < 1`.
pub fn stratified_split(d: &Dataset, fraction: f64) -> (Dataset, Dataset) {
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "fraction must be in (0,1)"
    );
    let per = d.sample_len();
    let hist = class_histogram(d);
    let take: Vec<usize> = hist
        .iter()
        .map(|&n| ((n as f64 * fraction).round() as usize).min(n))
        .collect();
    let mut taken = vec![0usize; d.classes];
    let mut head_images = Vec::new();
    let mut head_labels = Vec::new();
    let mut tail_images = Vec::new();
    let mut tail_labels = Vec::new();
    for i in 0..d.len() {
        let l = d.label(i);
        if taken[l] < take[l] {
            taken[l] += 1;
            head_images.extend_from_slice(d.image(i));
            head_labels.push(l);
        } else {
            tail_images.extend_from_slice(d.image(i));
            tail_labels.push(l);
        }
    }
    let _ = per;
    (
        Dataset::new(
            format!("{}-strat-head", d.name),
            d.shape.clone(),
            d.classes,
            head_images,
            head_labels,
        ),
        Dataset::new(
            format!("{}-strat-tail", d.name),
            d.shape.clone(),
            d.classes,
            tail_images,
            tail_labels,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    #[test]
    fn channel_stats_of_normalized_data_are_near_standard() {
        let d = SyntheticSpec::cifar_small().task(1).generate(300, 2);
        let s = channel_stats(&d);
        assert_eq!(s.mean.len(), 3);
        // Global normalization makes the overall stats standard; per
        // channel they are close but not exact.
        for (m, sd) in s.mean.iter().zip(&s.std) {
            assert!(m.abs() < 0.5, "mean {m}");
            assert!((0.5..1.5).contains(sd), "std {sd}");
        }
    }

    #[test]
    fn histogram_counts_round_robin_labels() {
        let d = SyntheticSpec::mnist_small().task(3).generate(35, 4);
        let h = class_histogram(&d);
        assert_eq!(h.iter().sum::<usize>(), 35);
        // 35 over 10 classes round-robin: classes 0..5 get 4, rest get 3.
        assert_eq!(h[0], 4);
        assert_eq!(h[9], 3);
    }

    #[test]
    fn stratified_split_balances_classes() {
        let d = SyntheticSpec::mnist_small().task(5).generate(200, 6);
        let (head, tail) = stratified_split(&d, 0.25);
        assert_eq!(head.len() + tail.len(), 200);
        let hh = class_histogram(&head);
        // 20 per class → 5 per class in the head.
        assert!(hh.iter().all(|&c| c == 5), "{hh:?}");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn split_rejects_bad_fraction() {
        let d = SyntheticSpec::mnist_small().task(7).generate(10, 8);
        let _ = stratified_split(&d, 1.5);
    }
}
