//! Figure 13: the benefits of using more machines and more data — reach
//! a target accuracy sooner, or a higher accuracy in a fixed time.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin fig13
//! ```
//!
//! Per the paper's setup: each node processes its own copy of the (here
//! synthetic) CIFAR-like dataset with batch 64, so total data grows with
//! the node count. Training runs on the simulated cluster (FDR IB, tree
//! allreduce) with real gradients.

use easgd::{sync_sgd_sim, TrainConfig};
use easgd_data::SyntheticSpec;
use easgd_hardware::net::AlphaBeta;
use easgd_nn::models::alexnet_cifar_tiny;
use easgd_nn::LayoutKind;

fn main() {
    let spec = SyntheticSpec {
        noise: 1.8,
        ..SyntheticSpec::cifar_small()
    };
    let task = spec.task(0xF13);
    let test = task.generate(500, 0x7E57);
    let net = alexnet_cifar_tiny(0xD0D0);
    let link = AlphaBeta::fdr_infiniband();
    let fwd_bwd = 5.0e-3;

    println!("Figure 13: more machines + more data (simulated cluster, Sync SGD)");
    for nodes in [1usize, 2, 4, 8] {
        // One fresh dataset copy per node: more machines = more data.
        let shards: Vec<_> = (0..nodes)
            .map(|n| task.generate(400, 0xBEEF + n as u64))
            .collect();
        let cfg = TrainConfig {
            workers: nodes,
            batch: 64,
            eta: 0.03,
            rho: 0.3,
            mu: 0.9,
            iterations: 300,
            seed: 0xF1A,
            comm_period: 1,
        };
        let r = sync_sgd_sim(
            &net,
            &shards,
            &test,
            &cfg,
            &link,
            LayoutKind::Packed,
            fwd_bwd,
            50,
        );
        println!("\n{nodes} node(s), {} total training samples:", 400 * nodes);
        println!(
            "{:>8} {:>12} {:>8} {:>14}",
            "iter", "sim secs", "acc %", "error (loss axis)"
        );
        for p in &r.trace {
            println!(
                "{:>8} {:>12.3} {:>8.1} {:>14.3}",
                p.iteration,
                p.seconds,
                p.accuracy * 100.0,
                1.0 - p.accuracy
            );
        }
    }
    println!(
        "\nread vertically (fixed time -> higher accuracy with more nodes) or \
         horizontally (fixed accuracy -> reached sooner), as in the paper's Figure 13."
    );
}
