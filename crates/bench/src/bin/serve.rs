// xtask: allow(wall-clock) — a benchmark harness measures real time by
// definition; the pragma is confined to this bench timer binary.
//! Micro-batching inference latency/QPS harness — `BENCH_serve.json`.
//!
//! Two halves, split by what can be deterministic:
//!
//! * **Executed** — real LeNet replicas served through
//!   `ServeEngine<ReplicaSet>`: proves the zero-pooled-allocations
//!   steady state on the real forward path (the counters are exact
//!   integers, machine-independent) and the bitwise eval contract (a
//!   ragged dispatch returns the bits of the full-batch forward).
//!   Wall-clock QPS from this half goes to **stdout only** — it depends
//!   on the host and would break JSON reproducibility.
//! * **Simulated** — the open-loop latency sweep and the batching
//!   throughput ratio, computed on logical time under the pinned
//!   [`ServiceModel`] (α = per-dispatch overhead, β = per-sample
//!   forward time from the M40 compute model — the serving twin of the
//!   paper's §5.2 α-β analysis). Every number is a pure function of the
//!   seeds, so the JSON is bit-identical across runs; the harness
//!   *verifies* that by running the whole sweep twice and comparing the
//!   rendered bytes (`sim_bit_identical`).
//!
//! ```text
//! cargo run --release -p easgd-bench --bin serve            # full run, writes JSON
//! cargo run --release -p easgd-bench --bin serve -- --smoke # short run + validate checked-in JSON
//! cargo run --release -p easgd-bench --bin serve -- --out p # write JSON to `p`
//! ```
//!
//! Acceptance (checked in, re-validated by `--smoke` in CI):
//! `qps_batch8_over_batch1 ≥ 3` (batching must amortize dispatch
//! overhead), `steady_state_allocs_per_request = 0`,
//! `p99_within_deadline_bound` (for the non-burst arrival processes,
//! p99 ≤ T + 2·step(cap)), `sim_bit_identical`, and `eval_bitwise_ok`.

use easgd_bench::{arg_value, schema};
use easgd_hardware::ComputeModel;
use easgd_nn::models::lenet;
use easgd_serve::{
    summarize, Arrival, BatcherConfig, LatencySummary, NullBackend, ReplicaSet, ServeEngine,
    ServiceModel,
};
use easgd_tensor::{Rng, Tensor};
use std::time::Instant;

/// Per-dispatch fixed cost α (µs): per-layer kernel launches on the
/// paper's GPU-era serving stack plus batcher hand-off and response
/// framing. α/β ≈ 55, firmly in the regime where batching pays.
const FIXED_US: f64 = 80.0;

/// LeNet per-sample forward flops (conv1 576 k + conv2 3.2 M + fc1
/// 800 k + fc2 10 k): β comes from running these on the M40 model.
const LENET_FWD_FLOPS: f64 = 4_586_000.0;

/// Shards (= replicas) in every configuration.
const SHARDS: usize = 2;

/// Coalescing deadline T (µs).
const DEADLINE_US: u64 = 300;

/// Batch caps swept.
const CAPS: [usize; 3] = [1, 4, 8];

/// One sim sweep row.
struct SweepRow {
    arrival: &'static str,
    rate_per_s: f64,
    cap: usize,
    summary: LatencySummary,
}

fn service_model() -> ServiceModel {
    ServiceModel::new(FIXED_US, ComputeModel::m40().time(LENET_FWD_FLOPS) * 1e6)
}

/// The swept arrival processes, all at 4 000 requests/s mean rate. The
/// burst process fires 8 same-instant arrivals (across both shards —
/// the `(ready, shard)` tie-break case) every 2 ms.
fn arrivals() -> [Arrival; 3] {
    [
        Arrival::Uniform { period_us: 250 },
        Arrival::Poisson {
            mean_gap_us: 250.0,
            seed: 0xEA5E,
        },
        Arrival::Burst {
            size: 8,
            gap_us: 2000,
        },
    ]
}

/// One open-loop sim run: `n` arrivals round-robined over the shards,
/// then a drain. Pure logical time — identical numbers every run.
fn run_sim(arrival: Arrival, cap: usize, n: usize) -> LatencySummary {
    let mut engine = ServeEngine::new(
        BatcherConfig {
            shards: SHARDS,
            batch_cap: cap,
            deadline_us: DEADLINE_US,
            sample_len: 0,
        },
        service_model(),
        NullBackend,
    );
    engine.reserve(n);
    for (i, t) in arrival.timestamps(0).take(n).enumerate() {
        let _ = engine.submit(t, i % SHARDS, &mut |_px| {});
    }
    engine.drain();
    summarize(engine.completions())
}

/// The full latency sweep (9 rows: 3 arrival processes × 3 caps).
fn run_sweep(n: usize) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for arrival in arrivals() {
        for cap in CAPS {
            rows.push(SweepRow {
                arrival: arrival.label(),
                rate_per_s: arrival.rate_per_s(),
                cap,
                summary: run_sim(arrival, cap, n),
            });
        }
    }
    rows
}

/// Measured saturation throughput ratio QPS(cap 8)/QPS(cap 1): offered
/// load (1 M req/s) far above even the cap-8 capacity (~175 k req/s on
/// this model), so sustained QPS converges to the server's `B/step(B)`
/// capacity and the ratio approaches `step(1)/step(8)·8 ≈ 7.1`.
fn saturation_ratio(n: usize) -> f64 {
    let sat = |cap| run_sim(Arrival::Uniform { period_us: 1 }, cap, n).qps;
    sat(8) / sat(1)
}

/// Executed half: real LeNet replicas. Returns (allocs per request at
/// steady state, eval bitwise ok, wall QPS, requests measured).
fn run_executed(smoke: bool) -> (f64, bool, f64, usize) {
    let sample_len: usize = 28 * 28;
    let mut rng = Rng::new(0x5EED);
    let pool: Vec<f32> = (0..sample_len * 64).map(|_| rng.uniform()).collect();

    // Bitwise eval contract: ragged session batches reproduce the rows
    // of the full-batch allocating forward exactly.
    let mut reference = lenet(101);
    let full = 8usize;
    let x_full = Tensor::from_vec([full, 1, 28, 28], pool[..full * sample_len].to_vec());
    let y_full = reference.forward(&x_full, false);
    let classes = reference.num_classes();
    let mut session = easgd_serve::InferSession::new(lenet(101));
    let mut bitwise_ok = true;
    for (start, k) in [(0usize, 1usize), (2, 3), (4, 4), (0, 8)] {
        let got = session.infer(k, &pool[start * sample_len..(start + k) * sample_len]);
        bitwise_ok &= got == &y_full.as_slice()[start * classes..(start + k) * classes];
    }

    // Steady-state allocation audit + wall throughput on the sharded
    // replica set (equal seeds; shard outputs are interchangeable).
    let mut engine = ServeEngine::new(
        BatcherConfig {
            shards: SHARDS,
            batch_cap: 8,
            deadline_us: DEADLINE_US,
            sample_len,
        },
        service_model(),
        ReplicaSet::new(vec![lenet(101), lenet(101)]),
    );
    // Warm-up must cover the peak concurrent-request population (queue
    // depth grows over the first few deadline/gap cycles), so it stays
    // at 128 even for smoke; only the measured window shrinks.
    let (warm_n, measure_n) = if smoke { (128, 64) } else { (128, 512) };
    engine.reserve(warm_n + measure_n + 8);
    let mut t = 0u64;
    let submit = |engine: &mut ServeEngine<ReplicaSet>, t: &mut u64, i: usize| {
        // A ragged schedule: mostly cap-closes with periodic idle gaps
        // that force deadline-closes of partial batches.
        *t += if i.is_multiple_of(11) { 5_000 } else { 40 };
        let src = &pool[(i % 56) * sample_len..(i % 56 + 1) * sample_len];
        let _ = engine.submit(*t, i % SHARDS, &mut |px| px.copy_from_slice(src));
    };
    for i in 0..warm_n {
        submit(&mut engine, &mut t, i);
    }
    t += DEADLINE_US + 1;
    engine.advance(t);
    let warm_stats = engine.pool_stats();

    let wall = Instant::now();
    for i in 0..measure_n {
        submit(&mut engine, &mut t, i + warm_n);
    }
    t += DEADLINE_US + 1;
    engine.advance(t);
    let wall_s = wall.elapsed().as_secs_f64();
    let delta = engine.pool_stats().since(&warm_stats);
    let allocs_per_request = delta.allocations() as f64 / measure_n as f64;
    (
        allocs_per_request,
        bitwise_ok,
        measure_n as f64 / wall_s.max(1e-12),
        measure_n,
    )
}

struct Acceptance {
    qps_ratio: f64,
    allocs_per_request: f64,
    p99_bound_ok: bool,
    sim_bit_identical: bool,
    eval_bitwise_ok: bool,
}

/// p99 ≤ T + 2·step(cap) for the non-burst processes. (A burst of 8
/// into cap 1 intentionally overloads one instant — its backlog is the
/// tie-break stress case, not a deadline-scheduling claim.)
fn p99_bound_holds(rows: &[SweepRow], model: ServiceModel) -> bool {
    rows.iter()
        .filter(|r| r.arrival != "burst")
        .all(|r| r.summary.p99_us <= DEADLINE_US as f64 + 2.0 * model.step_us(r.cap) + 1e-9)
}

fn render_rows(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arrival\": \"{}\", \"rate_per_s\": {:.1}, \"batch_cap\": {}, \
             \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}, \"max_us\": {:.3}, \
             \"qps\": {:.2}}}{}\n",
            r.arrival,
            r.rate_per_s,
            r.cap,
            r.summary.p50_us,
            r.summary.p99_us,
            r.summary.p999_us,
            r.summary.max_us,
            r.summary.qps,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out
}

fn render_json(rows: &[SweepRow], acc: &Acceptance, model: ServiceModel) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"generated_by\": \"cargo run --release -p easgd-bench --bin serve\",\n");
    out.push_str(&format!(
        "  \"threads\": {},\n",
        easgd_tensor::par::max_threads()
    ));
    out.push_str(&format!(
        "  \"service_model\": {{\"fixed_us\": {:.3}, \"per_sample_us\": {:.4}, \
         \"shards\": {SHARDS}, \"deadline_us\": {DEADLINE_US}}},\n",
        model.fixed_us, model.per_sample_us
    ));
    out.push_str("  \"acceptance\": {\n");
    out.push_str(&format!(
        "    \"qps_batch8_over_batch1\": {:.2},\n",
        acc.qps_ratio
    ));
    out.push_str(&format!(
        "    \"steady_state_allocs_per_request\": {:.2},\n",
        acc.allocs_per_request
    ));
    out.push_str(&format!(
        "    \"p99_within_deadline_bound\": {},\n",
        acc.p99_bound_ok
    ));
    out.push_str(&format!(
        "    \"sim_bit_identical\": {},\n",
        acc.sim_bit_identical
    ));
    out.push_str(&format!(
        "    \"eval_bitwise_ok\": {}\n",
        acc.eval_bitwise_ok
    ));
    out.push_str("  },\n");
    out.push_str("  \"entries\": [\n");
    out.push_str(&render_rows(rows));
    out.push_str("  ]\n}\n");
    out
}

/// `--smoke` re-validates the checked-in artifact, so CI fails if a
/// regeneration lands below the bar (or never lands at all).
fn validate_checked_in(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let serve_schema = schema::SCHEMAS
        .iter()
        .find(|s| s.file == "BENCH_serve.json")
        .ok_or("BENCH_serve.json missing from the schema registry")?;
    schema::validate_text(serve_schema, &text)?;
    let ratio = schema::json_number(&text, "qps_batch8_over_batch1")
        .ok_or("missing qps_batch8_over_batch1")?;
    let allocs = schema::json_number(&text, "steady_state_allocs_per_request")
        .ok_or("missing steady_state_allocs_per_request")?;
    if ratio < 3.0 {
        return Err(format!("qps_batch8_over_batch1 = {ratio}, want >= 3"));
    }
    if allocs != 0.0 {
        return Err(format!(
            "steady_state_allocs_per_request = {allocs}, want 0"
        ));
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sweep_n, sat_n) = if smoke {
        (600, 1_000)
    } else {
        (20_000, 20_000)
    };
    let model = service_model();

    let rows = run_sweep(sweep_n);
    let qps_ratio = saturation_ratio(sat_n);
    // Re-run the whole simulated half and compare rendered bytes: the
    // claim that every JSON number is seed-deterministic, enforced.
    let rows2 = run_sweep(sweep_n);
    let sim_bit_identical =
        render_rows(&rows) == render_rows(&rows2) && qps_ratio == saturation_ratio(sat_n);

    let (allocs_per_request, eval_bitwise_ok, wall_qps, measured) = run_executed(smoke);

    let acc = Acceptance {
        qps_ratio,
        allocs_per_request,
        p99_bound_ok: p99_bound_holds(&rows, model),
        sim_bit_identical,
        eval_bitwise_ok,
    };

    println!(
        "{:<9} {:>10} {:>5} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "arrival", "rate/s", "cap", "p50 µs", "p99 µs", "p999 µs", "max µs", "qps"
    );
    for r in &rows {
        println!(
            "{:<9} {:>10.0} {:>5} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.0}",
            r.arrival,
            r.rate_per_s,
            r.cap,
            r.summary.p50_us,
            r.summary.p99_us,
            r.summary.p999_us,
            r.summary.max_us,
            r.summary.qps
        );
    }
    println!(
        "\nqps(8)/qps(1) {:.2} | allocs/request {:.2} | p99 bound {} | sim bit-identical {} | eval bitwise {}",
        acc.qps_ratio, acc.allocs_per_request, acc.p99_bound_ok, acc.sim_bit_identical, acc.eval_bitwise_ok
    );
    println!(
        "executed LeNet replicas: {measured} requests at {wall_qps:.0} req/s wall (host-dependent; stdout only)"
    );

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let out_path = arg_value("--out").unwrap_or_else(|| default_out.to_string());
    if smoke {
        // Structural invariants that hold at any run length.
        for (what, ok) in [
            (
                "pooled request path allocated",
                acc.allocs_per_request == 0.0,
            ),
            ("sim numbers not deterministic", acc.sim_bit_identical),
            ("ragged eval diverged bitwise", acc.eval_bitwise_ok),
            ("batching ratio under 3x", acc.qps_ratio >= 3.0),
            ("p99 deadline bound violated", acc.p99_bound_ok),
        ] {
            if !ok {
                eprintln!("smoke: {what}");
                std::process::exit(1);
            }
        }
        match validate_checked_in(&out_path) {
            Ok(()) => println!("smoke run ok; checked-in {out_path} acceptance holds"),
            Err(e) => {
                eprintln!("checked-in {out_path} fails acceptance: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let json = render_json(&rows, &acc, model);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
