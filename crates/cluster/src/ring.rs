//! Executable ring allreduce (reduce-scatter + allgather).
//!
//! The priced collectives in [`crate::comm`] synchronize at a gate and
//! charge a closed-form cost. This module is the *executable* schedule:
//! every message really traverses the point-to-point layer, so simulated
//! time emerges from the α-β send/recv accounting instead of a formula.
//! Each rank sends `2(P−1)` messages of `n/P` elements — the
//! bandwidth-optimal pattern whose cost the
//! [`allreduce_rabenseifner`](easgd_hardware::collective::allreduce_rabenseifner)
//! formula approximates, and the reason VGG's weak-scaling efficiency
//! flattens in Table 4.

use crate::clock::TimeCategory;
use crate::comm::Comm;

/// Chunk boundaries: `n` elements into `p` nearly equal chunks.
fn chunk_bounds(n: usize, p: usize, chunk: usize) -> (usize, usize) {
    let base = n / p;
    let extra = n % p;
    let start = chunk * base + chunk.min(extra);
    let len = base + usize::from(chunk < extra);
    (start, start + len)
}

/// In-place ring allreduce-sum of `data` across all ranks of `comm`.
///
/// After the call every rank holds the element-wise sum. Charges real
/// α-β costs for each of the `2(P−1)` ring messages to `category`.
///
/// # Panics
/// Panics if ranks disagree on `data.len()`.
pub fn ring_allreduce_sum(comm: &mut Comm, data: &mut [f32], category: TimeCategory) {
    let p = comm.size();
    if p == 1 {
        return;
    }
    let me = comm.rank();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    let n = data.len();

    // Phase 1 — reduce-scatter: after P−1 steps, rank r owns the full sum
    // of chunk (r+1) mod P.
    for step in 0..p - 1 {
        let send_chunk = (me + p - step) % p;
        let recv_chunk = (me + p - step - 1) % p;
        let (s0, s1) = chunk_bounds(n, p, send_chunk);
        let tag = ring_tag(0, step);
        comm.send(right, tag, &data[s0..s1], category);
        let incoming = comm.recv(left, tag, category);
        let (r0, r1) = chunk_bounds(n, p, recv_chunk);
        assert_eq!(incoming.len(), r1 - r0, "ring chunk size mismatch");
        for (d, v) in data[r0..r1].iter_mut().zip(&incoming) {
            *d += v;
        }
    }
    // Phase 2 — allgather: circulate the completed chunks.
    for step in 0..p - 1 {
        let send_chunk = (me + 1 + p - step) % p;
        let recv_chunk = (me + p - step) % p;
        let (s0, s1) = chunk_bounds(n, p, send_chunk);
        let tag = ring_tag(1, step);
        comm.send(right, tag, &data[s0..s1], category);
        let incoming = comm.recv(left, tag, category);
        let (r0, r1) = chunk_bounds(n, p, recv_chunk);
        assert_eq!(incoming.len(), r1 - r0, "ring chunk size mismatch");
        data[r0..r1].copy_from_slice(&incoming);
    }
}

fn ring_tag(phase: u32, step: usize) -> u32 {
    0x8000_0000 | (phase << 16) | (step as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, VirtualCluster};

    #[test]
    fn chunk_bounds_cover_exactly() {
        for (n, p) in [(10usize, 3usize), (7, 7), (5, 2), (16, 4), (3, 5)] {
            let mut total = 0;
            let mut expected_start = 0;
            for c in 0..p {
                let (s, e) = chunk_bounds(n, p, c);
                assert_eq!(s, expected_start);
                total += e - s;
                expected_start = e;
            }
            assert_eq!(total, n);
        }
    }

    #[test]
    fn matches_gate_allreduce() {
        for p in [2usize, 3, 4, 7] {
            let cfg = ClusterConfig::new(p);
            let outs = VirtualCluster::run(&cfg, |comm| {
                let n = 23;
                let mut ring: Vec<f32> = (0..n).map(|i| (comm.rank() * n + i) as f32).collect();
                let gate = comm.allreduce_sum(&ring, TimeCategory::Other);
                ring_allreduce_sum(comm, &mut ring, TimeCategory::GpuGpuParam);
                (ring, gate)
            });
            for (ring, gate) in outs {
                for (a, b) in ring.iter().zip(&gate) {
                    assert!((a - b).abs() < 1e-3, "p={p}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let cfg = ClusterConfig::new(1);
        let outs = VirtualCluster::run(&cfg, |comm| {
            let mut v = vec![1.0f32, 2.0, 3.0];
            ring_allreduce_sum(comm, &mut v, TimeCategory::Other);
            v
        });
        assert_eq!(outs[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn short_vectors_with_more_ranks_than_elements() {
        let cfg = ClusterConfig::new(5);
        let outs = VirtualCluster::run(&cfg, |comm| {
            let mut v = vec![1.0f32, 1.0];
            ring_allreduce_sum(comm, &mut v, TimeCategory::Other);
            v
        });
        for v in outs {
            assert_eq!(v, vec![5.0, 5.0]);
        }
    }

    #[test]
    fn ring_charges_bandwidth_efficient_time() {
        // For a large vector the executable ring's simulated time must be
        // close to the Rabenseifner closed form and below the tree cost.
        let p = 8;
        let n = 1_000_000; // 4 MB
        let cfg = ClusterConfig::new(p);
        let link = cfg.link.clone();
        let times = VirtualCluster::run(&cfg, |comm| {
            let mut v = vec![1.0f32; n];
            ring_allreduce_sum(comm, &mut v, TimeCategory::GpuGpuParam);
            comm.now()
        });
        let ring_time = times.iter().cloned().fold(0.0f64, f64::max);
        let tree = 2.0 * easgd_hardware::collective::reduce_tree(&link, p, n * 4);
        assert!(
            ring_time < tree,
            "ring {ring_time:.6}s should beat 2x tree {tree:.6}s for large messages"
        );
        // Within 3x of the ideal closed form (the executable schedule has
        // pipeline fill effects the formula ignores).
        let ideal = easgd_hardware::collective::allreduce_rabenseifner(&link, p, n * 4);
        assert!(ring_time < 3.0 * ideal, "ring {ring_time} vs ideal {ideal}");
    }
}
