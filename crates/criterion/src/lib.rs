// xtask: allow(wall-clock) — a benchmark harness measures real time by definition.
//! Hermetic stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the criterion API its benches use: groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a plain
//! warmup-then-sample loop reporting mean/min wall time per iteration —
//! no statistics machinery, but directionally comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Units processed per iteration, for derived rates in the report.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Runs closures under measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples after a short warmup.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup + calibration: target ~2ms per sample so cheap kernels
        // are timed over many iterations.
        let cal_start = Instant::now();
        black_box(f());
        let once = cal_start.elapsed().max(Duration::from_nanos(20));
        let iters_per_sample =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the amount of work per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b.samples);
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples", self.name, id.id);
            return;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let rate = self.throughput.map(|t| {
            let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => format!(", {:.2} MiB/s", per_sec(n) / (1 << 20) as f64),
                Throughput::Elements(n) => format!(", {:.2} Melem/s", per_sec(n) / 1e6),
            }
        });
        println!(
            "{}/{}: mean {:?}  min {:?}{}",
            self.name,
            id.id,
            mean,
            min,
            rate.unwrap_or_default()
        );
    }
}

/// Bundles benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point invoking the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(2).throughput(Throughput::Elements(1));
            g.bench_function("count", |b| {
                b.iter(|| {
                    calls += 1;
                    black_box(calls)
                })
            });
            g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(calls > 0, "benchmark closure never ran");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
