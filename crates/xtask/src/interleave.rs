//! Bounded deterministic interleaving explorer for small Hogwild kernels.
//!
//! The real Hogwild trainers ([`easgd_tensor::AtomicBuffer`]) run lock-free
//! updates as per-component CAS loops under `Ordering::Relaxed`. This module
//! model-checks that design on tiny instances: each thread runs a short
//! straight-line program of atomic operations, and the explorer enumerates
//! **every** interleaving of their atomic steps (depth-first over scheduler
//! choices, in deterministic thread-index order) and evaluates an invariant
//! in each terminal state.
//!
//! An operation is modeled exactly as the production CAS loop executes it,
//! as two distinct atomic steps with a preemption point between them:
//!
//! 1. **load** — observe the current cell value;
//! 2. **CAS** — compare-and-swap the computed new value; on failure the op
//!    falls back to step 1 (retry).
//!
//! This two-phase split is what makes lost-update bugs expressible: a
//! scheduler may run thread A's load, then thread B's whole op, then A's
//! CAS. The correct kernels recover by retrying; the deliberately broken
//! [`Op::RacyAdd`] (load + *blind store*) does not, and the explorer's
//! negative test proves the harness can find that schedule.
//!
//! Termination does not rely on the step bound: a CAS only fails when some
//! other thread's store landed in between, and the total number of
//! successful stores is bounded by the (finite) sum of program lengths, so
//! every execution path is finite. `max_steps` is a pure safety net.

use std::fmt;

/// One atomic operation in a thread's program. Values live in `f32` cells
/// (stored as bit patterns, mirroring `AtomicF32`'s `AtomicU32` carrier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `fetch_add(delta)` as a load + CAS retry loop — the
    /// `AtomicF32::fetch_add` / `AtomicBuffer::sgd_update` kernel.
    CasAdd { addr: usize, delta: f32 },
    /// One component of the Hogwild elastic center update
    /// `center += alpha * (w - center)` as a load + CAS retry loop — the
    /// `AtomicBuffer::elastic_center_update` kernel, with this thread's
    /// local weight component `w` held constant.
    CasElastic { addr: usize, alpha: f32, w: f32 },
    /// **Deliberately broken** add: load, then *blind store* of
    /// `observed + delta` with no compare. Exists so the negative test can
    /// prove the explorer finds lost-update schedules.
    RacyAdd { addr: usize, delta: f32 },
}

impl Op {
    fn addr(&self) -> usize {
        match *self {
            Op::CasAdd { addr, .. } | Op::CasElastic { addr, .. } | Op::RacyAdd { addr, .. } => {
                addr
            }
        }
    }

    fn apply(&self, observed: f32) -> f32 {
        match *self {
            Op::CasAdd { delta, .. } | Op::RacyAdd { delta, .. } => observed + delta,
            Op::CasElastic { alpha, w, .. } => observed + alpha * (w - observed),
        }
    }
}

/// A thread's execution state: program counter plus the pending observed
/// value when the current op is between its load and its CAS/store.
#[derive(Debug, Clone, PartialEq)]
struct ThreadState {
    program: Vec<Op>,
    pc: usize,
    observed: Option<f32>,
}

impl ThreadState {
    fn done(&self) -> bool {
        self.pc >= self.program.len()
    }
}

#[derive(Debug, Clone, PartialEq)]
struct State {
    mem: Vec<f32>,
    threads: Vec<ThreadState>,
}

impl State {
    /// Advances thread `t` by exactly one atomic step.
    fn step(&mut self, t: usize) {
        let op = self.threads[t].program[self.threads[t].pc];
        let cell = op.addr();
        match self.threads[t].observed {
            None => {
                // Step 1: the load.
                self.threads[t].observed = Some(self.mem[cell]);
            }
            Some(obs) => {
                match op {
                    Op::CasAdd { .. } | Op::CasElastic { .. } => {
                        // Step 2: the CAS. Bit-exact compare, like
                        // compare_exchange on the u32 carrier.
                        if self.mem[cell].to_bits() == obs.to_bits() {
                            self.mem[cell] = op.apply(obs);
                            self.threads[t].pc += 1;
                        }
                        // On failure: fall back to the load (retry).
                        self.threads[t].observed = None;
                    }
                    Op::RacyAdd { .. } => {
                        // Step 2: blind store — no compare, no retry.
                        self.mem[cell] = op.apply(obs);
                        self.threads[t].pc += 1;
                        self.threads[t].observed = None;
                    }
                }
            }
        }
    }
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Complete executions (terminal states checked).
    pub executions: usize,
    /// Total atomic steps taken across all executions.
    pub steps: usize,
}

/// A schedule that drove the system into a state violating the invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Thread index chosen at each step, in order.
    pub schedule: Vec<usize>,
    /// Terminal memory contents under that schedule.
    pub state: Vec<f32>,
    /// The invariant checker's message.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated: {} (schedule {:?}, terminal state {:?})",
            self.message, self.schedule, self.state
        )
    }
}

/// Result of a full exploration.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Every interleaving satisfied the invariant.
    Pass(Stats),
    /// A counterexample schedule was found (search stops at the first).
    Fail(Box<Violation>, Stats),
}

impl Outcome {
    /// The statistics regardless of verdict.
    pub fn stats(&self) -> Stats {
        match self {
            Outcome::Pass(s) => *s,
            Outcome::Fail(_, s) => *s,
        }
    }
}

/// Safety net on execution length; never reached by the CAS kernels (see
/// module docs for the termination argument).
pub const MAX_STEPS: usize = 10_000;

/// Exhaustively explores every interleaving of the threads' atomic steps
/// from `init`, calling `check` on each terminal memory state. `check`
/// returns `Err(message)` to report a violation; exploration is
/// depth-first in thread-index order, so results are deterministic.
pub fn explore<F>(init: &[f32], programs: &[Vec<Op>], check: F) -> Outcome
where
    F: Fn(&[f32]) -> Result<(), String>,
{
    for p in programs {
        for op in p {
            assert!(op.addr() < init.len(), "op {op:?} addresses out of range");
        }
    }
    let mut state = State {
        mem: init.to_vec(),
        threads: programs
            .iter()
            .map(|p| ThreadState {
                program: p.clone(),
                pc: 0,
                observed: None,
            })
            .collect(),
    };
    let mut stats = Stats::default();
    let mut schedule = Vec::new();
    match dfs(&mut state, &mut schedule, &check, &mut stats) {
        Some(v) => Outcome::Fail(Box::new(v), stats),
        None => Outcome::Pass(stats),
    }
}

fn dfs<F>(
    state: &mut State,
    schedule: &mut Vec<usize>,
    check: &F,
    stats: &mut Stats,
) -> Option<Violation>
where
    F: Fn(&[f32]) -> Result<(), String>,
{
    assert!(
        schedule.len() <= MAX_STEPS,
        "step bound exceeded — a kernel op does not terminate"
    );
    let enabled: Vec<usize> = (0..state.threads.len())
        .filter(|&t| !state.threads[t].done())
        .collect();
    if enabled.is_empty() {
        stats.executions += 1;
        return check(&state.mem).err().map(|message| Violation {
            schedule: schedule.clone(),
            state: state.mem.clone(),
            message,
        });
    }
    for t in enabled {
        // Clone-and-step keeps the search simple and allocation-bounded by
        // depth; instance sizes here are tiny by design.
        let saved = state.clone();
        state.step(t);
        stats.steps += 1;
        schedule.push(t);
        if let Some(v) = dfs(state, schedule, check, stats) {
            return Some(v);
        }
        schedule.pop();
        *state = saved;
    }
    None
}

// ---------------------------------------------------------------------------
// Canned scenarios, shared by `cargo test` (root tests/interleavings.rs) and
// the `easgd-xtask explore` CLI.
// ---------------------------------------------------------------------------

/// All threads `fetch_add(1.0)` into one cell, `adds_per_thread` times each.
/// Invariant: no update is lost — the final value is exactly the total
/// number of adds (exact in f32 for these small integers).
pub fn scenario_fetch_add(threads: usize, adds_per_thread: usize) -> Outcome {
    let expected = (threads * adds_per_thread) as f32;
    let program = vec![
        Op::CasAdd {
            addr: 0,
            delta: 1.0
        };
        adds_per_thread
    ];
    explore(&[0.0], &vec![program; threads], move |mem| {
        if mem[0] == expected {
            Ok(())
        } else {
            Err(format!(
                "lost update: {} adds landed as {}",
                expected, mem[0]
            ))
        }
    })
}

/// Hogwild elastic center: workers with fixed local weights `ws` race
/// `center += alpha * (w_i - center)` on a single component, `rounds`
/// times each. Invariant: every update is a convex combination of the
/// center and some `w_i`, so the terminal center must stay inside
/// `[min(0, ws), max(0, ws)]` — the iterates are bounded no matter the
/// interleaving.
pub fn scenario_elastic_center(ws: &[f32], alpha: f32, rounds: usize) -> Outcome {
    let lo = ws.iter().copied().fold(0.0f32, f32::min);
    let hi = ws.iter().copied().fold(0.0f32, f32::max);
    let programs: Vec<Vec<Op>> = ws
        .iter()
        .map(|&w| vec![Op::CasElastic { addr: 0, alpha, w }; rounds])
        .collect();
    explore(&[0.0], &programs, move |mem| {
        let c = mem[0];
        if c.is_finite() && (lo..=hi).contains(&c) {
            Ok(())
        } else {
            Err(format!("center {c} escaped [{lo}, {hi}]"))
        }
    })
}

/// Two workers each add `1.0` into both components of a 2-vector.
/// Invariant: per-component sums are independent — both cells end at 2.0.
pub fn scenario_two_component(threads: usize) -> Outcome {
    let expected = threads as f32;
    let program = vec![
        Op::CasAdd {
            addr: 0,
            delta: 1.0,
        },
        Op::CasAdd {
            addr: 1,
            delta: 1.0,
        },
    ];
    explore(&[0.0, 0.0], &vec![program; threads], move |mem| {
        if mem[0] == expected && mem[1] == expected {
            Ok(())
        } else {
            Err(format!("component sums {mem:?}, expected {expected} each"))
        }
    })
}

/// Negative self-test: the blind-store kernel MUST exhibit a lost update
/// under some schedule. Returns the outcome so callers can assert it is
/// [`Outcome::Fail`].
pub fn scenario_racy_add_negative(threads: usize) -> Outcome {
    let expected = threads as f32;
    let program = vec![Op::RacyAdd {
        addr: 0,
        delta: 1.0,
    }];
    explore(&[0.0], &vec![program; threads], move |mem| {
        if mem[0] == expected {
            Ok(())
        } else {
            Err(format!("lost update: final {} != {expected}", mem[0]))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_add_two_threads_never_loses_updates() {
        match scenario_fetch_add(2, 2) {
            Outcome::Pass(stats) => {
                assert!(stats.executions > 1, "explorer must branch: {stats:?}")
            }
            Outcome::Fail(v, _) => panic!("unexpected violation: {v}"),
        }
    }

    #[test]
    fn fetch_add_three_threads_never_loses_updates() {
        assert!(matches!(scenario_fetch_add(3, 1), Outcome::Pass(_)));
    }

    #[test]
    fn elastic_center_stays_bounded() {
        assert!(matches!(
            scenario_elastic_center(&[1.0, -0.5], 0.25, 2),
            Outcome::Pass(_)
        ));
    }

    #[test]
    fn two_component_sums_are_independent() {
        assert!(matches!(scenario_two_component(2), Outcome::Pass(_)));
    }

    #[test]
    fn racy_add_violation_is_found() {
        // The harness must find the A-load, B-op, A-store schedule.
        match scenario_racy_add_negative(2) {
            Outcome::Fail(v, _) => {
                assert!(v.message.contains("lost update"), "{v}");
                assert_eq!(v.state, vec![1.0], "blind store overwrote one add");
            }
            Outcome::Pass(s) => panic!("racy kernel passed exhaustive search: {s:?}"),
        }
    }

    #[test]
    fn cas_retry_recovers_from_preemption() {
        // Force the canonical preemption by hand: t0 load, t1 load, t1 CAS,
        // t0 CAS (fails), t0 load, t0 CAS. The explorer covers this path;
        // here we just pin it to document the retry semantics.
        let mut st = State {
            mem: vec![0.0],
            threads: vec![
                ThreadState {
                    program: vec![Op::CasAdd {
                        addr: 0,
                        delta: 1.0,
                    }],
                    pc: 0,
                    observed: None,
                },
                ThreadState {
                    program: vec![Op::CasAdd {
                        addr: 0,
                        delta: 1.0,
                    }],
                    pc: 0,
                    observed: None,
                },
            ],
        };
        for &t in &[0usize, 1, 1, 0, 0, 0] {
            st.step(t);
        }
        assert_eq!(st.mem, vec![2.0]);
        assert!(st.threads.iter().all(ThreadState::done));
    }

    #[test]
    fn schedule_replay_is_deterministic() {
        let a = scenario_racy_add_negative(2);
        let b = scenario_racy_add_negative(2);
        assert_eq!(a, b, "DFS order must be deterministic");
    }
}
