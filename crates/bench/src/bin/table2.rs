//! Table 2: InfiniBand performance under the α-β model, plus what the
//! model implies for the paper's message sizes.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin table2
//! ```

use easgd_hardware::net::AlphaBeta;
use easgd_nn::spec::{spec_alexnet, spec_googlenet, spec_lenet, spec_vgg19};

fn main() {
    println!("Table 2: InfiniBand Performance under the alpha-beta Model");
    println!(
        "{:<30} {:>14} {:>18}",
        "Network", "alpha (latency)", "beta (1/bandwidth)"
    );
    for link in AlphaBeta::table2() {
        println!(
            "{:<30} {:>11.1} us {:>13.1} ns/B",
            link.name,
            link.alpha_s * 1e6,
            link.beta_s_per_byte * 1e9,
        );
    }

    println!("\nModel-implied one-way transfer time for full weight sets:");
    print!("{:<30}", "model (weights)");
    for spec in [spec_lenet(), spec_alexnet(), spec_googlenet(), spec_vgg19()] {
        print!(
            " {:>14}",
            format!("{} ({:.0} MB)", spec.name, spec.weight_bytes() as f64 / 1e6)
        );
    }
    println!();
    for link in AlphaBeta::table2() {
        print!("{:<30}", link.name);
        for spec in [spec_lenet(), spec_alexnet(), spec_googlenet(), spec_vgg19()] {
            print!(" {:>12.1}ms", link.time(spec.weight_bytes()) * 1e3);
        }
        println!();
    }
    println!(
        "\nbeta << alpha per byte: a 1 KB message costs {:.2} us of latency but only \
         {:.3} us of bandwidth on FDR IB — why §5.2 packs layers into one message.",
        AlphaBeta::fdr_infiniband().alpha_s * 1e6,
        AlphaBeta::fdr_infiniband().beta_s_per_byte * 1024.0 * 1e6
    );
}
