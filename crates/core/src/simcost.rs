//! Calibrated per-phase costs for the simulated multi-GPU node
//! (Table 3 / Figure 11).
//!
//! §6.1.1 decomposes an EASGD iteration into eight parts; these are the
//! per-iteration unit costs the simulated schedules charge. Two CPU↔GPU
//! paths are modelled, matching the systems story of the paper:
//!
//! * the **unpacked** path — one transfer per layer allocation, pageable
//!   memory, high per-transfer overhead. This is what pre-§5.2
//!   frameworks (and Original EASGD) pay.
//! * the **packed** path — one contiguous pinned transfer for the whole
//!   model (the §5.2 layout), which the Sync EASGD implementations use.
//!
//! The default numbers are calibrated against the paper's own Table 3
//! measurements (LeNet/MNIST, batch 64, 4 GPUs on a PCIe switch):
//! forward+backward ≈ 6 ms per iteration (the paper: 30 s for 5000
//! serialized iterations), effective unpinned PCIe ≈ 1 GB/s with ≈ 120 µs
//! per-transfer overhead, pinned path ≈ 8 GB/s. Absolute values shift all
//! rows together; the *ratios* (87 % → 14 % comm, ≈ 5× speedup) emerge
//! from the schedules.

use easgd_hardware::collective::ceil_log2;
use easgd_hardware::net::AlphaBeta;
use easgd_nn::spec::ModelSpec;

/// Per-phase unit costs of one simulated device iteration.
#[derive(Clone, Debug)]
pub struct SimCosts {
    /// CPU↔GPU link for per-layer (unpacked, pageable) transfers.
    pub cpu_gpu_unpacked: AlphaBeta,
    /// CPU↔GPU link for packed pinned transfers.
    pub cpu_gpu_packed: AlphaBeta,
    /// GPU↔GPU peer link (through the PCIe switch).
    pub gpu_gpu: AlphaBeta,
    /// Model weight size in bytes.
    pub weight_bytes: usize,
    /// Number of separate parameter allocations (per-layer transfers in
    /// the unpacked path).
    pub weight_segments: usize,
    /// One training batch in bytes.
    pub data_bytes: usize,
    /// Forward + backward propagation seconds per worker iteration.
    pub fwd_bwd: f64,
    /// Worker-side Equation (1) update seconds.
    pub gpu_update: f64,
    /// Master-side Equation (2) update seconds.
    pub cpu_update: f64,
    /// Worker compute heterogeneity: each worker step costs
    /// `fwd_bwd × (1 + compute_jitter·u)` with `u ~ U[0,1)`. 0 (the
    /// default) models the paper's homogeneous GPUs; raise it to study
    /// FCFS vs round-robin under stragglers.
    pub compute_jitter: f64,
}

impl SimCosts {
    /// The Table 3 workload: LeNet (≈ 431 k parameters ≈ 1.7 MB) on
    /// MNIST, batch 64, Tesla-class GPUs behind a PCIe switch, with the
    /// calibration described in the module docs.
    pub fn mnist_lenet_4gpu() -> Self {
        let spec = easgd_nn::spec::spec_lenet();
        Self {
            cpu_gpu_unpacked: AlphaBeta::new("PCIe pageable", 120e-6, 1.0e-9),
            cpu_gpu_packed: AlphaBeta::new("PCIe pinned", 80e-6, 1.0 / 8.0e9),
            gpu_gpu: AlphaBeta::new("PCIe peer", 80e-6, 1.0 / 8.0e9),
            weight_bytes: spec.weight_bytes(),
            weight_segments: spec.layers.len() * 2,
            data_bytes: 64 * 28 * 28 * 4,
            fwd_bwd: 6.0e-3,
            gpu_update: 0.02e-3,
            cpu_update: 0.73e-3,
            compute_jitter: 0.0,
        }
    }

    /// Costs derived from a model spec and batch size with the same link
    /// calibration (for non-LeNet workloads, e.g. the Figure 10 AlexNet
    /// run). `fwd_bwd` comes from a sustained-rate estimate.
    pub fn derive(
        spec: &ModelSpec,
        sample_bytes: usize,
        batch: usize,
        sustained_flops: f64,
    ) -> Self {
        Self {
            cpu_gpu_unpacked: AlphaBeta::new("PCIe pageable", 120e-6, 1.0e-9),
            cpu_gpu_packed: AlphaBeta::new("PCIe pinned", 80e-6, 1.0 / 8.0e9),
            gpu_gpu: AlphaBeta::new("PCIe peer", 80e-6, 1.0 / 8.0e9),
            weight_bytes: spec.weight_bytes(),
            weight_segments: spec.layers.len() * 2,
            data_bytes: sample_bytes * batch,
            fwd_bwd: spec.flops_train() * batch as f64 / sustained_flops,
            // Updates stream 3×|W| bytes; ~200 GB/s on-device, ~7 GB/s on
            // the (single-threaded, paper-era) host loop.
            gpu_update: 3.0 * spec.weight_bytes() as f64 / 200.0e9,
            cpu_update: 3.0 * spec.weight_bytes() as f64 / 7.0e9,
            compute_jitter: 0.0,
        }
    }

    /// One unpacked weight exchange in one direction: one transfer per
    /// layer allocation.
    pub fn unpacked_weight_time(&self) -> f64 {
        self.weight_segments as f64 * self.cpu_gpu_unpacked.alpha_s
            + self.weight_bytes as f64 * self.cpu_gpu_unpacked.beta_s_per_byte
    }

    /// One packed weight transfer in one direction.
    pub fn packed_weight_time(&self) -> f64 {
        self.cpu_gpu_packed.time(self.weight_bytes)
    }

    /// One batch copy CPU → GPU.
    pub fn data_time(&self) -> f64 {
        self.cpu_gpu_unpacked.time(self.data_bytes)
    }

    /// A packed tree broadcast/reduce over `participants` devices:
    /// `⌈log₂ participants⌉` full-size hops on the given link.
    pub fn tree_collective_time(&self, link: &AlphaBeta, participants: usize) -> f64 {
        ceil_log2(participants) as f64 * link.time(self.weight_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_calibration_is_self_consistent() {
        let c = SimCosts::mnist_lenet_4gpu();
        // LeNet ≈ 1.72 MB of weights, 8 parameter allocations.
        assert!((1_600_000..1_900_000).contains(&c.weight_bytes));
        assert_eq!(c.weight_segments, 8);
        // Unpacked exchange dominated by per-transfer overhead + 1 GB/s.
        let t = c.unpacked_weight_time();
        assert!((2.0e-3..3.5e-3).contains(&t), "unpacked = {t}");
        // Packed pinned path is several times faster.
        assert!(c.packed_weight_time() < t / 5.0);
    }

    #[test]
    fn packing_saves_the_latency_terms() {
        let c = SimCosts::mnist_lenet_4gpu();
        let saving = c.unpacked_weight_time()
            - (c.weight_segments as f64 * 0.0
                + c.weight_bytes as f64 * c.cpu_gpu_unpacked.beta_s_per_byte
                + c.cpu_gpu_unpacked.alpha_s);
        // Exactly (segments − 1) α of pure latency disappears, plus the
        // bandwidth uplift from pinning.
        assert!((saving - 7.0 * c.cpu_gpu_unpacked.alpha_s).abs() < 1e-12);
    }

    #[test]
    fn derive_scales_with_batch() {
        let spec = easgd_nn::spec::spec_lenet();
        let a = SimCosts::derive(&spec, 28 * 28 * 4, 64, 1.0e12);
        let b = SimCosts::derive(&spec, 28 * 28 * 4, 128, 1.0e12);
        assert!((b.fwd_bwd / a.fwd_bwd - 2.0).abs() < 1e-9);
        assert_eq!(b.data_bytes, 2 * a.data_bytes);
    }

    #[test]
    fn tree_collective_counts_hops() {
        let c = SimCosts::mnist_lenet_4gpu();
        let link = c.gpu_gpu.clone();
        let one_hop = link.time(c.weight_bytes);
        assert!((c.tree_collective_time(&link, 4) - 2.0 * one_hop).abs() < 1e-12);
        assert!((c.tree_collective_time(&link, 5) - 3.0 * one_hop).abs() < 1e-12);
    }
}
