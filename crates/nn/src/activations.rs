//! Element-wise non-linearities: ReLU, Tanh, Sigmoid (§2.2 lists exactly
//! these as the non-linear transforms of a CNN).

use crate::layer::Layer;
use easgd_tensor::{ParamArena, Tensor, TrainScratch};

/// Rectified linear unit `max(0, x)`.
#[derive(Clone, Debug)]
pub struct Relu {
    name: String,
    shape: Vec<usize>,
    /// Mask of active units from the last forward (1.0 where x > 0).
    mask: Vec<f32>,
}

impl Relu {
    /// ReLU over per-sample shape `shape`.
    pub fn new(name: impl Into<String>, shape: Vec<usize>) -> Self {
        Self {
            name: name.into(),
            shape,
            mask: Vec::new(),
        }
    }
}

impl Layer for Relu {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn out_shape(&self) -> Vec<usize> {
        self.shape.clone()
    }

    fn forward_into(
        &mut self,
        _params: &ParamArena,
        input: &Tensor,
        _train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        scratch.ensure_f32(&mut self.mask, input.len());
        scratch.shape_tensor(out, input.shape().dims());
        out.as_mut_slice().copy_from_slice(input.as_slice());
        for (v, m) in out.as_mut_slice().iter_mut().zip(self.mask.iter_mut()) {
            if *v > 0.0 {
                *m = 1.0;
            } else {
                *m = 0.0;
                *v = 0.0;
            }
        }
    }

    fn backward_into(
        &mut self,
        _params: &ParamArena,
        _grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        assert_eq!(grad_out.len(), self.mask.len(), "backward before forward");
        scratch.shape_tensor(grad_in, grad_out.shape().dims());
        grad_in.as_mut_slice().copy_from_slice(grad_out.as_slice());
        for (gi, &m) in grad_in.as_mut_slice().iter_mut().zip(&self.mask) {
            *gi *= m;
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        let mut c = self.clone();
        c.mask = Vec::new();
        Box::new(c)
    }
}

/// Hyperbolic tangent.
#[derive(Clone, Debug)]
pub struct Tanh {
    name: String,
    shape: Vec<usize>,
    /// Cached outputs (tanh'(x) = 1 − tanh²(x)).
    out_cache: Vec<f32>,
}

impl Tanh {
    /// Tanh over per-sample shape `shape`.
    pub fn new(name: impl Into<String>, shape: Vec<usize>) -> Self {
        Self {
            name: name.into(),
            shape,
            out_cache: Vec::new(),
        }
    }
}

impl Layer for Tanh {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn out_shape(&self) -> Vec<usize> {
        self.shape.clone()
    }

    fn forward_into(
        &mut self,
        _params: &ParamArena,
        input: &Tensor,
        _train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        scratch.shape_tensor(out, input.shape().dims());
        out.as_mut_slice().copy_from_slice(input.as_slice());
        for v in out.as_mut_slice() {
            *v = v.tanh();
        }
        scratch.ensure_f32(&mut self.out_cache, out.len());
        self.out_cache.copy_from_slice(out.as_slice());
    }

    fn backward_into(
        &mut self,
        _params: &ParamArena,
        _grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        assert_eq!(
            grad_out.len(),
            self.out_cache.len(),
            "backward before forward"
        );
        scratch.shape_tensor(grad_in, grad_out.shape().dims());
        grad_in.as_mut_slice().copy_from_slice(grad_out.as_slice());
        for (gi, &y) in grad_in.as_mut_slice().iter_mut().zip(&self.out_cache) {
            *gi *= 1.0 - y * y;
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        let mut c = self.clone();
        c.out_cache = Vec::new();
        Box::new(c)
    }
}

/// Logistic sigmoid `1 / (1 + e^{-x})`.
#[derive(Clone, Debug)]
pub struct Sigmoid {
    name: String,
    shape: Vec<usize>,
    out_cache: Vec<f32>,
}

impl Sigmoid {
    /// Sigmoid over per-sample shape `shape`.
    pub fn new(name: impl Into<String>, shape: Vec<usize>) -> Self {
        Self {
            name: name.into(),
            shape,
            out_cache: Vec::new(),
        }
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn out_shape(&self) -> Vec<usize> {
        self.shape.clone()
    }

    fn forward_into(
        &mut self,
        _params: &ParamArena,
        input: &Tensor,
        _train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        scratch.shape_tensor(out, input.shape().dims());
        out.as_mut_slice().copy_from_slice(input.as_slice());
        for v in out.as_mut_slice() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        scratch.ensure_f32(&mut self.out_cache, out.len());
        self.out_cache.copy_from_slice(out.as_slice());
    }

    fn backward_into(
        &mut self,
        _params: &ParamArena,
        _grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        assert_eq!(
            grad_out.len(),
            self.out_cache.len(),
            "backward before forward"
        );
        scratch.shape_tensor(grad_in, grad_out.shape().dims());
        grad_in.as_mut_slice().copy_from_slice(grad_out.as_slice());
        for (gi, &y) in grad_in.as_mut_slice().iter_mut().zip(&self.out_cache) {
            *gi *= y * (1.0 - y);
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        let mut c = self.clone();
        c.out_cache = Vec::new();
        Box::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{build_arenas, check_layer};

    #[test]
    fn relu_clamps_negatives() {
        let mut l = Relu::new("r", vec![4]);
        let x = Tensor::from_vec([1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = l.forward(&ParamArena::flat(0), &x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut l = Relu::new("r", vec![3]);
        let x = Tensor::from_vec([1, 3], vec![-1.0, 1.0, 2.0]);
        let _ = l.forward(&ParamArena::flat(0), &x, true);
        let gy = Tensor::from_vec([1, 3], vec![10.0, 10.0, 10.0]);
        let mut g = ParamArena::flat(0);
        let gx = l.backward(&ParamArena::flat(0), &mut g, &gy);
        assert_eq!(gx.as_slice(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn tanh_gradcheck() {
        let mut l = Tanh::new("t", vec![6]);
        let (params, grads) = build_arenas(&mut l, 1);
        check_layer(&mut l, params, grads, &[6], 3, 1e-2, 5);
    }

    #[test]
    fn sigmoid_gradcheck() {
        let mut l = Sigmoid::new("s", vec![6]);
        let (params, grads) = build_arenas(&mut l, 1);
        check_layer(&mut l, params, grads, &[6], 3, 1e-2, 6);
    }

    #[test]
    fn relu_gradcheck() {
        let mut l = Relu::new("r", vec![8]);
        let (params, grads) = build_arenas(&mut l, 1);
        check_layer(&mut l, params, grads, &[8], 2, 1e-2, 7);
    }

    #[test]
    fn sigmoid_range_is_unit_interval() {
        let mut l = Sigmoid::new("s", vec![3]);
        let x = Tensor::from_vec([1, 3], vec![-100.0, 0.0, 100.0]);
        let y = l.forward(&ParamArena::flat(0), &x, true);
        assert!(y.as_slice()[0] >= 0.0 && y.as_slice()[0] < 1e-6);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-6 && y.as_slice()[2] <= 1.0);
    }
}
