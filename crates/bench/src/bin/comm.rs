// xtask: allow(wall-clock) — a benchmark harness measures real time by
// definition; the pragma is confined to this bench timer binary.
//! Exchange-path perf harness.
//!
//! Measures the zero-allocation exchange path of ISSUE 4 — the fused
//! `elastic_exchange` kernel against the two-pass copy+Eq(1) composition
//! it replaced, the full pooled exchange step against the old
//! `Vec`-returning shim APIs on a live 2-rank [`VirtualCluster`], the
//! pool's allocation and bytes-moved counters, the executable tree
//! reduce against the flat gather-sum at 8 ranks, and the ISSUE 7
//! compute/communication overlap (serial vs segment-pipelined tree
//! exchange vs the compute-only floor, simulated at 8 ranks) — and emits
//! `BENCH_comm.json` at the repo root.
//!
//! ```text
//! cargo run --release -p easgd-bench --bin comm            # full run, writes JSON
//! cargo run --release -p easgd-bench --bin comm -- --smoke # short run + validate checked-in JSON
//! cargo run --release -p easgd-bench --bin comm -- --out p # write JSON to `p`
//! ```
//!
//! Acceptance (checked in, re-validated by `--smoke` in CI):
//! steady-state allocations per pooled exchange step must be 0, the
//! fused+pooled step must be ≥ 2× the shim path on the VGG-sized arena,
//! the fused kernel must not lose to the two-pass form, the tree reduce
//! must cost no more simulated time than the flat gather at 8 ranks, the
//! pipelined exchange must hide ≥ 50% of the serial round's exposed
//! exchange time (and beat it outright) on the VGG arena, and the
//! pipelined round must stay allocation-free.

use easgd::sync::{tree_exchange_pipelined, tree_exchange_round};
use easgd_bench::arg_value;
use easgd_cluster::collectives::{flat_gather_sum, tree_reduce_sum};
use easgd_cluster::{ClusterConfig, Comm, PoolStats, TimeCategory, VirtualCluster};
use easgd_hardware::AlphaBeta;
use easgd_tensor::{ops, Rng};
use std::time::Instant;

/// VGG-conv-class packed arena (matches `kernels.rs`'s `vgg_conv_arena`).
const VGG_ARENA: usize = 14_710_464;
const ETA: f32 = 0.05;
const RHO: f32 = 0.3;

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
}

/// One measured point of the trajectory.
struct Entry {
    bench: &'static str,
    shape: String,
    implementation: &'static str,
    ms: f64,
    /// Moved elements per iteration.
    work: u64,
    /// `"melem_per_s"` (wall) or `"sim_ms"`-style simulated entries keep
    /// the same unit for uniformity.
    rate_unit: &'static str,
}

impl Entry {
    fn rate(&self) -> f64 {
        self.work as f64 / (self.ms / 1e3).max(1e-12) / 1e6
    }
}

/// Best-of-several wall time for `f`, in milliseconds. In smoke mode a
/// single iteration (compile-and-run sanity, no timing claims).
fn time_ms(smoke: bool, mut f: impl FnMut()) -> f64 {
    if smoke {
        let t = Instant::now();
        f();
        return t.elapsed().as_secs_f64() * 1e3;
    }
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut iters = 0u32;
    while iters < 3 || (spent < 0.6 && iters < 40) {
        let t = Instant::now();
        f();
        let s = t.elapsed().as_secs_f64();
        best = best.min(s);
        spent += s;
        iters += 1;
    }
    best * 1e3
}

/// Interleaved A/B measurement (see `kernels.rs`): alternating the two
/// sides spreads cache state and thermal drift over both, and the
/// per-side minimum estimates true cost under transient load.
fn time_pair_ms(
    smoke: bool,
    budget_s: f64,
    mut fa: impl FnMut(),
    mut fb: impl FnMut(),
) -> (f64, f64) {
    if smoke {
        let (a, b) = (time_ms(true, &mut fa), time_ms(true, &mut fb));
        return (a, b);
    }
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut spent = 0.0;
    let mut rounds = 0u32;
    while rounds < 5 || (spent < budget_s && rounds < 60) {
        for (best, f) in [
            (&mut best_a, &mut fa as &mut dyn FnMut()),
            (&mut best_b, &mut fb),
        ] {
            let t = Instant::now();
            f();
            let s = t.elapsed().as_secs_f64();
            *best = best.min(s);
            spent += s;
        }
        rounds += 1;
    }
    (best_a * 1e3, best_b * 1e3)
}

/// Kernel-level rows: the fused exchange sweep vs the two-pass
/// composition, and the fused dilution-from vs copy-then-dilute.
fn bench_exchange_kernels(entries: &mut Vec<Entry>, smoke: bool) -> f64 {
    let n = if smoke { 65_536 } else { VGG_ARENA };
    let grad = rand_vec(n, 1);
    let center = rand_vec(n, 2);
    let mut local_a = rand_vec(n, 3);
    let mut local_b = local_a.clone();
    let mut contribution_a = vec![0.0f32; n];
    let mut contribution_b = vec![0.0f32; n];

    let (two_pass_ms, fused_ms) = time_pair_ms(
        smoke,
        6.0,
        || {
            contribution_a.copy_from_slice(&local_a);
            ops::elastic_worker_update(ETA, RHO, &mut local_a, &grad, &center);
        },
        || ops::elastic_exchange(ETA, RHO, &mut local_b, &mut contribution_b, &grad, &center),
    );
    for (implementation, ms) in [("two_pass_copy_eq1", two_pass_ms), ("fused", fused_ms)] {
        entries.push(Entry {
            bench: "exchange_kernel",
            shape: format!("vgg_arena/{n}"),
            implementation,
            ms,
            work: n as u64,
            rate_unit: "melem_per_s",
        });
    }

    let center_t = rand_vec(n, 4);
    let sum = rand_vec(n, 5);
    let mut out_a = vec![0.0f32; n];
    let mut out_b = vec![0.0f32; n];
    let (copy_dilute_ms, dilute_from_ms) = time_pair_ms(
        smoke,
        4.0,
        || {
            out_a.copy_from_slice(&center_t);
            ops::center_dilution(ETA, RHO, &mut out_a, &sum, 4);
        },
        || ops::center_dilution_from(ETA, RHO, &center_t, &sum, 4, &mut out_b),
    );
    for (implementation, ms) in [
        ("copy_then_dilute", copy_dilute_ms),
        ("dilute_from", dilute_from_ms),
    ] {
        entries.push(Entry {
            bench: "dilution_kernel",
            shape: format!("vgg_arena/{n}"),
            implementation,
            ms,
            work: n as u64,
            rate_unit: "melem_per_s",
        });
    }
    if fused_ms > 0.0 {
        two_pass_ms / fused_ms
    } else {
        0.0
    }
}

/// What the 2-rank full-exchange-step measurement returns (from rank 0).
struct StepOutcome {
    old_ms: f64,
    new_ms: f64,
    steps: u64,
    old_pool: PoolStats,
    new_pool: PoolStats,
}

/// One Sync-EASGD-shaped exchange step through the seed's exchange path:
/// broadcast the center (fresh result vector), copy the local weights out
/// for the reduce, apply Eq (1) as a second pass, reduce to a fresh sum
/// vector, dilute.
///
/// The seed's rendezvous consumed an *owned* input (`data.to_vec()`
/// inside `broadcast_costed`/`reduce_sum_costed`) and every reader cloned
/// the result; today's `Vec`-returning shims already route through the
/// pooled slot path, so the input copies the seed paid are restored here
/// explicitly to keep the baseline honest.
fn old_step(comm: &mut Comm, local: &mut [f32], grad: &[f32], center: &mut Vec<f32>) {
    let workers = comm.size();
    let bcast_in = if comm.rank() == 0 {
        center.to_vec()
    } else {
        Vec::new()
    };
    let center_t = comm.broadcast_costed(0, &bcast_in, 0.0, TimeCategory::GpuGpuParam);
    let contribution = local.to_vec();
    ops::elastic_worker_update(ETA, RHO, local, grad, &center_t);
    let reduce_in = contribution.to_vec();
    let sum = comm.reduce_sum_costed(&reduce_in, 0.0, TimeCategory::GpuGpuParam);
    *center = center_t;
    ops::center_dilution(ETA, RHO, center, &sum, workers);
}

/// The same step on the pooled+fused path: collectives write into
/// persistent scratch, the fused kernel publishes and pulls in one sweep,
/// and the dilution writes the next center without the intermediate copy.
#[allow(clippy::too_many_arguments)]
fn new_step(
    comm: &mut Comm,
    local: &mut [f32],
    grad: &[f32],
    center: &mut [f32],
    center_t: &mut Vec<f32>,
    contribution: &mut [f32],
    sum: &mut Vec<f32>,
) {
    let workers = comm.size();
    comm.broadcast_costed_into(0, center, 0.0, TimeCategory::GpuGpuParam, center_t);
    ops::elastic_exchange(ETA, RHO, local, contribution, grad, center_t);
    comm.reduce_sum_costed_into(contribution, 0.0, TimeCategory::GpuGpuParam, sum);
    ops::center_dilution_from(ETA, RHO, center_t, sum, workers, center);
}

/// Full-exchange-step comparison on a live 2-rank cluster, interleaved
/// old/new inside one run; also snapshots the pool counters over the
/// measured windows for the allocs-per-step and bytes-moved columns.
fn bench_exchange_step(entries: &mut Vec<Entry>, smoke: bool) -> StepOutcome {
    let n = if smoke { 65_536 } else { VGG_ARENA };
    let rounds: u64 = if smoke { 1 } else { 6 };
    let cfg = ClusterConfig::new(2);
    let outs = VirtualCluster::run(&cfg, |comm| {
        let me = comm.rank() as u64;
        let grad = rand_vec(n, 10 + me);
        let mut local = rand_vec(n, 20 + me);
        let mut center = rand_vec(n, 30);
        let mut center_t: Vec<f32> = Vec::new();
        let mut contribution = vec![0.0f32; n];
        let mut sum: Vec<f32> = Vec::new();

        // Warm both paths (grows persistent scratch and gate slots), then
        // park spares: the pool's steady state needs one buffer of slack
        // per pipeline stage (the gate retires its combine buffer on the
        // *last* read, which can land after the fastest rank has already
        // started the next step).
        for _ in 0..2 {
            old_step(comm, &mut local, &grad, &mut center);
            new_step(
                comm,
                &mut local,
                &grad,
                &mut center,
                &mut center_t,
                &mut contribution,
                &mut sum,
            );
        }
        if comm.rank() == 0 {
            let spares: Vec<_> = (0..4).map(|_| comm.take_buffer(n)).collect();
            for s in spares {
                comm.recycle_buffer(s);
            }
        }
        comm.barrier();

        // Pool counters over a pure-old window, then a pure-new window.
        let before_old = comm.pool_stats();
        for _ in 0..rounds {
            old_step(comm, &mut local, &grad, &mut center);
        }
        comm.barrier();
        let before_new = comm.pool_stats();
        let old_pool = before_new.since(&before_old);
        for _ in 0..rounds {
            new_step(
                comm,
                &mut local,
                &grad,
                &mut center,
                &mut center_t,
                &mut contribution,
                &mut sum,
            );
        }
        comm.barrier();
        let new_pool = comm.pool_stats().since(&before_new);

        // Interleaved wall timing, min per side (both ranks step in
        // lockstep through the collectives, so rank 0's clock stands for
        // the pair).
        let mut best_old = f64::INFINITY;
        let mut best_new = f64::INFINITY;
        let timing_rounds = if smoke { 1 } else { 8 };
        for _ in 0..timing_rounds {
            let t = Instant::now();
            old_step(comm, &mut local, &grad, &mut center);
            best_old = best_old.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            new_step(
                comm,
                &mut local,
                &grad,
                &mut center,
                &mut center_t,
                &mut contribution,
                &mut sum,
            );
            best_new = best_new.min(t.elapsed().as_secs_f64());
        }
        (best_old * 1e3, best_new * 1e3, old_pool, new_pool)
    });
    let (old_ms, new_ms, old_pool, new_pool) = (outs[0].0, outs[0].1, outs[0].2, outs[0].3);

    for (implementation, ms) in [("seed_two_pass", old_ms), ("pooled_fused", new_ms)] {
        entries.push(Entry {
            bench: "exchange_step_2rank",
            shape: format!("vgg_arena/{n}"),
            implementation,
            ms,
            work: n as u64,
            rate_unit: "melem_per_s",
        });
    }
    StepOutcome {
        old_ms,
        new_ms,
        steps: rounds,
        old_pool,
        new_pool,
    }
}

/// Simulated-time comparison: executable binary-tree reduce vs the flat
/// gather-sum at 8 ranks over a PCIe-class link. Deterministic (virtual
/// clocks), so one run each suffices; `ms` holds *simulated* millis.
fn bench_tree_vs_flat(entries: &mut Vec<Entry>, smoke: bool) -> (f64, f64) {
    let n = if smoke { 4_096 } else { 1 << 20 };
    let p = 8;
    let run = |use_tree: bool| -> f64 {
        let cfg = ClusterConfig::new(p).with_link(AlphaBeta::pcie_gen3_x16());
        let times = VirtualCluster::run(&cfg, |comm| {
            let mut data = rand_vec(n, 40 + comm.rank() as u64);
            if use_tree {
                tree_reduce_sum(comm, 0, &mut data, TimeCategory::GpuGpuParam);
            } else {
                flat_gather_sum(comm, 0, &mut data, TimeCategory::GpuGpuParam);
            }
            comm.now()
        });
        times[0]
    };
    let (tree_s, flat_s) = (run(true), run(false));
    for (implementation, s) in [("tree_reduce", tree_s), ("flat_gather_sum", flat_s)] {
        entries.push(Entry {
            bench: "reduce_p8_simulated",
            shape: format!("{p}ranks/{n}"),
            implementation,
            ms: s * 1e3,
            work: n as u64,
            rate_unit: "melem_per_s",
        });
    }
    (tree_s, flat_s)
}

/// What the 8-rank overlap measurement returns (simulated seconds per
/// round, max across ranks, plus rank 0's pooled-allocation reading over
/// the measured pipelined window).
struct OverlapOutcome {
    compute_s: f64,
    serial_s: f64,
    pipe_s: f64,
    pipe_allocs_per_round: f64,
}

/// Compute/communication overlap at 8 ranks on the PCIe peer link: one
/// EASGD-shaped round — a compute window plus a tree exchange of the
/// arena — run three ways. `compute_only` is the floor (no exchange at
/// all), `serial_tree_exchange` is the executable-tree round with the
/// compute charged as one lump before it, and `pipelined_tree_exchange`
/// slices both into segments so traffic rides under the compute
/// (DESIGN.md §13). Overlap efficiency is the share of the serial
/// round's *exposed* exchange time the pipeline hides:
/// `(serial − pipelined) / (serial − compute_only)`.
///
/// Virtual clocks make the simulated times deterministic; one measured
/// window suffices. `ms` holds *simulated* millis.
fn bench_overlap(entries: &mut Vec<Entry>, smoke: bool) -> OverlapOutcome {
    let n = if smoke { 65_536 } else { VGG_ARENA };
    let p = 8;
    let segments = 8;
    let rounds: u64 = if smoke { 1 } else { 2 };
    let link = AlphaBeta::pcie_gen3_x16();
    // A compute window of the same order as the serial exchange itself —
    // the regime §6.1's EASGD3 pipelining targets.
    let compute = 6.0 * link.time(n * 4);
    let participants: Vec<usize> = (0..p).collect();

    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        ComputeOnly,
        Serial,
        Pipelined,
    }

    let run = |mode: Mode| -> (f64, f64) {
        let cfg = ClusterConfig::new(p).with_link(link.clone());
        let outs = VirtualCluster::run(&cfg, |comm: &mut Comm| {
            // Only the root owns a center; everyone tracks center_t.
            let center = if comm.rank() == 0 {
                vec![1.0f32; n]
            } else {
                Vec::new()
            };
            let mut center_t = vec![0.0f32; n];
            let mut weight_sum = vec![0.0f32; n];
            let mut round = |comm: &mut Comm| match mode {
                Mode::ComputeOnly => comm.charge(TimeCategory::ForwardBackward, compute),
                Mode::Serial => {
                    comm.charge(TimeCategory::ForwardBackward, compute);
                    tree_exchange_round(
                        comm,
                        &participants,
                        0,
                        &center,
                        &mut center_t,
                        &mut weight_sum,
                        TimeCategory::GpuGpuParam,
                        |center_t, weight_sum| {
                            weight_sum.resize(center_t.len(), 0.0);
                            weight_sum.copy_from_slice(center_t);
                        },
                    );
                }
                Mode::Pipelined => tree_exchange_pipelined(
                    comm,
                    &participants,
                    0,
                    &center,
                    &mut center_t,
                    &mut weight_sum,
                    TimeCategory::GpuGpuParam,
                    segments,
                    |comm: &mut Comm, _s| {
                        comm.charge(TimeCategory::ForwardBackward, compute / segments as f64)
                    },
                    |_range, center_seg, sum_seg: &mut [f32]| sum_seg.copy_from_slice(center_seg),
                ),
            };
            // Warm rounds grow the pool to steady state, then park spares
            // (as in `bench_exchange_step`: pipeline stages need a buffer
            // of slack when rank skew overlaps adjacent rounds).
            for _ in 0..2 {
                round(comm);
            }
            if comm.rank() == 0 {
                let seg = n / segments;
                let spares: Vec<_> = (0..2 * p).map(|_| comm.take_buffer(seg)).collect();
                for s in spares {
                    comm.recycle_buffer(s);
                }
            }
            comm.barrier();
            let before = comm.pool_stats();
            let t0 = comm.now();
            for _ in 0..rounds {
                round(comm);
            }
            let per_round_s = (comm.now() - t0) / rounds as f64;
            comm.barrier();
            let allocs = comm.pool_stats().since(&before).allocations() as f64 / rounds as f64;
            (per_round_s, allocs)
        });
        let sim = outs.iter().map(|o| o.0).fold(0.0f64, f64::max);
        (sim, outs[0].1)
    };

    let (compute_s, _) = run(Mode::ComputeOnly);
    let (serial_s, _) = run(Mode::Serial);
    let (pipe_s, pipe_allocs_per_round) = run(Mode::Pipelined);
    for (implementation, s) in [
        ("compute_only", compute_s),
        ("serial_tree_exchange", serial_s),
        ("pipelined_tree_exchange", pipe_s),
    ] {
        entries.push(Entry {
            bench: "exchange_overlap_p8_sim",
            shape: format!("{p}ranks/S{segments}/{n}"),
            implementation,
            ms: s * 1e3,
            work: n as u64,
            rate_unit: "melem_per_s",
        });
    }
    OverlapOutcome {
        compute_s,
        serial_s,
        pipe_s,
        pipe_allocs_per_round,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct Acceptance {
    fused_kernel_speedup: f64,
    step_speedup: f64,
    pooled_allocs_per_step: f64,
    seed_allocs_per_step: f64,
    pooled_mb_per_step: f64,
    seed_mb_per_step: f64,
    tree_over_flat: f64,
    overlap_efficiency: f64,
    pipelined_over_serial: f64,
    pipelined_allocs_per_round: f64,
}

fn render_json(entries: &[Entry], acc: &Acceptance) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"generated_by\": \"cargo run --release -p easgd-bench --bin comm\",\n");
    out.push_str(&format!(
        "  \"threads\": {},\n",
        easgd_tensor::par::max_threads()
    ));
    out.push_str("  \"acceptance\": {\n");
    out.push_str(&format!(
        "    \"fused_kernel_speedup_vs_two_pass\": {:.2},\n",
        acc.fused_kernel_speedup
    ));
    out.push_str(&format!(
        "    \"pooled_fused_step_speedup_vs_seed\": {:.2},\n",
        acc.step_speedup
    ));
    out.push_str(&format!(
        "    \"pooled_allocs_per_exchange_step\": {:.2},\n",
        acc.pooled_allocs_per_step
    ));
    out.push_str(&format!(
        "    \"seed_allocs_per_exchange_step\": {:.2},\n",
        acc.seed_allocs_per_step
    ));
    out.push_str(&format!(
        "    \"pooled_bytes_copied_mb_per_step\": {:.2},\n",
        acc.pooled_mb_per_step
    ));
    out.push_str(&format!(
        "    \"seed_bytes_copied_mb_per_step\": {:.2},\n",
        acc.seed_mb_per_step
    ));
    out.push_str(&format!(
        "    \"tree_over_flat_time_ratio_p8\": {:.3},\n",
        acc.tree_over_flat
    ));
    out.push_str(&format!(
        "    \"overlap_efficiency_p8\": {:.3},\n",
        acc.overlap_efficiency
    ));
    out.push_str(&format!(
        "    \"pipelined_over_serial_step_ratio_p8\": {:.3},\n",
        acc.pipelined_over_serial
    ));
    out.push_str(&format!(
        "    \"pipelined_allocs_per_round\": {:.2}\n",
        acc.pipelined_allocs_per_round
    ));
    out.push_str("  },\n");
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"shape\": \"{}\", \"impl\": \"{}\", \"ms\": {:.4}, \"{}\": {:.3}}}{}\n",
            json_escape(e.bench),
            json_escape(&e.shape),
            json_escape(e.implementation),
            e.ms,
            e.rate_unit,
            e.rate(),
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"key": <number>` out of the checked-in JSON (hand-rolled like
/// the writer; the bench has no JSON dependency by design).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `--smoke` also re-validates the checked-in acceptance ratios, so CI
/// fails if someone regenerates `BENCH_comm.json` below the bar (or
/// forgets to check it in).
fn validate_checked_in(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let allocs = json_number(&text, "pooled_allocs_per_exchange_step")
        .ok_or("missing pooled_allocs_per_exchange_step")?;
    let speedup = json_number(&text, "pooled_fused_step_speedup_vs_seed")
        .ok_or("missing pooled_fused_step_speedup_vs_seed")?;
    let ratio = json_number(&text, "tree_over_flat_time_ratio_p8")
        .ok_or("missing tree_over_flat_time_ratio_p8")?;
    let fused = json_number(&text, "fused_kernel_speedup_vs_two_pass")
        .ok_or("missing fused_kernel_speedup_vs_two_pass")?;
    let overlap =
        json_number(&text, "overlap_efficiency_p8").ok_or("missing overlap_efficiency_p8")?;
    let pipe_ratio = json_number(&text, "pipelined_over_serial_step_ratio_p8")
        .ok_or("missing pipelined_over_serial_step_ratio_p8")?;
    let pipe_allocs = json_number(&text, "pipelined_allocs_per_round")
        .ok_or("missing pipelined_allocs_per_round")?;
    if allocs != 0.0 {
        return Err(format!(
            "pooled_allocs_per_exchange_step = {allocs}, want 0"
        ));
    }
    if speedup < 2.0 {
        return Err(format!(
            "pooled_fused_step_speedup_vs_seed = {speedup}, want >= 2.0"
        ));
    }
    if ratio > 1.0 {
        return Err(format!(
            "tree_over_flat_time_ratio_p8 = {ratio}, want <= 1.0"
        ));
    }
    if fused < 1.0 {
        return Err(format!(
            "fused_kernel_speedup_vs_two_pass = {fused}, want >= 1.0"
        ));
    }
    if overlap < 0.5 {
        return Err(format!("overlap_efficiency_p8 = {overlap}, want >= 0.5"));
    }
    if pipe_ratio >= 1.0 {
        return Err(format!(
            "pipelined_over_serial_step_ratio_p8 = {pipe_ratio}, want < 1.0"
        ));
    }
    if pipe_allocs != 0.0 {
        return Err(format!(
            "pipelined_allocs_per_round = {pipe_allocs}, want 0"
        ));
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut entries = Vec::new();

    let fused_kernel_speedup = bench_exchange_kernels(&mut entries, smoke);
    let step = bench_exchange_step(&mut entries, smoke);
    let (tree_s, flat_s) = bench_tree_vs_flat(&mut entries, smoke);
    let overlap = bench_overlap(&mut entries, smoke);

    let per_step = |stats: &PoolStats, steps: u64| {
        let s = steps.max(1) as f64;
        (
            stats.allocations() as f64 / s,
            stats.bytes_copied as f64 / s / (1 << 20) as f64,
        )
    };
    let (pooled_allocs, pooled_mb) = per_step(&step.new_pool, step.steps);
    let (shim_allocs, shim_mb) = per_step(&step.old_pool, step.steps);
    let acc = Acceptance {
        fused_kernel_speedup,
        step_speedup: if step.new_ms > 0.0 {
            step.old_ms / step.new_ms
        } else {
            0.0
        },
        pooled_allocs_per_step: pooled_allocs,
        seed_allocs_per_step: shim_allocs,
        pooled_mb_per_step: pooled_mb,
        seed_mb_per_step: shim_mb,
        tree_over_flat: if flat_s > 0.0 { tree_s / flat_s } else { 0.0 },
        overlap_efficiency: {
            let exposed = overlap.serial_s - overlap.compute_s;
            if exposed > 0.0 {
                (overlap.serial_s - overlap.pipe_s) / exposed
            } else {
                0.0
            }
        },
        pipelined_over_serial: if overlap.serial_s > 0.0 {
            overlap.pipe_s / overlap.serial_s
        } else {
            0.0
        },
        pipelined_allocs_per_round: overlap.pipe_allocs_per_round,
    };

    println!(
        "{:<22} {:<22} {:<18} {:>10} {:>12}",
        "bench", "shape", "impl", "ms", "rate"
    );
    for e in &entries {
        println!(
            "{:<22} {:<22} {:<18} {:>10.3} {:>9.2} {}",
            e.bench,
            e.shape,
            e.implementation,
            e.ms,
            e.rate(),
            e.rate_unit,
        );
    }
    println!(
        "\nfused kernel speedup {:.2}x | step speedup {:.2}x | allocs/step pooled {:.2} seed {:.2} | copied MB/step pooled {:.2} seed {:.2} | tree/flat {:.3}",
        acc.fused_kernel_speedup,
        acc.step_speedup,
        acc.pooled_allocs_per_step,
        acc.seed_allocs_per_step,
        acc.pooled_mb_per_step,
        acc.seed_mb_per_step,
        acc.tree_over_flat,
    );
    println!(
        "overlap efficiency {:.3} | pipelined/serial {:.3} | pipelined allocs/round {:.2}",
        acc.overlap_efficiency, acc.pipelined_over_serial, acc.pipelined_allocs_per_round,
    );

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_comm.json");
    let out_path = arg_value("--out").unwrap_or_else(|| default_out.to_string());
    if smoke {
        // Smoke runs must still hold the structural invariants that do
        // not depend on timing.
        if acc.pooled_allocs_per_step != 0.0 {
            eprintln!(
                "smoke: pooled path allocated ({} allocs/step)",
                acc.pooled_allocs_per_step
            );
            std::process::exit(1);
        }
        if acc.tree_over_flat > 1.0 {
            eprintln!(
                "smoke: tree reduce slower than flat gather ({})",
                acc.tree_over_flat
            );
            std::process::exit(1);
        }
        // The pipelined round must stay allocation-free at any arena
        // size; the efficiency bar itself is checked against the full
        // run's checked-in JSON (the smoke arena is α-dominated).
        if acc.pipelined_allocs_per_round != 0.0 {
            eprintln!(
                "smoke: pipelined exchange allocated ({} allocs/round)",
                acc.pipelined_allocs_per_round
            );
            std::process::exit(1);
        }
        match validate_checked_in(&out_path) {
            Ok(()) => println!("smoke run ok; checked-in {out_path} acceptance holds"),
            Err(e) => {
                eprintln!("checked-in {out_path} fails acceptance: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let json = render_json(&entries, &acc);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
