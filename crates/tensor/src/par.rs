//! Minimal fork-join row parallelism over std threads.
//!
//! The workspace is hermetic (no registry access), so instead of Rayon
//! the parallel GEMM path uses a scoped-thread band split: the output
//! rows are divided into one contiguous band per available core and each
//! band is processed on its own thread. For the large, regular kernels
//! this crate runs (GEMM rows of equal cost) a static band split matches
//! work-stealing to within noise, and it keeps the tree dependency-free.

use std::num::NonZeroUsize;

/// Number of worker threads a data-parallel kernel should use.
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f(row_index, row)` to every `n`-element row of `c`,
/// fork-joining across available cores. `c.len()` must be a multiple of
/// `n`. Falls back to a serial loop when a single band would remain.
///
/// # Panics
/// Panics if `n == 0` or `c.len()` is not a multiple of `n`.
pub fn par_rows<F>(c: &mut [f32], n: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(n > 0, "row length must be positive");
    assert_eq!(c.len() % n, 0, "buffer is not a whole number of rows");
    let rows = c.len() / n;
    let threads = max_threads().min(rows);
    if threads <= 1 {
        for (i, row) in c.chunks_mut(n).enumerate() {
            f(i, row);
        }
        return;
    }
    // Ceil split so every band is non-empty and bands cover all rows.
    let rows_per_band = rows.div_ceil(threads);
    std::thread::scope(|s| {
        for (band_idx, band) in c.chunks_mut(rows_per_band * n).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = band_idx * rows_per_band;
                for (j, row) in band.chunks_mut(n).enumerate() {
                    f(base + j, row);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_row_exactly_once() {
        let n = 7;
        let rows = 129; // deliberately not a multiple of any thread count
        let mut c = vec![0.0f32; rows * n];
        par_rows(&mut c, n, |i, row| {
            for v in row.iter_mut() {
                *v += i as f32 + 1.0;
            }
        });
        for (i, chunk) in c.chunks(n).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f32 + 1.0), "row {i}");
        }
    }

    #[test]
    fn serial_fallback_single_row() {
        let mut c = vec![0.0f32; 5];
        par_rows(&mut c, 5, |i, row| row[0] = i as f32 + 3.0);
        assert_eq!(c[0], 3.0);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn rejects_ragged_buffer() {
        let mut c = vec![0.0f32; 7];
        par_rows(&mut c, 3, |_, _| {});
    }
}
