// xtask: allow(wall-clock) — wall-clock trainer/driver: measures real elapsed time by design.
//! The lock-free algorithms: Hogwild SGD (§3.2) and Hogwild EASGD
//! (§5.1, contribution 1).
//!
//! Hogwild removes the master's update lock: workers apply their updates
//! to the shared vector concurrently, component-by-component, with no
//! cross-component atomicity. Hogwild EASGD applies the same idea to the
//! *center* weight `W̄`: multiple workers' Equation (2) pulls may
//! interleave freely. The paper observes this is what finally makes the
//! asynchronous family competitive with Sync EASGD (Figure 8); the
//! convergence proof is in the paper's appendix — the key safety property
//! (each component update is a convex pull, so the center stays in the
//! workers' hull) is exercised by `easgd-tensor`'s `AtomicBuffer` tests.

use crate::config::TrainConfig;
use crate::metrics::RunResult;
use crate::shared::evaluate_center;
use easgd_data::Dataset;
use easgd_nn::Network;
use easgd_tensor::ops::elastic_worker_update;
use easgd_tensor::{AtomicBuffer, Rng};
use std::time::Instant;

fn per_worker_rng(cfg: &TrainConfig, worker: usize) -> Rng {
    Rng::new(cfg.seed ^ ((worker as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// Hogwild SGD (§3.2): the shared weight vector is updated lock-free.
/// Workers snapshot `W`, compute a gradient at the snapshot, and apply
/// `W ← W − η·ΔW` with per-component atomic adds.
pub fn hogwild_sgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    cfg.validate();
    let shards = train.partition(cfg.workers);
    let shared = AtomicBuffer::from_slice(proto.params().as_slice());
    let start = Instant::now();
    let losses: Vec<f32> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(w, shard)| {
                let shared = &shared;
                s.spawn(move || {
                    let mut net = proto.clone();
                    let mut rng = per_worker_rng(cfg, w);
                    let n = net.num_params();
                    let mut snapshot = vec![0.0f32; n];
                    let mut last_loss = f32::NAN;
                    for _ in 0..cfg.iterations {
                        shared.snapshot_into(&mut snapshot);
                        net.set_params(&snapshot);
                        let batch = shard.sample_batch(&mut rng, cfg.batch);
                        let stats = net.forward_backward(&batch.images, &batch.labels);
                        last_loss = stats.loss;
                        shared.sgd_update(cfg.eta, net.grads().as_slice());
                    }
                    last_loss
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let final_w = shared.snapshot();
    RunResult {
        method: "Hogwild SGD".to_string(),
        iterations: cfg.iterations,
        wall_seconds: wall,
        sim_seconds: None,
        accuracy: evaluate_center(proto, &final_w, test),
        final_loss: losses.iter().sum::<f32>() / losses.len().max(1) as f32,
        breakdown: None,
        trace: Vec::new(),
    }
}

/// Hogwild EASGD (ours, §5.1): each worker keeps a private local weight
/// `Wᵢ`; the shared *center* `W̄` is updated lock-free with the
/// Equation (2) pull, and the worker applies Equation (1) against its
/// snapshot. “The master first receives multiple weights from different
/// workers … then processes these weights by the Hogwild (lock-free)
/// updating rule.”
pub fn hogwild_easgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    cfg.validate();
    let shards = train.partition(cfg.workers);
    let shared = AtomicBuffer::from_slice(proto.params().as_slice());
    let start = Instant::now();
    let losses: Vec<f32> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(w, shard)| {
                let shared = &shared;
                s.spawn(move || {
                    let mut net = proto.clone();
                    let mut rng = per_worker_rng(cfg, w);
                    let n = net.num_params();
                    let mut grad = vec![0.0f32; n];
                    let mut snapshot = vec![0.0f32; n];
                    let mut last_loss = f32::NAN;
                    for step in 0..cfg.iterations {
                        // Compute the gradient at the local weight Wᵢ.
                        let batch = shard.sample_batch(&mut rng, cfg.batch);
                        let stats = net.forward_backward(&batch.images, &batch.labels);
                        last_loss = stats.loss;
                        grad.copy_from_slice(net.grads().as_slice());
                        // Communication period τ: local SGD steps between
                        // lock-free exchanges.
                        if (step + 1) % cfg.comm_period != 0 {
                            easgd_tensor::ops::sgd_update(
                                cfg.eta,
                                net.params_mut().as_mut_slice(),
                                &grad,
                            );
                            continue;
                        }
                        // Lock-free center pull (Eq 2) and snapshot.
                        shared.elastic_center_update(cfg.eta, cfg.rho, net.params().as_slice());
                        shared.snapshot_into(&mut snapshot);
                        // Local elastic update (Eq 1).
                        elastic_worker_update(
                            cfg.eta,
                            cfg.rho,
                            net.params_mut().as_mut_slice(),
                            &grad,
                            &snapshot,
                        );
                    }
                    last_loss
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let final_w = shared.snapshot();
    RunResult {
        method: "Hogwild EASGD".to_string(),
        iterations: cfg.iterations,
        wall_seconds: wall,
        sim_seconds: None,
        accuracy: evaluate_center(proto, &final_w, test),
        final_loss: losses.iter().sum::<f32>() / losses.len().max(1) as f32,
        breakdown: None,
        trace: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(31);
        let (train, test) = task.train_test(600, 200, 32);
        (lenet_tiny(33), train, test)
    }

    fn quick_cfg(iters: usize) -> TrainConfig {
        TrainConfig {
            workers: 4,
            batch: 16,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations: iters,
            seed: 41,
            comm_period: 1,
        }
    }

    #[test]
    fn hogwild_sgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = hogwild_sgd(&proto, &train, &test, &quick_cfg(150));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn hogwild_easgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = hogwild_easgd(&proto, &train, &test, &quick_cfg(200));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn hogwild_easgd_center_stays_finite_under_contention() {
        // 8 workers hammering a small model: the lock-free interleavings
        // must not blow the center up.
        let (proto, train, test) = setup();
        let cfg = quick_cfg(60).with_workers(8);
        let r = hogwild_easgd(&proto, &train, &test, &cfg);
        assert!(r.final_loss.is_finite());
        assert!(r.accuracy >= 0.0);
    }

    #[test]
    fn method_names() {
        let (proto, train, test) = setup();
        let cfg = quick_cfg(5);
        assert_eq!(
            hogwild_sgd(&proto, &train, &test, &cfg).method,
            "Hogwild SGD"
        );
        assert_eq!(
            hogwild_easgd(&proto, &train, &test, &cfg).method,
            "Hogwild EASGD"
        );
    }
}
