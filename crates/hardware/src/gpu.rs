//! GPU device descriptors.
//!
//! §6.1.2's placement argument is a capacity argument: ImageNet (240 GB)
//! cannot live on a 12 GB GPU, but VGG-19's 575 MB of weights can — so
//! weights move to the GPU and only batch data crosses PCIe.

use crate::compute::ComputeModel;
use crate::net::AlphaBeta;

/// A GPU with its on-board memory and host link.
#[derive(Clone, Debug)]
pub struct GpuDevice {
    /// Device name.
    pub name: String,
    /// On-board memory in bytes.
    pub memory_bytes: usize,
    /// Compute model.
    pub compute: ComputeModel,
    /// Host ↔ device link (PCIe).
    pub host_link: AlphaBeta,
}

impl GpuDevice {
    /// One GPU of a Tesla K80 board: 12 GB GDDR5 (§1 quotes "12 GB GDDR5
    /// on one Nvidia K80 GPU").
    pub fn k80_half() -> Self {
        Self {
            name: "Tesla K80 (1 GPU)".to_string(),
            memory_bytes: 12 * (1 << 30),
            compute: ComputeModel::k80_half(),
            host_link: AlphaBeta::pcie_gen3_x16(),
        }
    }

    /// Tesla M40: 12 GB GDDR5.
    pub fn m40() -> Self {
        Self {
            name: "Tesla M40".to_string(),
            memory_bytes: 12 * (1 << 30),
            compute: ComputeModel::m40(),
            host_link: AlphaBeta::pcie_gen3_x16(),
        }
    }

    /// Can a resident set of `bytes` live on the device?
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.memory_bytes
    }

    /// Time to move `bytes` across the host link.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.host_link.time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_weights_fit_imagenet_does_not() {
        // §6.1.2: weights (≤ 1 GB) on GPU, 240 GB dataset stays on host.
        let gpu = GpuDevice::k80_half();
        let vgg19_bytes = 575 * 1024 * 1024;
        let imagenet_bytes = 240usize * (1 << 30);
        assert!(gpu.fits(vgg19_bytes));
        assert!(!gpu.fits(imagenet_bytes));
    }

    #[test]
    fn weight_transfer_dwarfs_batch_transfer() {
        // §6.1.1: CPU↔GPU *parameter* traffic (249 MB AlexNet) costs far
        // more than *data* traffic (768 KB per 64-sample CIFAR batch) —
        // the 86 % vs 1 % observation.
        let gpu = GpuDevice::k80_half();
        let weights = 249_000_000;
        let batch = 64 * 32 * 32 * 3 * 4;
        assert!(gpu.transfer_time(weights) > 50.0 * gpu.transfer_time(batch));
    }

    #[test]
    fn transfer_time_positive_even_for_empty() {
        let gpu = GpuDevice::m40();
        assert!(gpu.transfer_time(0) > 0.0); // latency never free
    }
}
