//! Single-precision general matrix multiply.
//!
//! `gemm` computes `C ← α·op(A)·op(B) + β·C` for row-major matrices, with
//! optional transposition of either operand. Three access patterns are
//! implemented as dedicated loops because they are the ones dense and
//! convolutional layers need:
//!
//! * `NoTrans × NoTrans` — forward propagation (`X · Wᵀ` is expressed as
//!   `NoTrans × Trans`), im2col convolution.
//! * `NoTrans × Trans` — forward dense layers, input gradients.
//! * `Trans × NoTrans` — weight gradients (`δᵀ · X`).
//!
//! The `m` dimension is parallelized with [`crate::par::par_rows`]: rows
//! of `C` are independent, which mirrors how each simulated device runs
//! its own intra-chip data-parallel compute (the KNL has 68 cores; we
//! fork-join one band of rows per core the same way).

/// Whether an operand is used as stored or transposed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Transpose {
    /// Use the matrix as stored.
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

/// Below this many output elements the serial kernel is used; parallel
/// dispatch overhead would dominate.
const PAR_THRESHOLD: usize = 64 * 64;

/// `C ← α·op(A)·op(B) + β·C`.
///
/// Dimensions are those of the *operated* matrices: `op(A)` is `m×k`,
/// `op(B)` is `k×n`, `C` is `m×n`. All matrices are dense row-major.
///
/// # Panics
/// Panics if any buffer is smaller than its dimensions imply.
// BLAS sgemm signature by design: callers pass the full (op, dims, scalars,
// buffers) tuple exactly as in the reference interface.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert!(
        a.len() >= m * k,
        "A buffer too small: {} < {}",
        a.len(),
        m * k
    );
    assert!(
        b.len() >= k * n,
        "B buffer too small: {} < {}",
        b.len(),
        k * n
    );
    assert!(
        c.len() >= m * n,
        "C buffer too small: {} < {}",
        c.len(),
        m * n
    );
    if m == 0 || n == 0 {
        return;
    }

    let row_kernel = |i: usize, c_row: &mut [f32]| {
        if beta == 0.0 {
            c_row.iter_mut().for_each(|x| *x = 0.0);
        } else if beta != 1.0 {
            c_row.iter_mut().for_each(|x| *x *= beta);
        }
        if k == 0 || alpha == 0.0 {
            return;
        }
        match (ta, tb) {
            (Transpose::No, Transpose::No) => {
                // C[i,:] += α Σ_l A[i,l]·B[l,:]  (axpy over contiguous B rows)
                for l in 0..k {
                    let ail = alpha * a[i * k + l];
                    if ail != 0.0 {
                        let b_row = &b[l * n..l * n + n];
                        for (cj, bj) in c_row.iter_mut().zip(b_row) {
                            *cj += ail * bj;
                        }
                    }
                }
            }
            (Transpose::No, Transpose::Yes) => {
                // C[i,j] += α·dot(A.row(i), B.row(j)); B stored n×k.
                let a_row = &a[i * k..i * k + k];
                for (j, cj) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..j * k + k];
                    *cj += alpha * crate::ops::dot(a_row, b_row);
                }
            }
            (Transpose::Yes, Transpose::No) => {
                // A stored k×m: C[i,j] += α Σ_l A[l,i]·B[l,j].
                for l in 0..k {
                    let ali = alpha * a[l * m + i];
                    if ali != 0.0 {
                        let b_row = &b[l * n..l * n + n];
                        for (cj, bj) in c_row.iter_mut().zip(b_row) {
                            *cj += ali * bj;
                        }
                    }
                }
            }
            (Transpose::Yes, Transpose::Yes) => {
                // Rare; A stored k×m, B stored n×k.
                for (j, cj) in c_row.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for l in 0..k {
                        acc += a[l * m + i] * b[j * k + l];
                    }
                    *cj += alpha * acc;
                }
            }
        }
    };

    if m * n >= PAR_THRESHOLD && m > 1 {
        crate::par::par_rows(&mut c[..m * n], n, row_kernel);
    } else {
        for (i, c_row) in c[..m * n].chunks_mut(n).enumerate() {
            row_kernel(i, c_row);
        }
    }
}

/// Convenience: `C = A·B` with fresh output.
pub fn matmul(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0; m * n];
    gemm(
        Transpose::No,
        Transpose::No,
        m,
        n,
        k,
        1.0,
        a,
        b,
        0.0,
        &mut c,
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: naive triple loop with explicit indexing.
    fn naive(
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let get_a = |i: usize, l: usize| match ta {
            Transpose::No => a[i * k + l],
            Transpose::Yes => a[l * m + i],
        };
        let get_b = |l: usize, j: usize| match tb {
            Transpose::No => b[l * n + j],
            Transpose::Yes => b[j * k + l],
        };
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += get_a(i, l) * get_b(l, j);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut r = crate::rng::Rng::new(seed);
        (0..n).map(|_| r.uniform_in(-1.0, 1.0)).collect()
    }

    fn assert_all_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let c = matmul(2, 2, 2, &[1., 2., 3., 4.], &[5., 6., 7., 8.]);
        assert_eq!(c, vec![19., 22., 43., 50.]);
    }

    #[test]
    fn all_transpose_variants_match_naive() {
        let (m, n, k) = (7, 9, 11);
        for (ta, a_len) in [(Transpose::No, m * k), (Transpose::Yes, k * m)] {
            for (tb, b_len) in [(Transpose::No, k * n), (Transpose::Yes, n * k)] {
                let a = rand_vec(a_len, 1);
                let b = rand_vec(b_len, 2);
                let mut c = vec![0.0; m * n];
                gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
                assert_all_close(&c, &naive(ta, tb, m, n, k, &a, &b), 1e-4);
            }
        }
    }

    #[test]
    fn alpha_beta_blend() {
        let a = rand_vec(4 * 3, 3);
        let b = rand_vec(3 * 5, 4);
        let c0 = rand_vec(4 * 5, 5);
        let mut c = c0.clone();
        gemm(
            Transpose::No,
            Transpose::No,
            4,
            5,
            3,
            2.0,
            &a,
            &b,
            0.5,
            &mut c,
        );
        let p = naive(Transpose::No, Transpose::No, 4, 5, 3, &a, &b);
        for i in 0..c.len() {
            assert!((c[i] - (2.0 * p[i] + 0.5 * c0[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Large enough to cross PAR_THRESHOLD.
        let (m, n, k) = (96, 96, 33);
        let a = rand_vec(m * k, 6);
        let b = rand_vec(k * n, 7);
        let mut c = vec![0.0; m * n];
        gemm(
            Transpose::No,
            Transpose::No,
            m,
            n,
            k,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
        );
        assert_all_close(
            &c,
            &naive(Transpose::No, Transpose::No, m, n, k, &a, &b),
            1e-3,
        );
    }

    #[test]
    fn zero_k_scales_c_only() {
        let mut c = vec![2.0; 4];
        gemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            0,
            1.0,
            &[],
            &[],
            0.5,
            &mut c,
        );
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn zero_m_or_n_is_noop() {
        let mut c: Vec<f32> = vec![];
        gemm(
            Transpose::No,
            Transpose::No,
            0,
            5,
            3,
            1.0,
            &[],
            &[0.0; 15],
            0.0,
            &mut c,
        );
        gemm(
            Transpose::No,
            Transpose::No,
            5,
            0,
            3,
            1.0,
            &[0.0; 15],
            &[],
            0.0,
            &mut c,
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_short_buffers() {
        let mut c = vec![0.0; 4];
        gemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            1.0,
            &[0.0; 3],
            &[0.0; 4],
            0.0,
            &mut c,
        );
    }
}
