//! Softmax cross-entropy loss with analytic gradient.

use easgd_tensor::{Tensor, TrainScratch};

/// Combined softmax + cross-entropy head.
///
/// Fusing the two is both numerically stable (log-sum-exp trick) and gives
/// the famously simple gradient `(softmax(z) − onehot(y)) / B`.
#[derive(Clone, Debug, Default)]
pub struct SoftmaxCrossEntropy;

/// Output of a loss evaluation on one batch.
#[derive(Clone, Debug)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Softmax probabilities, `[B, classes]`.
    pub probs: Tensor,
    /// Number of samples whose argmax prediction equals the label.
    pub correct: usize,
}

impl SoftmaxCrossEntropy {
    /// Evaluates mean cross-entropy of `logits` (`[B, classes]`) against
    /// integer `labels`.
    ///
    /// # Panics
    /// Panics if shapes disagree or any label is out of range.
    pub fn forward(&self, logits: &Tensor, labels: &[usize]) -> LossOutput {
        let mut probs = Tensor::default();
        let mut scratch = TrainScratch::default();
        let (loss, correct) = self.forward_into(logits, labels, &mut probs, &mut scratch);
        LossOutput {
            loss,
            probs,
            correct,
        }
    }

    /// [`forward`](Self::forward) writing the softmax probabilities into a
    /// caller-owned tensor sized through the counted `scratch`; returns
    /// `(mean loss, correct count)`.
    ///
    /// # Panics
    /// Panics if shapes disagree or any label is out of range.
    pub fn forward_into(
        &self,
        logits: &Tensor,
        labels: &[usize],
        probs: &mut Tensor,
        scratch: &mut TrainScratch,
    ) -> (f32, usize) {
        let b = labels.len();
        assert!(b > 0, "empty batch");
        assert_eq!(logits.len() % b, 0, "logit rows must match labels");
        let classes = logits.len() / b;
        // Every probability row is fully overwritten below.
        scratch.shape_tensor(probs, &[b, classes]);
        let mut loss = 0.0f64;
        let mut correct = 0;
        for (s, &label) in labels.iter().enumerate() {
            assert!(label < classes, "label {label} out of range {classes}");
            let z = &logits.as_slice()[s * classes..(s + 1) * classes];
            let p = &mut probs.as_mut_slice()[s * classes..(s + 1) * classes];
            let max = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (pi, &zi) in p.iter_mut().zip(z) {
                *pi = (zi - max).exp();
                denom += *pi;
            }
            let inv = 1.0 / denom;
            p.iter_mut().for_each(|pi| *pi *= inv);
            loss -= (p[label].max(1e-12) as f64).ln();
            if easgd_tensor::ops::argmax(z) == Some(label) {
                correct += 1;
            }
        }
        ((loss / b as f64) as f32, correct)
    }

    /// Gradient of the mean loss with respect to the logits:
    /// `(probs − onehot) / B`.
    ///
    /// # Panics
    /// Panics if shapes disagree.
    pub fn backward(&self, out: &LossOutput, labels: &[usize]) -> Tensor {
        let mut grad = Tensor::default();
        let mut scratch = TrainScratch::default();
        self.backward_into(&out.probs, labels, &mut grad, &mut scratch);
        grad
    }

    /// [`backward`](Self::backward) writing the logit gradient into a
    /// caller-owned tensor sized through the counted `scratch`; `probs`
    /// is the probability tensor produced by
    /// [`forward_into`](Self::forward_into).
    ///
    /// # Panics
    /// Panics if shapes disagree.
    pub fn backward_into(
        &self,
        probs: &Tensor,
        labels: &[usize],
        grad: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let b = labels.len();
        let classes = probs.len() / b;
        scratch.shape_tensor(grad, probs.shape().dims());
        grad.as_mut_slice().copy_from_slice(probs.as_slice());
        let inv_b = 1.0 / b as f32;
        for (s, &label) in labels.iter().enumerate() {
            let row = &mut grad.as_mut_slice()[s * classes..(s + 1) * classes];
            row[label] -= 1.0;
            row.iter_mut().for_each(|g| *g *= inv_b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let loss = SoftmaxCrossEntropy.forward(&Tensor::zeros([2, 10]), &[3, 7]);
        assert!((loss.loss - (10.0f32).ln()).abs() < 1e-5);
        for p in loss.probs.as_slice() {
            assert!((p - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros([1, 4]);
        logits.as_mut_slice()[2] = 20.0;
        let loss = SoftmaxCrossEntropy.forward(&logits, &[2]);
        assert!(loss.loss < 1e-3);
        assert_eq!(loss.correct, 1);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec([2, 3], vec![1.0, 5.0, 0.0, 9.0, 1.0, 2.0]);
        let loss = SoftmaxCrossEntropy.forward(&logits, &[1, 2]);
        assert_eq!(loss.correct, 1);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec([2, 3], vec![0.3, -0.2, 0.9, 1.0, 1.0, 1.0]);
        let out = SoftmaxCrossEntropy.forward(&logits, &[0, 2]);
        let grad = SoftmaxCrossEntropy.backward(&out, &[0, 2]);
        for row in grad.as_slice().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = Tensor::from_vec([2, 4], vec![0.5, -1.0, 2.0, 0.1, 1.0, 0.0, -0.5, 0.3]);
        let labels = [2usize, 0];
        let out = SoftmaxCrossEntropy.forward(&logits, &labels);
        let grad = SoftmaxCrossEntropy.backward(&out, &labels);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let orig = logits.as_slice()[idx];
            logits.as_mut_slice()[idx] = orig + eps;
            let lp = SoftmaxCrossEntropy.forward(&logits, &labels).loss;
            logits.as_mut_slice()[idx] = orig - eps;
            let lm = SoftmaxCrossEntropy.forward(&logits, &labels).loss;
            logits.as_mut_slice()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[idx]).abs() < 1e-3,
                "logit {idx}: fd {fd} vs analytic {}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn numerically_stable_for_huge_logits() {
        let logits = Tensor::from_vec([1, 3], vec![1000.0, 999.0, -1000.0]);
        let out = SoftmaxCrossEntropy.forward(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.probs.as_slice().iter().all(|p| p.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        let _ = SoftmaxCrossEntropy.forward(&Tensor::zeros([1, 3]), &[3]);
    }
}
