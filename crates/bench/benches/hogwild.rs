//! Microbench: the Hogwild enabling mechanism — lock-free atomic weight
//! updates vs mutex-protected updates, single-threaded overhead and
//! multi-threaded throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use easgd_tensor::AtomicBuffer;
use std::sync::{Arc, Mutex};

const LEN: usize = 10_000;

fn bench_single_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_single_thread");
    group.throughput(Throughput::Elements(LEN as u64));
    let grad = vec![0.001f32; LEN];

    let buf = AtomicBuffer::zeros(LEN);
    group.bench_function("lock_free_atomic", |bencher| {
        bencher.iter(|| buf.sgd_update(0.01, &grad));
    });

    let locked = Mutex::new(vec![0.0f32; LEN]);
    group.bench_function("mutex", |bencher| {
        bencher.iter(|| {
            let mut w = locked.lock().unwrap();
            easgd_tensor::ops::sgd_update(0.01, &mut w, &grad);
        });
    });

    let mut plain = vec![0.0f32; LEN];
    group.bench_function("unsynchronized_baseline", |bencher| {
        bencher.iter(|| easgd_tensor::ops::sgd_update(0.01, &mut plain, &grad));
    });
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_contended");
    group.sample_size(20);
    let updates_per_thread = 50;
    for &threads in &[2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("lock_free", threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| {
                    let buf = Arc::new(AtomicBuffer::zeros(LEN));
                    let grad = Arc::new(vec![0.001f32; LEN]);
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let buf = Arc::clone(&buf);
                            let grad = Arc::clone(&grad);
                            s.spawn(move || {
                                for _ in 0..updates_per_thread {
                                    buf.sgd_update(0.01, &grad);
                                }
                            });
                        }
                    });
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| {
                    let w = Arc::new(Mutex::new(vec![0.0f32; LEN]));
                    let grad = Arc::new(vec![0.001f32; LEN]);
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let w = Arc::clone(&w);
                            let grad = Arc::clone(&grad);
                            s.spawn(move || {
                                for _ in 0..updates_per_thread {
                                    let mut guard = w.lock().unwrap();
                                    easgd_tensor::ops::sgd_update(0.01, &mut guard, &grad);
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_contended);
criterion_main!(benches);
