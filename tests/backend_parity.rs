//! Backend parity suite: every trainer must produce **bit-identical**
//! results and simulated times whether its virtual cluster is hosted on
//! OS threads or on the discrete-event engine.
//!
//! Each case runs twice — once on the default thread backend and once
//! under `ClusterBackend::Events.with_default(..)` (the scoped override
//! that reaches trainers building their `ClusterConfig`s internally) —
//! and every observable `RunResult` field except wall-clock seconds is
//! compared at the bit level. Together with `tests/golden_traces.rs`
//! (which pins the thread backend against checked-in digests) this
//! proves the event backend reproduces the golden digests too.
//!
//! The wall-clock trainer family never touches the virtual cluster, but
//! is included at `workers = 1` (its only deterministic configuration)
//! as evidence that *every* `MethodId` runs unmodified with the event
//! backend installed as the default.

use knl_easgd::algorithms as alg;
use knl_easgd::prelude::*;

use alg::{
    async_server_sim, hierarchical_sync_easgd, run_method, AsyncVariant, GpuClusterTopology,
    MethodId, OriginalMode, RunResult,
};
use easgd_nn::LayoutKind;

/// The same fixed tiny task as the golden suite.
fn task() -> (Network, Dataset, Dataset) {
    let t = SyntheticSpec::mnist_small().task(7);
    let (train, test) = t.train_test(240, 80, 11);
    (lenet_tiny(23), train, test)
}

fn cfg(workers: usize, iterations: usize) -> TrainConfig {
    TrainConfig {
        workers,
        batch: 16,
        eta: 0.02,
        rho: 0.9 / (0.02 * workers as f32),
        mu: 0.9,
        iterations,
        seed: 0x90_1d_e2,
        comm_period: 1,
    }
}

/// Asserts bitwise equality of every reproducible `RunResult` field
/// (everything but `wall_seconds`, which measures real time).
fn assert_bit_identical(name: &str, threads: &RunResult, events: &RunResult) {
    assert_eq!(threads.method, events.method, "{name}: method");
    assert_eq!(threads.iterations, events.iterations, "{name}: iterations");
    assert_eq!(
        threads.accuracy.to_bits(),
        events.accuracy.to_bits(),
        "{name}: accuracy {} vs {}",
        threads.accuracy,
        events.accuracy
    );
    assert_eq!(
        threads.final_loss.to_bits(),
        events.final_loss.to_bits(),
        "{name}: final_loss {} vs {}",
        threads.final_loss,
        events.final_loss
    );
    assert_eq!(
        threads.sim_seconds.map(f64::to_bits),
        events.sim_seconds.map(f64::to_bits),
        "{name}: sim_seconds {:?} vs {:?}",
        threads.sim_seconds,
        events.sim_seconds
    );
    match (&threads.breakdown, &events.breakdown) {
        (None, None) => {}
        (Some(tb), Some(eb)) => {
            for cat in TimeCategory::ALL {
                assert_eq!(
                    tb.get(cat).to_bits(),
                    eb.get(cat).to_bits(),
                    "{name}: breakdown[{cat:?}] {} vs {}",
                    tb.get(cat),
                    eb.get(cat)
                );
            }
        }
        (t, e) => panic!("{name}: breakdown presence differs: {t:?} vs {e:?}"),
    }
    assert_eq!(threads.trace.len(), events.trace.len(), "{name}: trace len");
    for (i, (tp, ep)) in threads.trace.iter().zip(&events.trace).enumerate() {
        assert_eq!(tp.iteration, ep.iteration, "{name}: trace[{i}].iteration");
        assert_eq!(
            tp.accuracy.to_bits(),
            ep.accuracy.to_bits(),
            "{name}: trace[{i}].accuracy"
        );
        if threads.sim_seconds.is_some() {
            assert_eq!(
                tp.seconds.to_bits(),
                ep.seconds.to_bits(),
                "{name}: trace[{i}].seconds {} vs {}",
                tp.seconds,
                ep.seconds
            );
        }
    }
    assert_eq!(
        threads.loss_trace.len(),
        events.loss_trace.len(),
        "{name}: loss_trace len"
    );
    for (i, (a, b)) in threads
        .loss_trace
        .iter()
        .zip(&events.loss_trace)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: loss_trace[{i}]");
    }
    assert_eq!(
        threads.center_hash, events.center_hash,
        "{name}: center params hash"
    );
}

/// Runs `case` on both backends and asserts bit-identical output.
fn parity<F: Fn() -> RunResult>(name: &str, case: F) {
    let threads = case();
    let events = ClusterBackend::Events.with_default(&case);
    assert_bit_identical(name, &threads, &events);
}

#[test]
fn original_easgd_modes_are_backend_identical_at_w4() {
    let (net, train, test) = task();
    let costs = SimCosts::mnist_lenet_4gpu();
    for (name, mode) in [
        ("original_serialized_w4", OriginalMode::Serialized),
        ("original_pipelined_w4", OriginalMode::Pipelined),
    ] {
        parity(name, || {
            alg::original_easgd_sim(&net, &train, &test, &cfg(4, 10), &costs, mode)
        });
    }
}

#[test]
fn sync_easgd_variants_are_backend_identical_at_w4_and_w8() {
    let (net, train, test) = task();
    let costs = SimCosts::mnist_lenet_4gpu();
    for (name, v) in [
        ("sync_easgd1_w4", SyncVariant::Easgd1),
        ("sync_easgd2_w4", SyncVariant::Easgd2),
        ("sync_easgd3_w4", SyncVariant::Easgd3),
    ] {
        parity(name, || {
            alg::sync_easgd_sim(&net, &train, &test, &cfg(4, 12), &costs, v, 5)
        });
    }
    // One case at the P=8 acceptance point.
    parity("sync_easgd1_w8", || {
        alg::sync_easgd_sim(
            &net,
            &train,
            &test,
            &cfg(8, 8),
            &costs,
            SyncVariant::Easgd1,
            5,
        )
    });
}

#[test]
fn sync_sgd_layouts_are_backend_identical_at_w2() {
    let (net, train, test) = task();
    let c = cfg(2, 8);
    let shards = train.partition(2);
    let link = AlphaBeta::pcie_gen3_x16();
    for (name, layout) in [
        ("sync_sgd_packed_w2", LayoutKind::Packed),
        ("sync_sgd_perlayer_w2", LayoutKind::PerLayer),
    ] {
        parity(name, || {
            alg::sync_sgd_sim(&net, &shards, &test, &c, &link, layout, 1.5e-3, 10)
        });
    }
}

#[test]
fn async_server_is_backend_identical_at_w1() {
    // FCFS arrival order is racy for >1 thread-backed worker, so the
    // thread-vs-event comparison pins the deterministic w=1 config (as
    // the golden suite does). Event-side determinism at w=4 is covered
    // below.
    let (net, train, test) = task();
    let costs = SimCosts::mnist_lenet_4gpu();
    for (name, v) in [
        ("async_sgd_w1", AsyncVariant::Sgd),
        ("async_easgd_w1", AsyncVariant::Easgd),
    ] {
        parity(name, || {
            async_server_sim(&net, &train, &test, &cfg(1, 15), &costs, v)
        });
    }
}

#[test]
fn async_server_at_w4_is_deterministic_on_the_event_backend() {
    // Where the thread backend is wall-clock-racy, the event engine's
    // schedule is a pure function of the config: two w=4 FCFS runs must
    // agree bit-for-bit.
    let (net, train, test) = task();
    let costs = SimCosts::mnist_lenet_4gpu();
    let run = || {
        ClusterBackend::Events.with_default(|| {
            async_server_sim(
                &net,
                &train,
                &test,
                &cfg(4, 12),
                &costs,
                AsyncVariant::Easgd,
            )
        })
    };
    let a = run();
    let b = run();
    assert_bit_identical("async_easgd_w4_events_rerun", &a, &b);
}

#[test]
fn hierarchical_topology_is_backend_identical() {
    let (net, train, test) = task();
    let topo = GpuClusterTopology {
        nodes: 2,
        gpus_per_node: 2,
        intra: AlphaBeta::pcie_gen3_x16(),
        inter: AlphaBeta::fdr_infiniband(),
    };
    parity("hierarchical_2x2", || {
        hierarchical_sync_easgd(&net, &train, &test, &cfg(4, 10), &topo)
    });
}

#[test]
fn every_method_id_runs_with_the_event_backend_installed() {
    // The wall-clock family doesn't route through VirtualCluster, but
    // every MethodId must run unmodified (and, at its deterministic
    // w=1 config, identically) with the event backend as the default.
    let (net, train, test) = task();
    for m in MethodId::ALL {
        parity(m.slug(), || run_method(m, &net, &train, &test, &cfg(1, 12)));
    }
}
