// xtask: allow(step-alloc) — this module *is* the frozen allocating
// baseline; fresh per-step allocations are the behaviour under test.
//! The seed training step, frozen at this PR's base commit.
//!
//! A faithful port of the pre-arena `forward`/`backward` path — the
//! allocating layer methods, the per-call im2col/col2im lowering, and
//! the GEMM exactly as they stood before the zero-allocation refactor
//! (including the GEMM's per-call packing-buffer allocations, which the
//! library version has since moved to thread-local scratch). Freezing
//! the baseline here keeps the A/B honest: improvements to the live
//! kernels cannot leak into the side they are measured against.
//!
//! The frozen step computes the *same function to the bit* as the live
//! pooled path — `main.rs` asserts loss and full-gradient bit-equality
//! before timing — so the speedup column measures implementation cost
//! only. Every fresh heap allocation the seed path performs is tallied
//! in [`SeedNet::allocs`], giving the `seed_allocs_per_train_step`
//! counter its meaning.

use easgd_tensor::{Conv2dGeometry, ParamArena};

// ---------------------------------------------------------------------------
// Frozen GEMM (seed `easgd_tensor::gemm`, serial tiers).
// ---------------------------------------------------------------------------

/// Operand orientation (frozen copy of `easgd_tensor::Transpose`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Tr {
    /// Use the matrix as stored.
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

const MR: usize = 8;
const NR: usize = 32;
const MC: usize = 256;
const KC: usize = 256;
const NC: usize = 2048;
const SMALL_FLOPS: u64 = 1 << 17;

fn apply_beta(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.iter_mut().for_each(|x| *x = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|x| *x *= beta);
    }
}

#[allow(clippy::too_many_arguments)]
fn naive_row(
    ta: Tr,
    tb: Tr,
    m: usize,
    _n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    i: usize,
    c_row: &mut [f32],
) {
    let n = c_row.len();
    match (ta, tb) {
        (Tr::No, Tr::No) => {
            for l in 0..k {
                let ail = alpha * a[i * k + l];
                if ail != 0.0 {
                    let b_row = &b[l * n..l * n + n];
                    for (cj, bj) in c_row.iter_mut().zip(b_row) {
                        *cj += ail * bj;
                    }
                }
            }
        }
        (Tr::No, Tr::Yes) => {
            let a_row = &a[i * k..i * k + k];
            for (j, cj) in c_row.iter_mut().enumerate() {
                let b_row = &b[j * k..j * k + k];
                *cj += alpha * easgd_tensor::ops::dot(a_row, b_row);
            }
        }
        (Tr::Yes, Tr::No) => {
            for l in 0..k {
                let ali = alpha * a[l * m + i];
                if ali != 0.0 {
                    let b_row = &b[l * n..l * n + n];
                    for (cj, bj) in c_row.iter_mut().zip(b_row) {
                        *cj += ali * bj;
                    }
                }
            }
        }
        (Tr::Yes, Tr::Yes) => {
            for (j, cj) in c_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a[l * m + i] * b[j * k + l];
                }
                *cj += alpha * acc;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn pack_a(
    ta: Tr,
    a: &[f32],
    m: usize,
    k: usize,
    ic: usize,
    mcb: usize,
    pc: usize,
    kcb: usize,
    ap: &mut [f32],
) {
    let tiles = mcb.div_ceil(MR);
    for it in 0..tiles {
        let dst = &mut ap[it * kcb * MR..(it + 1) * kcb * MR];
        let rows = MR.min(mcb - it * MR);
        match ta {
            Tr::No => {
                for r in 0..MR {
                    if r < rows {
                        let src = &a[(ic + it * MR + r) * k + pc..][..kcb];
                        for (p, &v) in src.iter().enumerate() {
                            dst[p * MR + r] = v;
                        }
                    } else {
                        for p in 0..kcb {
                            dst[p * MR + r] = 0.0;
                        }
                    }
                }
            }
            Tr::Yes => {
                let base = ic + it * MR;
                for p in 0..kcb {
                    let d = &mut dst[p * MR..(p + 1) * MR];
                    let src = &a[(pc + p) * m + base..][..rows];
                    d[..rows].copy_from_slice(src);
                    d[rows..].iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn pack_b(
    tb: Tr,
    b: &[f32],
    k: usize,
    n: usize,
    pc: usize,
    kcb: usize,
    jc: usize,
    ncb: usize,
    bp: &mut [f32],
) {
    let tiles = ncb.div_ceil(NR);
    for jt in 0..tiles {
        let dst = &mut bp[jt * kcb * NR..(jt + 1) * kcb * NR];
        let cols = NR.min(ncb - jt * NR);
        match tb {
            Tr::No => {
                for p in 0..kcb {
                    let d = &mut dst[p * NR..(p + 1) * NR];
                    let src = &b[(pc + p) * n + jc + jt * NR..][..cols];
                    d[..cols].copy_from_slice(src);
                    d[cols..].iter_mut().for_each(|v| *v = 0.0);
                }
            }
            Tr::Yes => {
                for j in 0..NR {
                    if j < cols {
                        let src = &b[(jc + jt * NR + j) * k + pc..][..kcb];
                        for (p, &v) in src.iter().enumerate() {
                            dst[p * NR + j] = v;
                        }
                    } else {
                        for p in 0..kcb {
                            dst[p * NR + j] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

#[inline(always)]
fn fma_row(mut acc: [f32; NR], a: f32, b: &[f32; NR]) -> [f32; NR] {
    if cfg!(target_feature = "fma") {
        for j in 0..NR {
            acc[j] = b[j].mul_add(a, acc[j]);
        }
    } else {
        for j in 0..NR {
            acc[j] += a * b[j];
        }
    }
    acc
}

#[inline]
fn microkernel(apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    let mut c0 = [0.0f32; NR];
    let mut c1 = [0.0f32; NR];
    let mut c2 = [0.0f32; NR];
    let mut c3 = [0.0f32; NR];
    let mut c4 = [0.0f32; NR];
    let mut c5 = [0.0f32; NR];
    let mut c6 = [0.0f32; NR];
    let mut c7 = [0.0f32; NR];
    for (ak, bk) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        let (Ok(ak), Ok(bk)) = (<&[f32; MR]>::try_from(ak), <&[f32; NR]>::try_from(bk)) else {
            continue;
        };
        c0 = fma_row(c0, ak[0], bk);
        c1 = fma_row(c1, ak[1], bk);
        c2 = fma_row(c2, ak[2], bk);
        c3 = fma_row(c3, ak[3], bk);
        c4 = fma_row(c4, ak[4], bk);
        c5 = fma_row(c5, ak[5], bk);
        c6 = fma_row(c6, ak[6], bk);
        c7 = fma_row(c7, ak[7], bk);
    }
    [c0, c1, c2, c3, c4, c5, c6, c7]
}

#[allow(clippy::too_many_arguments)]
fn write_tile(
    acc: &[[f32; NR]; MR],
    alpha: f32,
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
) {
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let crow = &mut c[(row0 + r) * ldc + col0..][..nr];
        for (cj, accj) in crow.iter_mut().zip(accr.iter()) {
            *cj += alpha * accj;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn write_tile_blend(
    acc: &[[f32; NR]; MR],
    alpha: f32,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
) {
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let crow = &mut c[(row0 + r) * ldc + col0..][..nr];
        if beta == 0.0 {
            for (cj, accj) in crow.iter_mut().zip(accr.iter()) {
                *cj = alpha * accj;
            }
        } else {
            for (cj, accj) in crow.iter_mut().zip(accr.iter()) {
                *cj = alpha * accj + beta * *cj;
            }
        }
    }
}

/// Frozen seed GEMM: the serial blocked kernel with its per-call packing
/// allocations, dispatching to the naive row loop below `SMALL_FLOPS`
/// exactly as the seed did. Returns how many heap allocations it made.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ta: Tr,
    tb: Tr,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) -> u64 {
    assert!(
        a.len() >= m * k && b.len() >= k * n && c.len() >= m * n,
        "seed gemm buffer mismatch"
    );
    if m == 0 || n == 0 {
        return 0;
    }
    let c = &mut c[..m * n];
    if k == 0 || alpha == 0.0 {
        apply_beta(c, beta);
        return 0;
    }
    let flops = 2 * m as u64 * n as u64 * k as u64;
    if flops < SMALL_FLOPS {
        apply_beta(c, beta);
        for (i, c_row) in c.chunks_mut(n).enumerate() {
            naive_row(ta, tb, m, n, k, alpha, a, b, i, c_row);
        }
        return 0;
    }
    // Seed behaviour: both packing panels are allocated afresh per call.
    let mut ap = vec![0.0f32; MC * KC];
    let bp_cols = NC.min(n.next_multiple_of(NR));
    let mut bp = vec![0.0f32; KC * bp_cols];

    let mut jc = 0;
    while jc < n {
        let ncb = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kcb = KC.min(k - pc);
            pack_b(tb, b, k, n, pc, kcb, jc, ncb, &mut bp);
            let mut ic = 0;
            while ic < m {
                let mcb = MC.min(m - ic);
                pack_a(ta, a, m, k, ic, mcb, pc, kcb, &mut ap);
                let row_tiles = mcb.div_ceil(MR);
                let col_tiles = ncb.div_ceil(NR);
                for jt in 0..col_tiles {
                    let bpanel = &bp[jt * kcb * NR..(jt + 1) * kcb * NR];
                    for it in 0..row_tiles {
                        let apanel = &ap[it * kcb * MR..(it + 1) * kcb * MR];
                        let acc = microkernel(apanel, bpanel);
                        let row0 = ic + it * MR;
                        let col0 = jc + jt * NR;
                        let mr = MR.min(mcb - it * MR);
                        let nr = NR.min(ncb - jt * NR);
                        if pc == 0 {
                            write_tile_blend(&acc, alpha, beta, c, n, row0, col0, mr, nr);
                        } else {
                            write_tile(&acc, alpha, c, n, row0, col0, mr, nr);
                        }
                    }
                }
                ic += mcb;
            }
            pc += kcb;
        }
        jc += ncb;
    }
    2
}

// ---------------------------------------------------------------------------
// Frozen im2col / col2im (seed `easgd_tensor::im2col`, per-element form).
// ---------------------------------------------------------------------------

fn im2col(geom: &Conv2dGeometry, image: &[f32], col: &mut [f32]) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let n_cols = oh * ow;
    let mut row = 0;
    for c in 0..geom.in_channels {
        let plane = &image[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for ky in 0..geom.k_h {
            for kx in 0..geom.k_w {
                let out_row = &mut col[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    let dst = &mut out_row[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= geom.in_h as isize {
                        dst.iter_mut().for_each(|x| *x = 0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * geom.in_w..(iy as usize + 1) * geom.in_w];
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        *d = if ix < 0 || ix >= geom.in_w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
                row += 1;
            }
        }
    }
}

fn col2im(geom: &Conv2dGeometry, col: &[f32], image: &mut [f32]) {
    image.iter_mut().for_each(|x| *x = 0.0);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let n_cols = oh * ow;
    let mut row = 0;
    for c in 0..geom.in_channels {
        let plane_off = c * geom.in_h * geom.in_w;
        for ky in 0..geom.k_h {
            for kx in 0..geom.k_w {
                let src_row = &col[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        image[plane_off + iy as usize * geom.in_w + ix as usize] +=
                            src_row[oy * ow + ox];
                    }
                }
                row += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Frozen layers (seed `easgd_nn` allocating forward/backward).
// ---------------------------------------------------------------------------

/// One frozen layer with the seed's per-step caches.
enum SeedLayer {
    Conv {
        geom: Conv2dGeometry,
        oc: usize,
        w_seg: usize,
        b_seg: usize,
        col_cache: Vec<Vec<f32>>,
    },
    Relu {
        mask: Vec<f32>,
    },
    MaxPool {
        channels: usize,
        in_h: usize,
        in_w: usize,
        size: usize,
        stride: usize,
        argmax: Vec<usize>,
    },
    Flatten,
    Dense {
        in_f: usize,
        out_f: usize,
        w_seg: usize,
        b_seg: usize,
        input_cache: Vec<f32>,
    },
}

/// The frozen seed network: a layer stack plus the allocation tally.
pub struct SeedNet {
    layers: Vec<SeedLayer>,
    shape: Vec<usize>,
    next_seg: usize,
    /// Fresh heap allocations performed since construction.
    pub allocs: u64,
}

impl SeedNet {
    /// Starts a stack over per-sample input `shape` (C, H, W).
    pub fn new(shape: [usize; 3]) -> Self {
        Self {
            layers: Vec::new(),
            shape: shape.to_vec(),
            next_seg: 0,
            allocs: 0,
        }
    }

    /// Mirrors `NetworkBuilder::conv2d` (square kernel, same stride/pad).
    pub fn conv2d(mut self, oc: usize, k: usize, stride: usize, pad: usize) -> Self {
        let geom = Conv2dGeometry {
            in_channels: self.shape[0],
            in_h: self.shape[1],
            in_w: self.shape[2],
            k_h: k,
            k_w: k,
            stride,
            pad,
        };
        let (w_seg, b_seg) = (self.next_seg, self.next_seg + 1);
        self.next_seg += 2;
        self.shape = vec![oc, geom.out_h(), geom.out_w()];
        self.layers.push(SeedLayer::Conv {
            geom,
            oc,
            w_seg,
            b_seg,
            col_cache: Vec::new(),
        });
        self
    }

    /// Mirrors `NetworkBuilder::relu`.
    pub fn relu(mut self) -> Self {
        self.layers.push(SeedLayer::Relu { mask: Vec::new() });
        self
    }

    /// Mirrors `NetworkBuilder::maxpool`.
    pub fn maxpool(mut self, size: usize, stride: usize) -> Self {
        let (c, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        let (oh, ow) = ((h - size) / stride + 1, (w - size) / stride + 1);
        self.layers.push(SeedLayer::MaxPool {
            channels: c,
            in_h: h,
            in_w: w,
            size,
            stride,
            argmax: Vec::new(),
        });
        self.shape = vec![c, oh, ow];
        self
    }

    /// Mirrors `NetworkBuilder::flatten`.
    pub fn flatten(mut self) -> Self {
        self.layers.push(SeedLayer::Flatten);
        self.shape = vec![self.shape.iter().product()];
        self
    }

    /// Mirrors `NetworkBuilder::dense`.
    pub fn dense(mut self, out_f: usize) -> Self {
        let in_f: usize = self.shape.iter().product();
        let (w_seg, b_seg) = (self.next_seg, self.next_seg + 1);
        self.next_seg += 2;
        self.layers.push(SeedLayer::Dense {
            in_f,
            out_f,
            w_seg,
            b_seg,
            input_cache: Vec::new(),
        });
        self.shape = vec![out_f];
        self
    }

    /// One seed training evaluation — forward chain, softmax loss,
    /// backward chain — accumulating into `grads` (zeroed first, as the
    /// seed `Network::forward_backward` did). Returns the mean loss.
    pub fn step(
        &mut self,
        params: &ParamArena,
        grads: &mut ParamArena,
        x: &[f32],
        b: usize,
        labels: &[usize],
    ) -> f32 {
        // Seed `Network::forward` began with `x.clone()`.
        self.allocs += 1;
        let mut cur = x.to_vec();
        for layer in &mut self.layers {
            cur = forward_layer(layer, params, &cur, b, &mut self.allocs);
        }

        // Frozen `SoftmaxCrossEntropy::forward` + `backward`.
        let classes = cur.len() / b;
        self.allocs += 1;
        let mut probs = vec![0.0f32; cur.len()];
        let mut loss = 0.0f64;
        for (s, &label) in labels.iter().enumerate() {
            let z = &cur[s * classes..(s + 1) * classes];
            let p = &mut probs[s * classes..(s + 1) * classes];
            let max = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (pi, &zi) in p.iter_mut().zip(z) {
                *pi = (zi - max).exp();
                denom += *pi;
            }
            let inv = 1.0 / denom;
            p.iter_mut().for_each(|pi| *pi *= inv);
            loss -= (p[label].max(1e-12) as f64).ln();
        }
        self.allocs += 1;
        let mut grad = probs.clone();
        let inv_b = 1.0 / b as f32;
        for (s, &label) in labels.iter().enumerate() {
            let row = &mut grad[s * classes..(s + 1) * classes];
            row[label] -= 1.0;
            row.iter_mut().for_each(|g| *g *= inv_b);
        }

        grads.zero();
        for layer in self.layers.iter_mut().rev() {
            grad = backward_layer(layer, params, grads, &grad, b, &mut self.allocs);
        }
        (loss / b as f64) as f32
    }
}

fn forward_layer(
    layer: &mut SeedLayer,
    params: &ParamArena,
    input: &[f32],
    b: usize,
    allocs: &mut u64,
) -> Vec<f32> {
    match layer {
        SeedLayer::Conv {
            geom,
            oc,
            w_seg,
            b_seg,
            col_cache,
        } => {
            let w = params.segment(*w_seg);
            let bias = params.segment(*b_seg);
            let (rows, cols) = (geom.col_rows(), geom.col_cols());
            let in_len = geom.input_len();
            let out_len = *oc * cols;
            *allocs += 1;
            let mut out = vec![0.0f32; b * out_len];
            // Seed: `col_cache.clear(); col_cache.resize(b, Vec::new())`
            // dropped every panel, so each sample re-allocates below.
            col_cache.clear();
            col_cache.resize(b, Vec::new());
            for (s, col) in col_cache.iter_mut().enumerate() {
                let image = &input[s * in_len..(s + 1) * in_len];
                let y = &mut out[s * out_len..(s + 1) * out_len];
                *allocs += 1;
                col.resize(rows * cols, 0.0);
                im2col(geom, image, col);
                *allocs += gemm(Tr::No, Tr::No, *oc, cols, rows, 1.0, w, col, 0.0, y);
                for (c, plane) in y.chunks_mut(cols).enumerate() {
                    let bc = bias[c];
                    plane.iter_mut().for_each(|v| *v += bc);
                }
            }
            out
        }
        SeedLayer::Relu { mask } => {
            mask.clear();
            mask.reserve(input.len());
            *allocs += 1;
            let mut out = input.to_vec();
            for v in &mut out {
                if *v > 0.0 {
                    mask.push(1.0);
                } else {
                    mask.push(0.0);
                    *v = 0.0;
                }
            }
            out
        }
        SeedLayer::MaxPool {
            channels,
            in_h,
            in_w,
            size,
            stride,
            argmax,
        } => {
            let (oh, ow) = ((*in_h - *size) / *stride + 1, (*in_w - *size) / *stride + 1);
            let in_plane = *in_h * *in_w;
            let in_len = *channels * in_plane;
            let out_len = *channels * oh * ow;
            *allocs += 1;
            let mut out = vec![0.0f32; b * out_len];
            argmax.clear();
            argmax.resize(b * out_len, 0);
            for s in 0..b {
                for c in 0..*channels {
                    let plane_off = s * in_len + c * in_plane;
                    let out_off = s * out_len + c * oh * ow;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best_idx = plane_off + (oy * *stride) * *in_w + ox * *stride;
                            let mut best = input[best_idx];
                            for ky in 0..*size {
                                for kx in 0..*size {
                                    let idx = plane_off
                                        + (oy * *stride + ky) * *in_w
                                        + (ox * *stride + kx);
                                    if input[idx] > best {
                                        best = input[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                            let o = out_off + oy * ow + ox;
                            out[o] = best;
                            argmax[o] = best_idx;
                        }
                    }
                }
            }
            out
        }
        SeedLayer::Flatten => {
            *allocs += 1;
            input.to_vec()
        }
        SeedLayer::Dense {
            in_f,
            out_f,
            w_seg,
            b_seg,
            input_cache,
        } => {
            let w = params.segment(*w_seg);
            let bias = params.segment(*b_seg);
            *allocs += 1;
            let mut out = vec![0.0f32; b * *out_f];
            *allocs += gemm(
                Tr::No,
                Tr::Yes,
                b,
                *out_f,
                *in_f,
                1.0,
                input,
                w,
                0.0,
                &mut out,
            );
            for row in out.chunks_mut(*out_f) {
                easgd_tensor::ops::add_assign(row, bias);
            }
            *allocs += 1;
            *input_cache = input.to_vec();
            out
        }
    }
}

fn backward_layer(
    layer: &mut SeedLayer,
    params: &ParamArena,
    grads: &mut ParamArena,
    grad_out: &[f32],
    b: usize,
    allocs: &mut u64,
) -> Vec<f32> {
    match layer {
        SeedLayer::Conv {
            geom,
            oc,
            w_seg,
            b_seg,
            col_cache,
        } => {
            let (rows, cols) = (geom.col_rows(), geom.col_cols());
            let out_len = *oc * cols;
            let in_len = geom.input_len();
            let w = params.segment(*w_seg);
            *allocs += 1;
            let mut grad_in = vec![0.0f32; b * in_len];
            *allocs += 1;
            let mut grad_col = vec![0.0f32; rows * cols];
            for s in 0..b {
                let gy = &grad_out[s * out_len..(s + 1) * out_len];
                let col = &col_cache[s];
                *allocs += gemm(
                    Tr::No,
                    Tr::Yes,
                    *oc,
                    rows,
                    cols,
                    1.0,
                    gy,
                    col,
                    1.0,
                    grads.segment_mut(*w_seg),
                );
                {
                    let gb = grads.segment_mut(*b_seg);
                    for (c, plane) in gy.chunks(cols).enumerate() {
                        gb[c] += easgd_tensor::ops::sum(plane);
                    }
                }
                *allocs += gemm(
                    Tr::Yes,
                    Tr::No,
                    rows,
                    cols,
                    *oc,
                    1.0,
                    w,
                    gy,
                    0.0,
                    &mut grad_col,
                );
                let gx = &mut grad_in[s * in_len..(s + 1) * in_len];
                col2im(geom, &grad_col, gx);
            }
            grad_in
        }
        SeedLayer::Relu { mask } => {
            *allocs += 1;
            let mut g = grad_out.to_vec();
            for (gi, &m) in g.iter_mut().zip(mask.iter()) {
                *gi *= m;
            }
            g
        }
        SeedLayer::MaxPool {
            channels,
            in_h,
            in_w,
            argmax,
            ..
        } => {
            let in_len = *channels * *in_h * *in_w;
            *allocs += 1;
            let mut grad_in = vec![0.0f32; b * in_len];
            for (o, &src) in argmax.iter().enumerate() {
                grad_in[src] += grad_out[o];
            }
            grad_in
        }
        SeedLayer::Flatten => {
            *allocs += 1;
            grad_out.to_vec()
        }
        SeedLayer::Dense {
            in_f,
            out_f,
            w_seg,
            b_seg,
            input_cache,
        } => {
            *allocs += gemm(
                Tr::Yes,
                Tr::No,
                *out_f,
                *in_f,
                b,
                1.0,
                grad_out,
                input_cache,
                1.0,
                grads.segment_mut(*w_seg),
            );
            {
                let gb = grads.segment_mut(*b_seg);
                for row in grad_out.chunks(*out_f) {
                    easgd_tensor::ops::add_assign(gb, row);
                }
            }
            *allocs += 1;
            let mut grad_in = vec![0.0f32; b * *in_f];
            let w = params.segment(*w_seg);
            *allocs += gemm(
                Tr::No,
                Tr::No,
                b,
                *in_f,
                *out_f,
                1.0,
                grad_out,
                w,
                0.0,
                &mut grad_in,
            );
            grad_in
        }
    }
}
