//! Straggler ablation: the paper's introductory argument quantified —
//! cloud systems (frequent stragglers) favour asynchronous methods; HPC
//! clusters (reliable nodes) make the deterministic synchronous schedule
//! nearly free.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin stragglers
//! ```

use easgd::straggler::{straggler_study, StragglerConfig};

fn main() {
    println!("Straggler study: sync (BSP) vs async makespan penalty over ideal");
    println!("(10x slowdown per straggling step; 2000 rounds; 10 ms steps + 1 ms comm)\n");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "workers", "P(straggle)", "sync penalty", "async penalty", "sync/async"
    );
    for &workers in &[4usize, 16, 64] {
        for &prob in &[0.0, 0.001, 0.01, 0.05, 0.1, 0.2] {
            let out = straggler_study(&StragglerConfig {
                workers,
                rounds: 2_000,
                base_step_seconds: 0.010,
                straggler_prob: prob,
                straggler_factor: 10.0,
                comm_seconds: 0.001,
                seed: 0x57A6,
            });
            println!(
                "{:>8} {:>12.3} {:>13.2}x {:>13.2}x {:>11.2}x",
                workers,
                prob,
                out.sync_penalty(),
                out.async_penalty(),
                out.sync_seconds / out.async_seconds
            );
        }
        println!();
    }
    println!(
        "reading: at cloud-like straggler rates (≥5%) sync pays 2-6x while async pays\n\
         ~1.5x — the regime where Async SGD/parameter servers were designed. At\n\
         HPC-like rates (≤0.1%) the sync penalty vanishes, which is why the paper\n\
         can afford the deterministic Sync EASGD and its tree reductions (§1, §8)."
    );
}
