//! # easgd-data
//!
//! Datasets for the `knl-easgd` reproduction of *“Scaling Deep Learning on
//! GPU and Knights Landing clusters”* (SC '17).
//!
//! The paper's benchmarks are MNIST, CIFAR-10 and ImageNet (Table 1). This
//! environment is offline, so the crate provides two paths:
//!
//! * [`loaders`] — readers for the *real* on-disk formats (MNIST idx,
//!   CIFAR-10 binary), unit-tested against generated fixtures, so the real
//!   datasets drop in unchanged when available.
//! * [`synthetic`] — deterministic generators producing class-conditional
//!   image distributions with the same shapes as the real datasets
//!   (Table 1 card in [`card`]). Each class has a smooth random prototype;
//!   samples are noisy, randomly shifted draws around it. These are real
//!   supervised problems (non-trivial Bayes error, learnable by the same
//!   CNNs), so optimizer comparisons transfer.
//!
//! [`dataset::Dataset`] is the common container: normalized images, labels,
//! random batch sampling — everything Algorithm 1 needs (line 1 is the
//! normalization, line 8 the random batch pick).

pub mod augment;
pub mod card;
pub mod dataset;
pub mod loaders;
pub mod stats;
pub mod synthetic;

pub use augment::{sample_batch_augmented, Augment};
pub use card::{standard_cards, DatasetCard};
pub use dataset::{Batch, Dataset};
pub use stats::{channel_stats, class_histogram, stratified_split, ChannelStats};
pub use synthetic::{SyntheticSpec, SyntheticTask, TaskKind};
