//! Figure 9: the method-design lineage.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin fig9
//! ```

use easgd::lineage::{lineage, MethodId};

fn main() {
    println!("Figure 9: framework of the algorithm design");
    println!("\nexisting methods (red boxes):");
    for m in MethodId::ALL.iter().filter(|m| m.is_existing()) {
        println!("  {m}");
    }
    println!("\nnew methods (blue boxes):");
    for m in MethodId::ALL.iter().filter(|m| !m.is_existing()) {
        println!("  {m}");
    }
    println!("\nderivations:");
    for e in lineage() {
        println!("  {:<16} --[{}]--> {}", e.from.name(), e.idea, e.to.name());
    }
    println!("\nFigure 6 comparisons (ours vs counterpart):");
    for m in MethodId::ALL.iter() {
        if let Some(c) = m.counterpart() {
            println!("  {m}  vs  {c}");
        }
    }
}
