//! Straggler study: why cloud systems go asynchronous and HPC can go
//! synchronous.
//!
//! The paper's introduction argues that existing distributed ML methods
//! are asynchronous *because of the cloud* — slow networks and high
//! fault-tolerance requirements — while HPC clusters (fast, reliable
//! interconnects) make the deterministic synchronous schedule viable and
//! fastest. This module quantifies that trade-off with a Monte-Carlo
//! timing model: per worker-step slowdowns occur with some probability
//! (the “straggler”), a bulk-synchronous round waits for the slowest
//! worker, an asynchronous worker only suffers its own slowdowns.

use easgd_tensor::Rng;

/// Parameters of one straggler simulation.
#[derive(Clone, Debug)]
pub struct StragglerConfig {
    /// Workers `P`.
    pub workers: usize,
    /// Rounds (steps per worker).
    pub rounds: usize,
    /// Nominal seconds per worker step.
    pub base_step_seconds: f64,
    /// Probability that a given worker-step straggles.
    pub straggler_prob: f64,
    /// Slowdown multiplier of a straggling step.
    pub straggler_factor: f64,
    /// Per-step communication seconds (same for both schedules).
    pub comm_seconds: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of one simulation.
#[derive(Clone, Debug)]
pub struct StragglerOutcome {
    /// Makespan of the bulk-synchronous schedule (each round waits for
    /// the slowest worker).
    pub sync_seconds: f64,
    /// Makespan of the asynchronous schedule (workers independent; the
    /// last to finish its budget determines the makespan).
    pub async_seconds: f64,
    /// Straggler-free ideal makespan.
    pub ideal_seconds: f64,
}

impl StragglerOutcome {
    /// Sync slowdown relative to ideal.
    pub fn sync_penalty(&self) -> f64 {
        self.sync_seconds / self.ideal_seconds
    }

    /// Async slowdown relative to ideal.
    pub fn async_penalty(&self) -> f64 {
        self.async_seconds / self.ideal_seconds
    }
}

/// Runs the Monte-Carlo straggler simulation.
///
/// # Panics
/// Panics on a degenerate configuration.
pub fn straggler_study(cfg: &StragglerConfig) -> StragglerOutcome {
    assert!(cfg.workers > 0 && cfg.rounds > 0, "degenerate config");
    assert!((0.0..=1.0).contains(&cfg.straggler_prob), "bad probability");
    assert!(cfg.straggler_factor >= 1.0, "factor must be >= 1");
    let mut rng = Rng::new(cfg.seed);
    let mut sync_total = 0.0f64;
    let mut per_worker_async = vec![0.0f64; cfg.workers];
    for _ in 0..cfg.rounds {
        let mut round_max = 0.0f64;
        for (w, acc) in per_worker_async.iter_mut().enumerate() {
            let slow = (rng.uniform() as f64) < cfg.straggler_prob;
            let t = cfg.base_step_seconds * if slow { cfg.straggler_factor } else { 1.0 };
            *acc += t + cfg.comm_seconds;
            round_max = round_max.max(t);
            let _ = w;
        }
        sync_total += round_max + cfg.comm_seconds;
    }
    let async_seconds = per_worker_async.iter().cloned().fold(0.0f64, f64::max);
    StragglerOutcome {
        sync_seconds: sync_total,
        async_seconds,
        ideal_seconds: cfg.rounds as f64 * (cfg.base_step_seconds + cfg.comm_seconds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> StragglerConfig {
        StragglerConfig {
            workers: 16,
            rounds: 2_000,
            base_step_seconds: 0.01,
            straggler_prob: 0.05,
            straggler_factor: 10.0,
            comm_seconds: 0.001,
            seed: 1,
        }
    }

    #[test]
    fn no_stragglers_means_no_penalty() {
        let cfg = StragglerConfig {
            straggler_prob: 0.0,
            ..base_cfg()
        };
        let out = straggler_study(&cfg);
        assert!((out.sync_penalty() - 1.0).abs() < 1e-9);
        assert!((out.async_penalty() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sync_pays_more_than_async_under_stragglers() {
        // The cloud argument: with 5% 10× stragglers over 16 workers,
        // most sync rounds contain at least one straggler (1−0.95¹⁶ ≈
        // 56%) while each async worker straggles on only 5% of its steps.
        let out = straggler_study(&base_cfg());
        assert!(
            out.sync_penalty() > out.async_penalty() + 0.5,
            "sync {:.2} vs async {:.2}",
            out.sync_penalty(),
            out.async_penalty()
        );
    }

    #[test]
    fn sync_penalty_grows_with_worker_count() {
        let p4 = straggler_study(&StragglerConfig {
            workers: 4,
            ..base_cfg()
        })
        .sync_penalty();
        let p64 = straggler_study(&StragglerConfig {
            workers: 64,
            ..base_cfg()
        })
        .sync_penalty();
        assert!(p64 > p4, "P=64 penalty {p64} !> P=4 penalty {p4}");
    }

    #[test]
    fn reliable_hpc_regime_keeps_sync_cheap() {
        // Near-zero straggler probability (the paper's HPC premise):
        // sync penalty stays within a few percent, so the deterministic
        // schedule costs almost nothing.
        let out = straggler_study(&StragglerConfig {
            straggler_prob: 0.001,
            ..base_cfg()
        });
        assert!(out.sync_penalty() < 1.15, "{}", out.sync_penalty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = straggler_study(&base_cfg());
        let b = straggler_study(&base_cfg());
        assert_eq!(a.sync_seconds, b.sync_seconds);
        assert_eq!(a.async_seconds, b.async_seconds);
    }
}
