//! Property-based tests (proptest) on the core data structures and the
//! algebraic invariants the algorithms rely on.

use knl_easgd::hardware::collective::{
    allreduce_rabenseifner, ceil_log2, reduce_tree, round_robin_exchange,
};
use knl_easgd::prelude::{
    AlphaBeta, ClusterConfig, ParamArena, SyntheticSpec, TimeCategory, VirtualCluster,
};
use knl_easgd::tensor::Rng;
use knl_easgd::tensor::{gemm, gemm_naive, gemm_serial, ops, Transpose};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

/// Maps a raw draw onto a GEMM dimension that lands on or one off the
/// packed kernel's tile and block boundaries (MR = 8, NR = 32, the 64-ish
/// small-matrix region, MC = KC = 256). These ±1 edges are exactly where
/// the zero-padded partial tiles have to be handled; interior sizes add
/// nothing a boundary size doesn't already cover.
fn boundary_dim(anchor: usize, off: usize) -> usize {
    const ANCHORS: [usize; 9] = [1, 2, 8, 31, 32, 33, 64, 255, 256];
    (ANCHORS[anchor % ANCHORS.len()] + off)
        .saturating_sub(1)
        .max(1)
}

fn transpose_of(t: bool) -> Transpose {
    if t {
        Transpose::Yes
    } else {
        Transpose::No
    }
}

proptest! {
    /// GEMM against the naive triple loop, random shapes and transposes.
    #[test]
    fn gemm_matches_naive(
        m in 1usize..8,
        n in 1usize..8,
        k in 0usize..8,
        ta in prop::bool::ANY,
        tb in prop::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let mut rng = Rng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let (ta, tb) = (
            if ta { Transpose::Yes } else { Transpose::No },
            if tb { Transpose::Yes } else { Transpose::No },
        );
        let get_a = |i: usize, l: usize| match ta {
            Transpose::No => a[i * k + l],
            Transpose::Yes => a[l * m + i],
        };
        let get_b = |l: usize, j: usize| match tb {
            Transpose::No => b[l * n + j],
            Transpose::Yes => b[j * k + l],
        };
        let mut c = vec![0.0f32; m * n];
        gemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for l in 0..k {
                    acc += get_a(i, l) * get_b(l, j);
                }
                prop_assert!((c[i * n + j] - acc).abs() < 1e-3);
            }
        }
    }

    /// The blocked/packed GEMM agrees with the naive triple loop at and
    /// around every tile and cache-block boundary, for all four transpose
    /// combinations and both β regimes. Shapes here are big enough to take
    /// the packed path (unlike `gemm_matches_naive` above, which pins the
    /// small-matrix fallback).
    #[test]
    fn blocked_gemm_matches_naive_at_tile_boundaries(
        ma in 0usize..9, moff in 0usize..3,
        na in 0usize..9, noff in 0usize..3,
        ka in 0usize..9, koff in 0usize..3,
        ta in prop::bool::ANY,
        tb in prop::bool::ANY,
        accumulate in prop::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let (m, n, k) = (
            boundary_dim(ma, moff),
            boundary_dim(na, noff),
            boundary_dim(ka, koff),
        );
        let mut rng = Rng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let c0: Vec<f32> = (0..m * n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let (alpha, beta) = if accumulate { (0.5, 1.0) } else { (1.0, 0.0) };
        let (ta, tb) = (transpose_of(ta), transpose_of(tb));

        let mut c = c0.clone();
        gemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c);
        let mut want = c0;
        gemm_naive(ta, tb, m, n, k, alpha, &a, &b, beta, &mut want);

        // f32 accumulation order differs between the kernels; the gap
        // grows like √k · ε · |partial sums|.
        let tol = 1e-5 * (k as f32).sqrt().max(1.0) * 8.0;
        for (i, (got, want)) in c.iter().zip(&want).enumerate() {
            prop_assert!((got - want).abs() < tol, "c[{i}]: {got} vs {want} (m={m} n={n} k={k})");
        }
    }

    /// GEMM is bit-deterministic: repeated calls produce identical bits,
    /// and the dispatching entry point (which may fan out over the worker
    /// pool) is bit-identical to the serial kernel — the property the
    /// reproducible-trajectory harness rests on (DESIGN.md §8).
    #[test]
    fn gemm_is_bit_deterministic(
        ma in 0usize..9, moff in 0usize..3,
        na in 0usize..9, noff in 0usize..3,
        ka in 0usize..9, koff in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let (m, n, k) = (
            boundary_dim(ma, moff),
            boundary_dim(na, noff),
            boundary_dim(ka, koff),
        );
        let mut rng = Rng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let c0: Vec<f32> = (0..m * n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();

        let mut c1 = c0.clone();
        gemm(Transpose::No, Transpose::Yes, m, n, k, 1.0, &a, &b, 0.5, &mut c1);
        let mut c2 = c0.clone();
        gemm(Transpose::No, Transpose::Yes, m, n, k, 1.0, &a, &b, 0.5, &mut c2);
        prop_assert_eq!(&c1, &c2);

        // Below the small-matrix flop threshold `gemm` dispatches to the
        // naive row loop, whose summation order legitimately differs from
        // the blocked kernel — serial equivalence is a blocked-path claim.
        if 2 * (m as u64) * (n as u64) * (k as u64) >= (1 << 17) {
            let mut cs = c0;
            gemm_serial(Transpose::No, Transpose::Yes, m, n, k, 1.0, &a, &b, 0.5, &mut cs);
            prop_assert_eq!(&c1, &cs);
        }
    }

    /// The elastic center update is a convex pull: the center never
    /// overshoots past the worker (for ηρ ≤ 1), and the gap shrinks
    /// monotonically — the stability property EASGD convergence rests on.
    #[test]
    fn elastic_center_update_contracts(
        center0 in finite_vec(16),
        worker in finite_vec(16),
        eta in 0.01f32..1.0,
        rho in 0.0f32..1.0,
    ) {
        prop_assume!(eta * rho <= 1.0);
        let mut center = center0.clone();
        ops::elastic_center_update(eta, rho, &mut center, &worker);
        for i in 0..16 {
            let before = (center0[i] - worker[i]).abs();
            let after = (center[i] - worker[i]).abs();
            prop_assert!(after <= before + 1e-5);
        }
    }

    /// Equation (1) with zero gradient is also a convex pull toward the
    /// center.
    #[test]
    fn elastic_worker_update_contracts_without_gradient(
        local0 in finite_vec(8),
        center in finite_vec(8),
        eta in 0.01f32..1.0,
        rho in 0.0f32..1.0,
    ) {
        prop_assume!(eta * rho <= 1.0);
        let zero = vec![0.0f32; 8];
        let mut local = local0.clone();
        ops::elastic_worker_update(eta, rho, &mut local, &zero, &center);
        for i in 0..8 {
            prop_assert!((local[i] - center[i]).abs() <= (local0[i] - center[i]).abs() + 1e-5);
        }
    }

    /// The atomic Hogwild buffer agrees with the scalar kernels when
    /// used single-threaded.
    #[test]
    fn atomic_buffer_matches_scalar_updates(
        w0 in finite_vec(12),
        grad in finite_vec(12),
        eta in 0.001f32..0.5,
    ) {
        let buf = knl_easgd::tensor::AtomicBuffer::from_slice(&w0);
        buf.sgd_update(eta, &grad);
        let mut scalar = w0.clone();
        ops::sgd_update(eta, &mut scalar, &grad);
        let snap = buf.snapshot();
        for i in 0..12 {
            prop_assert!((snap[i] - scalar[i]).abs() < 1e-6);
        }
    }

    /// Packed arenas: segments tile the arena exactly — no gaps, no
    /// overlap, order preserved (the §5.2 contiguity invariant).
    #[test]
    fn arena_segments_tile_exactly(lens in proptest::collection::vec(0usize..50, 1..12)) {
        let mut b = ParamArena::builder();
        for (i, &l) in lens.iter().enumerate() {
            b.push(format!("seg{i}"), l);
        }
        let arena = b.build();
        let mut expected_offset = 0;
        for (i, seg) in arena.segments().iter().enumerate() {
            prop_assert_eq!(seg.offset, expected_offset);
            prop_assert_eq!(seg.len, lens[i]);
            expected_offset += seg.len;
        }
        prop_assert_eq!(arena.len(), expected_offset);
    }

    /// Tree reduction never loses to round-robin, and the gap is the
    /// predicted Θ(P/log P) factor.
    #[test]
    fn tree_never_loses_to_round_robin(p in 1usize..512, kb in 1usize..10_000) {
        let link = AlphaBeta::qdr_infiniband();
        let bytes = kb * 1024;
        let tree = reduce_tree(&link, p, bytes);
        let rr = round_robin_exchange(&link, p, bytes);
        prop_assert!(tree <= rr + 1e-15);
        if p > 1 {
            let ratio = rr / tree;
            prop_assert!((ratio - p as f64 / ceil_log2(p) as f64).abs() < 1e-6);
        }
    }

    /// Rabenseifner allreduce beats two tree traversals once messages
    /// are large (bandwidth-dominated regime).
    #[test]
    fn rabenseifner_wins_for_large_messages(p in 2usize..256) {
        let link = AlphaBeta::fdr_infiniband();
        let bytes = 64 * 1024 * 1024;
        prop_assert!(
            allreduce_rabenseifner(&link, p, bytes) <= 2.0 * reduce_tree(&link, p, bytes)
        );
    }

    /// Synthetic datasets: any spec yields normalized data with labels in
    /// range and round-robin class coverage.
    #[test]
    fn synthetic_generation_invariants(
        seed in 0u64..1_000,
        n in 10usize..80,
        size in 6usize..16,
    ) {
        let spec = SyntheticSpec {
            name: "prop".to_string(),
            classes: 5,
            channels: 1,
            size,
            coarse: 3,
            noise: 0.5,
            max_shift: 1,
        };
        let d = spec.task(seed).generate(n, seed ^ 0xABCD);
        prop_assert_eq!(d.len(), n);
        for i in 0..n {
            prop_assert_eq!(d.label(i), i % 5);
            prop_assert!(d.image(i).iter().all(|v| v.is_finite()));
        }
    }

    /// The virtual cluster's allreduce really sums: random rank count and
    /// payload, every rank sees Σ contributions.
    #[test]
    fn cluster_allreduce_sums_exactly(p in 1usize..9, len in 1usize..33, seed in 0u64..100) {
        let cfg = ClusterConfig::new(p);
        let mut rng = Rng::new(seed);
        let inputs: Vec<Vec<f32>> = (0..p)
            .map(|_| (0..len).map(|_| rng.uniform_in(-1.0, 1.0)).collect())
            .collect();
        let mut expect = vec![0.0f32; len];
        for v in &inputs {
            ops::add_assign(&mut expect, v);
        }
        let inputs_ref = &inputs;
        let outs = VirtualCluster::run(&cfg, move |comm| {
            comm.allreduce_sum(&inputs_ref[comm.rank()], TimeCategory::Other)
        });
        for out in outs {
            for i in 0..len {
                prop_assert!((out[i] - expect[i]).abs() < 1e-4);
            }
        }
    }

    /// The executable ring allreduce matches the gate allreduce for any
    /// rank count and vector length (including lengths < P).
    #[test]
    fn ring_matches_gate_allreduce(p in 1usize..7, len in 1usize..40, seed in 0u64..50) {
        let cfg = ClusterConfig::new(p);
        let mut rng = Rng::new(seed);
        let inputs: Vec<Vec<f32>> = (0..p)
            .map(|_| (0..len).map(|_| rng.uniform_in(-2.0, 2.0)).collect())
            .collect();
        let inputs_ref = &inputs;
        let outs = VirtualCluster::run(&cfg, move |comm| {
            let mut ring = inputs_ref[comm.rank()].clone();
            let gate = comm.allreduce_sum(&ring, TimeCategory::Other);
            knl_easgd::cluster::ring_allreduce_sum(comm, &mut ring, TimeCategory::Other);
            (ring, gate)
        });
        for (ring, gate) in outs {
            for (a, b) in ring.iter().zip(&gate) {
                prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    /// Horizontal flip is an involution and preserves the pixel multiset
    /// per row.
    #[test]
    fn flip_is_involutive(seed in 0u64..200, h in 1usize..6, w in 1usize..6) {
        use knl_easgd::data::Augment;
        let mut rng = Rng::new(seed);
        let mut img: Vec<f32> = (0..2 * h * w).map(|_| rng.uniform()).collect();
        let orig = img.clone();
        let policy = Augment { flip_prob: 1.0, crop_pad: 0 };
        // Two different rngs: the policy flips unconditionally, so the
        // rng draws don't matter for the flip decision.
        policy.apply(&mut Rng::new(1), 2, h, w, &mut img);
        policy.apply(&mut Rng::new(2), 2, h, w, &mut img);
        prop_assert_eq!(img, orig);
    }

    /// im2col / col2im stay adjoint for random geometries — the property
    /// conv backward correctness rests on.
    #[test]
    fn im2col_col2im_adjoint(
        seed in 0u64..100,
        c in 1usize..3,
        hw in 3usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        use knl_easgd::tensor::{col2im, im2col, Conv2dGeometry};
        let g = Conv2dGeometry {
            in_channels: c,
            in_h: hw,
            in_w: hw,
            k_h: k,
            k_w: k,
            stride,
            pad,
        };
        prop_assume!(g.is_valid());
        let mut rng = Rng::new(seed);
        let x: Vec<f32> = (0..g.input_len()).map(|_| rng.normal()).collect();
        let y: Vec<f32> = (0..g.col_rows() * g.col_cols()).map(|_| rng.normal()).collect();
        let mut cx = vec![0.0; y.len()];
        im2col(&g, &x, &mut cx);
        let mut aty = vec![0.0; x.len()];
        col2im(&g, &y, &mut aty);
        let lhs = ops::dot(&cx, &y) as f64;
        let rhs = ops::dot(&x, &aty) as f64;
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    /// LR schedules never go negative and (except Constant) never grow.
    #[test]
    fn schedules_are_nonincreasing(base in 0.001f32..1.0, t in 0usize..100_000) {
        use knl_easgd::algorithms::LrSchedule;
        for s in [
            LrSchedule::Constant { base },
            LrSchedule::Step { base, gamma: 0.5, every: 1000 },
            LrSchedule::Poly { base, power: 1.5, max_iter: 50_000 },
            LrSchedule::Inv { base, gamma: 1e-4, power: 0.75 },
        ] {
            let now = s.at(t);
            let later = s.at(t + 1000);
            prop_assert!(now >= 0.0 && later >= 0.0);
            prop_assert!(later <= now + 1e-9, "{s:?} grew: {now} -> {later}");
        }
    }

    /// Momentum update reduces to plain SGD when µ = 0 and velocity = 0.
    #[test]
    fn momentum_degenerates_to_sgd(w0 in finite_vec(8), grad in finite_vec(8), eta in 0.001f32..0.5) {
        let mut w_m = w0.clone();
        let mut v = vec![0.0f32; 8];
        ops::momentum_update(eta, 0.0, &mut w_m, &mut v, &grad);
        let mut w_s = w0.clone();
        ops::sgd_update(eta, &mut w_s, &grad);
        for i in 0..8 {
            prop_assert!((w_m[i] - w_s[i]).abs() < 1e-6);
        }
    }
}

proptest! {
    /// SimClock is monotone: any sequence of charge/advance_to calls with
    /// non-negative durations never moves time backwards, and the
    /// breakdown total always equals elapsed time.
    #[test]
    fn sim_clock_advances_monotonically(steps in proptest::collection::vec(0.0f64..10.0, 1..40), kind in 0usize..3) {
        use knl_easgd::prelude::SimClock;
        let mut clock = SimClock::new();
        let mut prev = clock.now();
        for (i, &dt) in steps.iter().enumerate() {
            let cat = TimeCategory::ALL[i % TimeCategory::ALL.len()];
            match (i + kind) % 3 {
                0 => clock.charge(cat, dt),
                1 => clock.advance_to(prev + dt, cat),
                // Attempting to advance into the past must be a no-op.
                _ => clock.advance_to(prev - dt, cat),
            }
            prop_assert!(clock.now() >= prev, "clock went backwards: {prev} -> {}", clock.now());
            prev = clock.now();
        }
        prop_assert!((clock.breakdown().total() - clock.now()).abs() < 1e-9 * clock.now().max(1.0));
    }
}

proptest! {
    /// The fused exchange-step kernel is bit-identical to the two-pass
    /// composition it replaces (copy the pre-update weights out, then
    /// apply the Equation (1) worker pull), and stays bit-identical when
    /// forced through the worker-pool banding at lengths that do *not*
    /// divide evenly into bands (the ragged-tail case single-core CI
    /// would otherwise never exercise).
    #[test]
    fn fused_elastic_exchange_matches_two_pass_composition(
        bands in 2usize..8,
        quot in 1usize..40,
        rem in 0usize..8,
        eta in 0.01f32..0.5,
        rho in 0.01f32..0.9,
        seed in 0u64..1_000,
    ) {
        use knl_easgd::tensor::par;
        // Lengths straddling band boundaries: len % bands ranges over
        // 0..bands, including the ragged remainders.
        let len = bands * quot + (rem % bands);
        let mut rng = Rng::new(seed);
        let w0: Vec<f32> = (0..len).map(|_| rng.uniform_in(-2.0, 2.0)).collect();
        let grad: Vec<f32> = (0..len).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let center: Vec<f32> = (0..len).map(|_| rng.uniform_in(-2.0, 2.0)).collect();

        // Two-pass reference: publish a copy, then Equation (1).
        let published = w0.clone();
        let mut two_pass = w0.clone();
        ops::elastic_worker_update(eta, rho, &mut two_pass, &grad, &center);

        // Fused serial kernel.
        let mut fused = w0.clone();
        let mut contribution = vec![0.0f32; len];
        ops::elastic_exchange(eta, rho, &mut fused, &mut contribution, &grad, &center);
        for i in 0..len {
            prop_assert_eq!(fused[i].to_bits(), two_pass[i].to_bits(), "local[{}]", i);
            prop_assert_eq!(contribution[i].to_bits(), published[i].to_bits(), "contribution[{}]", i);
        }

        // The same sweep forced through an explicit band split must not
        // move a single bit relative to the serial fused kernel.
        let mut banded = w0.clone();
        let mut banded_contribution = vec![0.0f32; len];
        par::par_zip22_mut_bands(
            bands,
            &mut banded,
            &mut banded_contribution,
            &grad,
            &center,
            |lc, oc, gc, cc| {
                for (((li, oi), gi), ci) in lc.iter_mut().zip(oc.iter_mut()).zip(gc).zip(cc) {
                    let w = *li;
                    *oi = w;
                    *li = w - eta * (gi + rho * (w - ci));
                }
            },
        );
        for i in 0..len {
            prop_assert_eq!(banded[i].to_bits(), fused[i].to_bits(), "banded local[{}]", i);
            prop_assert_eq!(
                banded_contribution[i].to_bits(),
                contribution[i].to_bits(),
                "banded contribution[{}]", i
            );
        }
    }

    /// The fused center refresh+dilution (`center_dilution_from`) is
    /// bit-identical to copy-then-dilute, serial and band-forced alike.
    #[test]
    fn fused_center_dilution_from_matches_copy_then_dilution(
        bands in 2usize..8,
        quot in 1usize..40,
        rem in 0usize..8,
        eta in 0.01f32..0.5,
        rho in 0.01f32..0.9,
        workers in 1usize..16,
        seed in 0u64..1_000,
    ) {
        use knl_easgd::tensor::par;
        let len = bands * quot + (rem % bands);
        let mut rng = Rng::new(seed);
        let center_t: Vec<f32> = (0..len).map(|_| rng.uniform_in(-2.0, 2.0)).collect();
        let sum: Vec<f32> = (0..len).map(|_| rng.uniform_in(-2.0, 2.0)).collect();

        let mut two_pass = center_t.clone();
        ops::center_dilution(eta, rho, &mut two_pass, &sum, workers);

        let mut fused = vec![0.0f32; len];
        ops::center_dilution_from(eta, rho, &center_t, &sum, workers, &mut fused);
        for i in 0..len {
            prop_assert_eq!(fused[i].to_bits(), two_pass[i].to_bits(), "out[{}]", i);
        }

        let scale = eta * rho;
        let p = workers as f32;
        let mut banded = vec![0.0f32; len];
        par::par_zip2_mut_bands(bands, &mut banded, &center_t, &sum, |oc, tc, sc| {
            for ((oi, ti), si) in oc.iter_mut().zip(tc).zip(sc) {
                *oi = ti + scale * (si - p * ti);
            }
        });
        for i in 0..len {
            prop_assert_eq!(banded[i].to_bits(), fused[i].to_bits(), "banded out[{}]", i);
        }
    }
}

// --- Buffer pool accounting (the zero-allocation exchange substrate) ----

proptest! {
    /// Every nonzero-length `take` increments exactly one of
    /// `fresh`/`grown`/`reused` — the BENCH_comm allocs-per-step column
    /// rests on this partition being exact. (Only `take`/`put` are
    /// driven: `note_external_alloc` deliberately books into `grown` for
    /// non-pooled buffers and would shift the identity.)
    #[test]
    fn pool_take_accounting_partitions_exactly(
        // Each op packs (take-or-put, len) into one integer: bit 0 picks
        // the operation, the remaining bits give the take length 0..64.
        ops in proptest::collection::vec(0u64..128, 0..60),
    ) {
        use knl_easgd::cluster::pool::BufferPool;
        let pool = BufferPool::new();
        let mut live: Vec<Vec<f32>> = Vec::new();
        let mut nonzero_takes = 0u64;
        for op in ops {
            let (is_take, len) = (op & 1 == 1, (op >> 1) as usize);
            if is_take {
                let buf = pool.take(len);
                prop_assert!(buf.is_empty(), "taken buffers arrive cleared");
                prop_assert!(buf.capacity() >= len);
                if len > 0 {
                    nonzero_takes += 1;
                }
                live.push(buf);
            } else if let Some(buf) = live.pop() {
                pool.put(buf);
            }
        }
        let s = pool.stats();
        prop_assert_eq!(
            s.fresh + s.grown + s.reused,
            nonzero_takes,
            "stats {:?}",
            s
        );
        prop_assert_eq!(s.allocations(), s.fresh + s.grown);
    }

    /// `bytes_copied` is monotone under `note_copy` and sums exactly.
    #[test]
    fn pool_bytes_copied_is_monotone_and_exact(
        copies in proptest::collection::vec(0usize..10_000, 0..40),
    ) {
        use knl_easgd::cluster::pool::BufferPool;
        let pool = BufferPool::new();
        let mut last = 0u64;
        let mut total = 0u64;
        for c in copies {
            pool.note_copy(c);
            total += c as u64;
            let now = pool.stats().bytes_copied;
            prop_assert!(now >= last, "bytes_copied went backwards");
            last = now;
        }
        prop_assert_eq!(last, total);
        // The other counters are untouched by note_copy.
        let s = pool.stats();
        prop_assert_eq!((s.fresh, s.grown, s.reused), (0, 0, 0));
    }

    /// Recycling foreign buffers (caller-allocated, any capacity,
    /// including capacity 0) never corrupts the free list: subsequent
    /// takes still hand out cleared buffers of adequate capacity, and
    /// the accounting identity still holds.
    #[test]
    fn pool_survives_foreign_capacity_recycles(
        foreign in proptest::collection::vec(0usize..128, 0..20),
        takes in proptest::collection::vec(1usize..128, 1..20),
    ) {
        use knl_easgd::cluster::pool::BufferPool;
        let pool = BufferPool::new();
        for cap in foreign {
            // A caller-allocated buffer with arbitrary capacity and
            // leftover contents, as `recycle_buffer` accepts.
            let mut v = Vec::with_capacity(cap);
            v.resize(cap.min(7), 3.5);
            pool.put(v);
        }
        let n = takes.len() as u64;
        for len in takes {
            let buf = pool.take(len);
            prop_assert!(buf.is_empty(), "stale contents leaked out of the pool");
            prop_assert!(buf.capacity() >= len, "capacity contract broken");
        }
        let s = pool.stats();
        prop_assert_eq!(s.fresh + s.grown + s.reused, n, "stats {:?}", s);
    }
}
