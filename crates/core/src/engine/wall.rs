// xtask: allow(wall-clock) — the wall-clock worker runtime times real threads by design.
//! The wall-clock worker runtime: one scoped-thread pool under every
//! shared-memory trainer.
//!
//! [`run_worker_loop`] owns the mechanics every wall-clock method used
//! to duplicate — validate the config, shard the data, spawn one thread
//! per worker, time the run, join in rank order — and hands each worker
//! its [`WorkerShard`] and [`LocalStep`]. [`run_exchange_loop`] adds the
//! canonical per-step skeleton (sample → forward/backward → exchange)
//! shared by the locked asynchronous family; trainers with a different
//! round structure (Hogwild SGD's snapshot-first read, Sync EASGD's
//! barriers) drive the loop themselves via [`run_worker_loop`].
//!
//! Exchange steps should prefer the fused kernels on [`LocalStep`]
//! (`elastic_exchange_step` / `elastic_exchange_against`): they publish
//! the pre-update weights and apply the Equation (1) pull in one sweep,
//! bit-identical to the copy-then-update pair but with one pass over the
//! parameter arena and no per-step allocation.

use crate::config::TrainConfig;
use crate::engine::local::LocalStep;
use crate::engine::shard::WorkerShard;
use easgd_data::Dataset;
use easgd_nn::Network;
use std::time::Instant;

/// What a wall-clock run produced, before result assembly.
pub struct WallRun {
    /// Real elapsed seconds across the whole pool.
    pub wall_seconds: f64,
    /// Each worker's last-step loss, in worker order.
    pub worker_losses: Vec<f32>,
    /// Worker 0's per-step loss trace (the canonical worker).
    pub loss_trace: Vec<f32>,
}

/// Runs `body` once per worker on its own thread, with a private
/// [`WorkerShard`] (seeded under `salt`) and [`LocalStep`]. Workers are
/// joined in rank order; a worker panic is propagated.
pub fn run_worker_loop<F>(
    proto: &Network,
    train: &Dataset,
    cfg: &TrainConfig,
    salt: u64,
    body: F,
) -> WallRun
where
    F: Fn(&mut WorkerShard, &mut LocalStep) + Sync,
{
    cfg.validate();
    let shards = WorkerShard::from_partition(train, cfg.workers, cfg.seed, salt);
    let start = Instant::now();
    // xtask: allow(thread-primitive) — the wall-clock engine measures
    // real parallel speedup; its workers are genuine OS threads, not
    // simulated ranks, so the cluster backend seam does not apply.
    let outs: Vec<(f32, Vec<f32>)> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|mut shard| {
                let body = &body;
                s.spawn(move || {
                    let mut local = LocalStep::new(proto);
                    body(&mut shard, &mut local);
                    (local.last_loss(), local.take_loss_trace())
                })
            })
            .collect();
        handles
            .into_iter()
            // xtask: allow(thread-primitive) — joining the real wall-clock
            // worker threads spawned above.
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    let mut worker_losses = Vec::with_capacity(outs.len());
    let mut loss_trace = Vec::new();
    for (w, (last_loss, trace)) in outs.into_iter().enumerate() {
        worker_losses.push(last_loss);
        if w == 0 {
            loss_trace = trace;
        }
    }
    WallRun {
        wall_seconds,
        worker_losses,
        loss_trace,
    }
}

/// The canonical per-step loop: for each of `cfg.iterations` steps,
/// sample a batch, run forward/backward, then call
/// `exchange(worker, step, local)` to perform the method's
/// synchronization. This is the skeleton of the whole locked
/// asynchronous family — the exchange closure is the *only* thing that
/// differs between Async SGD/MSGD/EASGD/MEASGD and round-robin
/// Original EASGD.
pub fn run_exchange_loop<F>(
    proto: &Network,
    train: &Dataset,
    cfg: &TrainConfig,
    salt: u64,
    exchange: F,
) -> WallRun
where
    F: Fn(usize, usize, &mut LocalStep) + Sync,
{
    run_worker_loop(proto, train, cfg, salt, |shard, local| {
        for step in 0..cfg.iterations {
            let batch = shard.next_batch(cfg.batch);
            local.forward_backward(&batch);
            exchange(shard.worker(), step, local);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::shard::SALT_PHI;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;
    use std::sync::Mutex;

    fn setup() -> (Network, Dataset) {
        let task = SyntheticSpec::mnist_small().task(13);
        let (train, _) = task.train_test(128, 16, 14);
        (lenet_tiny(15), train)
    }

    fn cfg(workers: usize, iterations: usize) -> TrainConfig {
        TrainConfig {
            workers,
            batch: 8,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations,
            seed: 23,
            comm_period: 1,
        }
    }

    #[test]
    fn losses_come_back_in_worker_order() {
        let (proto, train) = setup();
        let seen = Mutex::new(Vec::new());
        let run = run_worker_loop(&proto, &train, &cfg(3, 1), SALT_PHI, |shard, local| {
            let batch = shard.next_batch(8);
            local.forward_backward(&batch);
            seen.lock().unwrap().push(shard.worker());
        });
        assert_eq!(run.worker_losses.len(), 3);
        assert!(run.worker_losses.iter().all(|l| l.is_finite()));
        let mut order = seen.into_inner().unwrap();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn exchange_loop_runs_iterations_times_per_worker() {
        let (proto, train) = setup();
        let count = Mutex::new(0usize);
        let run = run_exchange_loop(&proto, &train, &cfg(2, 5), SALT_PHI, |_, _, local| {
            *count.lock().unwrap() += 1;
            local.sgd_step(0.05);
        });
        assert_eq!(*count.lock().unwrap(), 10);
        assert_eq!(run.loss_trace.len(), 5, "worker 0 traces every step");
    }

    #[test]
    fn single_worker_run_is_deterministic() {
        let (proto, train) = setup();
        let go = || {
            run_exchange_loop(&proto, &train, &cfg(1, 6), SALT_PHI, |_, _, local| {
                local.sgd_step(0.05)
            })
        };
        let (a, b) = (go(), go());
        assert_eq!(a.worker_losses[0].to_bits(), b.worker_losses[0].to_bits());
        assert_eq!(a.loss_trace.len(), b.loss_trace.len());
        for (x, y) in a.loss_trace.iter().zip(&b.loss_trace) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let (proto, train) = setup();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_worker_loop(&proto, &train, &cfg(2, 1), SALT_PHI, |shard, _| {
                if shard.worker() == 1 {
                    panic!("worker 1 exploded");
                }
            })
        }));
        assert!(boom.is_err());
    }
}
