//! The shared-memory, wall-clock algorithm family (Figures 6 and 8).
//!
//! The paper's asynchronous methods differ only in *how workers
//! synchronize with the master's center weight*:
//!
//! | method            | ordering        | exchange                      |
//! |-------------------|-----------------|-------------------------------|
//! | Original EASGD    | round-robin     | elastic (Eq 1 + 2)            |
//! | Async SGD         | FCFS (lock)     | gradient push, weight pull    |
//! | Async MSGD        | FCFS (lock)     | + momentum (Eq 3–4)           |
//! | Async EASGD       | FCFS (lock)     | elastic (Eq 1 + 2)            |
//! | Async MEASGD      | FCFS (lock)     | elastic + momentum (Eq 5–6)   |
//! | Sync EASGD        | barrier (BSP)   | elastic, tree-reduced         |
//!
//! (The lock-free Hogwild variants live in [`crate::hogwild`].) The
//! compute loop, sharding, seeding, and result assembly all come from
//! [`crate::engine`]; each function below is exactly its exchange
//! discipline — the lock, turn, or barrier protocol around the center.

use crate::config::TrainConfig;
use crate::engine::{run_exchange_loop, run_worker_loop, ElasticRule, RunAssembler, SALT_PHI};
use crate::metrics::RunResult;
use easgd_data::Dataset;
use easgd_nn::Network;
use easgd_tensor::ops::{momentum_update, sgd_update};
use std::sync::{Barrier, Condvar, Mutex, RwLock};

/// Master state for the gradient-push methods (Async SGD / MSGD).
struct GradCenter {
    w: Vec<f32>,
    v: Vec<f32>,
}

/// Async SGD (§3.1): FCFS parameter server. The worker pushes its
/// sub-gradient; the master applies `W ← W − η·ΔWᵢ` under the lock and
/// returns the fresh weights.
pub fn async_sgd(proto: &Network, train: &Dataset, test: &Dataset, cfg: &TrainConfig) -> RunResult {
    let center = Mutex::new(GradCenter {
        w: proto.params().as_slice().to_vec(),
        v: vec![0.0; proto.num_params()],
    });
    let run = run_exchange_loop(proto, train, cfg, SALT_PHI, |_, _, local| {
        let mut c = center.lock().unwrap();
        sgd_update(cfg.eta, &mut c.w, local.grad());
        local.set_params(&c.w);
    });
    let center_w = center.into_inner().unwrap().w;
    RunAssembler::new("Async SGD", proto, test, cfg.iterations)
        .wall(run.wall_seconds)
        .worker_losses(run.worker_losses)
        .loss_trace(run.loss_trace)
        .finish(&center_w)
}

/// Async MSGD: Async SGD with the momentum update of Equations (3)–(4)
/// applied at the master.
pub fn async_msgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    let center = Mutex::new(GradCenter {
        w: proto.params().as_slice().to_vec(),
        v: vec![0.0; proto.num_params()],
    });
    let run = run_exchange_loop(proto, train, cfg, SALT_PHI, |_, _, local| {
        let mut c = center.lock().unwrap();
        let GradCenter { w, v } = &mut *c;
        momentum_update(cfg.eta, cfg.mu, w, v, local.grad());
        local.set_params(w);
    });
    let center_w = center.into_inner().unwrap().w;
    RunAssembler::new("Async MSGD", proto, test, cfg.iterations)
        .wall(run.wall_seconds)
        .worker_losses(run.worker_losses)
        .loss_trace(run.loss_trace)
        .finish(&center_w)
}

/// Async EASGD (ours, §5.1): FCFS exchange of *weights*. Under the lock
/// the master performs the Equation (2) pull toward the worker; the
/// worker then applies Equation (1) locally against the snapshot it took.
pub fn async_easgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    let rule = ElasticRule::from_config(cfg);
    let center = Mutex::new(proto.params().as_slice().to_vec());
    let run = run_exchange_loop(proto, train, cfg, SALT_PHI, |_, step, local| {
        // Communication period τ: τ−1 local SGD steps between elastic
        // exchanges (τ = 1 ⇒ exchange every step, the paper's setting).
        if (step + 1) % cfg.comm_period != 0 {
            local.sgd_step(cfg.eta);
            return;
        }
        {
            let mut c = center.lock().unwrap();
            rule.center_pull(&mut c, local.params());
            local.snapshot_center(&c);
        }
        local.elastic_step(&rule);
    });
    let center_w = center.into_inner().unwrap();
    RunAssembler::new("Async EASGD", proto, test, cfg.iterations)
        .wall(run.wall_seconds)
        .worker_losses(run.worker_losses)
        .loss_trace(run.loss_trace)
        .finish(&center_w)
}

/// Async MEASGD (ours, §5.1): Async EASGD with the worker update replaced
/// by the momentum-elastic Equations (5)–(6).
pub fn async_measgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    let rule = ElasticRule::from_config(cfg);
    let center = Mutex::new(proto.params().as_slice().to_vec());
    let run = run_exchange_loop(proto, train, cfg, SALT_PHI, |_, step, local| {
        if (step + 1) % cfg.comm_period != 0 {
            // Local momentum step between exchanges.
            local.momentum_step(cfg.eta, cfg.mu);
            return;
        }
        {
            let mut c = center.lock().unwrap();
            rule.center_pull(&mut c, local.params());
            local.snapshot_center(&c);
        }
        local.elastic_momentum_step(&rule);
    });
    let center_w = center.into_inner().unwrap();
    RunAssembler::new("Async MEASGD", proto, test, cfg.iterations)
        .wall(run.wall_seconds)
        .worker_losses(run.worker_losses)
        .loss_trace(run.loss_trace)
        .finish(&center_w)
}

/// Original EASGD (§3.3, Algorithm 1): identical elastic exchange to
/// [`async_easgd`], but the master serves workers in strict *round-robin
/// rank order* — worker `i+1`'s exchange cannot begin before worker `i`'s
/// has finished. Gradient computation is pipelined outside the turn
/// (matching the overlapped Original EASGD row of Table 3); the ordering
/// constraint is what costs performance.
pub fn original_easgd_turns(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    let rule = ElasticRule::from_config(cfg);
    let center = Mutex::new(proto.params().as_slice().to_vec());
    let turn = Mutex::new(0usize);
    let turn_cv = Condvar::new();
    let run = run_exchange_loop(proto, train, cfg, SALT_PHI, |w, _, local| {
        // Wait for this worker's slot in the global order.
        {
            let mut t = turn.lock().unwrap();
            while *t % cfg.workers != w {
                t = turn_cv.wait(t).unwrap();
            }
            {
                let mut c = center.lock().unwrap();
                rule.center_pull(&mut c, local.params());
                local.snapshot_center(&c);
            }
            *t += 1;
            turn_cv.notify_all();
        }
        // Equation (1) happens outside the turn: only the *exchange* is
        // round-robin ordered, the local update overlaps freely.
        local.elastic_step(&rule);
    });
    let center_w = center.into_inner().unwrap();
    RunAssembler::new("Original EASGD", proto, test, cfg.iterations)
        .wall(run.wall_seconds)
        .worker_losses(run.worker_losses)
        .loss_trace(run.loss_trace)
        .finish(&center_w)
}

/// Sync EASGD (ours, §5.1), shared-memory realization: bulk-synchronous
/// rounds. Each round every worker computes a gradient, the local weights
/// are tree-reduced (here: a shared accumulator behind a barrier), the
/// master applies Equation (2) once with the full sum, workers apply
/// Equation (1). Deterministic given the seed.
pub fn sync_easgd_shared(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    let rule = ElasticRule::from_config(cfg);
    let n = proto.num_params();
    let center = RwLock::new(proto.params().as_slice().to_vec());
    // One weight slot per worker; the master folds them in rank order so
    // the reduction — like the paper's fixed-shape tree — is
    // deterministic.
    let slots: Vec<Mutex<Vec<f32>>> = (0..cfg.workers)
        .map(|_| Mutex::new(vec![0.0f32; n]))
        .collect();
    // The master's reduction scratch, allocated once for the whole run.
    let sum = Mutex::new(vec![0.0f32; n]);
    let barrier = Barrier::new(cfg.workers);
    let run = run_worker_loop(proto, train, cfg, SALT_PHI, |shard, local| {
        let w = shard.worker();
        for _ in 0..cfg.iterations {
            // Steps (1)+(2): gradient + read of W̄_t (overlappable).
            local.snapshot_center(&center.read().unwrap());
            let batch = shard.next_batch(cfg.batch);
            local.forward_backward(&batch);
            // Steps (3)+(4) fused: publish the pre-update Wᵢ into this
            // worker's slot and apply Equation (1) against the pre-round
            // W̄_t in the same sweep (bit-identical to copy-then-update;
            // the master only ever reads the slots, never our params).
            local.elastic_exchange_step(&rule, &mut slots[w].lock().unwrap());
            barrier.wait();
            // Step (5): master folds Σ Wᵢ into W̄ once, in order.
            if w == 0 {
                let mut c = center.write().unwrap();
                let mut sum = sum.lock().unwrap();
                sum.fill(0.0);
                for slot in slots.iter() {
                    easgd_tensor::ops::add_assign(&mut sum, &slot.lock().unwrap());
                }
                rule.center_dilution(&mut c, &sum, cfg.workers);
            }
            barrier.wait();
        }
    });
    let center_w = center.into_inner().unwrap();
    RunAssembler::new("Sync EASGD", proto, test, cfg.iterations)
        .wall(run.wall_seconds)
        .worker_losses(run.worker_losses)
        .loss_trace(run.loss_trace)
        .finish(&center_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(11);
        let (train, test) = task.train_test(600, 200, 12);
        (lenet_tiny(13), train, test)
    }

    fn quick_cfg(iters: usize) -> TrainConfig {
        TrainConfig {
            workers: 4,
            batch: 16,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations: iters,
            seed: 21,
            comm_period: 1,
        }
    }

    #[test]
    fn async_sgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = async_sgd(&proto, &train, &test, &quick_cfg(150));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
        assert!(r.wall_seconds > 0.0);
    }

    #[test]
    fn async_msgd_learns_above_chance() {
        let (proto, train, test) = setup();
        // Momentum amplifies the effective rate by ~1/(1−µ); use the
        // correspondingly smaller η (standard MSGD practice).
        let mut cfg = quick_cfg(150);
        cfg.eta = 0.01;
        let r = async_msgd(&proto, &train, &test, &cfg);
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn async_easgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = async_easgd(&proto, &train, &test, &quick_cfg(200));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn async_measgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = async_measgd(&proto, &train, &test, &quick_cfg(150));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn original_easgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = original_easgd_turns(&proto, &train, &test, &quick_cfg(200));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn sync_easgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = sync_easgd_shared(&proto, &train, &test, &quick_cfg(200));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn sync_easgd_is_deterministic() {
        let (proto, train, test) = setup();
        let cfg = quick_cfg(30);
        let a = sync_easgd_shared(&proto, &train, &test, &cfg);
        let b = sync_easgd_shared(&proto, &train, &test, &cfg);
        // §8: "Sync EASGD … deterministic and reproducible."
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.final_loss, b.final_loss);
        assert_eq!(a.center_hash, b.center_hash);
    }

    #[test]
    fn methods_report_their_names() {
        let (proto, train, test) = setup();
        let cfg = quick_cfg(5);
        assert_eq!(async_sgd(&proto, &train, &test, &cfg).method, "Async SGD");
        assert_eq!(
            original_easgd_turns(&proto, &train, &test, &cfg).method,
            "Original EASGD"
        );
        assert_eq!(
            sync_easgd_shared(&proto, &train, &test, &cfg).method,
            "Sync EASGD"
        );
    }

    #[test]
    fn comm_period_trades_exchanges_for_local_steps() {
        // τ = 4: the elastic methods still learn (local SGD between
        // exchanges is a valid EASGD configuration), and the center is
        // still pulled toward the workers.
        let (proto, train, test) = setup();
        let cfg = quick_cfg(200).with_comm_period(4);
        let r = async_easgd(&proto, &train, &test, &cfg);
        assert!(r.accuracy > 0.4, "tau=4 async easgd acc = {}", r.accuracy);
        let h = crate::hogwild::hogwild_easgd(&proto, &train, &test, &cfg);
        assert!(h.accuracy > 0.4, "tau=4 hogwild easgd acc = {}", h.accuracy);
    }

    #[test]
    fn single_worker_degenerates_to_serial_sgd() {
        let (proto, train, test) = setup();
        let cfg = quick_cfg(100).with_workers(1);
        let r = async_sgd(&proto, &train, &test, &cfg);
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn runs_populate_loss_trace_and_center_hash() {
        let (proto, train, test) = setup();
        let cfg = quick_cfg(10).with_workers(1);
        let r = async_easgd(&proto, &train, &test, &cfg);
        assert_eq!(r.loss_trace.len(), 10);
        assert_ne!(r.center_hash, 0);
    }
}
