//! Device compute-rate models.
//!
//! Converts model flop counts (from `easgd-nn::spec`) into simulated
//! seconds. Peak rates come from the paper (§1: KNL = 6 Tflops single
//! precision) and vendor specs; `dnn_efficiency` is the fraction of peak a
//! well-tuned DNN framework sustains on conv/GEMM-heavy work — the
//! absolute value shifts all times equally and cancels out of every ratio
//! the experiments report.

/// A device's sustained compute rate.
#[derive(Clone, Debug, PartialEq)]
pub struct ComputeModel {
    /// Device name.
    pub name: String,
    /// Peak single-precision flops/second.
    pub peak_flops: f64,
    /// Sustained fraction of peak on DNN workloads, in `(0, 1]`.
    pub dnn_efficiency: f64,
}

impl ComputeModel {
    /// A custom device.
    pub fn new(name: impl Into<String>, peak_flops: f64, dnn_efficiency: f64) -> Self {
        assert!(peak_flops > 0.0, "peak must be positive");
        assert!(
            dnn_efficiency > 0.0 && dnn_efficiency <= 1.0,
            "efficiency must be in (0,1]"
        );
        Self {
            name: name.into(),
            peak_flops,
            dnn_efficiency,
        }
    }

    /// Intel Xeon Phi 7250 (KNL, 68 cores @ 1.4 GHz): 6 Tflops SP peak
    /// (§1 of the paper).
    pub fn knl_7250() -> Self {
        Self::new("Intel Xeon Phi 7250 (KNL)", 6.0e12, 0.35)
    }

    /// One GPU of an Nvidia Tesla K80 board (≈ 4.1 Tflops SP with boost,
    /// half the board).
    pub fn k80_half() -> Self {
        Self::new("Nvidia Tesla K80 (1 GPU)", 4.1e12, 0.45)
    }

    /// Nvidia Tesla M40: 7 Tflops SP peak.
    pub fn m40() -> Self {
        Self::new("Nvidia Tesla M40", 7.0e12, 0.45)
    }

    /// Intel Xeon E5-2698 v3 (Haswell, 16 cores @ 2.3 GHz): ≈ 1.2 Tflops
    /// SP peak (Cori CPU partition, §10.4).
    pub fn haswell_e5_2698() -> Self {
        Self::new("Intel Xeon E5-2698 v3 (Haswell)", 1.2e12, 0.5)
    }

    /// Intel Knights Corner 7120 (KNC): ≈ 2 Tflops SP (the predecessor the
    /// paper contrasts against in §1).
    pub fn knc() -> Self {
        Self::new("Intel Xeon Phi 7120 (KNC)", 2.0e12, 0.25)
    }

    /// Sustained flops/second.
    pub fn sustained_flops(&self) -> f64 {
        self.peak_flops * self.dnn_efficiency
    }

    /// Seconds to execute `flops` floating-point operations.
    pub fn time(&self, flops: f64) -> f64 {
        assert!(flops >= 0.0, "negative flops");
        flops / self.sustained_flops()
    }

    /// Seconds per training iteration of a model at a batch size, given
    /// the model's per-sample training flops.
    pub fn iteration_time(&self, flops_train_per_sample: f64, batch: usize) -> f64 {
        self.time(flops_train_per_sample * batch as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_peak_matches_paper_claim() {
        // §1: "6 Tflops vs 2 Tflops for single precision" (KNL vs KNC).
        assert!((ComputeModel::knl_7250().peak_flops - 6.0e12).abs() < 1.0);
        assert!((ComputeModel::knc().peak_flops - 2.0e12).abs() < 1.0);
    }

    #[test]
    fn time_is_linear_in_flops() {
        let m = ComputeModel::knl_7250();
        assert!((m.time(2.0e12) - 2.0 * m.time(1.0e12)).abs() < 1e-9);
    }

    #[test]
    fn iteration_time_scales_with_batch() {
        let m = ComputeModel::m40();
        let per_sample = 3.0e9;
        assert!(
            (m.iteration_time(per_sample, 128) - 2.0 * m.iteration_time(per_sample, 64)).abs()
                < 1e-9
        );
    }

    #[test]
    fn googlenet_iteration_on_knl_is_order_seconds() {
        // Plausibility anchor for Table 4: GoogLeNet train ≈ 9.6 GFLOP per
        // sample; batch 256 on one KNL ≈ a few seconds — the paper
        // measures 1533 s / 300 iterations ≈ 5.1 s per iteration.
        let m = ComputeModel::knl_7250();
        let t = m.iteration_time(3.0 * 3.2e9, 256);
        assert!((0.5..10.0).contains(&t), "t = {t}");
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_zero_efficiency() {
        let _ = ComputeModel::new("bad", 1e12, 0.0);
    }
}
