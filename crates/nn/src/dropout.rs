//! Dropout regularization (used by the AlexNet/VGG fully-connected stages).

use crate::layer::Layer;
use easgd_tensor::{ParamArena, Rng, Tensor, TrainScratch};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counter so cloned dropout layers (one per worker replica)
/// decorrelate their masks without shared RNG state.
static CLONE_SALT: AtomicU64 = AtomicU64::new(0x5EED);

/// Inverted dropout: during training each unit is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; at inference it is the
/// identity.
#[derive(Debug)]
pub struct Dropout {
    name: String,
    shape: Vec<usize>,
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    rng: Rng,
    mask: Vec<f32>,
}

impl Dropout {
    /// Dropout with drop probability `p` over per-sample shape `shape`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(name: impl Into<String>, shape: Vec<usize>, p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Self {
            name: name.into(),
            shape,
            p,
            rng: Rng::new(seed),
            mask: Vec::new(),
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn out_shape(&self) -> Vec<usize> {
        self.shape.clone()
    }

    fn forward_into(
        &mut self,
        _params: &ParamArena,
        input: &Tensor,
        train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        scratch.ensure_f32(&mut self.mask, input.len());
        scratch.shape_tensor(out, input.shape().dims());
        out.as_mut_slice().copy_from_slice(input.as_slice());
        if !train || self.p == 0.0 {
            // Identity at inference; mark mask as pass-through for backward.
            self.mask.fill(1.0);
            return;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        // One rng draw per element, in element order — the same consumption
        // order as the original allocating path, so seeded runs reproduce.
        for (v, m) in out.as_mut_slice().iter_mut().zip(self.mask.iter_mut()) {
            if self.rng.uniform() < self.p {
                *m = 0.0;
                *v = 0.0;
            } else {
                *m = scale;
                *v *= scale;
            }
        }
    }

    fn backward_into(
        &mut self,
        _params: &ParamArena,
        _grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        assert_eq!(grad_out.len(), self.mask.len(), "backward before forward");
        scratch.shape_tensor(grad_in, grad_out.shape().dims());
        grad_in.as_mut_slice().copy_from_slice(grad_out.as_slice());
        for (gi, &m) in grad_in.as_mut_slice().iter_mut().zip(&self.mask) {
            *gi *= m;
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        // ordering: only a unique salt per clone is needed; no other memory
        // is published through this counter.
        let salt = CLONE_SALT.fetch_add(1, Ordering::Relaxed);
        Box::new(Dropout {
            name: self.name.clone(),
            shape: self.shape.clone(),
            p: self.p,
            rng: Rng::new(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            mask: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut l = Dropout::new("d", vec![100], 0.5, 1);
        let x = Tensor::full([1, 100], 2.0);
        let y = l.forward(&ParamArena::flat(0), &x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn training_zeroes_about_p_fraction() {
        let mut l = Dropout::new("d", vec![10_000], 0.3, 2);
        let x = Tensor::full([1, 10_000], 1.0);
        let y = l.forward(&ParamArena::flat(0), &x, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((2_700..3_300).contains(&zeros), "dropped {zeros}");
    }

    #[test]
    fn survivors_are_scaled_to_preserve_expectation() {
        let mut l = Dropout::new("d", vec![10_000], 0.5, 3);
        let x = Tensor::full([1, 10_000], 1.0);
        let y = l.forward(&ParamArena::flat(0), &x, true);
        let mean = y.sum() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn backward_reuses_forward_mask() {
        let mut l = Dropout::new("d", vec![1000], 0.5, 4);
        let x = Tensor::full([1, 1000], 1.0);
        let y = l.forward(&ParamArena::flat(0), &x, true);
        let gy = Tensor::full([1, 1000], 1.0);
        let mut g = ParamArena::flat(0);
        let gx = l.backward(&ParamArena::flat(0), &mut g, &gy);
        // Gradient flows exactly where activations survived.
        for (yv, gv) in y.as_slice().iter().zip(gx.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn clones_use_independent_masks() {
        let mut a = Dropout::new("d", vec![256], 0.5, 5);
        let mut b_box = a.boxed_clone();
        let x = Tensor::full([1, 256], 1.0);
        let ya = a.forward(&ParamArena::flat(0), &x, true);
        let yb = b_box.forward(&ParamArena::flat(0), &x, true);
        assert_ne!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    #[should_panic(expected = "p must be")]
    fn rejects_p_of_one() {
        let _ = Dropout::new("d", vec![4], 1.0, 1);
    }
}
