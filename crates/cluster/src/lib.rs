//! # easgd-cluster
//!
//! A virtual HPC cluster for the `knl-easgd` reproduction of *“Scaling
//! Deep Learning on GPU and Knights Landing clusters”* (SC '17).
//!
//! The paper runs its algorithms over MPI + NCCL on InfiniBand/Aries
//! fabrics. Here every rank executes real code (gradients are genuinely
//! computed), while every communication operation is **charged against
//! an α-β cost model** on a per-rank **simulated clock**. The result:
//! algorithmic schedules (round-robin vs FCFS vs tree reduction) produce
//! exactly the relative timings the paper analyses, without the physical
//! cluster. Two execution [`backend`]s host the ranks: OS threads (the
//! default, real parallelism at small P) or a single-token discrete-event
//! engine (thousands of ranks in one process for the Table 4 / Figure 13
//! weak-scaling sweeps) — trainer code is identical on both.
//!
//! * [`backend`] — the thread/event execution seam
//!   ([`backend::ClusterBackend`]) and the event scheduler.
//! * [`clock`] — per-rank simulated time plus the Table 3 time-category
//!   breakdown (`cpu-gpu para comm`, `for/backward`, …).
//! * [`comm`] — the per-rank communicator: point-to-point send / recv /
//!   recv-any (FCFS), and synchronizing collectives (barrier, broadcast,
//!   reduce, allreduce) with selectable algorithms (linear Θ(P) vs
//!   binomial tree Θ(log P) vs Rabenseifner).
//! * [`cluster`] — [`cluster::VirtualCluster::run`]:
//!   spawns the ranks, hands each a [`comm::Comm`], joins results.
//! * [`collectives`] — *executable* ring / binomial-tree collectives
//!   whose simulated time emerges from the p2p layer instead of a
//!   closed form.
//! * [`pool`] — the cluster-wide payload buffer pool behind the
//!   zero-allocation exchange path (DESIGN.md §10).
//! * [`tags`] — the named tag-range registry every subsystem draws its
//!   point-to-point tags from (enforced by xtask lint rule 7).
//! * [`trace`] — the comm-operation vocabulary behind [`comm::Comm`]'s
//!   trace-recording shim and the xtask protocol model checker
//!   (DESIGN.md §12).
//!
//! ```
//! use easgd_cluster::{ClusterConfig, VirtualCluster, TimeCategory};
//!
//! let config = ClusterConfig::new(4);
//! let sums = VirtualCluster::run(&config, |comm| {
//!     let mine = vec![comm.rank() as f32];
//!     let total = comm.allreduce_sum(&mine, TimeCategory::GpuGpuParam);
//!     total[0]
//! });
//! assert_eq!(sums, vec![6.0; 4]);
//! ```

pub mod backend;
pub mod channel;
pub mod clock;
pub mod cluster;
pub mod codec;
pub mod collectives;
pub mod comm;
pub mod pool;
pub mod request;
pub mod tags;
pub mod trace;

pub use backend::ClusterBackend;
pub use clock::{RankReport, SimClock, TimeBreakdown, TimeCategory};
pub use cluster::{ClusterConfig, CollectiveAlgo, VirtualCluster};
pub use codec::{BatchMsg, CodecError};
pub use collectives::{
    flat_gather_sum, ring_allreduce_sum, tree_allreduce_sum, tree_allreduce_sum_among,
    tree_broadcast, tree_broadcast_among, tree_reduce_sum, tree_reduce_sum_among, TreeRole,
};
pub use comm::{Comm, Payload};
pub use pool::PoolStats;
pub use request::{Request, RequestCollection};
pub use trace::TraceOp;
