//! The per-rank communicator.

use crate::clock::{RankReport, SimClock, TimeCategory};
use crate::cluster::{CollOp, Shared};
use std::collections::VecDeque;
use std::sync::Arc;

/// A point-to-point message between ranks.
#[derive(Clone, Debug)]
pub(crate) struct Message {
    pub(crate) from: usize,
    pub(crate) tag: u32,
    pub(crate) data: Vec<f32>,
    /// Simulated arrival time at the receiver (sender's clock after the
    /// α-β send cost).
    pub(crate) arrival: f64,
}

/// A rank's handle to the cluster: identity, simulated clock,
/// point-to-point messaging and collectives.
///
/// Not `Clone` — each rank owns exactly one, mirroring an MPI
/// communicator.
pub struct Comm {
    rank: usize,
    rx: crate::channel::Receiver<Message>,
    /// Messages received but not yet matched by a `recv(from, tag)`.
    pending: VecDeque<Message>,
    clock: SimClock,
    shared: Arc<Shared>,
    /// Latest arrival time ingested per sender, for the strict-invariants
    /// per-sender FCFS check (the channel is FIFO per sender, and each
    /// sender's simulated clock is monotone, so arrivals from one rank
    /// must reach us in non-decreasing arrival order).
    #[cfg(feature = "strict-invariants")]
    last_arrival: Vec<f64>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        rx: crate::channel::Receiver<Message>,
        shared: Arc<Shared>,
    ) -> Self {
        #[cfg(feature = "strict-invariants")]
        let ranks = shared.config.ranks;
        Self {
            rank,
            rx,
            pending: VecDeque::new(),
            clock: SimClock::new(),
            shared,
            #[cfg(feature = "strict-invariants")]
            last_arrival: vec![f64::NEG_INFINITY; ranks],
        }
    }

    /// Strict-invariants ingest check, applied to every message pulled
    /// off the channel: per-sender FCFS arrival-order monotonicity.
    #[cfg(feature = "strict-invariants")]
    fn check_ingest(&mut self, msg: &Message) {
        let last = &mut self.last_arrival[msg.from];
        debug_assert!(
            msg.arrival >= *last,
            "FCFS violation: rank {} received a message from rank {} with \
             arrival {} after one with arrival {}",
            self.rank,
            msg.from,
            msg.arrival,
            *last
        );
        *last = msg.arrival;
    }

    #[cfg(not(feature = "strict-invariants"))]
    #[inline]
    fn check_ingest(&mut self, _msg: &Message) {}

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.shared.config.ranks
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Charges `seconds` of local work to `category` (how compute phases
    /// — forward/backward, weight updates — enter simulated time).
    pub fn charge(&mut self, category: TimeCategory, seconds: f64) {
        self.clock.charge(category, seconds);
    }

    /// Final accounting for this rank.
    pub fn report(&self) -> RankReport {
        RankReport {
            rank: self.rank,
            time: self.clock.now(),
            breakdown: self.clock.breakdown().clone(),
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Blocking send of `data` to `to` with a user `tag`, charged to
    /// `category` at the α-β cost of one message.
    ///
    /// # Panics
    /// Panics if `to` is out of range or is this rank.
    pub fn send(&mut self, to: usize, tag: u32, data: &[f32], category: TimeCategory) {
        assert!(to < self.size(), "send to rank {to} out of range");
        assert_ne!(to, self.rank, "send to self");
        let cost = self.shared.config.link.time(data.len() * 4);
        self.clock.charge(category, cost);
        self.shared.senders[to]
            .send(Message {
                from: self.rank,
                tag,
                data: data.to_vec(),
                arrival: self.clock.now(),
            })
            .expect("receiver hung up");
    }

    /// Blocking receive of the next message from `from` with `tag`.
    /// Simulated time advances to the message's arrival (waiting charged
    /// to `category`).
    pub fn recv(&mut self, from: usize, tag: u32, category: TimeCategory) -> Vec<f32> {
        // Check messages already buffered.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            let msg = self.pending.remove(pos).unwrap();
            self.clock.advance_to(msg.arrival, category);
            return msg.data;
        }
        loop {
            let msg = self.rx.recv().expect("all senders hung up");
            self.check_ingest(&msg);
            if msg.from == from && msg.tag == tag {
                self.clock.advance_to(msg.arrival, category);
                return msg.data;
            }
            self.pending.push_back(msg);
        }
    }

    /// Blocking receive of the next message with `tag` from *any* rank —
    /// the FCFS order of a parameter server (§3.1). Returns
    /// `(sender, data)`.
    pub fn recv_any(&mut self, tag: u32, category: TimeCategory) -> (usize, Vec<f32>) {
        if let Some(pos) = self.pending.iter().position(|m| m.tag == tag) {
            let msg = self.pending.remove(pos).unwrap();
            self.clock.advance_to(msg.arrival, category);
            return (msg.from, msg.data);
        }
        loop {
            let msg = self.rx.recv().expect("all senders hung up");
            self.check_ingest(&msg);
            if msg.tag == tag {
                self.clock.advance_to(msg.arrival, category);
                return (msg.from, msg.data);
            }
            self.pending.push_back(msg);
        }
    }

    /// Non-blocking variant of [`recv_any`](Self::recv_any): returns
    /// `None` if no matching message has arrived yet.
    pub fn try_recv_any(&mut self, tag: u32, category: TimeCategory) -> Option<(usize, Vec<f32>)> {
        if let Some(pos) = self.pending.iter().position(|m| m.tag == tag) {
            let msg = self.pending.remove(pos).unwrap();
            self.clock.advance_to(msg.arrival, category);
            return Some((msg.from, msg.data));
        }
        while let Ok(msg) = self.rx.try_recv() {
            self.check_ingest(&msg);
            if msg.tag == tag {
                self.clock.advance_to(msg.arrival, category);
                return Some((msg.from, msg.data));
            }
            self.pending.push_back(msg);
        }
        None
    }

    // ------------------------------------------------------------------
    // Cost-override variants
    //
    // Device-level schedules (PCIe unpinned vs pinned paths, per-layer vs
    // packed layouts, §5.2/§6.1) need finer pricing than one cluster-wide
    // link. These variants move the same data but charge an explicit
    // caller-computed cost.
    // ------------------------------------------------------------------

    /// Like [`send`](Self::send) but charges `seconds` instead of the
    /// cluster link's α-β price. Use when the sender-side cost of this
    /// edge differs from the cluster default (e.g. a host-driven PCIe
    /// push).
    pub fn send_costed(
        &mut self,
        to: usize,
        tag: u32,
        data: &[f32],
        seconds: f64,
        category: TimeCategory,
    ) {
        assert!(to < self.size(), "send to rank {to} out of range");
        assert_ne!(to, self.rank, "send to self");
        self.clock.charge(category, seconds);
        self.shared.senders[to]
            .send(Message {
                from: self.rank,
                tag,
                data: data.to_vec(),
                arrival: self.clock.now(),
            })
            .expect("receiver hung up");
    }

    /// Receiver-driven transfer: waits for the message (the wait — e.g.
    /// the sender still computing — is attributed to `wait_category`),
    /// then charges `seconds` of transfer to `transfer_category`. Models
    /// a host-initiated DMA pull, where the receiver's timeline carries
    /// the transfer cost (how Table 3 accounts CPU↔GPU traffic).
    pub fn recv_costed(
        &mut self,
        from: usize,
        tag: u32,
        seconds: f64,
        wait_category: TimeCategory,
        transfer_category: TimeCategory,
    ) -> Vec<f32> {
        let data = self.recv(from, tag, wait_category);
        self.clock.charge(transfer_category, seconds);
        data
    }

    /// [`broadcast`](Self::broadcast) with an explicit cost.
    pub fn broadcast_costed(
        &mut self,
        root: usize,
        data: &[f32],
        seconds: f64,
        category: TimeCategory,
    ) -> Vec<f32> {
        assert!(root < self.size(), "broadcast root out of range");
        let input = if self.rank == root {
            data.to_vec()
        } else {
            Vec::new()
        };
        let (out, t) = self.shared.gate.rendezvous_costed(
            self.rank,
            self.clock.now(),
            input,
            CollOp::Broadcast { root },
            Some(seconds),
        );
        self.clock.advance_to(t, category);
        out.as_ref().clone()
    }

    /// [`reduce_sum`](Self::reduce_sum) with an explicit cost.
    pub fn reduce_sum_costed(
        &mut self,
        data: &[f32],
        seconds: f64,
        category: TimeCategory,
    ) -> Vec<f32> {
        let (out, t) = self.shared.gate.rendezvous_costed(
            self.rank,
            self.clock.now(),
            data.to_vec(),
            CollOp::ReduceSum,
            Some(seconds),
        );
        self.clock.advance_to(t, category);
        out.as_ref().clone()
    }

    // ------------------------------------------------------------------
    // Collectives (synchronizing; all ranks must call with matching op)
    // ------------------------------------------------------------------

    /// Barrier across all ranks (tree-priced).
    pub fn barrier(&mut self) {
        let (_, t) =
            self.shared
                .gate
                .rendezvous(self.rank, self.clock.now(), Vec::new(), CollOp::Barrier);
        self.clock.advance_to(t, TimeCategory::Other);
    }

    /// Broadcast `data` from `root` to every rank; returns root's data.
    pub fn broadcast(&mut self, root: usize, data: &[f32], category: TimeCategory) -> Vec<f32> {
        assert!(root < self.size(), "broadcast root out of range");
        let input = if self.rank == root {
            data.to_vec()
        } else {
            Vec::new()
        };
        let (out, t) = self.shared.gate.rendezvous(
            self.rank,
            self.clock.now(),
            input,
            CollOp::Broadcast { root },
        );
        self.clock.advance_to(t, category);
        out.as_ref().clone()
    }

    /// Element-wise sum of every rank's `data`, priced as a rooted tree
    /// reduce. The sum is returned on all ranks (non-roots of the logical
    /// reduce are free to ignore it).
    pub fn reduce_sum(&mut self, root: usize, data: &[f32], category: TimeCategory) -> Vec<f32> {
        assert!(root < self.size(), "reduce root out of range");
        let (out, t) = self.shared.gate.rendezvous(
            self.rank,
            self.clock.now(),
            data.to_vec(),
            CollOp::ReduceSum,
        );
        self.clock.advance_to(t, category);
        out.as_ref().clone()
    }

    /// Gather: concatenation of every rank's `data` in rank order,
    /// priced as a rooted tree gather. As with
    /// [`reduce_sum`](Self::reduce_sum), the result is visible on every
    /// rank; non-roots are free to ignore it.
    pub fn gather(&mut self, root: usize, data: &[f32], category: TimeCategory) -> Vec<f32> {
        assert!(root < self.size(), "gather root out of range");
        let (out, t) =
            self.shared
                .gate
                .rendezvous(self.rank, self.clock.now(), data.to_vec(), CollOp::Concat);
        self.clock.advance_to(t, category);
        out.as_ref().clone()
    }

    /// Allgather: every rank receives the rank-ordered concatenation.
    /// Priced like a gather followed by a broadcast of the concatenation.
    pub fn allgather(&mut self, data: &[f32], category: TimeCategory) -> Vec<f32> {
        let gathered = self.gather(0, data, category);
        // The broadcast of the assembled buffer (non-roots already hold
        // the data in shared memory; only the time is charged).
        self.broadcast(0, &gathered, category)
    }

    /// Element-wise allreduce-sum, priced per the configured
    /// [`CollectiveAlgo`](crate::cluster::CollectiveAlgo).
    pub fn allreduce_sum(&mut self, data: &[f32], category: TimeCategory) -> Vec<f32> {
        let (out, t) = self.shared.gate.rendezvous(
            self.rank,
            self.clock.now(),
            data.to_vec(),
            CollOp::AllReduceSum,
        );
        self.clock.advance_to(t, category);
        out.as_ref().clone()
    }
}

/// No-message-loss check: a message that was pulled off the channel and
/// buffered in `pending` but never matched by any `recv` means a rank
/// ended with a tag/peer mismatch in its protocol — a silent loss the
/// trainer would otherwise never notice. In-flight messages still in the
/// channel at shutdown are NOT flagged: an asynchronous master legitimately
/// stops consuming once training converges.
#[cfg(feature = "strict-invariants")]
impl Drop for Comm {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            debug_assert!(
                self.pending.is_empty(),
                "rank {} dropped {} buffered-but-unmatched message(s): {:?}",
                self.rank,
                self.pending.len(),
                self.pending
                    .iter()
                    .map(|m| (m.from, m.tag))
                    .collect::<Vec<_>>()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, VirtualCluster};

    const TAG: u32 = 7;

    #[test]
    fn p2p_roundtrip_carries_data() {
        let cfg = ClusterConfig::new(2);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, TAG, &[1.0, 2.0, 3.0], TimeCategory::CpuGpuParam);
                comm.recv(1, TAG, TimeCategory::CpuGpuParam)
            } else {
                let got = comm.recv(0, TAG, TimeCategory::CpuGpuParam);
                let doubled: Vec<f32> = got.iter().map(|x| x * 2.0).collect();
                comm.send(0, TAG, &doubled, TimeCategory::CpuGpuParam);
                got
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn recv_advances_clock_to_arrival() {
        let cfg = ClusterConfig::new(2);
        let times = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.charge(TimeCategory::ForwardBackward, 1.0);
                comm.send(1, TAG, &[0.0; 1024], TimeCategory::CpuGpuParam);
                comm.now()
            } else {
                let _ = comm.recv(0, TAG, TimeCategory::CpuGpuParam);
                comm.now()
            }
        });
        // Receiver ends exactly at sender's post-send time.
        assert!((times[1] - times[0]).abs() < 1e-12);
        assert!(times[0] > 1.0);
    }

    #[test]
    fn recv_filters_by_source_and_tag() {
        let cfg = ClusterConfig::new(3);
        let out = VirtualCluster::run(&cfg, |comm| match comm.rank() {
            0 => {
                // Expect specifically rank 2's message even if rank 1's
                // arrives first.
                let from2 = comm.recv(2, TAG, TimeCategory::Other);
                let from1 = comm.recv(1, TAG, TimeCategory::Other);
                vec![from2[0], from1[0]]
            }
            r => {
                comm.send(0, TAG, &[r as f32], TimeCategory::Other);
                vec![]
            }
        });
        assert_eq!(out[0], vec![2.0, 1.0]);
    }

    #[test]
    fn recv_any_serves_fcfs() {
        let cfg = ClusterConfig::new(4);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..3 {
                    let (from, data) = comm.recv_any(TAG, TimeCategory::Other);
                    assert_eq!(data[0] as usize, from);
                    seen.push(from);
                }
                seen.sort_unstable();
                seen
            } else {
                comm.send(0, TAG, &[comm.rank() as f32], TimeCategory::Other);
                vec![]
            }
        });
        assert_eq!(out[0], vec![1, 2, 3]);
    }

    #[test]
    fn try_recv_any_returns_none_when_empty() {
        let cfg = ClusterConfig::new(2);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let empty = comm.try_recv_any(99, TimeCategory::Other).is_none();
                // Now wait for the real message so the test is race-free.
                let (_, d) = comm.recv_any(TAG, TimeCategory::Other);
                (empty, d[0])
            } else {
                comm.send(0, TAG, &[5.0], TimeCategory::Other);
                (true, 0.0)
            }
        });
        assert!(out[0].0);
        assert_eq!(out[0].1, 5.0);
    }

    #[test]
    fn send_charges_alpha_beta_cost() {
        let cfg = ClusterConfig::new(2);
        let link = cfg.link.clone();
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, TAG, &[0.0; 1000], TimeCategory::CpuGpuParam);
                comm.now()
            } else {
                let _ = comm.recv(0, TAG, TimeCategory::CpuGpuParam);
                0.0
            }
        });
        assert!((out[0] - link.time(4000)).abs() < 1e-15);
    }

    #[test]
    fn report_carries_breakdown() {
        let cfg = ClusterConfig::new(1);
        let out = VirtualCluster::run(&cfg, |comm| {
            comm.charge(TimeCategory::ForwardBackward, 2.0);
            comm.charge(TimeCategory::GpuUpdate, 1.0);
            comm.report()
        });
        let r = &out[0];
        assert_eq!(r.rank, 0);
        assert!((r.time - 3.0).abs() < 1e-12);
        assert!((r.breakdown.get(TimeCategory::ForwardBackward) - 2.0).abs() < 1e-12);
        assert_eq!(r.breakdown.comm_ratio(), 0.0);
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let cfg = ClusterConfig::new(3);
        let out = VirtualCluster::run(&cfg, |comm| {
            let mine = vec![comm.rank() as f32; 2];
            comm.gather(0, &mine, TimeCategory::Other)
        });
        for v in out {
            assert_eq!(v, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn allgather_delivers_everywhere_and_costs_more_than_gather() {
        let cfg = ClusterConfig::new(4);
        let out = VirtualCluster::run(&cfg, |comm| {
            let mine = vec![comm.rank() as f32];
            let t0 = comm.now();
            let g = comm.allgather(&mine, TimeCategory::GpuGpuParam);
            (g, comm.now() - t0)
        });
        for (g, dt) in out {
            assert_eq!(g, vec![0.0, 1.0, 2.0, 3.0]);
            assert!(dt > 0.0);
        }
    }

    #[test]
    fn gather_supports_unequal_contributions() {
        let cfg = ClusterConfig::new(3);
        let out = VirtualCluster::run(&cfg, |comm| {
            let mine = vec![comm.rank() as f32; comm.rank() + 1];
            comm.gather(0, &mine, TimeCategory::Other)
        });
        for v in out {
            assert_eq!(v, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        }
    }

    #[test]
    // The panic happens on the rank thread; the join surfaces it as
    // "rank panicked".
    #[should_panic(expected = "rank panicked")]
    fn send_to_self_rejected() {
        let cfg = ClusterConfig::new(1);
        let _ = VirtualCluster::run(&cfg, |comm| {
            comm.send(0, TAG, &[1.0], TimeCategory::Other);
        });
    }
}
