//! Vector kernels: BLAS-1 style operations on `f32` slices.
//!
//! These are the primitives the elastic-averaging updates (Equations 1, 2,
//! 5, 6 of the paper) and the optimizer steps are built from. They operate
//! on raw slices so they can be applied to whole packed parameter arenas
//! (§5.2) as easily as to individual layer buffers.
//!
//! Arena-sized inputs (≥ [`PAR_ELEMS`] elements — VGG-class models, not
//! LeNet) fan out over scoped threads via the [`crate::par`] band-split
//! helpers; everything smaller takes the serial fast path, where the
//! spawn cost would dwarf a single memory pass. The split is by
//! contiguous element bands, so every element is written by exactly one
//! thread with the same arithmetic as the serial loop — results are
//! bit-identical at any thread count.
//!
//! The per-band bodies of the elastic updates (Equations 1, 2, 5/6, axpy
//! and the Σ-form dilution) are the explicit-SIMD kernels of
//! [`crate::simd`]: 16-lane AVX-512 bodies that apply the *exact* scalar
//! operation tree (no FMA contraction), bit-identical to the scalar
//! definitions — so the golden training digests pinned by the core crate
//! are tier-independent. Note [`crate::with_scalar_kernels`] is
//! per-thread: it pins the calling thread's dispatch, which covers every
//! serial-path call; the parallel band path is separately pinned
//! bit-identical to the serial loop by the band-split contract above.

use crate::par;
use crate::simd;

/// Element count at and above which the mutating BLAS-1 kernels fan out
/// over scoped threads. 1 Mi floats = 4 MiB per operand: below this a
/// single core's memory pass (~100 µs) is cheaper than thread spawns;
/// above it the kernel is DRAM-bound and splits near-linearly. The §5.2
/// packed arena of a VGG-class model (≈14.7 M params) qualifies; a
/// LeNet-class arena (≈431 k) stays serial.
pub const PAR_ELEMS: usize = 1 << 20;

/// True when `n` is large enough to split and more than one thread is
/// available.
#[inline]
fn should_par(n: usize) -> bool {
    n >= PAR_ELEMS && par::current_threads() > 1
}

/// With `strict-invariants`, debug-asserts every element of `xs` is
/// finite — a NaN/Inf escaping an update kernel poisons all further
/// training silently, so catch it at the source.
#[cfg(feature = "strict-invariants")]
#[inline]
pub(crate) fn debug_check_finite(what: &str, xs: &[f32]) {
    debug_assert!(
        xs.iter().all(|x| x.is_finite()),
        "{what}: non-finite value in output"
    );
}
#[cfg(not(feature = "strict-invariants"))]
#[inline]
pub(crate) fn debug_check_finite(_what: &str, _xs: &[f32]) {}

/// `y += alpha * x` (BLAS `axpy`).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if should_par(y.len()) {
        par::par_zip_mut(y, x, |yc, xc| simd::axpy_band(alpha, yc, xc));
        return;
    }
    simd::axpy_band(alpha, y, x);
}

/// `x *= alpha` (BLAS `scal`).
pub fn scale(alpha: f32, x: &mut [f32]) {
    if should_par(x.len()) {
        par::par_chunks_mut(x, |_, chunk| scale_band(alpha, chunk));
        return;
    }
    scale_band(alpha, x);
}

fn scale_band(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dot product of two equally long slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = 0.0f32;
    // Four accumulators: breaks the dependency chain so the compiler can
    // vectorize without -ffast-math-style reassociation.
    let mut a0 = 0.0f32;
    let mut a1 = 0.0f32;
    let mut a2 = 0.0f32;
    let mut a3 = 0.0f32;
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        a0 += x[i] * y[i];
        a1 += x[i + 1] * y[i + 1];
        a2 += x[i + 2] * y[i + 2];
        a3 += x[i + 3] * y[i + 3];
    }
    for i in chunks * 4..x.len() {
        acc += x[i] * y[i];
    }
    acc + a0 + a1 + a2 + a3
}

/// Element-wise `out = a - b`.
///
/// # Panics
/// Panics if lengths differ.
pub fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    assert_eq!(a.len(), out.len(), "sub output length mismatch");
    if should_par(out.len()) {
        par::par_zip2_mut(out, a, b, sub_band);
        return;
    }
    sub_band(out, a, b);
}

fn sub_band(out: &mut [f32], a: &[f32], b: &[f32]) {
    for ((o, ai), bi) in out.iter_mut().zip(a).zip(b) {
        *o = ai - bi;
    }
}

/// Element-wise `a += b`.
///
/// # Panics
/// Panics if lengths differ.
pub fn add_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "add_assign length mismatch");
    let band = |ac: &mut [f32], bc: &[f32]| {
        for (ai, bi) in ac.iter_mut().zip(bc.iter()) {
            *ai += bi;
        }
    };
    if should_par(a.len()) {
        par::par_zip_mut(a, b, band);
    } else {
        band(a, b);
    }
}

/// Copies `src` into `dst`.
///
/// # Panics
/// Panics if lengths differ.
pub fn copy(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "copy length mismatch");
    dst.copy_from_slice(src);
}

/// Sum of all elements.
pub fn sum(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Squared L2 norm.
pub fn norm_sq(x: &[f32]) -> f32 {
    dot(x, x)
}

/// Index of the first maximum element, or `None` if empty.
pub fn argmax(x: &[f32]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    Some(best)
}

/// The elastic update of Equation (1):
/// `W_i ← W_i − η(ΔW_i + ρ(W_i − W̄))`.
///
/// `local` is the worker's weight `W_i`, `grad` its sub-gradient `ΔW_i`,
/// `center` the global weight `W̄`.
///
/// # Panics
/// Panics if lengths differ.
pub fn elastic_worker_update(eta: f32, rho: f32, local: &mut [f32], grad: &[f32], center: &[f32]) {
    assert_eq!(local.len(), grad.len(), "elastic update length mismatch");
    assert_eq!(local.len(), center.len(), "elastic update length mismatch");
    let band = |lc: &mut [f32], gc: &[f32], cc: &[f32]| simd::eq1_band(eta, rho, lc, gc, cc);
    if should_par(local.len()) {
        par::par_zip2_mut(local, grad, center, band);
    } else {
        band(local, grad, center);
    }
    debug_check_finite("elastic_worker_update", local);
}

/// The center update of Equation (2) for a single arriving worker:
/// `W̄ ← W̄ + ηρ(W_i − W̄)`.
///
/// Calling this once per worker realizes the full sum of Equation (2).
///
/// # Panics
/// Panics if lengths differ.
pub fn elastic_center_update(eta: f32, rho: f32, center: &mut [f32], local: &[f32]) {
    assert_eq!(center.len(), local.len(), "center update length mismatch");
    let c = eta * rho;
    let band = |cc: &mut [f32], lc: &[f32]| simd::eq2_band(c, cc, lc);
    if should_par(center.len()) {
        par::par_zip_mut(center, local, band);
    } else {
        band(center, local);
    }
    debug_check_finite("elastic_center_update", center);
}

/// Momentum update of Equations (3)–(4):
/// `V ← µV − ηΔW; W ← W + V`.
///
/// # Panics
/// Panics if lengths differ.
pub fn momentum_update(eta: f32, mu: f32, weight: &mut [f32], velocity: &mut [f32], grad: &[f32]) {
    assert_eq!(weight.len(), grad.len(), "momentum update length mismatch");
    assert_eq!(
        weight.len(),
        velocity.len(),
        "momentum update length mismatch"
    );
    let band = |wc: &mut [f32], vc: &mut [f32], gc: &[f32]| {
        for ((wi, vi), gi) in wc.iter_mut().zip(vc.iter_mut()).zip(gc) {
            *vi = mu * *vi - eta * gi;
            *wi += *vi;
        }
    };
    if should_par(weight.len()) {
        par::par_zip21_mut(weight, velocity, grad, band);
    } else {
        band(weight, velocity, grad);
    }
    debug_check_finite("momentum_update", weight);
}

/// Momentum-elastic worker update of Equations (5)–(6):
/// `Vᵢ ← µVᵢ − ηΔWᵢ; Wᵢ ← Wᵢ + Vᵢ − ηρ(Wᵢ − W̄)`.
///
/// # Panics
/// Panics if lengths differ.
pub fn elastic_momentum_update(
    eta: f32,
    mu: f32,
    rho: f32,
    local: &mut [f32],
    velocity: &mut [f32],
    grad: &[f32],
    center: &[f32],
) {
    assert_eq!(local.len(), grad.len(), "measgd update length mismatch");
    assert_eq!(local.len(), velocity.len(), "measgd update length mismatch");
    assert_eq!(local.len(), center.len(), "measgd update length mismatch");
    // `η·ρ` premultiplied: `eta * rho * x` associates as `(eta·rho)·x`,
    // so hoisting the product is bit-invisible.
    let er = eta * rho;
    let band = |lc: &mut [f32], vc: &mut [f32], gc: &[f32], cc: &[f32]| {
        simd::eq56_band(eta, mu, er, lc, vc, gc, cc)
    };
    if should_par(local.len()) {
        par::par_zip22_mut(local, velocity, grad, center, band);
    } else {
        band(local, velocity, grad, center);
    }
    debug_check_finite("elastic_momentum_update", local);
}

/// The fused exchange-step kernel: captures the pre-update worker weight
/// `Wᵢ` into `contribution` (the Equation (2) reduce input) and applies
/// the Equation (1) pull in the same sweep —
/// `contribution ← Wᵢ; Wᵢ ← Wᵢ − η(ΔWᵢ + ρ(Wᵢ − W̄))`.
///
/// Bit-identical to `copy(local, contribution)` followed by
/// [`elastic_worker_update`]: the captured value and the update both read
/// the same pre-update element, exactly as the two-pass composition does,
/// so fusing removes two of the seven memory streams without moving a
/// single rounding.
///
/// The sweep is cache-blocked: each [`EXCHANGE_BLOCK`]-element band is
/// captured with one straight `copy_from_slice` (which vectorizes as a
/// plain memcpy) and then updated while still resident in L1 — the
/// four-stream interleaved form defeats the copy's vectorization and
/// measured *slower* than two passes.
///
/// # Panics
/// Panics if lengths differ.
pub fn elastic_exchange(
    eta: f32,
    rho: f32,
    local: &mut [f32],
    contribution: &mut [f32],
    grad: &[f32],
    center: &[f32],
) {
    assert_eq!(
        local.len(),
        contribution.len(),
        "elastic exchange length mismatch"
    );
    assert_eq!(local.len(), grad.len(), "elastic exchange length mismatch");
    assert_eq!(
        local.len(),
        center.len(),
        "elastic exchange length mismatch"
    );
    let band = |lc: &mut [f32], oc: &mut [f32], gc: &[f32], cc: &[f32]| {
        // Capture-then-update per block: each element's captured value and
        // update read the identical pre-update weight, so the blocking is
        // invisible to the FP result. The update is exactly Equation (1),
        // so it shares the Eq. 1 SIMD band kernel.
        for start in (0..lc.len()).step_by(EXCHANGE_BLOCK) {
            let end = (start + EXCHANGE_BLOCK).min(lc.len());
            oc[start..end].copy_from_slice(&lc[start..end]);
            simd::eq1_band(
                eta,
                rho,
                &mut lc[start..end],
                &gc[start..end],
                &cc[start..end],
            );
        }
    };
    if should_par(local.len()) {
        par::par_zip22_mut(local, contribution, grad, center, band);
    } else {
        band(local, contribution, grad, center);
    }
    debug_check_finite("elastic_exchange", local);
}

/// Band width (elements) of [`elastic_exchange`]'s capture-then-update
/// blocking: 16 KiB of f32 — comfortably L1-resident alongside the
/// gradient and center streams.
const EXCHANGE_BLOCK: usize = 4096;

/// Equation (2) in bulk-synchronous Σ-form:
/// `W̄ ← W̄ + ηρ(ΣWᵢ − P·W̄)` — the single center update Sync EASGD's
/// tree reduction produces. The FP evaluation order (one fused pass over
/// the sum) is pinned by the golden-trace tests.
///
/// # Panics
/// Panics if lengths differ.
pub fn center_dilution(eta: f32, rho: f32, center: &mut [f32], weight_sum: &[f32], workers: usize) {
    assert_eq!(center.len(), weight_sum.len(), "dilution length mismatch");
    let scale = eta * rho;
    let p = workers as f32;
    let band = |cc: &mut [f32], sc: &[f32]| simd::dilution_band(scale, p, cc, sc);
    if should_par(center.len()) {
        par::par_zip_mut(center, weight_sum, band);
    } else {
        band(center, weight_sum);
    }
    debug_check_finite("center_dilution", center);
}

/// [`center_dilution`] fused with the preceding center refresh: computes
/// `center_out ← center_t + ηρ(ΣWᵢ − P·center_t)` without first copying
/// `center_t` into `center_out`. Bit-identical to
/// `copy(center_t, center_out)` + [`center_dilution`], because `x += e`
/// evaluates as `x = x + e` on the copied value.
///
/// # Panics
/// Panics if lengths differ.
pub fn center_dilution_from(
    eta: f32,
    rho: f32,
    center_t: &[f32],
    weight_sum: &[f32],
    workers: usize,
    center_out: &mut [f32],
) {
    assert_eq!(center_t.len(), weight_sum.len(), "dilution length mismatch");
    assert_eq!(center_t.len(), center_out.len(), "dilution length mismatch");
    let scale = eta * rho;
    let p = workers as f32;
    let band =
        |oc: &mut [f32], tc: &[f32], sc: &[f32]| simd::dilution_from_band(scale, p, oc, tc, sc);
    if should_par(center_out.len()) {
        par::par_zip2_mut(center_out, center_t, weight_sum, band);
    } else {
        band(center_out, center_t, weight_sum);
    }
    debug_check_finite("center_dilution_from", center_out);
}

/// Plain SGD step `W ← W − ηΔW`.
///
/// # Panics
/// Panics if lengths differ.
pub fn sgd_update(eta: f32, weight: &mut [f32], grad: &[f32]) {
    axpy(-eta, grad, weight);
    debug_check_finite("sgd_update", weight);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 10.0]);
    }

    #[test]
    fn dot_matches_naive_on_odd_lengths() {
        let x: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..11).map(|i| (i * 2) as f32).collect();
        let naive: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_close(dot(&x, &y), naive);
    }

    #[test]
    fn scale_and_sum() {
        let mut x = vec![1.0, 2.0, 3.0];
        scale(2.0, &mut x);
        assert_eq!(sum(&x), 12.0);
    }

    #[test]
    fn sub_and_add_assign_are_inverse() {
        let a = vec![5.0, 6.0];
        let b = vec![1.0, 2.0];
        let mut d = vec![0.0; 2];
        sub(&a, &b, &mut d);
        let mut r = b.clone();
        add_assign(&mut r, &d);
        assert_eq!(r, a);
    }

    #[test]
    fn elastic_worker_update_matches_equation_1() {
        // W=1, grad=0.5, center=0 → W - η(grad + ρ(W - W̄)) = 1 - 0.1(0.5 + 0.2*1)
        let mut w = vec![1.0];
        elastic_worker_update(0.1, 0.2, &mut w, &[0.5], &[0.0]);
        assert_close(w[0], 1.0 - 0.1 * (0.5 + 0.2));
    }

    #[test]
    fn elastic_center_update_matches_equation_2() {
        let mut c = vec![0.0];
        elastic_center_update(0.1, 0.5, &mut c, &[2.0]);
        assert_close(c[0], 0.1 * 0.5 * 2.0);
    }

    #[test]
    fn center_update_is_convex_pull() {
        // With ηρ ∈ (0,1) the center moves toward the worker without
        // overshooting: this is the stability property EASGD relies on.
        let mut c = vec![0.0];
        for _ in 0..1000 {
            elastic_center_update(0.1, 0.5, &mut c, &[1.0]);
        }
        assert!(c[0] > 0.99 && c[0] <= 1.0);
    }

    #[test]
    fn momentum_update_matches_equations_3_4() {
        let mut w = vec![1.0];
        let mut v = vec![0.5];
        momentum_update(0.1, 0.9, &mut w, &mut v, &[1.0]);
        // v = 0.9*0.5 - 0.1*1 = 0.35; w = 1 + 0.35
        assert_close(v[0], 0.35);
        assert_close(w[0], 1.35);
    }

    #[test]
    fn elastic_momentum_matches_equations_5_6() {
        let mut w = vec![1.0];
        let mut v = vec![0.0];
        elastic_momentum_update(0.1, 0.9, 0.5, &mut w, &mut v, &[1.0], &[0.0]);
        // v = -0.1; w = 1 - 0.1 - 0.1*0.5*(1-0) = 0.85
        assert_close(w[0], 0.85);
    }

    #[test]
    fn sgd_update_descends() {
        let mut w = vec![1.0];
        sgd_update(0.5, &mut w, &[2.0]);
        assert_eq!(w, vec![0.0]);
    }

    #[test]
    fn elastic_exchange_is_bit_identical_to_copy_then_eq1() {
        let n = 257;
        let grad: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let center: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
        let start: Vec<f32> = (0..n).map(|i| 0.5 - (i % 17) as f32 * 0.03).collect();

        let mut two_pass = start.clone();
        let mut want_contrib = vec![0.0f32; n];
        want_contrib.copy_from_slice(&two_pass);
        elastic_worker_update(0.05, 0.3, &mut two_pass, &grad, &center);

        let mut fused = start.clone();
        let mut contrib = vec![0.0f32; n];
        elastic_exchange(0.05, 0.3, &mut fused, &mut contrib, &grad, &center);

        for i in 0..n {
            assert_eq!(fused[i].to_bits(), two_pass[i].to_bits(), "local[{i}]");
            assert_eq!(
                contrib[i].to_bits(),
                want_contrib[i].to_bits(),
                "contrib[{i}]"
            );
        }
    }

    #[test]
    fn center_dilution_from_matches_copy_then_dilution() {
        let n = 101;
        let center_t: Vec<f32> = (0..n).map(|i| (i as f32 * 0.21).sin()).collect();
        let weight_sum: Vec<f32> = (0..n).map(|i| 4.0 * (i as f32 * 0.09).cos()).collect();
        let mut two_pass = vec![0.0f32; n];
        two_pass.copy_from_slice(&center_t);
        center_dilution(0.05, 0.3, &mut two_pass, &weight_sum, 4);
        let mut fused = vec![7.0f32; n];
        center_dilution_from(0.05, 0.3, &center_t, &weight_sum, 4, &mut fused);
        for i in 0..n {
            assert_eq!(fused[i].to_bits(), two_pass[i].to_bits(), "center[{i}]");
        }
    }

    #[test]
    fn elastic_updates_are_simd_tier_invariant() {
        // Every elastic kernel must produce the same bits whether the
        // AVX-512 band bodies or the scalar definitions run — this is
        // what keeps the core crate's golden training digests stable
        // across build targets. Length chosen to exercise the 16-lane
        // vector body plus a ragged tail.
        let n = 1003;
        let grad: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let center: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
        let start: Vec<f32> = (0..n).map(|i| 0.5 - (i % 17) as f32 * 0.03).collect();

        type Apply = fn(&mut [f32], &mut [f32], &[f32], &[f32]);
        let cases: &[(&str, Apply)] = &[
            ("axpy", |l, _, g, _| axpy(0.37, g, l)),
            ("eq1", |l, _, g, c| {
                elastic_worker_update(0.05, 0.3, l, g, c)
            }),
            ("eq2", |l, _, _, c| elastic_center_update(0.05, 0.3, l, c)),
            ("eq5_6", |l, v, g, c| {
                elastic_momentum_update(0.05, 0.9, 0.3, l, v, g, c)
            }),
            ("exchange", |l, v, g, c| {
                elastic_exchange(0.05, 0.3, l, v, g, c)
            }),
            ("dilution", |l, _, g, _| center_dilution(0.05, 0.3, l, g, 4)),
            ("dilution_from", |l, v, g, _| {
                center_dilution_from(0.05, 0.3, g, l, 4, v)
            }),
        ];
        for (name, apply) in cases {
            let mut l_fast = start.clone();
            let mut v_fast = vec![0.25f32; n];
            apply(&mut l_fast, &mut v_fast, &grad, &center);
            let mut l_ref = start.clone();
            let mut v_ref = vec![0.25f32; n];
            crate::simd::with_scalar_kernels(|| apply(&mut l_ref, &mut v_ref, &grad, &center));
            for i in 0..n {
                assert_eq!(
                    l_fast[i].to_bits(),
                    l_ref[i].to_bits(),
                    "{name} primary[{i}]"
                );
                assert_eq!(
                    v_fast[i].to_bits(),
                    v_ref[i].to_bits(),
                    "{name} secondary[{i}]"
                );
            }
        }
    }

    #[test]
    fn center_dilution_fixed_point_is_the_worker_mean() {
        // ΣWᵢ = P·W̄ ⇒ no movement.
        let mut c = vec![2.0f32, -1.0];
        center_dilution(0.1, 0.5, &mut c, &[8.0, -4.0], 4);
        assert_eq!(c, vec![2.0, -1.0]);
    }
}
