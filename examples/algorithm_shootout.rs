//! The Figure 8 experience in miniature: run all eight methods on the
//! same task, hardware and hyperparameters (§2.4's comparison rule) and
//! rank them by time-to-accuracy.
//!
//! ```sh
//! cargo run --release --example algorithm_shootout
//! ```

use knl_easgd::algorithms::RunResult;
use knl_easgd::prelude::*;

fn main() {
    let task = SyntheticSpec::mnist_small().task(1001);
    let (train, test) = task.train_test(2_000, 500, 1002);
    let net = lenet_tiny(1003);
    let cfg = TrainConfig::figure6(300);
    let mut msgd_cfg = cfg.clone();
    msgd_cfg.eta = 0.01; // momentum methods need the smaller rate

    type Runner = fn(&Network, &Dataset, &Dataset, &TrainConfig) -> RunResult;
    let methods: Vec<(Runner, &TrainConfig, &str)> = vec![
        (original_easgd_turns as Runner, &cfg, "existing"),
        (async_sgd as Runner, &cfg, "existing"),
        (async_msgd as Runner, &msgd_cfg, "existing"),
        (hogwild_sgd as Runner, &cfg, "existing"),
        (async_easgd as Runner, &cfg, "ours"),
        (async_measgd as Runner, &msgd_cfg, "ours"),
        (hogwild_easgd as Runner, &cfg, "ours"),
        (sync_easgd_shared as Runner, &cfg, "ours"),
    ];

    println!(
        "{:<16} {:>10} {:>10} {:>12}  origin",
        "method", "acc %", "err log10", "wall s"
    );
    let mut results: Vec<(RunResult, &str)> = methods
        .into_iter()
        .map(|(run, c, origin)| (run(&net, &train, &test, c), origin))
        .collect();
    results.sort_by(|a, b| b.0.accuracy.partial_cmp(&a.0.accuracy).unwrap());
    for (r, origin) in &results {
        println!(
            "{:<16} {:>10.1} {:>10.2} {:>12.2}  {origin}",
            r.method,
            r.accuracy * 100.0,
            r.log10_error(),
            r.wall_seconds
        );
    }
}
