//! # easgd-serve
//!
//! Dynamic micro-batching inference engine on the zero-alloc stack of
//! the `knl-easgd` reproduction of *“Scaling Deep Learning on GPU and
//! Knights Landing clusters”* (SC '17).
//!
//! The paper's co-design argument (§6) is that training throughput comes
//! from matching the batch shape to the hardware model. Serving inverts
//! that into a latency/throughput trade: a single request is
//! overhead-bound (the fixed per-dispatch cost α dominates, exactly the
//! α latency term of the paper's §5.2 communication analysis), so a
//! batcher that coalesces requests amortizes α over B samples — at the
//! price of queueing delay bounded by a deadline. This crate measures
//! that trade deterministically:
//!
//! * [`session`] — [`InferSession`]: a gradient-stripped [`Network`]
//!   replica plus a forward-only [`InferScratch`], reaching the same
//!   zero-allocations-per-request steady state as the training step;
//!   [`ReplicaSet`] shards replicas over a `par::PartitionedPool`.
//! * [`batcher`] — the dynamic micro-batcher: per-shard FIFO queues with
//!   the coalescing rule “close the batch at B requests or T µs,
//!   whichever first”, and pooled (counted) request/pixel storage.
//! * [`engine`] — [`ServeEngine`]: drives the batcher on logical
//!   microsecond time, dispatches closed batches in `(ready time,
//!   shard)` total order, accounts service time on per-shard
//!   `SimClock`s, and runs a pluggable [`Backend`] (real replicas or
//!   the modeled-only [`NullBackend`]).
//! * [`arrival`] — deterministic open-loop arrival processes (uniform,
//!   Poisson from the repo's seeded RNG, burst).
//! * [`service`] — [`ServiceModel`]: the pinned `step(B) = α + β·B`
//!   service-time model the latency percentiles are computed under.
//! * [`harness`] — percentile and latency-summary helpers for the
//!   `serve` bench bin (`BENCH_serve.json`).
//!
//! Dispatch is **ragged, never padded**: a partial batch runs at its
//! actual size. Padding would spend real forward flops on dead samples
//! to reach a “nicer” shape; on the GEMM-backed stack a ragged batch of
//! k rows already uses the same kernels bit-identically (see the
//! batch-size-invariance tests), so padding buys nothing and costs
//! `(B−k)·β` per dispatch.
//!
//! [`Network`]: easgd_nn::Network
//! [`InferScratch`]: easgd_tensor::InferScratch

pub mod arrival;
pub mod batcher;
pub mod engine;
pub mod harness;
pub mod service;
pub mod session;

pub use arrival::{Arrival, ArrivalGen};
pub use batcher::{Batch, Batcher, BatcherConfig, Request};
pub use engine::{Backend, Completion, DispatchRecord, NullBackend, ServeEngine};
pub use harness::{percentile_us, summarize, LatencySummary};
pub use service::ServiceModel;
pub use session::{InferSession, ReplicaSet};
