//! `easgd-xtask` — workspace static analysis and model checking.
//!
//! Two subsystems, exposed as a library (so the root test suite can drive
//! them) and as a `cargo run -p easgd-xtask` CLI:
//!
//! * [`lint`] — a source-level lint pass over every workspace `.rs` file
//!   enforcing the repo's concurrency/determinism rules (no `unsafe`, no
//!   wall-clock reads in simulated-clock code, justified atomic orderings,
//!   no `unwrap` in library hot paths).
//! * [`interleave`] — a bounded, exhaustive, deterministic interleaving
//!   explorer for the Hogwild CAS kernels (`fetch_add`, elastic center
//!   update), with a deliberately racy kernel as a negative self-test.
//! * [`protocol`] — a protocol model checker for the comm layer: per-rank
//!   programs recorded from the *production* collectives and trainer
//!   exchanges are exhaustively interleaved (with sleep-set partial-order
//!   reduction) and every terminal state is checked for deadlock,
//!   message loss, buffer-pool leaks, and FIFO delivery (DESIGN.md §12).

pub mod interleave;
pub mod lint;
pub mod protocol;
