//! Microbench: the §5.2 packed-layout claim at the memory level — one
//! contiguous parameter arena vs scattered per-layer buffers, for the
//! serialization step every weight exchange performs (gather into a
//! send buffer / scatter from a receive buffer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use easgd_nn::models::{alexnet_cifar, lenet};
use easgd_nn::{CommSchedule, LayoutKind};

fn bench_serialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("weight_serialize");
    for (name, net) in [("lenet", lenet(1)), ("alexnet_cifar", alexnet_cifar(2))] {
        let n = net.num_params();
        group.throughput(Throughput::Bytes((n * 4) as u64));
        // Packed: the arena IS the message — one memcpy.
        let packed = net.params().as_slice().to_vec();
        group.bench_with_input(BenchmarkId::new("packed", name), &packed, |bencher, src| {
            let mut out = vec![0.0f32; n];
            bencher.iter(|| out.copy_from_slice(src));
        });
        // Per-layer: separate allocations gathered segment by segment.
        let segments: Vec<Vec<f32>> = net
            .params()
            .segments()
            .iter()
            .map(|s| net.params().as_slice()[s.range()].to_vec())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("per_layer", name),
            &segments,
            |bencher, segs| {
                let mut out = vec![0.0f32; n];
                bencher.iter(|| {
                    let mut off = 0;
                    for s in segs {
                        out[off..off + s.len()].copy_from_slice(s);
                        off += s.len();
                    }
                    off
                });
            },
        );
    }
    group.finish();
}

fn bench_schedule_cost(c: &mut Criterion) {
    // Cost-model evaluation itself (used in inner loops of the sweeps).
    let mut group = c.benchmark_group("schedule_cost");
    let spec = easgd_nn::spec::spec_vgg19();
    for layout in [LayoutKind::Packed, LayoutKind::PerLayer] {
        let schedule = CommSchedule::from_spec(&spec, layout);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{layout:?}")),
            &schedule,
            |bencher, s| bencher.iter(|| s.time_alpha_beta(0.7e-6, 0.2e-9)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serialize, bench_schedule_cost);
criterion_main!(benches);
