//! The lock-free algorithms: Hogwild SGD (§3.2) and Hogwild EASGD
//! (§5.1, contribution 1).
//!
//! Hogwild removes the master's update lock: workers apply their updates
//! to the shared vector concurrently, component-by-component, with no
//! cross-component atomicity. Hogwild EASGD applies the same idea to the
//! *center* weight `W̄`: multiple workers' Equation (2) pulls may
//! interleave freely. The paper observes this is what finally makes the
//! asynchronous family competitive with Sync EASGD (Figure 8); the
//! convergence proof is in the paper's appendix — the key safety property
//! (each component update is a convex pull, so the center stays in the
//! workers' hull) is exercised by `easgd-tensor`'s `AtomicBuffer` tests.
//!
//! Both trainers ride the engine's worker runtime; all that lives here is
//! the lock-free exchange against the [`AtomicBuffer`].

use crate::config::TrainConfig;
use crate::engine::{run_exchange_loop, run_worker_loop, ElasticRule, RunAssembler, SALT_HOGWILD};
use crate::metrics::RunResult;
use easgd_data::Dataset;
use easgd_nn::Network;
use easgd_tensor::AtomicBuffer;

/// Hogwild SGD (§3.2): the shared weight vector is updated lock-free.
/// Workers snapshot `W`, compute a gradient at the snapshot, and apply
/// `W ← W − η·ΔW` with per-component atomic adds.
pub fn hogwild_sgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    let shared = AtomicBuffer::from_slice(proto.params().as_slice());
    let run = run_worker_loop(proto, train, cfg, SALT_HOGWILD, |shard, local| {
        for _ in 0..cfg.iterations {
            // Snapshot-first: the gradient is computed *at* the shared
            // weight, not at a private local replica.
            shared.snapshot_into(local.snapshot_mut());
            local.load_snapshot_params();
            let batch = shard.next_batch(cfg.batch);
            local.forward_backward(&batch);
            shared.sgd_update(cfg.eta, local.grad());
        }
    });
    let final_w = shared.snapshot();
    RunAssembler::new("Hogwild SGD", proto, test, cfg.iterations)
        .wall(run.wall_seconds)
        .worker_losses(run.worker_losses)
        .loss_trace(run.loss_trace)
        .finish(&final_w)
}

/// Hogwild EASGD (ours, §5.1): each worker keeps a private local weight
/// `Wᵢ`; the shared *center* `W̄` is updated lock-free with the
/// Equation (2) pull, and the worker applies Equation (1) against its
/// snapshot. “The master first receives multiple weights from different
/// workers … then processes these weights by the Hogwild (lock-free)
/// updating rule.”
pub fn hogwild_easgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    let rule = ElasticRule::from_config(cfg);
    let shared = AtomicBuffer::from_slice(proto.params().as_slice());
    let run = run_exchange_loop(proto, train, cfg, SALT_HOGWILD, |_, step, local| {
        // Communication period τ: local SGD steps between lock-free
        // exchanges.
        if (step + 1) % cfg.comm_period != 0 {
            local.sgd_step(cfg.eta);
            return;
        }
        // Lock-free center pull (Eq 2), snapshot, local elastic (Eq 1).
        shared.elastic_center_update(cfg.eta, cfg.rho, local.params());
        shared.snapshot_into(local.snapshot_mut());
        local.elastic_step(&rule);
    });
    let final_w = shared.snapshot();
    RunAssembler::new("Hogwild EASGD", proto, test, cfg.iterations)
        .wall(run.wall_seconds)
        .worker_losses(run.worker_losses)
        .loss_trace(run.loss_trace)
        .finish(&final_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(31);
        let (train, test) = task.train_test(600, 200, 32);
        (lenet_tiny(33), train, test)
    }

    fn quick_cfg(iters: usize) -> TrainConfig {
        TrainConfig {
            workers: 4,
            batch: 16,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations: iters,
            seed: 41,
            comm_period: 1,
        }
    }

    #[test]
    fn hogwild_sgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = hogwild_sgd(&proto, &train, &test, &quick_cfg(150));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn hogwild_easgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = hogwild_easgd(&proto, &train, &test, &quick_cfg(200));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn hogwild_easgd_center_stays_finite_under_contention() {
        // 8 workers hammering a small model: the lock-free interleavings
        // must not blow the center up.
        let (proto, train, test) = setup();
        let cfg = quick_cfg(60).with_workers(8);
        let r = hogwild_easgd(&proto, &train, &test, &cfg);
        assert!(r.final_loss.is_finite());
        assert!(r.accuracy >= 0.0);
    }

    #[test]
    fn method_names() {
        let (proto, train, test) = setup();
        let cfg = quick_cfg(5);
        assert_eq!(
            hogwild_sgd(&proto, &train, &test, &cfg).method,
            "Hogwild SGD"
        );
        assert_eq!(
            hogwild_easgd(&proto, &train, &test, &cfg).method,
            "Hogwild EASGD"
        );
    }
}
