//! The abstract comm-operation vocabulary shared between [`Comm`]'s
//! trace recorder and the xtask protocol model checker.
//!
//! A [`TraceOp`] is one observable communicator action, abstracted away
//! from payload contents and simulated time. [`Comm::trace_start`] /
//! [`Comm::trace_take`] record the exact sequence a rank executes, so
//! the model checker's per-rank programs are *generated from the
//! production code paths* rather than hand-transcribed — the model can
//! never drift from the implementation (DESIGN.md §12).
//!
//! The buffer-ledger reading of the ops: `TakeBuf` acquires one pooled
//! buffer; `Send` moves a held buffer into the in-flight message (the
//! receiver inherits the obligation); `Recv`/`RecvAny` acquire the
//! arriving message's buffer; `Recycle` returns a held buffer to the
//! pool; `Retire` passes a held buffer out of pool custody (the
//! `Vec`-returning receive shims). The nonblocking ops follow the same
//! ledger: `Isend` consumes a held buffer at post time exactly like
//! `Send`, and an `Irecv`'s buffer obligation materializes at its `Wait`
//! (which acquires the matched message's buffer, immediately recycled by
//! the runtime's copy-out). In every terminal state the checker requires
//! each rank's held count to be zero, `taken == recycled + retired`, and
//! every posted `Irecv` discharged by a `Wait` (no lost completions).
//!
//! [`Comm`]: crate::Comm
//! [`Comm::trace_start`]: crate::Comm::trace_start
//! [`Comm::trace_take`]: crate::Comm::trace_take

use std::fmt;

/// One communicator operation, as recorded by the trace shim and
/// replayed by the xtask protocol model checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// [`Comm::take_buffer`](crate::Comm::take_buffer): acquire one
    /// pooled buffer.
    TakeBuf,
    /// [`Comm::recycle_buffer`](crate::Comm::recycle_buffer): return one
    /// held buffer to the pool.
    Recycle,
    /// A message posted to rank `to` with `tag`, consuming one held
    /// buffer (all send variants funnel here).
    Send { to: usize, tag: u32 },
    /// A blocking source- and tag-selective receive completed.
    Recv { from: usize, tag: u32 },
    /// A blocking tag-selective FCFS receive from any source completed.
    RecvAny { tag: u32 },
    /// A received buffer handed out of pool custody (the `Vec`-returning
    /// receive shims).
    Retire,
    /// [`Comm::isend`](crate::Comm::isend) /
    /// [`Comm::isend_from`](crate::Comm::isend_from): a nonblocking send
    /// posted. The message is deposited *at post time* (consuming one
    /// held buffer, exactly like `Send`); only the sender's completion
    /// wait is deferred, which is a pure clock effect the model does not
    /// track. Waiting on a send request therefore records nothing.
    Isend { to: usize, tag: u32 },
    /// [`Comm::irecv_into`](crate::Comm::irecv_into): a nonblocking
    /// receive posted. Matching is deferred to the `Wait`, so this op is
    /// rank-local; the model counts it against the rank's outstanding
    /// requests so a dropped (never-waited) completion is detected.
    Irecv { from: usize, tag: u32 },
    /// [`Comm::wait`](crate::Comm::wait) completing a posted `Irecv`:
    /// matches the oldest in-flight `(from, tag)` message exactly like
    /// `Recv`, and discharges one outstanding request.
    Wait { from: usize, tag: u32 },
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceOp::TakeBuf => write!(f, "take_buf"),
            TraceOp::Recycle => write!(f, "recycle"),
            TraceOp::Send { to, tag } => write!(f, "send(to={to}, tag={tag:#x})"),
            TraceOp::Recv { from, tag } => write!(f, "recv(from={from}, tag={tag:#x})"),
            TraceOp::RecvAny { tag } => write!(f, "recv_any(tag={tag:#x})"),
            TraceOp::Retire => write!(f, "retire"),
            TraceOp::Isend { to, tag } => write!(f, "isend(to={to}, tag={tag:#x})"),
            TraceOp::Irecv { from, tag } => write!(f, "irecv(from={from}, tag={tag:#x})"),
            TraceOp::Wait { from, tag } => write!(f, "wait(from={from}, tag={tag:#x})"),
        }
    }
}

impl TraceOp {
    /// Whether this op is purely rank-local (no message-queue effect):
    /// the model checker folds local ops into the preceding scheduling
    /// point, since they commute with every other rank's ops. `Irecv` is
    /// local — posting a receive is invisible to other ranks; the
    /// blocking point is its `Wait`.
    pub fn is_local(&self) -> bool {
        matches!(
            self,
            TraceOp::TakeBuf | TraceOp::Recycle | TraceOp::Retire | TraceOp::Irecv { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, TimeCategory, VirtualCluster};

    #[test]
    fn roundtrip_records_balanced_ledger_ops() {
        let cfg = ClusterConfig::new(2);
        let traces = VirtualCluster::run(&cfg, |comm| {
            comm.trace_start();
            if comm.rank() == 0 {
                let mut buf = comm.take_buffer(4);
                buf.resize(4, 1.0);
                comm.send_from(1, crate::tags::SYNC_DATA, buf, TimeCategory::Other);
            } else {
                let mut out = Vec::new();
                comm.recv_into(0, crate::tags::SYNC_DATA, TimeCategory::Other, &mut out);
            }
            comm.trace_take()
        });
        assert_eq!(
            traces[0],
            vec![
                TraceOp::TakeBuf,
                TraceOp::Send {
                    to: 1,
                    tag: crate::tags::SYNC_DATA
                }
            ]
        );
        assert_eq!(
            traces[1],
            vec![
                TraceOp::Recv {
                    from: 0,
                    tag: crate::tags::SYNC_DATA
                },
                TraceOp::Recycle
            ]
        );
    }

    #[test]
    fn copying_send_and_vec_receive_record_take_and_retire() {
        let cfg = ClusterConfig::new(2);
        let traces = VirtualCluster::run(&cfg, |comm| {
            comm.trace_start();
            if comm.rank() == 0 {
                comm.send(1, crate::tags::SYNC_DATA, &[1.0, 2.0], TimeCategory::Other);
            } else {
                let (_, _data) = comm.recv_any(crate::tags::SYNC_DATA, TimeCategory::Other);
            }
            comm.trace_take()
        });
        // `send` copies into a pooled buffer: TakeBuf then Send.
        assert_eq!(
            traces[0],
            vec![
                TraceOp::TakeBuf,
                TraceOp::Send {
                    to: 1,
                    tag: crate::tags::SYNC_DATA
                }
            ]
        );
        // `recv_any` hands the buffer out of pool custody: Retire.
        assert_eq!(
            traces[1],
            vec![
                TraceOp::RecvAny {
                    tag: crate::tags::SYNC_DATA
                },
                TraceOp::Retire
            ]
        );
    }

    #[test]
    fn tracing_is_off_by_default_and_take_stops_it() {
        let cfg = ClusterConfig::new(2);
        let traces = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, crate::tags::SYNC_DATA, &[1.0], TimeCategory::Other);
                Vec::new()
            } else {
                comm.trace_start();
                let first = comm.trace_take();
                // After take, recording is off again.
                let _ = comm.recv(0, crate::tags::SYNC_DATA, TimeCategory::Other);
                assert!(comm.trace_take().is_empty());
                first
            }
        });
        assert!(traces[1].is_empty());
    }
}
