//! Deterministic pseudo-random numbers for reproducible experiments.
//!
//! The paper emphasizes that Sync EASGD is *deterministic and reproducible*
//! (§8) — a property asynchronous cloud methods lack. To honour that, every
//! stochastic choice in this workspace (weight init, batch sampling,
//! synthetic data generation) flows through this seeded generator rather
//! than a global RNG, so a run is a pure function of its seed.

/// xorshift128+ generator.
///
/// Small, fast and statistically adequate for ML experiments; crucially it
/// is fully deterministic across platforms.
#[derive(Clone, Debug)]
pub struct Rng {
    s0: u64,
    s1: u64,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 to expand the seed into two nonzero state words.
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s0 = next();
        let mut s1 = next();
        if s0 == 0 && s1 == 0 {
            s1 = 1;
        }
        Self {
            s0,
            s1,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut s1 = self.s0;
        let s0 = self.s1;
        let result = s0.wrapping_add(s1);
        self.s0 = s0;
        s1 ^= s1 << 23;
        self.s1 = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 high-quality bits → exactly representable in f32.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Rejection-free modulo is fine here: n is tiny relative to 2^64 so
        // the bias is far below experimental noise.
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * (u1 as f64).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2 as f64;
        self.spare_normal = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Fills a buffer with Xavier/Glorot-uniform values for a layer with
    /// the given fan-in and fan-out (Algorithm 1 line 2: “random and Xavier
    /// weight filling”).
    pub fn fill_xavier(&mut self, buf: &mut [f32], fan_in: usize, fan_out: usize) {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        for x in buf.iter_mut() {
            *x = self.uniform_in(-bound, bound);
        }
    }

    /// Fills a buffer with N(0, std²) values.
    pub fn fill_normal(&mut self, buf: &mut [f32], mean: f32, std: f32) {
        for x in buf.iter_mut() {
            *x = self.normal_with(mean, std);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent generator (for per-worker streams).
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = Rng::new(3);
        let n = 50_000;
        let mean: f32 = (0..n).map(|_| r.uniform()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Rng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn xavier_bound_respected() {
        let mut r = Rng::new(9);
        let mut buf = vec![0.0f32; 1000];
        r.fill_xavier(&mut buf, 100, 50);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(buf.iter().all(|x| x.abs() <= bound));
        // And it actually spreads out (not all zero / constant).
        let distinct = buf.iter().filter(|&&x| x != buf[0]).count();
        assert!(distinct > 900);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(13);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = Rng::new(21);
        let mut a = root.split();
        let mut b = root.split();
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
