#!/usr/bin/env bash
# Full local gate for the workspace. CI (.github/workflows/ci.yml) runs
# exactly this script; if it passes here, it passes there.
set -euo pipefail
cd "$(dirname "$0")/.."

# cargo silently ignores .cargo/config.toml's [build].rustflags when the
# RUSTFLAGS env var is set — dropping target-cpu=native/FMA and putting the
# GEMM microkernel on its documented ~20x non-FMA cliff. Warn, don't fail:
# results stay correct, only kernel benchmark numbers become meaningless.
if [[ -n "${RUSTFLAGS:-}" ]]; then
  echo "WARNING: RUSTFLAGS is set ('${RUSTFLAGS}'); .cargo/config.toml's" >&2
  echo "         target-cpu=native/FMA flags are being IGNORED — kernel bench" >&2
  echo "         numbers from this build are not comparable (see DESIGN.md §8.3)." >&2
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> easgd-xtask lint"
cargo run -q -p easgd-xtask -- lint

echo "==> golden-trace determinism suite (release, the recording profile)"
cargo test -q --release --test golden_traces

echo "==> easgd-xtask explore"
cargo run -q -p easgd-xtask -- explore

echo "==> easgd-xtask explore --protocol --smoke (full suite runs nightly in CI)"
cargo run -q -p easgd-xtask -- explore --protocol --smoke

echo "==> kernel perf harness (smoke: one iteration per bench, no JSON)"
cargo run -q --release -p easgd-bench --bin kernels -- --smoke

echo "==> comm perf harness (smoke + checked-in BENCH_comm.json acceptance)"
cargo run -q --release -p easgd-bench --bin comm -- --smoke

echo "==> train perf harness (smoke + checked-in BENCH_train.json acceptance)"
cargo run -q --release -p easgd-bench --bin train -- --smoke

echo "==> cluster harness on the event backend (smoke: P<=512 + checked-in BENCH_cluster.json acceptance; full P=8192 sweep runs nightly in CI)"
cargo run -q --release -p easgd-bench --bin cluster -- --smoke

echo "==> serve harness (smoke: short sweep + zero-alloc/bitwise gates + checked-in BENCH_serve.json acceptance; full latency sweep runs nightly in CI)"
cargo run -q --release -p easgd-bench --bin serve -- --smoke

echo "==> bench artifact schema check (every checked-in BENCH_*.json)"
cargo run -q --release -p easgd-bench --bin schema_check

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo test --workspace --features strict-invariants"
cargo test --workspace -q --features strict-invariants

# The explicit-SIMD GEMM microkernel compiles one of three tiers
# (avx512f+fma / avx2+fma / scalar) at build time; all three must stay
# bit-identical to gemm_serial. The native build above exercised the
# host's best tier — these legs rebuild the tensor crate with the
# portable fallbacks (separate target dirs so the caches don't thrash)
# and rerun its bit-identity suite, so the paths CI hardware doesn't
# default to cannot rot.
echo "==> SIMD tier bit-identity: scalar fallback (RUSTFLAGS='', no target-cpu=native)"
RUSTFLAGS="" CARGO_TARGET_DIR=target/scalar cargo test -q -p easgd-tensor

if [[ "$(uname -m)" == "x86_64" ]]; then
  echo "==> SIMD tier bit-identity: avx2+fma tier"
  RUSTFLAGS="-C target-feature=+avx2,+fma" CARGO_TARGET_DIR=target/avx2 cargo test -q -p easgd-tensor
fi

echo "==> all checks passed"
