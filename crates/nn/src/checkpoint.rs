//! Model checkpointing: save/load the packed parameter arena.
//!
//! A minimal self-describing binary format (magic, version, segment
//! registry, raw little-endian `f32` payload). Because the whole model
//! lives in one contiguous arena (§5.2), a checkpoint is one header plus
//! one flat write — the same property that makes it one network message.

use crate::network::Network;
use easgd_tensor::ParamArena;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"EASGDCP1";

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid checkpoint or does not match the model.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut impl Read) -> Result<String, CheckpointError> {
    let len = read_u64(r)? as usize;
    if len > 1 << 20 {
        return Err(CheckpointError::Format("unreasonable string length".into()));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| CheckpointError::Format("non-utf8 name".into()))
}

/// Writes an arena (names, offsets, data) to `path`.
pub fn save_arena(arena: &ParamArena, path: &Path) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u64(&mut w, arena.segments().len() as u64)?;
    for seg in arena.segments() {
        write_str(&mut w, &seg.name)?;
        write_u64(&mut w, seg.offset as u64)?;
        write_u64(&mut w, seg.len as u64)?;
    }
    write_u64(&mut w, arena.len() as u64)?;
    for &v in arena.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a checkpoint into an existing arena. The segment registry must
/// match exactly (names, offsets, lengths) — loading a LeNet checkpoint
/// into an AlexNet is an error, not a silent corruption.
pub fn load_arena(arena: &mut ParamArena, path: &Path) -> Result<(), CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let nseg = read_u64(&mut r)? as usize;
    if nseg != arena.segments().len() {
        return Err(CheckpointError::Format(format!(
            "segment count {} != model's {}",
            nseg,
            arena.segments().len()
        )));
    }
    for seg in arena.segments().to_vec() {
        let name = read_str(&mut r)?;
        let offset = read_u64(&mut r)? as usize;
        let len = read_u64(&mut r)? as usize;
        if name != seg.name || offset != seg.offset || len != seg.len {
            return Err(CheckpointError::Format(format!(
                "segment mismatch: file has {name}@{offset}+{len}, model has {}@{}+{}",
                seg.name, seg.offset, seg.len
            )));
        }
    }
    let total = read_u64(&mut r)? as usize;
    if total != arena.len() {
        return Err(CheckpointError::Format(format!(
            "element count {} != model's {}",
            total,
            arena.len()
        )));
    }
    let mut b = [0u8; 4];
    for v in arena.as_mut_slice() {
        r.read_exact(&mut b)?;
        *v = f32::from_le_bytes(b);
    }
    Ok(())
}

/// Saves a network's parameters.
pub fn save_network(net: &Network, path: &Path) -> Result<(), CheckpointError> {
    save_arena(net.params(), path)
}

/// Loads parameters into a network with an identical architecture.
pub fn load_network(net: &mut Network, path: &Path) -> Result<(), CheckpointError> {
    load_arena(net.params_mut(), path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{lenet_tiny, mlp};
    use easgd_tensor::Tensor;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("easgd_checkpoints");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_weights_exactly() {
        let net = lenet_tiny(1);
        let path = tmp("roundtrip.ckpt");
        save_network(&net, &path).unwrap();
        let mut restored = lenet_tiny(999); // different init
        assert_ne!(restored.params().as_slice(), net.params().as_slice());
        load_network(&mut restored, &path).unwrap();
        assert_eq!(restored.params().as_slice(), net.params().as_slice());
    }

    #[test]
    fn restored_network_predicts_identically() {
        let mut net = lenet_tiny(2);
        let path = tmp("predict.ckpt");
        save_network(&net, &path).unwrap();
        let mut restored = lenet_tiny(3);
        load_network(&mut restored, &path).unwrap();
        let x = Tensor::full([2, 1, 12, 12], 0.3);
        assert_eq!(
            net.forward(&x, false).as_slice(),
            restored.forward(&x, false).as_slice()
        );
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let net = lenet_tiny(4);
        let path = tmp("mismatch.ckpt");
        save_network(&net, &path).unwrap();
        let mut other = mlp(10, &[5], 2, 5);
        let err = load_network(&mut other, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_corrupt_magic() {
        let path = tmp("corrupt.ckpt");
        std::fs::write(&path, b"NOTACKPTxxxxxxxxxxxx").unwrap();
        let mut net = lenet_tiny(6);
        assert!(matches!(
            load_network(&mut net, &path),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncated_payload() {
        let net = lenet_tiny(7);
        let path = tmp("truncated.ckpt");
        save_network(&net, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let mut restored = lenet_tiny(8);
        assert!(matches!(
            load_network(&mut restored, &path),
            Err(CheckpointError::Io(_))
        ));
    }
}
