// xtask: allow(wall-clock) — wall-clock trainer/driver: measures real elapsed time by design.
//! The synchronous family on the simulated cluster: Sync EASGD1/2/3
//! (Algorithms 2–4, §6.1) and Sync SGD (the allreduce baseline used by
//! Figure 10 and the weak-scaling comparisons).
//!
//! The three-step optimization story of §6.1, charged explicitly:
//!
//! 1. **Sync EASGD1** — replace the round-robin exchange with a tree
//!    broadcast + tree reduction rooted at the *CPU*; packed (§5.2)
//!    pinned transfers. `P(α+|W|β) → log P(α+|W|β)`.
//! 2. **Sync EASGD2** — move the center weight to GPU1: parameter
//!    traffic becomes GPU↔GPU peer transfers; the CPU only ships batch
//!    data.
//! 3. **Sync EASGD3** — overlap the broadcast with the data-copy +
//!    forward/backward critical path (steps 7–10 vs 11–12 of
//!    Algorithm 3); only the non-hidden residual is charged.

use crate::config::TrainConfig;
use crate::engine::{
    additive_rng, assemble_sim, ElasticRule, LocalStep, RankOutcome, TraceRecorder,
};
use crate::metrics::RunResult;
use crate::simcost::SimCosts;
use easgd_cluster::collectives::{tree_broadcast_among, tree_reduce_sum_among, TreeRole};
use easgd_cluster::{
    tags, BatchMsg, ClusterConfig, Comm, Request, RequestCollection, TimeCategory, VirtualCluster,
};
use easgd_data::Dataset;
use easgd_hardware::net::AlphaBeta;
use easgd_nn::{CommSchedule, LayoutKind, Network};
use std::time::Instant;

/// Which Sync EASGD implementation stage to run (§6.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SyncVariant {
    /// Tree collectives rooted at the CPU (Algorithm 2).
    Easgd1,
    /// Center weight on GPU1 (Algorithm 3).
    Easgd2,
    /// EASGD2 + communication/computation overlap ("Communication
    /// Efficient EASGD", Algorithm 4's schedule).
    Easgd3,
}

impl SyncVariant {
    fn label(&self) -> &'static str {
        match self {
            SyncVariant::Easgd1 => "Sync EASGD1",
            SyncVariant::Easgd2 => "Sync EASGD2",
            SyncVariant::Easgd3 => "Sync EASGD3",
        }
    }
}

/// How the Sync EASGD exchange step moves data (§6.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SyncExchange {
    /// Gate-synchronized collectives charged at the Table 3 closed-form
    /// prices — the default, pinned by the golden-trace suite.
    Priced,
    /// Executable binomial-tree broadcast/reduce over the point-to-point
    /// layer ([`easgd_cluster::collectives`]): simulated time emerges
    /// from per-message α-β accounting instead of a formula, so the
    /// priced timeline and the running schedule share one tree.
    ExecutableTree,
    /// [`SyncExchange::ExecutableTree`] cut into `segments` arena
    /// segments and driven through the nonblocking request-handle API
    /// ([`tree_exchange_pipelined`]): the broadcast and reduce of
    /// segment `k` hide under the compute slice of segment `k+1`.
    /// Numerically bit-identical to the serial executable tree — only
    /// the simulated timeline changes.
    PipelinedTree {
        /// How many segments the parameter arena is cut into (1..=256).
        segments: usize,
    },
}

/// One executable-tree exchange round — the exact comm structure the
/// Sync EASGD trainer runs per iteration under
/// [`SyncExchange::ExecutableTree`]: tree-broadcast the center from
/// `center_rank` into `center_t`, let `contribute` build this rank's
/// reduce input in `weight_sum`, then tree-reduce the sum back to
/// `center_rank`.
///
/// Extracted so the xtask protocol model checker can record the *same*
/// production code path it verifies (DESIGN.md §12) instead of a
/// hand-transcribed copy.
#[allow(clippy::too_many_arguments)]
pub fn tree_exchange_round<F>(
    comm: &mut Comm,
    participants: &[usize],
    center_rank: usize,
    center: &[f32],
    center_t: &mut Vec<f32>,
    weight_sum: &mut Vec<f32>,
    category: TimeCategory,
    contribute: F,
) where
    F: FnOnce(&[f32], &mut Vec<f32>),
{
    center_t.clear();
    if comm.rank() == center_rank {
        center_t.extend_from_slice(center);
    }
    tree_broadcast_among(comm, participants, center_rank, center_t, category);
    contribute(center_t, weight_sum);
    tree_reduce_sum_among(comm, participants, center_rank, weight_sum, category);
}

/// Element range of segment `s` when `n` elements are cut into
/// `segments` nearly equal pieces (both exchange directions use this, so
/// the partition is identical on every rank).
fn seg_bounds(n: usize, segments: usize, s: usize) -> std::ops::Range<usize> {
    (n * s / segments)..(n * (s + 1) / segments)
}

/// The pipelined form of [`tree_exchange_round`] — the same binomial
/// tree ([`TreeRole`]) walked segment by segment through the
/// nonblocking request-handle API (DESIGN.md §13):
///
/// * the root injects every broadcast segment up front
///   (segment-major `isend`s, children in the serial fan-out order);
/// * every other participant pre-posts one pooled `irecv_into` per
///   segment;
/// * compute loop, per segment `s`: one compute slice is charged via
///   `compute_slice` (the §6.1 overlap window), the broadcast segment
///   is awaited, copied into `center_t`, and forwarded down the tree;
///   the local reduce contribution is built by `contribute_segment`;
///   leaves stream their partial straight up with an `isend`;
/// * reduce loop, per segment `s`: interior ranks fold their children's
///   partials in the serial (mask-ascending) order and push the result
///   to their parent. Folding *after* the compute loop matters: a
///   child's partial necessarily trails the pipeline skew, and blocking
///   on it between compute slices would feed that skew back into the
///   next broadcast forward, compounding once per segment;
/// * the round ends with one `wait_all` over every posted send, which
///   settles the residual (non-hidden) NIC time.
///
/// Segment boundaries partition the arena and the per-element fold
/// order equals the serial round's, so the numeric result is
/// **bit-identical** to [`tree_exchange_round`] — only the simulated
/// timeline differs: traffic hides under the sliced compute instead of
/// following it. All scratch is pooled; steady-state rounds allocate
/// nothing.
#[allow(clippy::too_many_arguments)]
pub fn tree_exchange_pipelined<C, F>(
    comm: &mut Comm,
    participants: &[usize],
    center_rank: usize,
    center: &[f32],
    center_t: &mut [f32],
    weight_sum: &mut [f32],
    category: TimeCategory,
    segments: usize,
    mut compute_slice: C,
    mut contribute_segment: F,
) where
    C: FnMut(&mut Comm, usize),
    F: FnMut(std::ops::Range<usize>, &[f32], &mut [f32]),
{
    let n = center_t.len();
    assert_eq!(weight_sum.len(), n, "weight_sum/center_t length mismatch");
    assert!(
        (1..=n.min(256)).contains(&segments),
        "segment count {segments} outside 1..={} (arena {n}, tag range 256)",
        n.min(256)
    );
    let me = comm.rank();
    let role = TreeRole::compute(participants, center_rank, me);
    let mut sends = RequestCollection::new();

    // Post phase: the root injects the whole broadcast; everyone else
    // pre-posts the matching receives into pooled buffers.
    let mut bcast_reqs: Vec<Request> = Vec::with_capacity(segments);
    if me == center_rank {
        assert_eq!(center.len(), n, "center/center_t length mismatch");
        center_t.copy_from_slice(center);
        for s in 0..segments {
            let r = seg_bounds(n, segments, s);
            for &(child, mask) in &role.children {
                sends.push(comm.isend(
                    child,
                    tags::seg_tree(s, tags::SEG_PHASE_BCAST, mask),
                    &center_t[r.clone()],
                    category,
                ));
            }
        }
    } else if let Some((parent, mask)) = role.parent {
        for s in 0..segments {
            let r = seg_bounds(n, segments, s);
            let buf = comm.take_buffer(r.len());
            bcast_reqs.push(comm.irecv_into(
                parent,
                tags::seg_tree(s, tags::SEG_PHASE_BCAST, mask),
                category,
                buf,
            ));
        }
    } else {
        unreachable!("non-root participant has a tree parent");
    }

    let mut reduce_buf =
        (!role.children.is_empty()).then(|| comm.take_buffer(seg_bounds(n, segments, 0).len()));
    for s in 0..segments {
        let r = seg_bounds(n, segments, s);
        // The overlap window: segment s's traffic is in flight while
        // this slice of forward/backward is on the clock.
        compute_slice(comm, s);
        if me != center_rank {
            let Some(req) = bcast_reqs.get_mut(s) else {
                unreachable!("one pre-posted irecv per segment");
            };
            let Some(buf) = comm.wait(req) else {
                unreachable!("waiting a posted irecv yields its buffer");
            };
            assert_eq!(buf.len(), r.len(), "broadcast segment length mismatch");
            center_t[r.clone()].copy_from_slice(&buf);
            comm.recycle_buffer(buf);
            for &(child, mask) in &role.children {
                sends.push(comm.isend(
                    child,
                    tags::seg_tree(s, tags::SEG_PHASE_BCAST, mask),
                    &center_t[r.clone()],
                    category,
                ));
            }
        }
        contribute_segment(r.clone(), &center_t[r.clone()], &mut weight_sum[r.clone()]);
        // A leaf's partial is just its contribution — stream it up
        // immediately so it rides under the remaining compute slices.
        if role.children.is_empty() {
            if let Some((parent, mask)) = role.parent {
                sends.push(comm.isend(
                    parent,
                    tags::seg_tree(s, tags::SEG_PHASE_REDUCE, mask),
                    &weight_sum[r.clone()],
                    category,
                ));
            }
        }
    }
    // Reduce loop (interior ranks): fold children in the serial
    // (mask-ascending) order — the reverse of the broadcast fan-out
    // list — and climb.
    if let Some(buf) = reduce_buf.as_mut() {
        for s in 0..segments {
            let r = seg_bounds(n, segments, s);
            for &(child, mask) in role.children.iter().rev() {
                comm.recv_into(
                    child,
                    tags::seg_tree(s, tags::SEG_PHASE_REDUCE, mask),
                    category,
                    buf,
                );
                assert_eq!(buf.len(), r.len(), "reduce segment length mismatch");
                for (d, v) in weight_sum[r.clone()].iter_mut().zip(buf.iter()) {
                    *d += v;
                }
            }
            if let Some((parent, mask)) = role.parent {
                sends.push(comm.isend(
                    parent,
                    tags::seg_tree(s, tags::SEG_PHASE_REDUCE, mask),
                    &weight_sum[r.clone()],
                    category,
                ));
            }
        }
    }
    if let Some(buf) = reduce_buf {
        comm.recycle_buffer(buf);
    }
    comm.wait_all(&mut sends);
}

/// Runs Sync EASGD (variant per `variant`) on a simulated
/// `cfg.workers`-GPU node. `cfg.iterations` bulk-synchronous rounds; in
/// each round every GPU computes one batch gradient. When
/// `trace_every > 0`, test accuracy is recorded on the simulated
/// timeline every that many rounds (evaluation itself is off-clock).
pub fn sync_easgd_sim(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    costs: &SimCosts,
    variant: SyncVariant,
    trace_every: usize,
) -> RunResult {
    sync_easgd_sim_with(
        proto,
        train,
        test,
        cfg,
        costs,
        variant,
        trace_every,
        SyncExchange::Priced,
    )
}

/// [`sync_easgd_sim`] with an explicit exchange implementation.
#[allow(clippy::too_many_arguments)]
pub fn sync_easgd_sim_with(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    costs: &SimCosts,
    variant: SyncVariant,
    trace_every: usize,
    exchange: SyncExchange,
) -> RunResult {
    cfg.validate();
    let g = cfg.workers;
    let cluster = match exchange {
        SyncExchange::Priced => ClusterConfig::new(g + 1),
        // The executable tree's messages traverse the variant's dominant
        // link: host↔device packed transfers for EASGD1 (CPU-rooted),
        // GPU peer links otherwise.
        SyncExchange::ExecutableTree | SyncExchange::PipelinedTree { .. } => {
            ClusterConfig::new(g + 1).with_link(match variant {
                SyncVariant::Easgd1 => costs.cpu_gpu_packed.clone(),
                _ => costs.gpu_gpu.clone(),
            })
        }
    };
    // Under the pipelined exchange, participants charge their
    // forward/backward window in per-segment slices inside the exchange
    // (the §6.1 overlap); everyone else charges it at the serial
    // program point.
    let pipelined_segments = match exchange {
        SyncExchange::PipelinedTree { segments } => Some(segments),
        _ => None,
    };
    // Collective participants for the executable tree: EASGD1 roots the
    // tree at the CPU (which contributes zeros to the reduce); EASGD2/3
    // keep parameter traffic entirely on the GPU set.
    let participants: Vec<usize> = match variant {
        SyncVariant::Easgd1 => (0..=g).collect(),
        _ => (1..=g).collect(),
    };
    let rule = ElasticRule::from_config(cfg);
    let center_rank = match variant {
        SyncVariant::Easgd1 => 0,
        _ => 1,
    };
    // Collective pricing per variant (see module docs).
    let (coll_cost, coll_cat) = match variant {
        SyncVariant::Easgd1 => (
            costs.tree_collective_time(&costs.cpu_gpu_packed, g + 1),
            TimeCategory::CpuGpuParam,
        ),
        _ => (
            costs.tree_collective_time(&costs.gpu_gpu, g),
            TimeCategory::GpuGpuParam,
        ),
    };
    // EASGD3 hides the broadcast under the data + forward/backward path.
    let bcast_cost = match variant {
        SyncVariant::Easgd3 => (coll_cost - costs.fwd_bwd - costs.data_time()).max(0.0),
        _ => coll_cost,
    };
    let reduce_cost = coll_cost;
    let wall_start = Instant::now();

    let outs = VirtualCluster::run(&cluster, |comm: &mut Comm| {
        let me = comm.rank();
        let mut rng = additive_rng(cfg.seed, me as u64);
        let mut center = proto.params().as_slice().to_vec();
        let n = center.len();
        // Rank 0 is the data-feeding CPU; GPUs carry a network replica.
        let mut local = (me != 0).then(|| LocalStep::new(proto));
        let mut recorder = TraceRecorder::new(trace_every);
        let is_participant = participants.contains(&me);
        // Per-round scratch, allocated once: the exchange step itself is
        // zero-allocation in steady state.
        let mut center_t = vec![0.0f32; n];
        let mut contribution = vec![0.0f32; n];
        let mut weight_sum = vec![0.0f32; n];
        let mut payload = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        let (update_cat, update_cost) = match variant {
            SyncVariant::Easgd1 => (TimeCategory::CpuUpdate, costs.cpu_update),
            _ => (TimeCategory::GpuUpdate, costs.gpu_update),
        };
        for round in 0..cfg.iterations {
            // --- data path: CPU ships one batch per GPU; the copies are
            // issued asynchronously and overlap, so one is charged.
            match local.as_mut() {
                None => {
                    for j in 1..=g {
                        let batch = train.sample_batch(&mut rng, cfg.batch);
                        let pixels = batch.images.as_slice();
                        let mut buf = comm.take_buffer(3 + batch.labels.len() + pixels.len());
                        BatchMsg::encode_into(pixels, &batch.labels, &mut buf);
                        let cost = if j == 1 { costs.data_time() } else { 0.0 };
                        comm.send_from_costed(
                            j,
                            tags::SYNC_DATA,
                            buf,
                            cost,
                            TimeCategory::CpuGpuData,
                        );
                    }
                    // The CPU waits out the GPUs' compute phase (Table 3
                    // attributes that window to for/backward); a
                    // pipelined participant charges it in slices below.
                    if !(is_participant && pipelined_segments.is_some()) {
                        comm.charge(TimeCategory::ForwardBackward, costs.fwd_bwd);
                    }
                }
                Some(local) => {
                    comm.recv_into(0, tags::SYNC_DATA, TimeCategory::Other, &mut payload);
                    let pixels = match BatchMsg::decode_into(&payload, cfg.batch, &mut labels) {
                        Ok(x) => x,
                        Err(e) => panic!("batch codec (rank {me}): {e}"),
                    };
                    local.forward_backward_flat(cfg.batch, pixels, &labels);
                    if pipelined_segments.is_none() {
                        comm.charge(TimeCategory::ForwardBackward, costs.fwd_bwd);
                    }
                }
            }
            match exchange {
                SyncExchange::Priced => {
                    // --- step (2): broadcast W̄_t from the center holder.
                    let cat = if me == 0 && center_rank != 0 {
                        TimeCategory::Other
                    } else {
                        coll_cat
                    };
                    comm.broadcast_costed_into(
                        center_rank,
                        &center,
                        bcast_cost,
                        cat,
                        &mut center_t,
                    );
                    // --- steps (3)+(4) fused: publish W_i into the reduce
                    // input and apply Equation (1) against W̄_t in one
                    // sweep (the CPU's contribution stays all-zero). The
                    // GpuUpdate charge stays at its original program point
                    // below, so the timeline is unchanged.
                    if let Some(local) = local.as_mut() {
                        local.elastic_exchange_against(&rule, &center_t, &mut contribution);
                    }
                    comm.reduce_sum_costed_into(&contribution, reduce_cost, cat, &mut weight_sum);
                    // --- step (5): center update, Equation (2) with the
                    // full sum.
                    if me == center_rank {
                        rule.center_dilution(&mut center, &weight_sum, g);
                        comm.charge(update_cat, update_cost);
                    } else {
                        // Keep non-center replicas of W̄ in sync for the
                        // next broadcast (only the center holder's copy is
                        // ever used, but the state must not diverge).
                        rule.center_dilution_from(&center_t, &weight_sum, g, &mut center);
                    }
                    if local.is_some() {
                        comm.charge(TimeCategory::GpuUpdate, costs.gpu_update);
                    }
                }
                SyncExchange::ExecutableTree => {
                    if is_participant {
                        // --- steps (2)-(4): executable tree broadcast of
                        // W̄_t, then the reduce input built in place by the
                        // contribute closure (the EASGD1 CPU contributes
                        // zeros) and tree-reduced back to the root.
                        let local = &mut local;
                        tree_exchange_round(
                            comm,
                            &participants,
                            center_rank,
                            &center,
                            &mut center_t,
                            &mut weight_sum,
                            coll_cat,
                            |center_t, weight_sum| match local.as_mut() {
                                Some(local) => {
                                    local.elastic_exchange_against(&rule, center_t, weight_sum)
                                }
                                None => weight_sum.fill(0.0),
                            },
                        );
                        // --- step (5): only the tree root holds Σ W_i;
                        // the others receive next round's W̄ by broadcast.
                        if me == center_rank {
                            rule.center_dilution(&mut center, &weight_sum, g);
                            comm.charge(update_cat, update_cost);
                        }
                        if local.is_some() {
                            comm.charge(TimeCategory::GpuUpdate, costs.gpu_update);
                        }
                    }
                }
                SyncExchange::PipelinedTree { segments } => {
                    if is_participant {
                        // The same tree round, segment-pipelined: each
                        // compute slice hides the in-flight segment
                        // traffic (the overlap EASGD3 prices, now
                        // emerging from the executable schedule).
                        let slice_cost = costs.fwd_bwd / segments as f64;
                        let local = &mut local;
                        tree_exchange_pipelined(
                            comm,
                            &participants,
                            center_rank,
                            &center,
                            &mut center_t,
                            &mut weight_sum,
                            coll_cat,
                            segments,
                            |comm: &mut Comm, _s| {
                                comm.charge(TimeCategory::ForwardBackward, slice_cost)
                            },
                            |range, center_seg, sum_seg| match local.as_mut() {
                                Some(local) => local
                                    .elastic_exchange_segment(&rule, range, center_seg, sum_seg),
                                None => sum_seg.fill(0.0),
                            },
                        );
                        if me == center_rank {
                            rule.center_dilution(&mut center, &weight_sum, g);
                            comm.charge(update_cat, update_cost);
                        }
                        if local.is_some() {
                            comm.charge(TimeCategory::GpuUpdate, costs.gpu_update);
                        }
                    }
                }
            }
            if me == center_rank && recorder.due(round) {
                let now = comm.now();
                recorder.record(round, now, proto, &center, test);
            }
        }
        let (last_loss, loss_trace) = match local {
            Some(mut l) => (l.last_loss(), l.take_loss_trace()),
            None => (f32::NAN, Vec::new()),
        };
        if me == center_rank {
            RankOutcome::Center {
                center,
                report: comm.report(),
                trace: recorder.into_points(),
                loss_trace,
            }
        } else {
            RankOutcome::Worker {
                report: Some(comm.report()),
                last_loss,
                loss_trace,
            }
        }
    });

    assemble_sim(
        variant.label(),
        proto,
        test,
        cfg.iterations,
        wall_start.elapsed().as_secs_f64(),
        outs,
    )
}

/// Sync SGD: plain data-parallel SGD with a summed-gradient exchange —
/// the Figure 10 workhorse and the "well-tuned framework" stand-in for
/// the Intel Caffe baseline. Runs directly on cluster ranks (each worker
/// owns a shard), with the gradient allreduce priced as
/// `2·⌈log₂P⌉` tree hops over the given `link`, under either parameter
/// layout of §5.2.
///
/// `shards.len()` must equal `cfg.workers`. With `trace_every > 0` the
/// rank-0 worker records test accuracy on the simulated timeline.
#[allow(clippy::too_many_arguments)]
pub fn sync_sgd_sim(
    proto: &Network,
    shards: &[Dataset],
    test: &Dataset,
    cfg: &TrainConfig,
    link: &AlphaBeta,
    layout: LayoutKind,
    fwd_bwd_cost: f64,
    trace_every: usize,
) -> RunResult {
    cfg.validate();
    assert_eq!(shards.len(), cfg.workers, "one shard per worker required");
    let g = cfg.workers;
    let cluster = ClusterConfig::new(g);
    let schedule = CommSchedule::from_network(proto, layout);
    // Tree reduce + tree broadcast of the whole schedule per round.
    let hops = 2.0 * easgd_hardware::collective::ceil_log2(g) as f64;
    let allreduce_cost = hops * schedule.time_alpha_beta(link.alpha_s, link.beta_s_per_byte);
    let update_cost = 3.0 * proto.size_bytes() as f64 / 200.0e9;
    let wall_start = Instant::now();

    let outs = VirtualCluster::run(&cluster, |comm: &mut Comm| {
        let me = comm.rank();
        let shard = &shards[me];
        let mut rng = additive_rng(cfg.seed, 1 + me as u64);
        let mut local = LocalStep::new(proto);
        let scale = cfg.eta / g as f32;
        let mut recorder = TraceRecorder::new(trace_every);
        let mut grad_sum = Vec::with_capacity(local.num_params());
        for round in 0..cfg.iterations {
            let batch = shard.sample_batch(&mut rng, cfg.batch);
            local.forward_backward(&batch);
            comm.charge(TimeCategory::ForwardBackward, fwd_bwd_cost);
            comm.reduce_sum_costed_into(
                local.grad(),
                allreduce_cost,
                TimeCategory::GpuGpuParam,
                &mut grad_sum,
            );
            easgd_tensor::ops::axpy(-scale, &grad_sum, local.params_mut());
            comm.charge(TimeCategory::GpuUpdate, update_cost);
            if me == 0 && recorder.due(round) {
                let now = comm.now();
                recorder.record(round, now, proto, local.params(), test);
            }
        }
        let last_loss = local.last_loss();
        let loss_trace = local.take_loss_trace();
        if me == 0 {
            RankOutcome::Center {
                center: local.params().to_vec(),
                report: comm.report(),
                trace: recorder.into_points(),
                loss_trace,
            }
        } else {
            RankOutcome::Worker {
                report: Some(comm.report()),
                last_loss,
                loss_trace,
            }
        }
    });

    let label = match layout {
        LayoutKind::Packed => "Sync SGD (packed)",
        LayoutKind::PerLayer => "Sync SGD (per-layer)",
    };
    assemble_sim(
        label,
        proto,
        test,
        cfg.iterations,
        wall_start.elapsed().as_secs_f64(),
        outs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(71);
        let (train, test) = task.train_test(600, 200, 72);
        (lenet_tiny(73), train, test)
    }

    fn cfg(iters: usize) -> TrainConfig {
        TrainConfig {
            workers: 4,
            batch: 16,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations: iters,
            seed: 81,
            comm_period: 1,
        }
    }

    #[test]
    fn easgd1_learns_and_breaks_down_time() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let r = sync_easgd_sim(
            &proto,
            &train,
            &test,
            &cfg(60),
            &costs,
            SyncVariant::Easgd1,
            0,
        );
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
        let b = r.breakdown.unwrap();
        assert!(b.get(TimeCategory::CpuGpuParam) > 0.0);
        assert!(b.get(TimeCategory::CpuUpdate) > 0.0);
        assert_eq!(b.get(TimeCategory::GpuGpuParam), 0.0);
    }

    #[test]
    fn easgd2_moves_traffic_to_gpu_links() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let r = sync_easgd_sim(
            &proto,
            &train,
            &test,
            &cfg(20),
            &costs,
            SyncVariant::Easgd2,
            0,
        );
        let b = r.breakdown.unwrap();
        assert_eq!(b.get(TimeCategory::CpuGpuParam), 0.0);
        assert!(b.get(TimeCategory::GpuGpuParam) > 0.0);
        assert_eq!(b.get(TimeCategory::CpuUpdate), 0.0);
    }

    #[test]
    fn optimization_chain_strictly_improves() {
        // §6.1: EASGD1 → EASGD2 → EASGD3 each step is faster.
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(20);
        let t1 = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd1, 0)
            .sim_seconds
            .unwrap();
        let t2 = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd2, 0)
            .sim_seconds
            .unwrap();
        let t3 = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd3, 0)
            .sim_seconds
            .unwrap();
        assert!(t1 > t2, "EASGD1 {t1} !> EASGD2 {t2}");
        assert!(t2 > t3, "EASGD2 {t2} !> EASGD3 {t3}");
    }

    #[test]
    fn easgd3_comm_ratio_is_low() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let r = sync_easgd_sim(
            &proto,
            &train,
            &test,
            &cfg(20),
            &costs,
            SyncVariant::Easgd3,
            0,
        );
        let ratio = r.breakdown.unwrap().comm_ratio();
        // Paper: 14%. Anything clearly compute-bound passes.
        assert!(ratio < 0.3, "comm ratio = {ratio}");
    }

    #[test]
    fn trace_records_on_simulated_timeline() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let r = sync_easgd_sim(
            &proto,
            &train,
            &test,
            &cfg(30),
            &costs,
            SyncVariant::Easgd3,
            10,
        );
        assert_eq!(r.trace.len(), 3);
        assert!(r.trace[0].seconds < r.trace[2].seconds);
        assert_eq!(r.trace[2].iteration, 30);
    }

    #[test]
    fn sync_sgd_packed_beats_per_layer_in_time_same_accuracy_per_iteration() {
        // Figure 10: identical heights (same updates), different time axis.
        let (proto, train, test) = setup();
        let c = cfg(40);
        let shards = train.partition(c.workers);
        let link = AlphaBeta::qdr_infiniband();
        let packed = sync_sgd_sim(
            &proto,
            &shards,
            &test,
            &c,
            &link,
            LayoutKind::Packed,
            1e-3,
            0,
        );
        let unpacked = sync_sgd_sim(
            &proto,
            &shards,
            &test,
            &c,
            &link,
            LayoutKind::PerLayer,
            1e-3,
            0,
        );
        // Same gradients, same final weights → identical accuracy.
        assert_eq!(packed.accuracy, unpacked.accuracy);
        assert!(packed.sim_seconds.unwrap() < unpacked.sim_seconds.unwrap());
    }

    #[test]
    fn sync_sgd_learns() {
        let (proto, train, test) = setup();
        let c = cfg(80);
        let shards = train.partition(c.workers);
        let link = AlphaBeta::fdr_infiniband();
        let r = sync_sgd_sim(
            &proto,
            &shards,
            &test,
            &c,
            &link,
            LayoutKind::Packed,
            1e-3,
            0,
        );
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn executable_tree_exchange_learns() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let r = sync_easgd_sim_with(
            &proto,
            &train,
            &test,
            &cfg(60),
            &costs,
            SyncVariant::Easgd2,
            0,
            SyncExchange::ExecutableTree,
        );
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
        let b = r.breakdown.unwrap();
        assert!(b.get(TimeCategory::GpuGpuParam) > 0.0);
        assert_eq!(b.get(TimeCategory::CpuGpuParam), 0.0);
    }

    #[test]
    fn executable_tree_agrees_with_priced_path_on_learning() {
        // Same schedule, different reduction order (pairwise tree vs the
        // gate's rank-ordered fold): accuracies must land close.
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(40);
        let priced = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd2, 0);
        let exec = sync_easgd_sim_with(
            &proto,
            &train,
            &test,
            &c,
            &costs,
            SyncVariant::Easgd2,
            0,
            SyncExchange::ExecutableTree,
        );
        assert!(
            (priced.accuracy - exec.accuracy).abs() < 0.15,
            "priced {} vs executable {}",
            priced.accuracy,
            exec.accuracy
        );
    }

    #[test]
    fn executable_easgd1_pays_the_extra_tree_hop() {
        // EASGD1's tree spans G+1 ranks (CPU root) while EASGD2's spans G
        // over an identically-priced link, so the executable EASGD1
        // exchange cannot be faster.
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(15);
        let t1 = sync_easgd_sim_with(
            &proto,
            &train,
            &test,
            &c,
            &costs,
            SyncVariant::Easgd1,
            0,
            SyncExchange::ExecutableTree,
        )
        .sim_seconds
        .unwrap();
        let t2 = sync_easgd_sim_with(
            &proto,
            &train,
            &test,
            &c,
            &costs,
            SyncVariant::Easgd2,
            0,
            SyncExchange::ExecutableTree,
        )
        .sim_seconds
        .unwrap();
        assert!(t1 > t2, "EASGD1 {t1} !> EASGD2 {t2} (executable)");
    }

    #[test]
    fn pipelined_tree_is_bit_identical_to_serial_executable_tree() {
        // The pipelined exchange reorders the timeline, not the math:
        // center hash, loss trace, and accuracy must match the serial
        // executable tree bit for bit, for a segment count that divides
        // the arena unevenly.
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(40);
        for variant in [SyncVariant::Easgd3, SyncVariant::Easgd1] {
            let serial = sync_easgd_sim_with(
                &proto,
                &train,
                &test,
                &c,
                &costs,
                variant,
                0,
                SyncExchange::ExecutableTree,
            );
            let pipe = sync_easgd_sim_with(
                &proto,
                &train,
                &test,
                &c,
                &costs,
                variant,
                0,
                SyncExchange::PipelinedTree { segments: 7 },
            );
            assert_eq!(serial.center_hash, pipe.center_hash, "{variant:?}");
            assert_eq!(serial.accuracy, pipe.accuracy, "{variant:?}");
            assert_eq!(serial.loss_trace.len(), pipe.loss_trace.len());
            for (a, b) in serial.loss_trace.iter().zip(&pipe.loss_trace) {
                assert_eq!(a.to_bits(), b.to_bits(), "{variant:?}");
            }
        }
    }

    #[test]
    fn pipelined_tree_hides_exchange_time() {
        // Same schedule, same math — on a bandwidth-dominated arena the
        // pipelined round's simulated time must come in under the serial
        // executable tree's, because segment traffic hides beneath the
        // sliced compute window. (At toy-model sizes the per-segment α
        // overhead wins instead, which is why the bench runs VGG-sized.)
        let p = 8;
        let n = 1_000_000; // 4 MB: β-dominated on the GPU peer link.
        let segments = 8;
        let link = SimCosts::mnist_lenet_4gpu().gpu_gpu.clone();
        let participants: Vec<usize> = (0..p).collect();
        // A compute window comparable to the serial exchange itself.
        let compute = 6.0 * link.time(n * 4);
        let run = |pipelined: bool| {
            let cluster = ClusterConfig::new(p).with_link(link.clone());
            let times = VirtualCluster::run(&cluster, |comm: &mut Comm| {
                let center = vec![1.0f32; n];
                let mut center_t = vec![0.0f32; n];
                let mut weight_sum = vec![0.0f32; n];
                for _round in 0..2 {
                    if pipelined {
                        tree_exchange_pipelined(
                            comm,
                            &participants,
                            0,
                            &center,
                            &mut center_t,
                            &mut weight_sum,
                            TimeCategory::GpuGpuParam,
                            segments,
                            |comm: &mut Comm, _s| {
                                comm.charge(
                                    TimeCategory::ForwardBackward,
                                    compute / segments as f64,
                                )
                            },
                            |_range, center_seg, sum_seg: &mut [f32]| {
                                sum_seg.copy_from_slice(center_seg)
                            },
                        );
                    } else {
                        comm.charge(TimeCategory::ForwardBackward, compute);
                        tree_exchange_round(
                            comm,
                            &participants,
                            0,
                            &center,
                            &mut center_t,
                            &mut weight_sum,
                            TimeCategory::GpuGpuParam,
                            |center_t, weight_sum| {
                                weight_sum.resize(center_t.len(), 0.0);
                                weight_sum.copy_from_slice(center_t);
                            },
                        );
                    }
                }
                comm.now()
            });
            times.iter().cloned().fold(0.0f64, f64::max)
        };
        let serial = run(false);
        let pipe = run(true);
        assert!(pipe < serial, "pipelined {pipe} !< serial {serial}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(15);
        let a = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd3, 0);
        let b = sync_easgd_sim(&proto, &train, &test, &c, &costs, SyncVariant::Easgd3, 0);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.center_hash, b.center_hash);
    }
}
