//! Validates every checked-in `BENCH_*.json` against the pinned
//! registry in [`easgd_bench::schema`].
//!
//! ```text
//! cargo run --release -p easgd-bench --bin schema_check            # repo root
//! cargo run --release -p easgd-bench --bin schema_check -- --root p
//! ```
//!
//! Runs in every smoke leg of `scripts/check.sh`: a bench refactor that
//! renames an acceptance key, drops a file, or emits a truncated
//! artifact fails the per-push gate here, not at the next full bench
//! regeneration.

use easgd_bench::{arg_value, schema};
use std::path::PathBuf;

fn main() {
    let root = arg_value("--root")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));
    let errors = schema::validate_all(&root);
    if errors.is_empty() {
        println!(
            "schema check ok: {} artifacts conform under {}",
            schema::SCHEMAS.len(),
            root.display()
        );
        return;
    }
    for e in &errors {
        eprintln!("schema check: {e}");
    }
    std::process::exit(1);
}
