//! Learning-rate schedules and weight decay.
//!
//! §7.2 of the paper: changing the batch size requires retuning the
//! learning rate (and momentum). These are the standard Caffe-era
//! schedules used for that tuning, applied by [`crate::serial`]'s
//! single-node trainer and available to every distributed method through
//! per-step recomputation of `η`.

/// A learning-rate schedule: `η(t)` as a function of the iteration.
#[derive(Clone, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant `η₀`.
    Constant {
        /// Base rate.
        base: f32,
    },
    /// Step decay: `η₀ · γ^{⌊t/every⌋}` (Caffe's `step`).
    Step {
        /// Base rate.
        base: f32,
        /// Multiplicative decay per step.
        gamma: f32,
        /// Iterations between decays.
        every: usize,
    },
    /// Polynomial decay to zero: `η₀ · (1 − t/max_iter)^power`
    /// (Caffe's `poly`; Intel Caffe's default for large-batch ImageNet).
    Poly {
        /// Base rate.
        base: f32,
        /// Decay exponent.
        power: f32,
        /// Total iteration budget.
        max_iter: usize,
    },
    /// Inverse decay: `η₀ · (1 + γt)^{−power}` (Caffe's `inv`).
    Inv {
        /// Base rate.
        base: f32,
        /// Time scale.
        gamma: f32,
        /// Decay exponent.
        power: f32,
    },
}

impl LrSchedule {
    /// The learning rate at iteration `t` (0-based).
    pub fn at(&self, t: usize) -> f32 {
        match *self {
            LrSchedule::Constant { base } => base,
            LrSchedule::Step { base, gamma, every } => {
                assert!(every > 0, "step schedule needs every >= 1");
                base * gamma.powi((t / every) as i32)
            }
            LrSchedule::Poly {
                base,
                power,
                max_iter,
            } => {
                let frac = 1.0 - (t.min(max_iter) as f32 / max_iter.max(1) as f32);
                base * frac.powf(power)
            }
            LrSchedule::Inv { base, gamma, power } => base * (1.0 + gamma * t as f32).powf(-power),
        }
    }

    /// The base (t = 0) rate.
    pub fn base(&self) -> f32 {
        self.at(0)
    }

    /// The linear-scaling rule for batch-size changes (§7.2: “the users
    /// need to change learning rate … at the same time”): scales the base
    /// rate by `new_batch / old_batch`.
    pub fn rescaled_for_batch(&self, old_batch: usize, new_batch: usize) -> LrSchedule {
        let k = new_batch as f32 / old_batch as f32;
        let mut s = self.clone();
        match &mut s {
            LrSchedule::Constant { base }
            | LrSchedule::Step { base, .. }
            | LrSchedule::Poly { base, .. }
            | LrSchedule::Inv { base, .. } => *base *= k,
        }
        s
    }
}

/// L2 weight decay applied as `grad += λ·w` before the optimizer step.
pub fn apply_weight_decay(lambda: f32, weights: &[f32], grad: &mut [f32]) {
    assert_eq!(weights.len(), grad.len(), "weight decay length mismatch");
    if lambda == 0.0 {
        return;
    }
    for (g, w) in grad.iter_mut().zip(weights) {
        *g += lambda * w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = LrSchedule::Constant { base: 0.1 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(10_000), 0.1);
    }

    #[test]
    fn step_decays_at_boundaries() {
        let s = LrSchedule::Step {
            base: 1.0,
            gamma: 0.1,
            every: 100,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(99), 1.0);
        assert!((s.at(100) - 0.1).abs() < 1e-7);
        assert!((s.at(250) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn poly_reaches_zero_at_max_iter() {
        let s = LrSchedule::Poly {
            base: 0.5,
            power: 2.0,
            max_iter: 100,
        };
        assert_eq!(s.at(0), 0.5);
        assert!(s.at(50) < 0.5);
        assert_eq!(s.at(100), 0.0);
        assert_eq!(s.at(200), 0.0); // clamped past the end
    }

    #[test]
    fn inv_decays_monotonically() {
        let s = LrSchedule::Inv {
            base: 0.1,
            gamma: 1e-3,
            power: 0.75,
        };
        let mut prev = f32::INFINITY;
        for t in [0usize, 10, 100, 1000, 10000] {
            let v = s.at(t);
            assert!(v <= prev);
            assert!(v > 0.0);
            prev = v;
        }
    }

    #[test]
    fn linear_scaling_rule() {
        let s = LrSchedule::Constant { base: 0.05 };
        let scaled = s.rescaled_for_batch(64, 512);
        assert!((scaled.base() - 0.4).abs() < 1e-7);
    }

    #[test]
    fn weight_decay_adds_l2_term() {
        let w = vec![2.0f32, -4.0];
        let mut g = vec![1.0f32, 1.0];
        apply_weight_decay(0.5, &w, &mut g);
        assert_eq!(g, vec![2.0, -1.0]);
        // λ = 0 is a no-op.
        let mut g2 = vec![1.0f32, 1.0];
        apply_weight_decay(0.0, &w, &mut g2);
        assert_eq!(g2, vec![1.0, 1.0]);
    }
}
