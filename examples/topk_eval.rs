//! Top-k evaluation and confusion analysis — the ImageNet-style report
//! (top-1 / top-5) applied to a trained model.
//!
//! ```sh
//! cargo run --release --example topk_eval
//! ```

use knl_easgd::nn::eval::evaluate_topk;
use knl_easgd::prelude::*;

fn main() {
    // A deliberately hard task so the top-1 / top-5 gap is visible.
    let spec = SyntheticSpec {
        noise: 2.2,
        ..SyntheticSpec::mnist_small()
    };
    let task = spec.task(0x70F);
    let (train, test) = task.train_test(2_000, 600, 0x7E5);
    let mut net = lenet_tiny(0x401);

    // Train in place (plain SGD).
    let mut rng = Rng::new(0x5E1);
    for _ in 0..600 {
        let b = train.sample_batch(&mut rng, 64);
        let _ = net.forward_backward(&b.images, &b.labels);
        let g = net.grads().as_slice().to_vec();
        knl_easgd::tensor::ops::sgd_update(0.1, net.params_mut().as_mut_slice(), &g);
    }

    let (acc, confusion) = evaluate_topk(&mut net, &test.as_tensor(), test.labels(), 128, 5);
    println!(
        "after 600 SGD steps on a hard task: top-1 {:.1}%  top-{} {:.1}%",
        acc.top1 * 100.0,
        acc.k,
        acc.topk * 100.0
    );
    if let Some((t, p, c)) = confusion.worst_confusion() {
        println!("worst confusion: true class {t} predicted as {p} ({c} times)");
    }
    println!(
        "per-class recall %: {:?}",
        (0..test.classes)
            .map(|c| (confusion.recall(c) * 100.0).round() as i32)
            .collect::<Vec<_>>()
    );
    println!(
        "\n(top-5 is the standard ImageNet report; the paper's GoogLeNet/VGG\n\
         workloads are exactly that setting — see `--bin table4`.)"
    );
}
