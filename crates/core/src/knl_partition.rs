//! KNL chip partitioning (§6.2, Figure 12).
//!
//! The divide-and-conquer schedule: split the chip into `G` NUMA-like
//! groups, give each group a private replica of the data and the weights
//! (both resident in MCDRAM), let each compute a batch gradient on its
//! own cores, tree-**sum** the gradients, and let every group update its
//! replica with the sum. Groups never communicate except through that
//! reduction.
//!
//! Three effects drive Figure 12's 3.3× speedup, and all are modelled:
//!
//! 1. **Parallelism that actually scales.** One small-batch DNN iteration
//!    cannot use 68 cores efficiently (Amdahl + tiny GEMMs); 16 groups of
//!    4 cores each run near-perfectly in parallel. Per-round simulated
//!    compute time is `T₁ / amdahl(68/G)`, with the gradients *really*
//!    computed (the accuracy trajectory is genuine training).
//! 2. **Summed (not averaged) gradients.** Algorithm §6.2 applies the
//!    *sum* of the G gradients, the linear-scaling rule in disguise —
//!    G groups reach the target accuracy in roughly G× fewer rounds.
//! 3. **The MCDRAM capacity gate.** The scheme works only while `G`
//!    copies of (weights + data) fit in the 16 GB of fast memory;
//!    spilling to DDR4 multiplies compute time by the bandwidth ratio.
//!
//! The experiment runs single-threaded and deterministically; group
//! concurrency lives in the simulated clock. (The wall-clock
//! bulk-synchronous substrate is exercised by
//! [`crate::shared::sync_easgd_shared`].)

use crate::config::TrainConfig;
use crate::engine::{evaluate_center, worker_rng, SALT_PHI};
use easgd_data::Dataset;
use easgd_hardware::knl::KnlChip;
use easgd_nn::Network;
use easgd_tensor::Rng;

/// Amdahl's-law speedup of one batch iteration on `cores` cores with the
/// given serial fraction.
pub fn amdahl_speedup(cores: usize, serial_fraction: f64) -> f64 {
    assert!(cores > 0, "need at least one core");
    assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "bad serial fraction"
    );
    let c = cores as f64;
    c / (1.0 + serial_fraction * (c - 1.0))
}

/// Result of one partitioned-training run.
#[derive(Clone, Debug)]
pub struct KnlPartitionOutcome {
    /// Requested partition count `G`.
    pub partitions: usize,
    /// Whether `G` copies of weights + data fit in MCDRAM (§6.2's
    /// limitation rule).
    pub fits_fast_memory: bool,
    /// Modelled compute slowdown applied when the working set spills to
    /// DDR4 (1.0 when resident).
    pub memory_penalty: f64,
    /// Simulated seconds per round.
    pub round_seconds: f64,
    /// Simulated seconds to reach the target accuracy, if reached.
    pub seconds_to_target: Option<f64>,
    /// Accuracy at the end of the run.
    pub final_accuracy: f32,
    /// Rounds executed.
    pub rounds_run: usize,
}

/// Serial fraction of one small-batch training iteration on a many-core
/// chip. Calibrated so the Figure 12 speedup chain lands near the
/// paper's (1 → 4 → 8 → 16 parts ≈ 1 / 1.6 / 2.0 / 3.3×).
pub const KNL_ITERATION_SERIAL_FRACTION: f64 = 0.05;

/// Runs §6.2 partitioned training with `cfg.workers` groups until
/// `target_accuracy` is reached (checked every `check_every` rounds) or
/// `cfg.iterations` rounds elapse.
///
/// `base_round_seconds` is the measured/modelled time of ONE batch
/// iteration using the whole chip (the G = 1 case). Every group holds a
/// full replica of `train` and contributes one real batch gradient per
/// round; the *summed* gradient updates all replicas identically.
// Experiment driver: takes the full §6.2 configuration tuple; bundling it
// into a struct would just move the eight names one level down.
#[allow(clippy::too_many_arguments)]
pub fn knl_partition_run(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    chip: &KnlChip,
    base_round_seconds: f64,
    target_accuracy: f32,
    check_every: usize,
) -> KnlPartitionOutcome {
    cfg.validate();
    assert!(check_every > 0, "check_every must be positive");
    assert!(base_round_seconds > 0.0, "base round time must be positive");
    let g = cfg.workers;
    let weight_bytes = proto.size_bytes();
    let data_bytes = train.size_bytes();
    let fits = chip.max_partitions(weight_bytes, data_bytes, &[g]) == g;
    let memory_penalty = if fits {
        1.0
    } else {
        chip.mcdram_bw / chip.ddr_bw
    };

    // Per-round simulated time: the G groups run concurrently, each on
    // cores/G cores; one full-chip iteration costs base_round_seconds at
    // amdahl(cores) speedup, so a (cores/G)-core group costs
    // base · amdahl(cores)/amdahl(cores/G).
    let full_chip = amdahl_speedup(chip.cores, KNL_ITERATION_SERIAL_FRACTION);
    let group_cores = chip.cores_per_partition(g).max(1);
    let group = amdahl_speedup(group_cores, KNL_ITERATION_SERIAL_FRACTION);
    let compute_seconds = base_round_seconds * full_chip / group * memory_penalty;
    // Tree-summing G gradients through MCDRAM: log₂G full-weight hops.
    let reduce_seconds = easgd_hardware::collective::ceil_log2(g) as f64
        * (2.0 * weight_bytes as f64 / chip.mcdram_bw);
    let round_seconds = compute_seconds + reduce_seconds;

    // Real training: G per-group gradients per round, applied as a sum.
    let mut net = proto.clone();
    let n = net.num_params();
    let mut rngs: Vec<Rng> = (0..g).map(|w| worker_rng(cfg.seed, SALT_PHI, w)).collect();
    let mut grad_sum = vec![0.0f32; n];
    let mut hit_round = None;
    let mut final_accuracy = 0.0f32;
    let mut rounds_run = 0;
    for round in 0..cfg.iterations {
        grad_sum.iter_mut().for_each(|x| *x = 0.0);
        for rng in rngs.iter_mut() {
            let batch = train.sample_batch(rng, cfg.batch);
            let _ = net.forward_backward(&batch.images, &batch.labels);
            easgd_tensor::ops::add_assign(&mut grad_sum, net.grads().as_slice());
        }
        // §6.2: update with the gradient *sum* (linear scaling built in).
        easgd_tensor::ops::axpy(-cfg.eta, &grad_sum, net.params_mut().as_mut_slice());
        rounds_run = round + 1;
        if rounds_run % check_every == 0 {
            final_accuracy = evaluate_center(proto, net.params().as_slice(), test);
            if final_accuracy >= target_accuracy {
                hit_round = Some(rounds_run);
                break;
            }
        }
    }
    KnlPartitionOutcome {
        partitions: g,
        fits_fast_memory: fits,
        memory_penalty,
        round_seconds,
        seconds_to_target: hit_round.map(|r| r as f64 * round_seconds),
        final_accuracy,
        rounds_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(91);
        let (train, test) = task.train_test(600, 200, 92);
        (lenet_tiny(93), train, test)
    }

    fn cfg(groups: usize, rounds: usize) -> TrainConfig {
        TrainConfig {
            workers: groups,
            batch: 16,
            eta: 0.02,
            rho: 0.3,
            mu: 0.9,
            iterations: rounds,
            seed: 101,
            comm_period: 1,
        }
    }

    #[test]
    fn amdahl_known_points() {
        assert!((amdahl_speedup(1, 0.05) - 1.0).abs() < 1e-12);
        // 68 cores, 5% serial → ≈ 15.7×.
        let s = amdahl_speedup(68, 0.05);
        assert!((15.0..17.0).contains(&s), "{s}");
        // Perfectly parallel work scales linearly.
        assert!((amdahl_speedup(8, 0.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn reaches_target_on_easy_task() {
        let (proto, train, test) = setup();
        let out = knl_partition_run(
            &proto,
            &train,
            &test,
            &cfg(4, 600),
            &KnlChip::cori_node(),
            0.5,
            0.7,
            10,
        );
        assert!(out.fits_fast_memory);
        assert_eq!(out.memory_penalty, 1.0);
        assert!(
            out.seconds_to_target.is_some(),
            "never reached 0.7 (final {})",
            out.final_accuracy
        );
    }

    #[test]
    fn more_partitions_reach_target_sooner() {
        // The Figure 12 shape: simulated time-to-accuracy drops with G.
        let (proto, train, test) = setup();
        let chip = KnlChip::cori_node();
        let t1 = knl_partition_run(&proto, &train, &test, &cfg(1, 2000), &chip, 0.5, 0.7, 5)
            .seconds_to_target
            .expect("G=1 never converged");
        let t4 = knl_partition_run(&proto, &train, &test, &cfg(4, 2000), &chip, 0.5, 0.7, 5)
            .seconds_to_target
            .expect("G=4 never converged");
        assert!(t4 < t1, "4 groups ({t4:.1}s) !< 1 group ({t1:.1}s)");
    }

    #[test]
    fn per_round_time_grows_sublinearly_with_groups() {
        // A group has fewer cores, but far better efficiency: 16 groups
        // must cost much less than 16× one group's round.
        let (proto, train, test) = setup();
        let chip = KnlChip::cori_node();
        let r1 =
            knl_partition_run(&proto, &train, &test, &cfg(1, 1), &chip, 1.0, 0.99, 1).round_seconds;
        let r16 = knl_partition_run(&proto, &train, &test, &cfg(16, 1), &chip, 1.0, 0.99, 1)
            .round_seconds;
        assert!(r16 < 16.0 * r1 * 0.5, "r1={r1:.3} r16={r16:.3}");
        // Throughput (samples per simulated second) strictly improves.
        assert!(16.0 / r16 > 1.0 / r1);
    }

    #[test]
    fn oversized_working_set_pays_ddr_penalty() {
        let (proto, train, test) = setup();
        let mut chip = KnlChip::cori_node();
        chip.mcdram_bytes = 1024;
        let out = knl_partition_run(&proto, &train, &test, &cfg(2, 4), &chip, 1.0, 0.99, 2);
        assert!(!out.fits_fast_memory);
        assert!(out.memory_penalty > 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (proto, train, test) = setup();
        let chip = KnlChip::cori_node();
        let a = knl_partition_run(&proto, &train, &test, &cfg(4, 100), &chip, 0.5, 0.7, 10);
        let b = knl_partition_run(&proto, &train, &test, &cfg(4, 100), &chip, 0.5, 0.7, 10);
        assert_eq!(a.rounds_run, b.rounds_run);
        assert_eq!(a.final_accuracy, b.final_accuracy);
        assert_eq!(a.seconds_to_target, b.seconds_to_target);
    }
}
