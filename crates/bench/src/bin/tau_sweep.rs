//! Communication-period ablation: EASGD's τ knob (τ local SGD steps per
//! elastic exchange). τ = 1 is the SC '17 setting; larger τ trades
//! communication for staleness — the knob the original EASGD paper
//! explores and a natural extension of the SC '17 methods.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin tau_sweep
//! ```

use easgd::{async_easgd, hogwild_easgd, TrainConfig};
use easgd_bench::figure_task;

fn main() {
    let (net, train, test) = figure_task();
    println!("Communication-period sweep (Async EASGD / Hogwild EASGD, 4 workers, 200 iters)");
    println!(
        "{:>5} {:>22} {:>10} {:>8} | {:>22} {:>10} {:>8}",
        "tau", "method", "wall s", "acc %", "method", "wall s", "acc %"
    );
    for &tau in &[1usize, 2, 4, 8, 16] {
        let cfg = TrainConfig::figure6(200).with_comm_period(tau);
        let a = async_easgd(&net, &train, &test, &cfg);
        let h = hogwild_easgd(&net, &train, &test, &cfg);
        println!(
            "{:>5} {:>22} {:>10.2} {:>8.1} | {:>22} {:>10.2} {:>8.1}",
            tau,
            a.method,
            a.wall_seconds,
            a.accuracy * 100.0,
            h.method,
            h.wall_seconds,
            h.accuracy * 100.0
        );
    }
    println!(
        "\nreading: on a fast shared-memory node τ = 1 is near-optimal (exchanges are\n\
         cheap); higher τ reduces synchronization at mild accuracy cost — the trade\n\
         that matters when exchanges cross a slow network."
    );
}
