//! The convex case: empirical verification of the paper's Hogwild-EASGD
//! safety/speed claim.
//!
//! §1: “For the convex case, we can prove the algorithm is safe and
//! faster under some assumptions” (the proof lives in the paper's
//! appendix). This module sets up the canonical convex problem — a
//! least-squares objective `f(w) = ½‖Aw − b‖²` with a closed-form
//! optimum — and runs the EASGD family on it, so the proof's conclusions
//! become executable assertions:
//!
//! * **safety** — the center stays bounded and converges to a
//!   neighbourhood of `w*` whose radius shrinks with the step size, even
//!   under lock-free concurrent updates;
//! * **faster** — with P workers the center reaches a given distance to
//!   `w*` in fewer per-worker steps than one worker needs.

use easgd_tensor::ops::{elastic_center_update, elastic_worker_update};
use easgd_tensor::{AtomicBuffer, Rng};

/// A least-squares problem `min_w ½‖Aw − b‖²` with stochastic row-sampled
/// gradients (each row is one “sample”).
#[derive(Clone, Debug)]
pub struct QuadraticProblem {
    /// Row-major `m × n` design matrix.
    pub a: Vec<f32>,
    /// Targets, length `m`.
    pub b: Vec<f32>,
    /// Rows.
    pub m: usize,
    /// Unknowns.
    pub n: usize,
}

impl QuadraticProblem {
    /// A random well-conditioned instance: `A` standard normal, `b = A·w★
    /// + noise`, so the optimum is near the planted `w★`.
    pub fn random(m: usize, n: usize, noise: f32, seed: u64) -> Self {
        assert!(m >= n, "need at least as many rows as unknowns");
        let mut rng = Rng::new(seed);
        let mut a = vec![0.0f32; m * n];
        rng.fill_normal(&mut a, 0.0, 1.0);
        let mut w_star = vec![0.0f32; n];
        rng.fill_normal(&mut w_star, 0.0, 1.0);
        let mut b = vec![0.0f32; m];
        for r in 0..m {
            let mut acc = 0.0;
            for c in 0..n {
                acc += a[r * n + c] * w_star[c];
            }
            b[r] = acc + noise * rng.normal();
        }
        Self { a, b, m, n }
    }

    /// Stochastic gradient from `batch` uniformly sampled rows (mean of
    /// per-row gradients `aᵣ(aᵣ·w − bᵣ)`), written into `out`.
    pub fn stochastic_grad(&self, w: &[f32], batch: usize, rng: &mut Rng, out: &mut [f32]) {
        assert_eq!(w.len(), self.n, "weight length");
        assert_eq!(out.len(), self.n, "gradient length");
        out.iter_mut().for_each(|x| *x = 0.0);
        for _ in 0..batch {
            let r = rng.below(self.m);
            let row = &self.a[r * self.n..(r + 1) * self.n];
            let mut dot = 0.0;
            for c in 0..self.n {
                dot += row[c] * w[c];
            }
            let residual = dot - self.b[r];
            for c in 0..self.n {
                out[c] += residual * row[c];
            }
        }
        let inv = 1.0 / batch as f32;
        out.iter_mut().for_each(|x| *x *= inv);
    }

    /// The exact minimizer via the normal equations `AᵀA w = Aᵀb`
    /// (Gaussian elimination with partial pivoting; `n` is small).
    pub fn optimum(&self) -> Vec<f32> {
        let n = self.n;
        // Build AᵀA (n×n) and Aᵀb in f64 for stability.
        let mut ata = vec![0.0f64; n * n];
        let mut atb = vec![0.0f64; n];
        for r in 0..self.m {
            let row = &self.a[r * n..(r + 1) * n];
            for i in 0..n {
                atb[i] += row[i] as f64 * self.b[r] as f64;
                for j in 0..n {
                    ata[i * n + j] += row[i] as f64 * row[j] as f64;
                }
            }
        }
        // Gaussian elimination with partial pivoting.
        let mut aug = vec![0.0f64; n * (n + 1)];
        for i in 0..n {
            aug[i * (n + 1)..i * (n + 1) + n].copy_from_slice(&ata[i * n..(i + 1) * n]);
            aug[i * (n + 1) + n] = atb[i];
        }
        for col in 0..n {
            let pivot = (col..n)
                .max_by(|&a_, &b_| {
                    aug[a_ * (n + 1) + col]
                        .abs()
                        .total_cmp(&aug[b_ * (n + 1) + col].abs())
                })
                .unwrap_or(col);
            if pivot != col {
                for k in 0..n + 1 {
                    aug.swap(col * (n + 1) + k, pivot * (n + 1) + k);
                }
            }
            let p = aug[col * (n + 1) + col];
            assert!(p.abs() > 1e-12, "singular normal equations");
            for r in col + 1..n {
                let f = aug[r * (n + 1) + col] / p;
                for k in col..n + 1 {
                    aug[r * (n + 1) + k] -= f * aug[col * (n + 1) + k];
                }
            }
        }
        let mut w = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut acc = aug[i * (n + 1) + n];
            for j in i + 1..n {
                acc -= aug[i * (n + 1) + j] * w[j];
            }
            w[i] = acc / aug[i * (n + 1) + i];
        }
        w.into_iter().map(|x| x as f32).collect()
    }

    /// Squared distance of `w` to the optimum.
    pub fn distance_sq(&self, w: &[f32]) -> f32 {
        let opt = self.optimum();
        w.iter().zip(&opt).map(|(a, b)| (a - b) * (a - b)).sum()
    }
}

/// Runs sequential multi-worker EASGD on the problem (workers stepped
/// round-robin in one thread — the convex analysis is about the
/// *updates*, not the threading). Returns the center's squared distance
/// to the optimum after `steps` per-worker steps.
pub fn easgd_on_quadratic(
    problem: &QuadraticProblem,
    workers: usize,
    steps: usize,
    batch: usize,
    eta: f32,
    rho: f32,
    seed: u64,
) -> f32 {
    let n = problem.n;
    let mut center = vec![0.0f32; n];
    let mut locals = vec![vec![0.0f32; n]; workers];
    let mut rngs: Vec<Rng> = (0..workers)
        .map(|w| Rng::new(seed ^ (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect();
    let mut grad = vec![0.0f32; n];
    for _ in 0..steps {
        for w in 0..workers {
            problem.stochastic_grad(&locals[w], batch, &mut rngs[w], &mut grad);
            elastic_center_update(eta, rho, &mut center, &locals[w]);
            elastic_worker_update(eta, rho, &mut locals[w], &grad, &center);
        }
    }
    problem.distance_sq(&center)
}

/// Lock-free Hogwild EASGD on the problem: real threads racing on an
/// atomic center (the configuration the paper's appendix proof covers).
/// Returns the final center's squared distance to the optimum.
pub fn hogwild_easgd_on_quadratic(
    problem: &QuadraticProblem,
    workers: usize,
    steps: usize,
    batch: usize,
    eta: f32,
    rho: f32,
    seed: u64,
) -> f32 {
    let n = problem.n;
    let center = AtomicBuffer::zeros(n);
    // xtask: allow(thread-primitive) — Hogwild's lock-free races ARE the
    // experiment: these must be real preemptive threads on one shared
    // atomic buffer, not simulated ranks.
    std::thread::scope(|s| {
        for w in 0..workers {
            let center = &center;
            let problem = &problem;
            s.spawn(move || {
                let mut rng = Rng::new(seed ^ (w as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407));
                let mut local = vec![0.0f32; n];
                let mut grad = vec![0.0f32; n];
                let mut snapshot = vec![0.0f32; n];
                for _ in 0..steps {
                    problem.stochastic_grad(&local, batch, &mut rng, &mut grad);
                    center.elastic_center_update(eta, rho, &local);
                    center.snapshot_into(&mut snapshot);
                    elastic_worker_update(eta, rho, &mut local, &grad, &snapshot);
                }
            });
        }
    });
    problem.distance_sq(&center.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> QuadraticProblem {
        QuadraticProblem::random(200, 8, 0.05, 1)
    }

    #[test]
    fn optimum_solves_normal_equations() {
        let p = problem();
        let w = p.optimum();
        // Gradient at the optimum (full batch) must vanish.
        let mut full_grad = vec![0.0f64; p.n];
        for r in 0..p.m {
            let row = &p.a[r * p.n..(r + 1) * p.n];
            let mut dot = 0.0f64;
            for c in 0..p.n {
                dot += row[c] as f64 * w[c] as f64;
            }
            let residual = dot - p.b[r] as f64;
            for c in 0..p.n {
                full_grad[c] += residual * row[c] as f64;
            }
        }
        for g in full_grad {
            assert!(g.abs() < 1e-2, "residual gradient {g}");
        }
    }

    #[test]
    fn stochastic_gradient_is_unbiased_toward_full() {
        let p = problem();
        let w = vec![0.5f32; p.n];
        let mut rng = Rng::new(2);
        let mut acc = vec![0.0f32; p.n];
        let mut g = vec![0.0f32; p.n];
        let reps = 3000;
        for _ in 0..reps {
            p.stochastic_grad(&w, 4, &mut rng, &mut g);
            for (a, &v) in acc.iter_mut().zip(&g) {
                *a += v / reps as f32;
            }
        }
        // Full-batch gradient for reference.
        let mut full = vec![0.0f32; p.n];
        for r in 0..p.m {
            let row = &p.a[r * p.n..(r + 1) * p.n];
            let mut dot = 0.0;
            for c in 0..p.n {
                dot += row[c] * w[c];
            }
            for c in 0..p.n {
                full[c] += (dot - p.b[r]) * row[c] / p.m as f32;
            }
        }
        for (a, f) in acc.iter().zip(&full) {
            assert!((a - f).abs() < 0.15 * f.abs().max(1.0), "{a} vs {f}");
        }
    }

    #[test]
    fn easgd_center_converges_on_convex_problem() {
        let p = problem();
        let d = easgd_on_quadratic(&p, 4, 400, 4, 0.02, 2.0, 7);
        assert!(d < 0.05, "center distance² = {d}");
    }

    #[test]
    fn hogwild_easgd_is_safe_lock_free() {
        // The §1 claim: the lock-free variant still converges (safety).
        let p = problem();
        let d = hogwild_easgd_on_quadratic(&p, 4, 400, 4, 0.02, 2.0, 8);
        assert!(d.is_finite());
        assert!(d < 0.1, "lock-free center distance² = {d}");
    }

    #[test]
    fn more_workers_converge_in_fewer_steps() {
        // The “faster” half: at a fixed per-worker step budget, more
        // workers land the center closer to the optimum.
        let p = problem();
        let d1 = easgd_on_quadratic(&p, 1, 60, 4, 0.02, 2.0, 9);
        let d8 = easgd_on_quadratic(&p, 8, 60, 4, 0.02, 2.0, 9);
        assert!(
            d8 < d1,
            "8 workers (d²={d8}) should beat 1 worker (d²={d1}) at equal steps"
        );
    }

    #[test]
    fn smaller_steps_reach_smaller_neighbourhoods() {
        // The noise-ball radius shrinks with η — the standard convex-SGD
        // property the proof's assumptions inherit.
        let p = problem();
        let coarse = easgd_on_quadratic(&p, 4, 2000, 4, 0.05, 1.0, 10);
        let fine = easgd_on_quadratic(&p, 4, 2000, 4, 0.005, 10.0, 10);
        assert!(fine < coarse, "fine {fine} !< coarse {coarse}");
    }
}
