//! The per-rank communicator.
//!
//! Steady-state data movement is zero-allocation: point-to-point payloads
//! ride in pool-recycled buffers that migrate with the message (the
//! receiver recycles them), collectives write into caller-provided
//! outputs, and the `Vec`-returning APIs remain as thin shims so call
//! sites can migrate incrementally (DESIGN.md §10).

use crate::clock::{RankReport, SimClock, TimeCategory};
use crate::cluster::{CollOp, Shared};
use crate::pool::PoolStats;
use crate::request::{ReqState, Request, RequestCollection};
use crate::trace::TraceOp;
#[cfg(feature = "strict-invariants")]
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// How many recycled buffers a rank keeps privately before spilling to
/// the cluster-wide pool. Small: the exchange path needs at most a couple
/// of in-flight buffers per rank, and anything beyond that should be
/// visible to other ranks.
const LOCAL_FREE_MAX: usize = 4;

/// Backing storage of a message payload: either a pool-recycled buffer
/// owned by the message (the common case), or a shared reference-counted
/// buffer for one-copy fan-out of the same data to many destinations
/// (§5.2's packed center broadcast from the master).
#[derive(Debug)]
pub(crate) enum PayloadBuf {
    Owned(Vec<f32>),
    Shared(Arc<Vec<f32>>),
}

impl PayloadBuf {
    fn as_slice(&self) -> &[f32] {
        match self {
            PayloadBuf::Owned(v) => v,
            PayloadBuf::Shared(a) => a,
        }
    }

    /// Extracts an owned `Vec`, copying only when the buffer is still
    /// shared with other in-flight messages.
    fn into_vec(self) -> Vec<f32> {
        match self {
            PayloadBuf::Owned(v) => v,
            PayloadBuf::Shared(a) => {
                // xtask: allow(payload-copy) — Vec-returning shim: a
                // still-shared fan-out buffer must be copied to hand the
                // caller ownership. Pooled callers use `recv_into`.
                Arc::try_unwrap(a).unwrap_or_else(|a| a.as_ref().clone())
            }
        }
    }
}

/// A reusable, reference-counted payload for fanning the same data out to
/// several destinations with one copy (see [`Comm::make_payload`] and
/// [`Comm::send_payload_costed`]).
#[derive(Clone)]
pub struct Payload(Arc<Vec<f32>>);

impl Payload {
    /// The payload's contents.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A point-to-point message between ranks.
#[derive(Debug)]
pub(crate) struct Message {
    pub(crate) from: usize,
    pub(crate) tag: u32,
    pub(crate) data: PayloadBuf,
    /// Simulated arrival time at the receiver (sender's clock after the
    /// α-β send cost).
    pub(crate) arrival: f64,
    /// Per-(sender, receiver) post sequence number, for the
    /// strict-invariants per-(src,dst,tag) FIFO delivery check — the
    /// runtime mirror of the xtask protocol checker's FIFO invariant.
    #[cfg(feature = "strict-invariants")]
    pub(crate) seq: u64,
}

/// A rank's handle to the cluster: identity, simulated clock,
/// point-to-point messaging and collectives.
///
/// Not `Clone` — each rank owns exactly one, mirroring an MPI
/// communicator.
pub struct Comm {
    rank: usize,
    rx: crate::channel::Receiver<Message>,
    /// Messages received but not yet matched by a `recv(from, tag)`.
    pending: VecDeque<Message>,
    clock: SimClock,
    shared: Arc<Shared>,
    /// Private free list in front of the cluster-wide pool: the
    /// steady-state p2p path pops and pushes here without touching the
    /// shared mutex.
    local_free: Vec<Vec<f32>>,
    /// When `Some`, every comm operation appends its [`TraceOp`] — the
    /// trace-recording shim behind the xtask protocol model checker
    /// (DESIGN.md §12). `None` (the default) costs one branch per op.
    trace: Option<Vec<TraceOp>>,
    /// Simulated time at which this rank's NIC finishes injecting its
    /// last posted message. Nonblocking sends queue behind it (their
    /// completion is `max(now, nic_free) + cost`), and blocking sends
    /// drain it first — so per-sender arrival times stay monotone even
    /// when `isend` and `send` interleave. Always `<= now` while no
    /// nonblocking send is outstanding, making the drain a no-op on the
    /// purely blocking paths.
    nic_free: f64,
    /// Latest arrival time ingested per sender, for the strict-invariants
    /// per-sender FCFS check (the channel is FIFO per sender, and each
    /// sender's simulated clock is monotone, so arrivals from one rank
    /// must reach us in non-decreasing arrival order). Sparse: most ranks
    /// talk to O(1) peers, and a dense per-rank vector would cost O(P²)
    /// memory cluster-wide at event-backend scales (P = 8192).
    #[cfg(feature = "strict-invariants")]
    last_arrival: HashMap<usize, f64>,
    /// Next post sequence number per destination rank (stamped onto
    /// outgoing messages for the receiver's FIFO check). Sparse, like
    /// `last_arrival`.
    #[cfg(feature = "strict-invariants")]
    send_seq: HashMap<usize, u64>,
    /// Highest sequence number matched per (sender, tag): selective
    /// receives may reorder across tags, but within one (src,dst,tag)
    /// stream delivery must follow post order.
    #[cfg(feature = "strict-invariants")]
    matched_seq: HashMap<(usize, u32), u64>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        rx: crate::channel::Receiver<Message>,
        shared: Arc<Shared>,
    ) -> Self {
        Self {
            rank,
            rx,
            pending: VecDeque::new(),
            clock: SimClock::new(),
            shared,
            local_free: Vec::new(),
            trace: None,
            nic_free: 0.0,
            #[cfg(feature = "strict-invariants")]
            last_arrival: HashMap::new(),
            #[cfg(feature = "strict-invariants")]
            send_seq: HashMap::new(),
            #[cfg(feature = "strict-invariants")]
            matched_seq: HashMap::new(),
        }
    }

    // ------------------------------------------------------------------
    // Trace recording (the protocol model checker's shim)
    // ------------------------------------------------------------------

    /// Starts recording every comm operation as a [`TraceOp`]. The xtask
    /// protocol checker runs production collectives under this shim so
    /// its per-rank programs are generated from the shipped code paths.
    pub fn trace_start(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stops recording and returns the operations since
    /// [`trace_start`](Self::trace_start) (empty if recording was off).
    pub fn trace_take(&mut self) -> Vec<TraceOp> {
        self.trace.take().unwrap_or_default()
    }

    #[inline]
    fn note(&mut self, op: TraceOp) {
        if let Some(t) = self.trace.as_mut() {
            t.push(op);
        }
    }

    /// Strict-invariants per-(src,dst,tag) FIFO check on a matched
    /// message: within one (sender, tag) stream, matched sequence
    /// numbers must be strictly increasing.
    #[cfg(feature = "strict-invariants")]
    fn check_fifo(&mut self, msg: &Message) {
        let last = self.matched_seq.insert((msg.from, msg.tag), msg.seq);
        debug_assert!(
            last.is_none_or(|l| msg.seq > l),
            "per-(src,dst,tag) FIFO violation: rank {} matched seq {} from \
             rank {} tag {:#x} after seq {:?}",
            self.rank,
            msg.seq,
            msg.from,
            msg.tag,
            last
        );
    }

    #[cfg(not(feature = "strict-invariants"))]
    #[inline]
    fn check_fifo(&mut self, _msg: &Message) {}

    /// Strict-invariants ingest check, applied to every message pulled
    /// off the channel: per-sender FCFS arrival-order monotonicity.
    #[cfg(feature = "strict-invariants")]
    fn check_ingest(&mut self, msg: &Message) {
        let last = self
            .last_arrival
            .entry(msg.from)
            .or_insert(f64::NEG_INFINITY);
        debug_assert!(
            msg.arrival >= *last,
            "FCFS violation: rank {} received a message from rank {} with \
             arrival {} after one with arrival {}",
            self.rank,
            msg.from,
            msg.arrival,
            *last
        );
        *last = msg.arrival;
    }

    #[cfg(not(feature = "strict-invariants"))]
    #[inline]
    fn check_ingest(&mut self, _msg: &Message) {}

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.shared.config.ranks
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Charges `seconds` of local work to `category` (how compute phases
    /// — forward/backward, weight updates — enter simulated time).
    pub fn charge(&mut self, category: TimeCategory, seconds: f64) {
        self.clock.charge(category, seconds);
    }

    /// The cluster link's α-β price for a `bytes`-sized message.
    pub fn link_time(&self, bytes: usize) -> f64 {
        self.shared.config.link.time(bytes)
    }

    /// Final accounting for this rank.
    pub fn report(&self) -> RankReport {
        RankReport {
            rank: self.rank,
            time: self.clock.now(),
            // xtask: allow(payload-copy) — TimeBreakdown, not a payload.
            breakdown: self.clock.breakdown().clone(),
        }
    }

    // ------------------------------------------------------------------
    // Buffer pool
    // ------------------------------------------------------------------

    /// Takes a cleared buffer with capacity ≥ `len` from this rank's
    /// private free list, falling back to the cluster-wide pool.
    pub fn take_buffer(&mut self, len: usize) -> Vec<f32> {
        self.note(TraceOp::TakeBuf);
        match self.local_free.pop() {
            Some(mut buf) => {
                buf.clear();
                if buf.capacity() < len {
                    self.shared.pool.note_external_alloc();
                    buf.reserve(len);
                }
                buf
            }
            None => self.shared.pool.take(len),
        }
    }

    /// Returns a buffer for reuse: to the private free list while it has
    /// room, else to the cluster-wide pool.
    pub fn recycle_buffer(&mut self, buf: Vec<f32>) {
        // Recorded even for capacity-0 buffers: the recycle call is what
        // discharges the ledger obligation, whether or not the pool keeps
        // the storage.
        self.note(TraceOp::Recycle);
        if buf.capacity() == 0 {
            return;
        }
        if self.local_free.len() < LOCAL_FREE_MAX {
            self.local_free.push(buf);
        } else {
            self.shared.pool.put(buf);
        }
    }

    /// Snapshot of the cluster-wide pool counters (allocations and bytes
    /// copied across *all* ranks — the numbers behind `BENCH_comm.json`).
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.pool.stats()
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Posts an already-built payload to `to`; the arrival carries this
    /// rank's current simulated time, so charge costs *before* posting.
    fn post(&mut self, to: usize, tag: u32, data: PayloadBuf) {
        self.note(TraceOp::Send { to, tag });
        let arrival = self.clock.now();
        self.nic_free = self.nic_free.max(arrival);
        self.deliver(to, tag, data, arrival);
    }

    /// Hands a message to `to`'s channel with an explicit simulated
    /// arrival time, stamping the per-destination sequence number.
    fn deliver(&mut self, to: usize, tag: u32, data: PayloadBuf, arrival: f64) {
        #[cfg(feature = "strict-invariants")]
        let seq = {
            let next = self.send_seq.entry(to).or_insert(0);
            *next += 1;
            *next
        };
        self.shared.senders[to]
            .send(Message {
                from: self.rank,
                tag,
                data,
                arrival,
                #[cfg(feature = "strict-invariants")]
                seq,
            })
            .expect("receiver hung up");
        // On the event backend the destination may be a parked fiber —
        // the channel alone cannot wake it.
        self.shared.exec.notify_delivery(to);
    }

    /// Blocks (in simulated time) until the NIC has injected every
    /// outstanding nonblocking send — a no-op unless `isend`s are
    /// pending. Blocking sends call this first so their arrival can
    /// never precede an earlier-posted nonblocking message.
    fn drain_nic(&mut self, category: TimeCategory) {
        self.clock.advance_to(self.nic_free, category);
    }

    /// Copies `data` into a pooled buffer for sending. The copy is
    /// counted in the pool's `bytes_copied`.
    fn pooled_copy(&mut self, data: &[f32]) -> Vec<f32> {
        let mut buf = self.take_buffer(data.len());
        buf.extend_from_slice(data);
        self.shared.pool.note_copy(data.len() * 4);
        buf
    }

    /// Blocking send of `data` to `to` with a user `tag`, charged to
    /// `category` at the α-β cost of one message. Copies `data` once into
    /// a pooled buffer; to send without any copy, build the buffer with
    /// [`take_buffer`](Self::take_buffer) and use
    /// [`send_from`](Self::send_from).
    ///
    /// # Panics
    /// Panics if `to` is out of range or is this rank.
    pub fn send(&mut self, to: usize, tag: u32, data: &[f32], category: TimeCategory) {
        assert!(to < self.size(), "send to rank {to} out of range");
        assert_ne!(to, self.rank, "send to self");
        self.drain_nic(category);
        let cost = self.shared.config.link.time(data.len() * 4);
        self.clock.charge(category, cost);
        let buf = self.pooled_copy(data);
        self.post(to, tag, PayloadBuf::Owned(buf));
    }

    /// Zero-copy send: `buf` (typically from
    /// [`take_buffer`](Self::take_buffer)) migrates with the message and
    /// is recycled by the *receiver*. Charged like [`send`](Self::send).
    pub fn send_from(&mut self, to: usize, tag: u32, buf: Vec<f32>, category: TimeCategory) {
        assert!(to < self.size(), "send to rank {to} out of range");
        assert_ne!(to, self.rank, "send to self");
        self.drain_nic(category);
        let cost = self.shared.config.link.time(buf.len() * 4);
        self.clock.charge(category, cost);
        self.post(to, tag, PayloadBuf::Owned(buf));
    }

    /// Builds a reusable shared payload from `data` (one pooled copy
    /// plus a constant-size reference count), for fanning the same data
    /// out to several destinations via
    /// [`send_payload_costed`](Self::send_payload_costed).
    pub fn make_payload(&mut self, data: &[f32]) -> Payload {
        let buf = self.pooled_copy(data);
        Payload(Arc::new(buf))
    }

    /// Like [`send_costed`](Self::send_costed) but posts a shared
    /// [`Payload`] without copying it: N destinations cost one copy
    /// total. The backing buffer is recycled by whichever receiver drops
    /// the last reference.
    pub fn send_payload_costed(
        &mut self,
        to: usize,
        tag: u32,
        payload: &Payload,
        seconds: f64,
        category: TimeCategory,
    ) {
        assert!(to < self.size(), "send to rank {to} out of range");
        assert_ne!(to, self.rank, "send to self");
        self.drain_nic(category);
        self.clock.charge(category, seconds);
        self.post(to, tag, PayloadBuf::Shared(Arc::clone(&payload.0)));
    }

    /// Pulls the next message matching `pred` — from `pending` first
    /// (FCFS), then the channel, buffering non-matches.
    ///
    /// The channel is drained into `pending` before every scan so the
    /// scan always sees the full arrival order, and — crucially for the
    /// event backend — so a message delivered while this rank last ran
    /// cannot be missed before parking (its sender has already spent its
    /// wake-up signal). Only when nothing buffered matches does the
    /// backend block this rank.
    fn next_matching(&mut self, pred: impl Fn(&Message) -> bool) -> Message {
        loop {
            while let Ok(msg) = self.rx.try_recv() {
                self.check_ingest(&msg);
                self.pending.push_back(msg);
            }
            if let Some(pos) = self.pending.iter().position(&pred) {
                return self.pending.remove(pos).expect("indexed message present");
            }
            let waited = self
                .shared
                .exec
                .wait_message(self.rank, &self.rx, self.clock.now());
            if let Some(msg) = waited {
                self.check_ingest(&msg);
                if pred(&msg) {
                    return msg;
                }
                self.pending.push_back(msg);
            }
        }
    }

    /// Copies a received payload into `out` and recycles the backing
    /// buffer when this was its last reference.
    fn payload_into(&mut self, data: PayloadBuf, out: &mut Vec<f32>) {
        let src = data.as_slice();
        out.clear();
        if out.capacity() < src.len() {
            self.shared.pool.note_external_alloc();
        }
        out.extend_from_slice(src);
        self.shared.pool.note_copy(src.len() * 4);
        match data {
            PayloadBuf::Owned(v) => self.recycle_buffer(v),
            PayloadBuf::Shared(a) => {
                if let Ok(v) = Arc::try_unwrap(a) {
                    self.recycle_buffer(v);
                }
            }
        }
    }

    /// Blocking receive of the next message from `from` with `tag`.
    /// Simulated time advances to the message's arrival (waiting charged
    /// to `category`).
    pub fn recv(&mut self, from: usize, tag: u32, category: TimeCategory) -> Vec<f32> {
        let msg = self.next_matching(|m| m.from == from && m.tag == tag);
        self.check_fifo(&msg);
        self.note(TraceOp::Recv { from, tag });
        // The buffer leaves pool custody with the returned Vec.
        self.note(TraceOp::Retire);
        self.clock.advance_to(msg.arrival, category);
        msg.data.into_vec()
    }

    /// Like [`recv`](Self::recv) but writes the payload into `out`
    /// (cleared first) and recycles the message's buffer — the
    /// zero-allocation receive once `out` has warmed up to capacity.
    pub fn recv_into(&mut self, from: usize, tag: u32, category: TimeCategory, out: &mut Vec<f32>) {
        let msg = self.next_matching(|m| m.from == from && m.tag == tag);
        self.check_fifo(&msg);
        self.note(TraceOp::Recv { from, tag });
        self.clock.advance_to(msg.arrival, category);
        // `payload_into` recycles the carcass, recording the Recycle.
        self.payload_into(msg.data, out);
    }

    /// Blocking receive of the next message with `tag` from *any* rank —
    /// the FCFS order of a parameter server (§3.1). Returns
    /// `(sender, data)`.
    pub fn recv_any(&mut self, tag: u32, category: TimeCategory) -> (usize, Vec<f32>) {
        let msg = self.next_matching(|m| m.tag == tag);
        self.check_fifo(&msg);
        self.note(TraceOp::RecvAny { tag });
        self.note(TraceOp::Retire);
        self.clock.advance_to(msg.arrival, category);
        (msg.from, msg.data.into_vec())
    }

    /// [`recv_any`](Self::recv_any) into a caller-provided buffer;
    /// returns the sender.
    pub fn recv_any_into(&mut self, tag: u32, category: TimeCategory, out: &mut Vec<f32>) -> usize {
        let msg = self.next_matching(|m| m.tag == tag);
        self.check_fifo(&msg);
        self.note(TraceOp::RecvAny { tag });
        self.clock.advance_to(msg.arrival, category);
        let from = msg.from;
        self.payload_into(msg.data, out);
        from
    }

    /// Non-blocking variant of [`recv_any`](Self::recv_any): returns
    /// `None` if no matching message has arrived yet.
    pub fn try_recv_any(&mut self, tag: u32, category: TimeCategory) -> Option<(usize, Vec<f32>)> {
        if let Some(pos) = self.pending.iter().position(|m| m.tag == tag) {
            let msg = self.pending.remove(pos).expect("indexed message present");
            self.check_fifo(&msg);
            self.note(TraceOp::RecvAny { tag });
            self.note(TraceOp::Retire);
            self.clock.advance_to(msg.arrival, category);
            return Some((msg.from, msg.data.into_vec()));
        }
        while let Ok(msg) = self.rx.try_recv() {
            self.check_ingest(&msg);
            if msg.tag == tag {
                self.check_fifo(&msg);
                self.note(TraceOp::RecvAny { tag });
                self.note(TraceOp::Retire);
                self.clock.advance_to(msg.arrival, category);
                return Some((msg.from, msg.data.into_vec()));
            }
            self.pending.push_back(msg);
        }
        None
    }

    // ------------------------------------------------------------------
    // Nonblocking point-to-point (request handles; DESIGN.md §13)
    // ------------------------------------------------------------------

    /// Nonblocking [`send_from`](Self::send_from): posts the message
    /// immediately (the buffer migrates with it and is recycled by the
    /// receiver) and returns a [`Request`]. The NIC injects outstanding
    /// sends serially — this message's injection completes at
    /// `max(now, nic_free) + α-β cost`, which is also its arrival time
    /// at the receiver. [`wait`](Self::wait) advances this rank's clock
    /// to that completion, charging only the residual not already hidden
    /// behind local compute (charged to `category`).
    pub fn isend_from(
        &mut self,
        to: usize,
        tag: u32,
        buf: Vec<f32>,
        category: TimeCategory,
    ) -> Request {
        assert!(to < self.size(), "isend to rank {to} out of range");
        assert_ne!(to, self.rank, "isend to self");
        let cost = self.shared.config.link.time(buf.len() * 4);
        let completion = self.nic_free.max(self.clock.now()) + cost;
        self.nic_free = completion;
        self.note(TraceOp::Isend { to, tag });
        self.deliver(to, tag, PayloadBuf::Owned(buf), completion);
        Request::new(ReqState::Send { completion }, category)
    }

    /// Nonblocking [`send`](Self::send): copies `data` once into a
    /// pooled buffer, then posts like [`isend_from`](Self::isend_from).
    pub fn isend(&mut self, to: usize, tag: u32, data: &[f32], category: TimeCategory) -> Request {
        let buf = self.pooled_copy(data);
        self.isend_from(to, tag, buf, category)
    }

    /// Nonblocking [`recv_into`](Self::recv_into): registers interest in
    /// the next `(from, tag)` message, taking ownership of `out` until
    /// completion. [`wait`](Self::wait) matches FCFS against the pending
    /// queue (exactly like the blocking form), fills `out`, recycles the
    /// message's carcass, and returns the buffer.
    pub fn irecv_into(
        &mut self,
        from: usize,
        tag: u32,
        category: TimeCategory,
        out: Vec<f32>,
    ) -> Request {
        assert!(from < self.size(), "irecv from rank {from} out of range");
        assert_ne!(from, self.rank, "irecv from self");
        self.note(TraceOp::Irecv { from, tag });
        Request::new(ReqState::Recv { from, tag, out }, category)
    }

    /// Completes a nonblocking operation. For a send request: advances
    /// the clock to the NIC injection's completion (free if local work
    /// already ran past it) and returns `None`. For a receive request:
    /// blocks for the matching message, advances the clock to its
    /// arrival, and returns the filled destination buffer.
    ///
    /// # Panics
    /// Panics if the request was already completed (double wait).
    pub fn wait(&mut self, req: &mut Request) -> Option<Vec<f32>> {
        let state = req.state.take().unwrap_or_else(|| {
            panic!(
                "rank {}: wait on an already-completed request (double wait)",
                self.rank
            )
        });
        match state {
            ReqState::Send { completion } => {
                self.clock.advance_to(completion, req.category);
                None
            }
            ReqState::Recv { from, tag, mut out } => {
                let msg = self.next_matching(|m| m.from == from && m.tag == tag);
                self.check_fifo(&msg);
                self.note(TraceOp::Wait { from, tag });
                self.clock.advance_to(msg.arrival, req.category);
                // `payload_into` recycles the carcass, recording the
                // Recycle — identical custody to the blocking `recv_into`.
                self.payload_into(msg.data, &mut out);
                Some(out)
            }
        }
    }

    /// Completes every request in `reqs` (drained, in insertion order).
    /// Entry `i` of the result is the filled buffer of the `i`-th
    /// request if it was a receive, `None` for sends. An empty
    /// collection is a no-op returning an empty vec.
    pub fn wait_all(&mut self, reqs: &mut RequestCollection) -> Vec<Option<Vec<f32>>> {
        let mut done = Vec::with_capacity(reqs.reqs.len());
        for mut req in reqs.reqs.drain(..) {
            done.push(self.wait(&mut req));
        }
        done
    }

    /// Whether [`wait`](Self::wait) on `req` would complete without
    /// advancing simulated time: a send whose NIC injection has
    /// finished, or a receive whose matching message has already arrived
    /// (the channel is drained nonblockingly into the pending queue so
    /// the check sees everything physically delivered). A completed
    /// request tests true. Does not complete the request.
    pub fn test(&mut self, req: &Request) -> bool {
        match req.state.as_ref() {
            None => true,
            Some(ReqState::Send { completion }) => *completion <= self.clock.now(),
            Some(ReqState::Recv { from, tag, .. }) => {
                let (from, tag) = (*from, *tag);
                while let Ok(msg) = self.rx.try_recv() {
                    self.check_ingest(&msg);
                    self.pending.push_back(msg);
                }
                let now = self.clock.now();
                self.pending
                    .iter()
                    .any(|m| m.from == from && m.tag == tag && m.arrival <= now)
            }
        }
    }

    // ------------------------------------------------------------------
    // Cost-override variants
    //
    // Device-level schedules (PCIe unpinned vs pinned paths, per-layer vs
    // packed layouts, §5.2/§6.1) need finer pricing than one cluster-wide
    // link. These variants move the same data but charge an explicit
    // caller-computed cost.
    // ------------------------------------------------------------------

    /// Like [`send`](Self::send) but charges `seconds` instead of the
    /// cluster link's α-β price. Use when the sender-side cost of this
    /// edge differs from the cluster default (e.g. a host-driven PCIe
    /// push).
    pub fn send_costed(
        &mut self,
        to: usize,
        tag: u32,
        data: &[f32],
        seconds: f64,
        category: TimeCategory,
    ) {
        assert!(to < self.size(), "send to rank {to} out of range");
        assert_ne!(to, self.rank, "send to self");
        self.drain_nic(category);
        self.clock.charge(category, seconds);
        let buf = self.pooled_copy(data);
        self.post(to, tag, PayloadBuf::Owned(buf));
    }

    /// [`send_from`](Self::send_from) with an explicit cost.
    pub fn send_from_costed(
        &mut self,
        to: usize,
        tag: u32,
        buf: Vec<f32>,
        seconds: f64,
        category: TimeCategory,
    ) {
        assert!(to < self.size(), "send to rank {to} out of range");
        assert_ne!(to, self.rank, "send to self");
        self.drain_nic(category);
        self.clock.charge(category, seconds);
        self.post(to, tag, PayloadBuf::Owned(buf));
    }

    /// Receiver-driven transfer: waits for the message (the wait — e.g.
    /// the sender still computing — is attributed to `wait_category`),
    /// then charges `seconds` of transfer to `transfer_category`. Models
    /// a host-initiated DMA pull, where the receiver's timeline carries
    /// the transfer cost (how Table 3 accounts CPU↔GPU traffic).
    pub fn recv_costed(
        &mut self,
        from: usize,
        tag: u32,
        seconds: f64,
        wait_category: TimeCategory,
        transfer_category: TimeCategory,
    ) -> Vec<f32> {
        let data = self.recv(from, tag, wait_category);
        self.clock.charge(transfer_category, seconds);
        data
    }

    /// [`recv_costed`](Self::recv_costed) into a caller-provided buffer.
    pub fn recv_costed_into(
        &mut self,
        from: usize,
        tag: u32,
        seconds: f64,
        wait_category: TimeCategory,
        transfer_category: TimeCategory,
        out: &mut Vec<f32>,
    ) {
        self.recv_into(from, tag, wait_category, out);
        self.clock.charge(transfer_category, seconds);
    }

    /// [`broadcast_into`](Self::broadcast_into) with an explicit cost.
    pub fn broadcast_costed_into(
        &mut self,
        root: usize,
        data: &[f32],
        seconds: f64,
        category: TimeCategory,
        out: &mut Vec<f32>,
    ) {
        assert!(root < self.size(), "broadcast root out of range");
        let input: &[f32] = if self.rank == root { data } else { &[] };
        self.collective_into(
            input,
            CollOp::Broadcast { root },
            Some(seconds),
            category,
            out,
        );
    }

    /// [`broadcast`](Self::broadcast) with an explicit cost.
    pub fn broadcast_costed(
        &mut self,
        root: usize,
        data: &[f32],
        seconds: f64,
        category: TimeCategory,
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.broadcast_costed_into(root, data, seconds, category, &mut out);
        out
    }

    /// [`reduce_sum_into`](Self::reduce_sum_into) with an explicit cost
    /// (and no explicit root: every rank receives the sum).
    pub fn reduce_sum_costed_into(
        &mut self,
        data: &[f32],
        seconds: f64,
        category: TimeCategory,
        out: &mut Vec<f32>,
    ) {
        self.collective_into(data, CollOp::ReduceSum, Some(seconds), category, out);
    }

    /// [`reduce_sum`](Self::reduce_sum) with an explicit cost.
    pub fn reduce_sum_costed(
        &mut self,
        data: &[f32],
        seconds: f64,
        category: TimeCategory,
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.reduce_sum_costed_into(data, seconds, category, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Collectives (synchronizing; all ranks must call with matching op)
    // ------------------------------------------------------------------

    /// Enters the gate, writes the combined result into `out`, and
    /// advances this rank's clock to the collective's completion.
    fn collective_into(
        &mut self,
        input: &[f32],
        op: CollOp,
        cost_override: Option<f64>,
        category: TimeCategory,
        out: &mut Vec<f32>,
    ) {
        let t = self.shared.gate.rendezvous_into(
            &self.shared.exec,
            &self.shared.pool,
            self.rank,
            self.clock.now(),
            input,
            op,
            cost_override,
            out,
        );
        self.clock.advance_to(t, category);
    }

    /// Barrier across all ranks (tree-priced).
    pub fn barrier(&mut self) {
        let mut out = Vec::new();
        self.collective_into(&[], CollOp::Barrier, None, TimeCategory::Other, &mut out);
    }

    /// Broadcast `data` from `root` into `out` on every rank.
    pub fn broadcast_into(
        &mut self,
        root: usize,
        data: &[f32],
        category: TimeCategory,
        out: &mut Vec<f32>,
    ) {
        assert!(root < self.size(), "broadcast root out of range");
        let input: &[f32] = if self.rank == root { data } else { &[] };
        self.collective_into(input, CollOp::Broadcast { root }, None, category, out);
    }

    /// Broadcast `data` from `root` to every rank; returns root's data.
    pub fn broadcast(&mut self, root: usize, data: &[f32], category: TimeCategory) -> Vec<f32> {
        let mut out = Vec::new();
        self.broadcast_into(root, data, category, &mut out);
        out
    }

    /// Element-wise sum of every rank's `data` written into `out`, priced
    /// as a rooted tree reduce. The sum lands on all ranks (non-roots of
    /// the logical reduce are free to ignore it).
    pub fn reduce_sum_into(
        &mut self,
        root: usize,
        data: &[f32],
        category: TimeCategory,
        out: &mut Vec<f32>,
    ) {
        assert!(root < self.size(), "reduce root out of range");
        self.collective_into(data, CollOp::ReduceSum, None, category, out);
    }

    /// Element-wise sum of every rank's `data`, priced as a rooted tree
    /// reduce. The sum is returned on all ranks (non-roots of the logical
    /// reduce are free to ignore it).
    pub fn reduce_sum(&mut self, root: usize, data: &[f32], category: TimeCategory) -> Vec<f32> {
        let mut out = Vec::new();
        self.reduce_sum_into(root, data, category, &mut out);
        out
    }

    /// Gather written into `out`: concatenation of every rank's `data` in
    /// rank order, priced as a rooted tree gather. As with
    /// [`reduce_sum`](Self::reduce_sum), the result is visible on every
    /// rank; non-roots are free to ignore it.
    pub fn gather_into(
        &mut self,
        root: usize,
        data: &[f32],
        category: TimeCategory,
        out: &mut Vec<f32>,
    ) {
        assert!(root < self.size(), "gather root out of range");
        self.collective_into(data, CollOp::Concat, None, category, out);
    }

    /// Gather: concatenation of every rank's `data` in rank order.
    pub fn gather(&mut self, root: usize, data: &[f32], category: TimeCategory) -> Vec<f32> {
        let mut out = Vec::new();
        self.gather_into(root, data, category, &mut out);
        out
    }

    /// Allgather written into `out`: every rank receives the rank-ordered
    /// concatenation. Priced like a gather followed by a broadcast of the
    /// concatenation.
    pub fn allgather_into(&mut self, data: &[f32], category: TimeCategory, out: &mut Vec<f32>) {
        self.gather_into(0, data, category, out);
        // The broadcast of the assembled buffer (non-roots already hold
        // the data in shared memory; only the time is charged).
        let gathered = std::mem::take(out);
        self.broadcast_into(0, &gathered, category, out);
        self.recycle_buffer(gathered);
    }

    /// Allgather: every rank receives the rank-ordered concatenation.
    pub fn allgather(&mut self, data: &[f32], category: TimeCategory) -> Vec<f32> {
        let mut out = Vec::new();
        self.allgather_into(data, category, &mut out);
        out
    }

    /// Element-wise allreduce-sum written into `out`, priced per the
    /// configured [`CollectiveAlgo`](crate::cluster::CollectiveAlgo).
    pub fn allreduce_sum_into(&mut self, data: &[f32], category: TimeCategory, out: &mut Vec<f32>) {
        self.collective_into(data, CollOp::AllReduceSum, None, category, out);
    }

    /// Element-wise allreduce-sum, priced per the configured
    /// [`CollectiveAlgo`](crate::cluster::CollectiveAlgo).
    pub fn allreduce_sum(&mut self, data: &[f32], category: TimeCategory) -> Vec<f32> {
        let mut out = Vec::new();
        self.allreduce_sum_into(data, category, &mut out);
        out
    }

    /// Allreduce-sum with an explicit cost in place of the link-derived
    /// price — for calibrated models (e.g. the weak-scaling study's
    /// measured MPI allreduce seconds) where the data motion is real but
    /// the charge comes from elsewhere.
    pub fn allreduce_sum_costed_into(
        &mut self,
        data: &[f32],
        seconds: f64,
        category: TimeCategory,
        out: &mut Vec<f32>,
    ) {
        self.collective_into(data, CollOp::AllReduceSum, Some(seconds), category, out);
    }
}

/// No-message-loss check: a message that was pulled off the channel and
/// buffered in `pending` but never matched by any `recv` means a rank
/// ended with a tag/peer mismatch in its protocol — a silent loss the
/// trainer would otherwise never notice. In-flight messages still in the
/// channel at shutdown are NOT flagged: an asynchronous master legitimately
/// stops consuming once training converges.
#[cfg(feature = "strict-invariants")]
impl Drop for Comm {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            debug_assert!(
                self.pending.is_empty(),
                "rank {} dropped {} buffered-but-unmatched message(s): {:?}",
                self.rank,
                self.pending.len(),
                self.pending
                    .iter()
                    .map(|m| (m.from, m.tag))
                    .collect::<Vec<_>>()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, VirtualCluster};

    const TAG: u32 = 7;

    #[test]
    fn p2p_roundtrip_carries_data() {
        let cfg = ClusterConfig::new(2);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, TAG, &[1.0, 2.0, 3.0], TimeCategory::CpuGpuParam);
                comm.recv(1, TAG, TimeCategory::CpuGpuParam)
            } else {
                let got = comm.recv(0, TAG, TimeCategory::CpuGpuParam);
                let doubled: Vec<f32> = got.iter().map(|x| x * 2.0).collect();
                comm.send(0, TAG, &doubled, TimeCategory::CpuGpuParam);
                got
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn recv_advances_clock_to_arrival() {
        let cfg = ClusterConfig::new(2);
        let times = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.charge(TimeCategory::ForwardBackward, 1.0);
                comm.send(1, TAG, &[0.0; 1024], TimeCategory::CpuGpuParam);
                comm.now()
            } else {
                let _ = comm.recv(0, TAG, TimeCategory::CpuGpuParam);
                comm.now()
            }
        });
        // Receiver ends exactly at sender's post-send time.
        assert!((times[1] - times[0]).abs() < 1e-12);
        assert!(times[0] > 1.0);
    }

    #[test]
    fn recv_filters_by_source_and_tag() {
        let cfg = ClusterConfig::new(3);
        let out = VirtualCluster::run(&cfg, |comm| match comm.rank() {
            0 => {
                // Expect specifically rank 2's message even if rank 1's
                // arrives first.
                let from2 = comm.recv(2, TAG, TimeCategory::Other);
                let from1 = comm.recv(1, TAG, TimeCategory::Other);
                vec![from2[0], from1[0]]
            }
            r => {
                comm.send(0, TAG, &[r as f32], TimeCategory::Other);
                vec![]
            }
        });
        assert_eq!(out[0], vec![2.0, 1.0]);
    }

    #[test]
    fn recv_selects_by_tag_preserving_per_tag_fifo() {
        // One sender interleaves tags X, Y, X; the receiver pulls Y first
        // (buffering the first X in `pending`), then both X's — which
        // must come back in send order.
        const X: u32 = 10;
        const Y: u32 = 11;
        let cfg = ClusterConfig::new(2);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, X, &[1.0], TimeCategory::Other);
                comm.send(1, Y, &[2.0], TimeCategory::Other);
                comm.send(1, X, &[3.0], TimeCategory::Other);
                vec![]
            } else {
                let y = comm.recv(0, Y, TimeCategory::Other);
                let x1 = comm.recv(0, X, TimeCategory::Other);
                let x2 = comm.recv(0, X, TimeCategory::Other);
                vec![y[0], x1[0], x2[0]]
            }
        });
        assert_eq!(out[1], vec![2.0, 1.0, 3.0]);
    }

    #[test]
    fn recv_any_drains_buffered_messages_in_arrival_order() {
        // Three TAG messages get buffered while the receiver waits for an
        // OTHER-tagged message; recv_any must then serve them FCFS.
        const OTHER: u32 = 42;
        let cfg = ClusterConfig::new(2);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                for v in [1.0, 2.0, 3.0] {
                    comm.send(1, TAG, &[v], TimeCategory::Other);
                }
                comm.send(1, OTHER, &[9.0], TimeCategory::Other);
                vec![]
            } else {
                let marker = comm.recv(0, OTHER, TimeCategory::Other);
                assert_eq!(marker, vec![9.0]);
                let mut seen = Vec::new();
                for _ in 0..3 {
                    let (from, data) = comm.recv_any(TAG, TimeCategory::Other);
                    assert_eq!(from, 0);
                    seen.push(data[0]);
                }
                seen
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn recv_any_serves_fcfs() {
        let cfg = ClusterConfig::new(4);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..3 {
                    let (from, data) = comm.recv_any(TAG, TimeCategory::Other);
                    assert_eq!(data[0] as usize, from);
                    seen.push(from);
                }
                seen.sort_unstable();
                seen
            } else {
                comm.send(0, TAG, &[comm.rank() as f32], TimeCategory::Other);
                vec![]
            }
        });
        assert_eq!(out[0], vec![1, 2, 3]);
    }

    #[test]
    #[cfg(feature = "strict-invariants")]
    #[should_panic(expected = "rank panicked")]
    fn unmatched_pending_message_is_flagged_at_shutdown() {
        // Rank 0 sends tags 1 then 2; rank 1 only ever matches tag 2, so
        // the tag-1 message is buffered in `pending` and never consumed —
        // the strict-invariants Drop must flag it.
        let cfg = ClusterConfig::new(2);
        let _ = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0], TimeCategory::Other);
                comm.send(1, 2, &[2.0], TimeCategory::Other);
            } else {
                let _ = comm.recv(0, 2, TimeCategory::Other);
            }
        });
    }

    #[test]
    fn try_recv_any_returns_none_when_empty() {
        let cfg = ClusterConfig::new(2);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let empty = comm.try_recv_any(99, TimeCategory::Other).is_none();
                // Now wait for the real message so the test is race-free.
                let (_, d) = comm.recv_any(TAG, TimeCategory::Other);
                (empty, d[0])
            } else {
                comm.send(0, TAG, &[5.0], TimeCategory::Other);
                (true, 0.0)
            }
        });
        assert!(out[0].0);
        assert_eq!(out[0].1, 5.0);
    }

    #[test]
    fn send_charges_alpha_beta_cost() {
        let cfg = ClusterConfig::new(2);
        let link = cfg.link.clone();
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, TAG, &[0.0; 1000], TimeCategory::CpuGpuParam);
                comm.now()
            } else {
                let _ = comm.recv(0, TAG, TimeCategory::CpuGpuParam);
                0.0
            }
        });
        assert!((out[0] - link.time(4000)).abs() < 1e-15);
    }

    #[test]
    fn send_from_and_recv_into_roundtrip() {
        let cfg = ClusterConfig::new(2);
        let link = cfg.link.clone();
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let mut buf = comm.take_buffer(3);
                buf.extend_from_slice(&[4.0, 5.0, 6.0]);
                comm.send_from(1, TAG, buf, TimeCategory::CpuGpuParam);
                (comm.now(), vec![])
            } else {
                let mut scratch = comm.take_buffer(3);
                comm.recv_into(0, TAG, TimeCategory::CpuGpuParam, &mut scratch);
                (comm.now(), scratch)
            }
        });
        // send_from charges the same α-β price as send.
        assert!((out[0].0 - link.time(12)).abs() < 1e-15);
        assert_eq!(out[1].1, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn shared_payload_fans_out_with_one_copy() {
        let cfg = ClusterConfig::new(3);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let before = comm.pool_stats().bytes_copied;
                let payload = comm.make_payload(&[1.0, 2.0]);
                let copied = comm.pool_stats().bytes_copied - before;
                comm.send_payload_costed(1, TAG, &payload, 0.0, TimeCategory::Other);
                comm.send_payload_costed(2, TAG, &payload, 0.0, TimeCategory::Other);
                vec![copied as f32]
            } else {
                comm.recv(0, TAG, TimeCategory::Other)
            }
        });
        // Building the payload copied it exactly once (8 bytes).
        assert_eq!(out[0], vec![8.0]);
        assert_eq!(out[1], vec![1.0, 2.0]);
        assert_eq!(out[2], vec![1.0, 2.0]);
    }

    #[test]
    fn steady_state_pooled_exchange_does_not_allocate() {
        let cfg = ClusterConfig::new(2);
        let allocs = VirtualCluster::run(&cfg, |comm| {
            // All buffers share one arena size, mirroring a parameter
            // exchange; the pool's LIFO free list then always hands back
            // a big-enough buffer.
            let n = 512;
            let mut scratch = comm.take_buffer(n);
            scratch.resize(n, 0.5);
            let mut sum = comm.take_buffer(n);
            let exchange = |comm: &mut Comm, scratch: &mut Vec<f32>, sum: &mut Vec<f32>| {
                if comm.rank() == 0 {
                    let mut buf = comm.take_buffer(n);
                    buf.resize(n, 1.0);
                    comm.send_from(1, TAG, buf, TimeCategory::Other);
                } else {
                    comm.recv_into(0, TAG, TimeCategory::Other, scratch);
                }
                let (s, out) = (&scratch[..], sum);
                comm.allreduce_sum_into(s, TimeCategory::Other, out);
            };
            // Warm up buffer capacities, then measure. The sender also
            // parks a few spares in its private free list: the pool's
            // steady state needs one buffer of slack per pipeline stage
            // (the gate retires its combine buffer on the *last* read,
            // which can land after the fastest rank has already started
            // the next step).
            for _ in 0..4 {
                exchange(comm, &mut scratch, &mut sum);
            }
            if comm.rank() == 0 {
                let spares: Vec<_> = (0..4).map(|_| comm.take_buffer(n)).collect();
                for s in spares {
                    comm.recycle_buffer(s);
                }
            }
            comm.barrier();
            let before = comm.pool_stats();
            for _ in 0..8 {
                exchange(comm, &mut scratch, &mut sum);
            }
            comm.barrier();
            comm.pool_stats().since(&before)
        });
        assert_eq!(
            (allocs[0].allocations(), allocs[1].allocations()),
            (0, 0),
            "warm pooled exchange must not allocate: {allocs:?}"
        );
    }

    #[test]
    fn report_carries_breakdown() {
        let cfg = ClusterConfig::new(1);
        let out = VirtualCluster::run(&cfg, |comm| {
            comm.charge(TimeCategory::ForwardBackward, 2.0);
            comm.charge(TimeCategory::GpuUpdate, 1.0);
            comm.report()
        });
        let r = &out[0];
        assert_eq!(r.rank, 0);
        assert!((r.time - 3.0).abs() < 1e-12);
        assert!((r.breakdown.get(TimeCategory::ForwardBackward) - 2.0).abs() < 1e-12);
        assert_eq!(r.breakdown.comm_ratio(), 0.0);
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let cfg = ClusterConfig::new(3);
        let out = VirtualCluster::run(&cfg, |comm| {
            let mine = vec![comm.rank() as f32; 2];
            comm.gather(0, &mine, TimeCategory::Other)
        });
        for v in out {
            assert_eq!(v, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn allgather_delivers_everywhere_and_costs_more_than_gather() {
        let cfg = ClusterConfig::new(4);
        let out = VirtualCluster::run(&cfg, |comm| {
            let mine = vec![comm.rank() as f32];
            let t0 = comm.now();
            let g = comm.allgather(&mine, TimeCategory::GpuGpuParam);
            (g, comm.now() - t0)
        });
        for (g, dt) in out {
            assert_eq!(g, vec![0.0, 1.0, 2.0, 3.0]);
            assert!(dt > 0.0);
        }
    }

    #[test]
    fn gather_supports_unequal_contributions() {
        let cfg = ClusterConfig::new(3);
        let out = VirtualCluster::run(&cfg, |comm| {
            let mine = vec![comm.rank() as f32; comm.rank() + 1];
            comm.gather(0, &mine, TimeCategory::Other)
        });
        for v in out {
            assert_eq!(v, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn requests_complete_out_of_order() {
        // Rank 0 posts two sends; rank 1 posts both receives up front and
        // waits the *second* one first — each wait must match its own
        // tag, independent of post order.
        const A: u32 = 21;
        const B: u32 = 22;
        let cfg = ClusterConfig::new(2);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let mut ra = comm.isend(1, A, &[1.0], TimeCategory::Other);
                let mut rb = comm.isend(1, B, &[2.0], TimeCategory::Other);
                comm.wait(&mut rb);
                comm.wait(&mut ra);
                vec![]
            } else {
                let mut ra = comm.irecv_into(0, A, TimeCategory::Other, Vec::new());
                let mut rb = comm.irecv_into(0, B, TimeCategory::Other, Vec::new());
                let b = comm.wait(&mut rb).expect("recv request returns its buffer");
                let a = comm.wait(&mut ra).expect("recv request returns its buffer");
                vec![b[0], a[0]]
            }
        });
        assert_eq!(out[1], vec![2.0, 1.0]);
    }

    #[test]
    fn wait_all_on_empty_collection_is_a_noop() {
        let cfg = ClusterConfig::new(1);
        let out = VirtualCluster::run(&cfg, |comm| {
            let mut reqs = crate::request::RequestCollection::new();
            assert!(reqs.is_empty());
            let done = comm.wait_all(&mut reqs);
            (done.len(), comm.now())
        });
        assert_eq!(out[0].0, 0);
        assert_eq!(out[0].1, 0.0, "empty wait_all must not advance the clock");
    }

    #[test]
    fn wait_all_returns_buffers_in_insertion_order() {
        let cfg = ClusterConfig::new(2);
        let out = VirtualCluster::run(&cfg, |comm| {
            let mut reqs = crate::request::RequestCollection::new();
            if comm.rank() == 0 {
                reqs.push(comm.isend(1, TAG, &[7.0], TimeCategory::Other));
                let done = comm.wait_all(&mut reqs);
                assert_eq!(done, vec![None], "send requests complete to None");
                vec![]
            } else {
                reqs.push(comm.irecv_into(0, TAG, TimeCategory::Other, Vec::new()));
                let done = comm.wait_all(&mut reqs);
                assert!(reqs.is_empty(), "wait_all drains the collection");
                done[0].clone().expect("recv buffer")
            }
        });
        assert_eq!(out[1], vec![7.0]);
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn double_wait_is_rejected() {
        let cfg = ClusterConfig::new(2);
        let _ = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let mut r = comm.isend(1, TAG, &[1.0], TimeCategory::Other);
                comm.wait(&mut r);
                comm.wait(&mut r); // panics: already completed
            } else {
                let _ = comm.recv(0, TAG, TimeCategory::Other);
            }
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "rank panicked")]
    fn drop_without_wait_is_flagged() {
        // An outstanding send request dropped without wait is a lost
        // completion; the Request Drop impl flags it in debug builds.
        let cfg = ClusterConfig::new(2);
        let _ = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let r = comm.isend(1, TAG, &[1.0], TimeCategory::Other);
                drop(r);
            } else {
                let _ = comm.recv(0, TAG, TimeCategory::Other);
            }
        });
    }

    #[test]
    fn irecv_wait_serves_the_pending_queue_fcfs() {
        // Two same-tag messages get buffered in `pending` while rank 1
        // waits for a marker; the irecv wait must then match the OLDEST
        // buffered message, exactly like the blocking recv.
        const MARKER: u32 = 33;
        let cfg = ClusterConfig::new(2);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                comm.send(1, TAG, &[1.0], TimeCategory::Other);
                comm.send(1, TAG, &[2.0], TimeCategory::Other);
                comm.send(1, MARKER, &[0.0], TimeCategory::Other);
                vec![]
            } else {
                let _ = comm.recv(0, MARKER, TimeCategory::Other);
                let mut r = comm.irecv_into(0, TAG, TimeCategory::Other, Vec::new());
                let first = comm.wait(&mut r).expect("recv buffer");
                let second = comm.recv(0, TAG, TimeCategory::Other);
                vec![first[0], second[0]]
            }
        });
        assert_eq!(
            out[1],
            vec![1.0, 2.0],
            "irecv must respect pending-queue FCFS"
        );
    }

    #[test]
    fn isend_wait_after_compute_is_free() {
        // The §6.3 overlap mechanism: if local compute runs past the NIC
        // injection's completion, waiting costs nothing; the receiver
        // still sees the early arrival.
        let cfg = ClusterConfig::new(2);
        let link = cfg.link.clone();
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let mut r = comm.isend(1, TAG, &[0.0; 1024], TimeCategory::CpuGpuParam);
                comm.charge(TimeCategory::ForwardBackward, 1.0);
                let before = comm.now();
                assert!(comm.test(&r), "injection finished during compute");
                comm.wait(&mut r);
                (before, comm.now())
            } else {
                let _ = comm.recv(0, TAG, TimeCategory::Other);
                (comm.now(), comm.now())
            }
        });
        // Sender: the wait was free (clock already past completion).
        assert_eq!(out[0].0, out[0].1);
        assert!((out[0].1 - 1.0).abs() < 1e-12, "only compute was charged");
        // Receiver: arrival is the injection completion, not compute end.
        assert!((out[1].0 - link.time(4096)).abs() < 1e-12);
    }

    #[test]
    fn outstanding_isends_serialize_on_the_nic() {
        // Two back-to-back isends of equal size: the second's completion
        // (and arrival) queues behind the first.
        let cfg = ClusterConfig::new(2);
        let link = cfg.link.clone();
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                let mut r1 = comm.isend(1, TAG, &[0.0; 256], TimeCategory::Other);
                let mut r2 = comm.isend(1, TAG, &[0.0; 256], TimeCategory::Other);
                comm.wait(&mut r1);
                comm.wait(&mut r2);
                comm.now()
            } else {
                let mut a = comm.irecv_into(0, TAG, TimeCategory::Other, Vec::new());
                let _ = comm.wait(&mut a);
                let t1 = comm.now();
                let mut b = comm.irecv_into(0, TAG, TimeCategory::Other, Vec::new());
                let _ = comm.wait(&mut b);
                comm.now() - t1
            }
        });
        let cost = link.time(1024);
        assert!(
            (out[0] - 2.0 * cost).abs() < 1e-12,
            "sender drains both injections"
        );
        assert!(
            (out[1] - cost).abs() < 1e-12,
            "arrivals are one injection apart"
        );
    }

    #[test]
    fn steady_state_nonblocking_exchange_does_not_allocate() {
        // The pooled zero-allocation guarantee must survive the request
        // path: isend takes pooled buffers, the receiver's wait recycles
        // the carcasses into its caller-owned destination buffer.
        let cfg = ClusterConfig::new(2);
        let allocs = VirtualCluster::run(&cfg, |comm| {
            let n = 512;
            let mut dest = vec![0.0f32; n];
            let peer = 1 - comm.rank();
            let exchange = |comm: &mut Comm, dest: &mut Vec<f32>| {
                let mut buf = comm.take_buffer(n);
                buf.resize(n, comm.rank() as f32);
                let mut s = comm.isend_from(peer, TAG, buf, TimeCategory::Other);
                let mut r = comm.irecv_into(peer, TAG, TimeCategory::Other, std::mem::take(dest));
                *dest = comm.wait(&mut r).expect("recv buffer");
                comm.wait(&mut s);
            };
            for _ in 0..4 {
                exchange(comm, &mut dest);
            }
            comm.barrier();
            let before = comm.pool_stats();
            for _ in 0..8 {
                exchange(comm, &mut dest);
            }
            comm.barrier();
            comm.pool_stats().since(&before)
        });
        assert_eq!(
            (allocs[0].allocations(), allocs[1].allocations()),
            (0, 0),
            "warm nonblocking exchange must not allocate: {allocs:?}"
        );
    }

    #[test]
    fn test_reports_recv_readiness_without_completing() {
        let cfg = ClusterConfig::new(2);
        let out = VirtualCluster::run(&cfg, |comm| {
            if comm.rank() == 0 {
                // Nothing has been sent to us yet on tag 77.
                let r = comm.irecv_into(1, 77, TimeCategory::Other, Vec::new());
                let early = comm.test(&r);
                // Rendezvous so the peer's message is physically in flight,
                // then advance our clock past its arrival.
                let _ = comm.recv(1, TAG, TimeCategory::Other);
                comm.charge(TimeCategory::Other, 10.0);
                let mut r = r;
                while !comm.test(&r) {
                    std::thread::yield_now();
                }
                let data = comm.wait(&mut r).expect("recv buffer");
                assert!(comm.test(&r), "completed requests test true");
                (early, data[0])
            } else {
                comm.send(0, TAG, &[0.0], TimeCategory::Other);
                comm.send(0, 77, &[9.0], TimeCategory::Other);
                (false, 0.0)
            }
        });
        assert!(!out[0].0, "no message yet: test must be false");
        assert_eq!(out[0].1, 9.0);
    }

    #[test]
    fn nonblocking_ops_record_their_trace_vocabulary() {
        let cfg = ClusterConfig::new(2);
        let traces = VirtualCluster::run(&cfg, |comm| {
            comm.trace_start();
            if comm.rank() == 0 {
                let mut r = comm.isend(1, crate::tags::SYNC_DATA, &[1.0], TimeCategory::Other);
                comm.wait(&mut r);
            } else {
                let mut r =
                    comm.irecv_into(0, crate::tags::SYNC_DATA, TimeCategory::Other, Vec::new());
                let _ = comm.wait(&mut r);
            }
            comm.trace_take()
        });
        assert_eq!(
            traces[0],
            vec![
                TraceOp::TakeBuf,
                TraceOp::Isend {
                    to: 1,
                    tag: crate::tags::SYNC_DATA
                }
            ],
            "send-side: pooled copy + post; the send wait is clock-only"
        );
        assert_eq!(
            traces[1],
            vec![
                TraceOp::Irecv {
                    from: 0,
                    tag: crate::tags::SYNC_DATA
                },
                TraceOp::Wait {
                    from: 0,
                    tag: crate::tags::SYNC_DATA
                },
                TraceOp::Recycle
            ],
            "recv-side: post, completing wait, carcass recycle"
        );
    }

    #[test]
    // The panic happens on the rank thread; the join surfaces it as
    // "rank panicked".
    #[should_panic(expected = "rank panicked")]
    fn send_to_self_rejected() {
        let cfg = ClusterConfig::new(1);
        let _ = VirtualCluster::run(&cfg, |comm| {
            comm.send(0, TAG, &[1.0], TimeCategory::Other);
        });
    }
}
