//! Loaders for the real dataset formats (§10.2 of the paper's artifact
//! appendix): MNIST idx files and CIFAR-10 binary batches.
//!
//! The environment this reproduction was built in is offline, so the
//! experiments run on [`crate::synthetic`] data — but these loaders are
//! tested against generated fixture files and accept the genuine
//! downloads unchanged (`train-images-idx3-ubyte`, `data_batch_*.bin`).

use crate::dataset::Dataset;
use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// Errors from dataset parsing.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file didn't match the expected format.
    Format(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn read_all(path: &Path) -> Result<Vec<u8>, LoadError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

fn be_u32(b: &[u8], off: usize) -> Result<u32, LoadError> {
    b.get(off..off + 4)
        .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
        .ok_or_else(|| LoadError::Format("truncated header".to_string()))
}

/// Parses an MNIST idx3 image file (magic `0x00000803`) into raw pixels
/// scaled to `[0, 1]`.
pub fn parse_idx_images(bytes: &[u8]) -> Result<(Vec<f32>, usize, usize, usize), LoadError> {
    let magic = be_u32(bytes, 0)?;
    if magic != 0x0000_0803 {
        return Err(LoadError::Format(format!(
            "bad idx3 magic {magic:#010x}, expected 0x00000803"
        )));
    }
    let n = be_u32(bytes, 4)? as usize;
    let h = be_u32(bytes, 8)? as usize;
    let w = be_u32(bytes, 12)? as usize;
    let need = 16 + n * h * w;
    if bytes.len() < need {
        return Err(LoadError::Format(format!(
            "idx3 body too short: {} < {need}",
            bytes.len()
        )));
    }
    let pixels = bytes[16..need].iter().map(|&b| b as f32 / 255.0).collect();
    Ok((pixels, n, h, w))
}

/// Parses an MNIST idx1 label file (magic `0x00000801`).
pub fn parse_idx_labels(bytes: &[u8]) -> Result<Vec<usize>, LoadError> {
    let magic = be_u32(bytes, 0)?;
    if magic != 0x0000_0801 {
        return Err(LoadError::Format(format!(
            "bad idx1 magic {magic:#010x}, expected 0x00000801"
        )));
    }
    let n = be_u32(bytes, 4)? as usize;
    let need = 8 + n;
    if bytes.len() < need {
        return Err(LoadError::Format(format!(
            "idx1 body too short: {} < {need}",
            bytes.len()
        )));
    }
    Ok(bytes[8..need].iter().map(|&b| b as usize).collect())
}

/// Loads an MNIST image/label file pair into a normalized [`Dataset`].
pub fn load_mnist(images_path: &Path, labels_path: &Path) -> Result<Dataset, LoadError> {
    let (pixels, n, h, w) = parse_idx_images(&read_all(images_path)?)?;
    let labels = parse_idx_labels(&read_all(labels_path)?)?;
    if labels.len() != n {
        return Err(LoadError::Format(format!(
            "{n} images but {} labels",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l > 9) {
        return Err(LoadError::Format(format!("mnist label {bad} > 9")));
    }
    let mut d = Dataset::new("mnist", vec![1, h, w], 10, pixels, labels);
    d.normalize();
    Ok(d)
}

/// Number of bytes per record in a CIFAR-10 binary batch:
/// 1 label byte + 3×32×32 pixel bytes.
pub const CIFAR_RECORD_BYTES: usize = 1 + 3 * 32 * 32;

/// Parses one CIFAR-10 binary batch (`data_batch_N.bin` layout: records of
/// label byte + 3072 channel-major pixel bytes).
pub fn parse_cifar_batch(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), LoadError> {
    if bytes.is_empty() || !bytes.len().is_multiple_of(CIFAR_RECORD_BYTES) {
        return Err(LoadError::Format(format!(
            "cifar batch size {} is not a multiple of {CIFAR_RECORD_BYTES}",
            bytes.len()
        )));
    }
    let n = bytes.len() / CIFAR_RECORD_BYTES;
    let mut pixels = Vec::with_capacity(n * 3072);
    let mut labels = Vec::with_capacity(n);
    for r in 0..n {
        let rec = &bytes[r * CIFAR_RECORD_BYTES..(r + 1) * CIFAR_RECORD_BYTES];
        let label = rec[0] as usize;
        if label > 9 {
            return Err(LoadError::Format(format!("cifar label {label} > 9")));
        }
        labels.push(label);
        pixels.extend(rec[1..].iter().map(|&b| b as f32 / 255.0));
    }
    Ok((pixels, labels))
}

/// Loads one or more CIFAR-10 binary batch files into a normalized
/// [`Dataset`].
pub fn load_cifar(paths: &[&Path]) -> Result<Dataset, LoadError> {
    if paths.is_empty() {
        return Err(LoadError::Format("no cifar batch files given".to_string()));
    }
    let mut pixels = Vec::new();
    let mut labels = Vec::new();
    for p in paths {
        let (px, lb) = parse_cifar_batch(&read_all(p)?)?;
        pixels.extend(px);
        labels.extend(lb);
    }
    let mut d = Dataset::new("cifar", vec![3, 32, 32], 10, pixels, labels);
    d.normalize();
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    /// Builds an idx3 fixture of `n` images `h×w` with pixel value = index.
    fn idx3_fixture(n: usize, h: usize, w: usize) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        b.extend_from_slice(&(n as u32).to_be_bytes());
        b.extend_from_slice(&(h as u32).to_be_bytes());
        b.extend_from_slice(&(w as u32).to_be_bytes());
        for i in 0..n * h * w {
            b.push((i % 256) as u8);
        }
        b
    }

    fn idx1_fixture(labels: &[u8]) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        b.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        b.extend_from_slice(labels);
        b
    }

    #[test]
    fn idx3_roundtrip() {
        let (pixels, n, h, w) = parse_idx_images(&idx3_fixture(3, 4, 5)).unwrap();
        assert_eq!((n, h, w), (3, 4, 5));
        assert_eq!(pixels.len(), 60);
        assert!((pixels[10] - 10.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn idx1_roundtrip() {
        let labels = parse_idx_labels(&idx1_fixture(&[3, 1, 4, 1, 5])).unwrap();
        assert_eq!(labels, vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn idx3_rejects_wrong_magic() {
        let mut f = idx3_fixture(1, 2, 2);
        f[3] = 0x01; // idx1 magic in an idx3 parse
        assert!(matches!(parse_idx_images(&f), Err(LoadError::Format(_))));
    }

    #[test]
    fn idx3_rejects_truncation() {
        let mut f = idx3_fixture(2, 4, 4);
        f.truncate(f.len() - 1);
        assert!(parse_idx_images(&f).is_err());
    }

    #[test]
    fn load_mnist_from_fixture_files() {
        let dir = std::env::temp_dir().join("easgd_mnist_fixture");
        std::fs::create_dir_all(&dir).unwrap();
        let img_path = dir.join("images");
        let lbl_path = dir.join("labels");
        File::create(&img_path)
            .unwrap()
            .write_all(&idx3_fixture(4, 28, 28))
            .unwrap();
        File::create(&lbl_path)
            .unwrap()
            .write_all(&idx1_fixture(&[0, 1, 2, 3]))
            .unwrap();
        let d = load_mnist(&img_path, &lbl_path).unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.shape, vec![1, 28, 28]);
        assert_eq!(d.labels(), &[0, 1, 2, 3]);
    }

    #[test]
    fn load_mnist_rejects_count_mismatch() {
        let dir = std::env::temp_dir().join("easgd_mnist_fixture2");
        std::fs::create_dir_all(&dir).unwrap();
        let img_path = dir.join("images");
        let lbl_path = dir.join("labels");
        File::create(&img_path)
            .unwrap()
            .write_all(&idx3_fixture(4, 28, 28))
            .unwrap();
        File::create(&lbl_path)
            .unwrap()
            .write_all(&idx1_fixture(&[0, 1]))
            .unwrap();
        assert!(load_mnist(&img_path, &lbl_path).is_err());
    }

    fn cifar_fixture(n: usize) -> Vec<u8> {
        let mut b = Vec::new();
        for r in 0..n {
            b.push((r % 10) as u8);
            for i in 0..3072 {
                b.push(((r + i) % 256) as u8);
            }
        }
        b
    }

    #[test]
    fn cifar_batch_roundtrip() {
        let (pixels, labels) = parse_cifar_batch(&cifar_fixture(3)).unwrap();
        assert_eq!(labels, vec![0, 1, 2]);
        assert_eq!(pixels.len(), 3 * 3072);
        assert!((pixels[0] - 0.0).abs() < 1e-6);
        assert!((pixels[3072] - 1.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn cifar_rejects_partial_record() {
        let mut f = cifar_fixture(2);
        f.pop();
        assert!(parse_cifar_batch(&f).is_err());
    }

    #[test]
    fn cifar_rejects_bad_label() {
        let mut f = cifar_fixture(1);
        f[0] = 11;
        assert!(parse_cifar_batch(&f).is_err());
    }

    #[test]
    fn load_cifar_concatenates_batches() {
        let dir = std::env::temp_dir().join("easgd_cifar_fixture");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("b1.bin");
        let p2 = dir.join("b2.bin");
        File::create(&p1)
            .unwrap()
            .write_all(&cifar_fixture(2))
            .unwrap();
        File::create(&p2)
            .unwrap()
            .write_all(&cifar_fixture(3))
            .unwrap();
        let d = load_cifar(&[&p1, &p2]).unwrap();
        assert_eq!(d.len(), 5);
        assert_eq!(d.shape, vec![3, 32, 32]);
    }
}
