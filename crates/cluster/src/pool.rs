//! The cluster-wide payload buffer pool: recycled `Vec<f32>` storage for
//! every message and collective result, plus the counting instrumentation
//! behind `BENCH_comm.json`'s allocs-per-step and bytes-moved columns.
//!
//! Ownership rules (DESIGN.md §10): a buffer is owned by exactly one of
//! (a) the rank that took it from the pool, (b) a `Message` in flight,
//! or (c) the gate's result store. Point-to-point payloads migrate with
//! the message — the *receiver* recycles them — so the pool is shared
//! across the whole cluster: asymmetric traffic (the CPU rank streaming
//! batches to the GPUs) drains nobody. Each [`crate::Comm`] additionally
//! keeps a small private free list in front of this pool so the
//! steady-state exchange path never touches the shared mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counter snapshot of pool activity (see [`BufferPool::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out that required a fresh heap allocation.
    pub fresh: u64,
    /// Reused buffers whose capacity had to grow (a realloc).
    pub grown: u64,
    /// Buffers handed out without touching the allocator.
    pub reused: u64,
    /// Payload bytes copied through the exchange path (sends into
    /// messages, gate combine traffic, results copied out).
    pub bytes_copied: u64,
}

impl PoolStats {
    /// Total allocator events: fresh buffers plus capacity growths.
    pub fn allocations(&self) -> u64 {
        self.fresh + self.grown
    }

    /// Counter-wise difference `self − earlier` (for per-window deltas).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            fresh: self.fresh - earlier.fresh,
            grown: self.grown - earlier.grown,
            reused: self.reused - earlier.reused,
            bytes_copied: self.bytes_copied - earlier.bytes_copied,
        }
    }
}

/// A mutex-guarded free list of `Vec<f32>` buffers with allocation and
/// copy counters. All counters are `Relaxed`: they are statistics — no
/// memory is published through them, and the bench reads them only after
/// the cluster's threads have joined.
#[derive(Default)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<f32>>>,
    fresh: AtomicU64,
    grown: AtomicU64,
    reused: AtomicU64,
    bytes_copied: AtomicU64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer with capacity ≥ `len`. Zero-length requests
    /// return a fresh `Vec::new()` without touching the pool or the
    /// counters (an empty `Vec` never allocates).
    pub fn take(&self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        let popped = {
            let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
            free.pop()
        };
        match popped {
            Some(mut buf) => {
                buf.clear();
                if buf.capacity() < len {
                    // ordering: statistics counter, see type docs.
                    self.grown.fetch_add(1, Ordering::Relaxed);
                    buf.reserve(len - buf.len());
                } else {
                    // ordering: statistics counter, see type docs.
                    self.reused.fetch_add(1, Ordering::Relaxed);
                }
                buf
            }
            None => {
                // ordering: statistics counter, see type docs.
                self.fresh.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(len)
            }
        }
    }

    /// Returns a buffer to the free list. Capacity-less buffers are
    /// dropped — recycling them would only inflate the list.
    pub fn put(&self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        free.push(buf);
    }

    /// Records `bytes` of payload copied through the exchange path.
    pub fn note_copy(&self, bytes: usize) {
        // ordering: statistics counter, see type docs.
        self.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one allocator event on a buffer managed *outside* the free
    /// list (a caller-provided `_into` output or gate input slot growing
    /// its capacity) so allocs-per-step counts every allocation on the
    /// exchange path, pooled or not.
    pub fn note_external_alloc(&self) {
        // ordering: statistics counter, see type docs.
        self.grown.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            // ordering: statistics counters, see type docs.
            fresh: self.fresh.load(Ordering::Relaxed),
            grown: self.grown.load(Ordering::Relaxed), // ordering: statistics counter
            reused: self.reused.load(Ordering::Relaxed), // ordering: statistics counter
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed), // ordering: statistics counter
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_then_put_then_take_reuses() {
        let pool = BufferPool::new();
        let mut a = pool.take(16);
        a.extend_from_slice(&[1.0; 16]);
        pool.put(a);
        let b = pool.take(8);
        assert!(b.is_empty(), "recycled buffer must come back cleared");
        assert!(b.capacity() >= 16);
        let s = pool.stats();
        assert_eq!((s.fresh, s.reused, s.grown), (1, 1, 0));
        assert_eq!(s.allocations(), 1);
    }

    #[test]
    fn growing_a_small_recycled_buffer_counts_as_allocation() {
        let pool = BufferPool::new();
        let a = pool.take(4);
        pool.put(a);
        let b = pool.take(1024);
        assert!(b.capacity() >= 1024);
        assert_eq!(pool.stats().allocations(), 2);
    }

    #[test]
    fn zero_length_takes_are_free() {
        let pool = BufferPool::new();
        let v = pool.take(0);
        assert_eq!(v.capacity(), 0);
        pool.put(v);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn stats_since_subtracts() {
        let pool = BufferPool::new();
        let _ = pool.take(8);
        let before = pool.stats();
        let _ = pool.take(8);
        pool.note_copy(32);
        let d = pool.stats().since(&before);
        assert_eq!(d.fresh, 1);
        assert_eq!(d.bytes_copied, 32);
    }
}
