//! Worker dataset shards and the *one* seed-derivation rule.
//!
//! Every trainer in the family gives worker `w` a private RNG stream
//! derived from the run seed. Before the engine existed each trainer
//! hand-rolled the XOR-multiply expression; the variants that matter are
//! now named here:
//!
//! * [`worker_rng`] — `seed ⊕ (w+1)·salt`, the per-worker rule of the
//!   shared-memory trainers (salt [`SALT_PHI`]) and the Hogwild family
//!   (salt [`SALT_HOGWILD`]; a different salt so the lock-free runs do
//!   not replay the locked runs' sample sequences).
//! * [`rank_rng`] — `seed ⊕ rank·salt`, the simulated-cluster rule where
//!   rank 0 is the master (so computing ranks start at 1 and no `+1`
//!   offset is needed).
//! * [`additive_rng`] — `seed + offset`, the synchronous simulators'
//!   rule.
//!
//! These must not be "simplified" into one another: golden-trace tests
//! pin the exact sample sequences each rule produces.

use easgd_data::{Batch, Dataset};
use easgd_tensor::Rng;

/// Weyl-sequence increment (2⁶⁴/φ): the salt of the locked shared-memory
/// family, the simulated-cluster workers, and the KNL partition groups.
pub const SALT_PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Salt of the Hogwild (lock-free) family.
pub const SALT_HOGWILD: u64 = 0xA24B_AED4_963E_E407;

/// The seed-derivation rule: stream `i` draws from `seed ⊕ i·salt`.
pub fn derive_seed(seed: u64, salt: u64, stream: u64) -> u64 {
    seed ^ stream.wrapping_mul(salt)
}

/// RNG of worker `w` in a 0-indexed worker pool: stream `w + 1`, so
/// worker 0 does not collapse onto the raw seed.
pub fn worker_rng(seed: u64, salt: u64, worker: usize) -> Rng {
    Rng::new(derive_seed(seed, salt, worker as u64 + 1))
}

/// RNG of cluster rank `rank` where rank 0 is a master: stream `rank`
/// with no offset (computing ranks are already ≥ 1).
pub fn rank_rng(seed: u64, salt: u64, rank: usize) -> Rng {
    Rng::new(derive_seed(seed, salt, rank as u64))
}

/// RNG from a plain additive offset (the synchronous simulators' rule).
pub fn additive_rng(seed: u64, offset: u64) -> Rng {
    Rng::new(seed.wrapping_add(offset))
}

/// One worker's slice of the training set plus its private batch cursor:
/// the dataset partition and the RNG stream that samples from it.
pub struct WorkerShard {
    worker: usize,
    data: Dataset,
    rng: Rng,
}

impl WorkerShard {
    /// Wraps an already-partitioned dataset for worker `worker`.
    pub fn new(worker: usize, data: Dataset, rng: Rng) -> Self {
        Self { worker, data, rng }
    }

    /// Partitions `train` across `workers` workers, deriving each
    /// worker's RNG with [`worker_rng`] under `salt`.
    pub fn from_partition(train: &Dataset, workers: usize, seed: u64, salt: u64) -> Vec<Self> {
        train
            .partition(workers)
            .into_iter()
            .enumerate()
            .map(|(w, data)| Self::new(w, data, worker_rng(seed, salt, w)))
            .collect()
    }

    /// Draws the next mini-batch from this worker's shard.
    pub fn next_batch(&mut self, batch: usize) -> Batch {
        self.data.sample_batch(&mut self.rng, batch)
    }

    /// This shard's 0-indexed worker id.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The shard's dataset slice.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Direct access to the worker's RNG (for trainers that draw more
    /// than batch indices from the worker stream).
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;

    #[test]
    fn derive_seed_matches_the_historical_expressions() {
        let seed = 0x5C17u64;
        // Shared-memory worker rule.
        assert_eq!(
            derive_seed(seed, SALT_PHI, 3 + 1),
            seed ^ (4u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        );
        // Hogwild worker rule.
        assert_eq!(
            derive_seed(seed, SALT_HOGWILD, 1),
            seed ^ 0xA24B_AED4_963E_E407
        );
    }

    #[test]
    fn worker_and_rank_rules_differ_by_the_offset() {
        // rank_rng(r) must equal worker_rng(r-1): the cluster rule has no
        // +1 because rank 0 is the master.
        let a = worker_rng(7, SALT_PHI, 1).next_u64();
        let b = rank_rng(7, SALT_PHI, 2).next_u64();
        assert_eq!(a, b);
        // And rank 1 is NOT worker 1.
        let c = rank_rng(7, SALT_PHI, 1).next_u64();
        assert_ne!(a, c);
    }

    #[test]
    fn shards_cover_the_training_set() {
        let task = SyntheticSpec::mnist_small().task(5);
        let (train, _) = task.train_test(64, 16, 6);
        let shards = WorkerShard::from_partition(&train, 4, 9, SALT_PHI);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(|s| s.data().len()).sum();
        assert_eq!(total, train.len());
        for (w, s) in shards.iter().enumerate() {
            assert_eq!(s.worker(), w);
        }
    }

    #[test]
    fn next_batch_replays_the_historical_sampler() {
        let task = SyntheticSpec::mnist_small().task(5);
        let (train, _) = task.train_test(64, 16, 6);
        let seed = 0xAB;
        let mut shards = WorkerShard::from_partition(&train, 2, seed, SALT_PHI);
        // The pre-engine trainers did: partition, then
        // sample_batch(&mut worker_rng, b) on the w-th piece.
        let pieces = train.partition(2);
        let mut rng = worker_rng(seed, SALT_PHI, 1);
        let want = pieces[1].sample_batch(&mut rng, 8);
        let got = shards[1].next_batch(8);
        assert_eq!(got.labels, want.labels);
        assert_eq!(got.images.as_slice(), want.images.as_slice());
    }
}
