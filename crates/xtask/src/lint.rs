//! Source-level lint pass enforcing the repo's concurrency and
//! determinism invariants.
//!
//! Eight rules, run over every workspace `.rs` file (see DESIGN.md
//! §"Static analysis & invariants" for the rationale):
//!
//! 1. **no-unsafe / simd-discipline** — the tree is `unsafe`-free and
//!    must stay that way (also enforced at compile time via
//!    `unsafe_code = "forbid"`; this pass catches it before a compile
//!    and inside cfg'd-out code). The one sanctioned exception is the
//!    explicit-SIMD microkernel module: files listed in
//!    `crates/xtask/simd-allow.txt` may contain `unsafe`, but every
//!    site must carry a `// SAFETY:` justification on the same line or
//!    in the comment block directly above (the textual mirror of the
//!    crate-level `clippy::undocumented_unsafe_blocks = "deny"`, so the
//!    discipline also covers cfg'd-out tiers the compiler never sees).
//! 2. **wall-clock** — `Instant::now`, `SystemTime` and `thread_rng`
//!    must not appear in simulated-clock / deterministic code. Wall-clock
//!    trainer files opt out with a `// xtask: allow(wall-clock)` pragma.
//! 3. **ordering-justification** — every `Ordering::` usage must carry a
//!    `// ordering:` justification, on the same line or in the comment
//!    block immediately above. Import lines are exempt.
//! 4. **no-unwrap** — `.unwrap()` / `.expect(` are banned in library
//!    hot paths (the six algorithm crates' `src/` trees) outside
//!    `#[cfg(test)]` blocks, except files listed in
//!    `crates/xtask/lint-allow.txt`.
//! 5. **payload-copy** — `.to_vec()` / `.clone()` are banned inside
//!    `crates/cluster/src/` (outside `#[cfg(test)]`): the exchange path
//!    is zero-allocation by design, so payload copies must go through
//!    the buffer pool's counted entry points. Deliberate sites (the
//!    `Vec`-returning compatibility shims, non-payload handle clones)
//!    carry a `// xtask: allow(payload-copy)` justification on the same
//!    line or in the comment block directly above.
//! 6. **step-alloc** — `.to_vec()` / `.clone()` / `Vec::new()` are
//!    banned inside the per-step hot-path function bodies (outside
//!    `#[cfg(test)]`): `fn forward*` / `fn backward*` / `fn infer*` in
//!    `crates/nn/src/`, and the serving request path in
//!    `crates/serve/src/` (`fn submit*` / `close*` / `dispatch*` /
//!    `recycle*` / `drain*` / `advance*` / `infer*` / `run_*`). The
//!    training step and the steady-state serving path are
//!    zero-allocation after warm-up (DESIGN.md §11, §16), so activation,
//!    cache, and request buffers must be sized through the counted
//!    scratch (`ensure_*`/`shape_tensor`) or the batcher's recycled
//!    pools. Deliberate sites (the allocating inference path, `Arc`
//!    refcount clones) carry a `// xtask: allow(step-alloc)`
//!    justification on the same line or in the comment block directly
//!    above.
//! 7. **tag-discipline** — point-to-point tag arguments in
//!    `crates/cluster/src/` and `crates/core/src/` must come from the
//!    named registry (`easgd_cluster::tags`), never bare integer
//!    literals, and tag-named `u32` constants may not be defined from
//!    literals outside the registry module. Deliberate sites carry a
//!    `// xtask: allow(tag-literal)` justification.
//! 8. **backend-discipline** — thread primitives (`thread::spawn`,
//!    `thread::scope`, `spawn_scoped`, `thread::sleep`, `yield_now`)
//!    and blocking argless `.recv()` / `.join()` calls are banned in
//!    `crates/cluster/src/` and `crates/core/src/` (outside
//!    `#[cfg(test)]`): how a rank blocks and wakes is the execution
//!    backend's business (`crates/cluster/src/backend.rs`, exempt along
//!    with the channel that implements blocking recv), so trainer code
//!    stays runnable on the event backend. Genuine real-thread sites
//!    (wall-clock trainers, Hogwild) carry a
//!    `// xtask: allow(thread-primitive)` justification.
//!
//! [`lint_workspace`] additionally reports **stale-allow**: entries in
//! `crates/xtask/lint-allow.txt` that no longer name an existing file —
//! a dead exemption that would silently re-admit `unwrap` if the path
//! ever came back — and entries in `crates/xtask/simd-allow.txt` that
//! name a missing file *or* a file that no longer contains any `unsafe`
//! (an exemption with nothing left to exempt would silently sanction
//! future unsafe).
//!
//! The pass works on a *stripped* view of each file — comments, string
//! and char literals blanked out — so tokens inside comments or strings
//! never fire, while pragma and justification detection reads the raw
//! comment text.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Pragma that exempts a whole file from the wall-clock rule.
pub const WALL_CLOCK_PRAGMA: &str = "xtask: allow(wall-clock)";

/// Pragma that justifies one payload copy site in `crates/cluster/src/`
/// (same line or the comment block directly above).
pub const PAYLOAD_COPY_PRAGMA: &str = "xtask: allow(payload-copy)";

/// Pragma that justifies one allocation site inside a `forward*` /
/// `backward*` body in `crates/nn/src/` (same line or the comment block
/// directly above).
pub const STEP_ALLOC_PRAGMA: &str = "xtask: allow(step-alloc)";

/// Pragma that justifies one bare-literal tag site in the comm-using
/// crates (same line or the comment block directly above).
pub const TAG_LITERAL_PRAGMA: &str = "xtask: allow(tag-literal)";

/// Pragma that justifies one direct thread-primitive / blocking-call
/// site outside the execution backend (same line or the comment block
/// directly above).
pub const THREAD_PRIMITIVE_PRAGMA: &str = "xtask: allow(thread-primitive)";

/// Thread-primitive tokens banned outside the execution backend
/// (rule 8). `thread::panicking` is deliberately absent: it is a query,
/// not a scheduling primitive, and strict-invariants `Drop` impls need
/// it.
const THREAD_PRIMITIVE_TOKENS: &[&str] = &[
    "thread::spawn",
    "thread::scope",
    "spawn_scoped",
    "thread::sleep",
    "yield_now",
];

/// `Comm` methods taking a tag argument, with the tag's zero-based
/// position in the argument list. Calls with too few arguments (e.g.
/// `std::sync::mpsc`-style `.send(msg)` or argless `.recv()`) are
/// skipped — only the communicator signatures are in scope.
const TAG_ARG_METHODS: &[(&str, usize)] = &[
    (".send(", 1),
    (".send_from(", 1),
    (".send_costed(", 1),
    (".send_from_costed(", 1),
    (".send_payload_costed(", 1),
    (".recv(", 1),
    (".recv_into(", 1),
    (".recv_costed(", 1),
    (".recv_costed_into(", 1),
    (".recv_any(", 0),
    (".recv_any_into(", 0),
    (".try_recv_any(", 0),
    (".isend(", 1),
    (".isend_from(", 1),
    (".irecv_into(", 1),
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

fn blank(c: char) -> char {
    if c == '\n' {
        '\n'
    } else {
        ' '
    }
}

/// Returns `source` with comments and string/char literal *contents*
/// blanked to spaces, newlines preserved, so token scans can't be fooled
/// by text in comments or strings. Handles nested block comments, raw
/// strings (`r"…"`, `r#"…"#`, byte variants) and escapes; `'a` lifetimes
/// are kept, `'x'` char literals are blanked.
pub fn strip_comments_and_strings(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: (b)?r#*".
        if (c == 'r' || (c == 'b' && b.get(i + 1) == Some(&'r'))) && !prev_is_ident(&b, i) {
            let r_pos = if c == 'b' { i + 1 } else { i };
            let mut j = r_pos + 1;
            while b.get(j) == Some(&'#') {
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                let hashes = j - (r_pos + 1);
                for &ch in &b[i..=j] {
                    out.push(blank(ch));
                }
                i = j + 1;
                while i < b.len() {
                    if b[i] == '"' {
                        let mut h = 0;
                        while h < hashes && b.get(i + 1 + h) == Some(&'#') {
                            h += 1;
                        }
                        if h == hashes {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            i += 1 + hashes;
                            break;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Plain (possibly byte) string.
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                    continue;
                }
                let done = b[i] == '"';
                out.push(if done { ' ' } else { blank(b[i]) });
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if b.get(i + 1) == Some(&'\\') {
                out.push_str("  ");
                i += 2;
                while i < b.len() && b[i] != '\'' {
                    out.push(blank(b[i]));
                    i += 1;
                }
                if i < b.len() {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if b.get(i + 2) == Some(&'\'') {
                out.push_str("   ");
                i += 3;
                continue;
            }
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True if `needle` occurs in `line` delimited by non-identifier chars.
fn has_token(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0 || !is_ident_char(line[..abs].chars().next_back().unwrap_or(' '));
        let after_ok = !line[abs + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Line spans (0-based, inclusive) of `#[cfg(test)]`-gated blocks,
/// computed by brace matching on the stripped source.
fn cfg_test_spans(stripped_lines: &[&str]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < stripped_lines.len() {
        if stripped_lines[i].contains("#[cfg(test)]") {
            // Find the opening brace of the gated item, then its match.
            let mut depth = 0usize;
            let mut opened = false;
            let start = i;
            let mut j = i;
            'outer: while j < stripped_lines.len() {
                for ch in stripped_lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            spans.push((start, j.min(stripped_lines.len() - 1)));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

fn in_spans(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// Step hot-path function-name prefixes for `crates/nn/src/`: the
/// training step plus the forward-only serving entry points.
const NN_STEP_FN_PREFIXES: &[&str] = &["forward", "backward", "infer"];

/// Step hot-path function-name prefixes for `crates/serve/src/`: every
/// function on the per-request path (batching, dispatch, recycling,
/// replica inference) must stay pooled-allocation-free.
const SERVE_STEP_FN_PREFIXES: &[&str] = &[
    "submit", "close", "dispatch", "recycle", "drain", "advance", "infer", "run_",
];

/// True if `line` declares a function whose name starts with one of
/// `prefixes` (the per-step hot-path naming convention).
fn is_step_fn_decl(line: &str, prefixes: &[&str]) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find("fn ") {
        let abs = start + pos;
        let before_ok = abs == 0 || !is_ident_char(line[..abs].chars().next_back().unwrap_or(' '));
        if before_ok {
            let name = line[abs + 3..].trim_start();
            if prefixes.iter().any(|p| name.starts_with(p)) {
                return true;
            }
        }
        start = abs + 3;
    }
    false
}

/// Line spans (0-based, inclusive) of hot-path `fn <prefix>*` bodies,
/// brace-matched on the stripped source. Bodiless trait signatures
/// (terminated by `;` before any `{`) yield no span.
fn step_fn_spans(stripped_lines: &[&str], prefixes: &[&str]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < stripped_lines.len() {
        if !is_step_fn_decl(stripped_lines[i], prefixes) {
            i += 1;
            continue;
        }
        let start = i;
        let mut depth = 0usize;
        let mut opened = false;
        let mut bodiless = false;
        let mut j = i;
        'outer: while j < stripped_lines.len() {
            for ch in stripped_lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break 'outer;
                        }
                    }
                    ';' if !opened => {
                        bodiless = true;
                        break 'outer;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        if !bodiless {
            spans.push((start, j.min(stripped_lines.len() - 1)));
        }
        i = j + 1;
    }
    spans
}

/// Lints one file's source. `hot_path` enables the no-unwrap rule (the
/// caller has already applied the allowlist).
pub fn lint_source(file: &str, source: &str, hot_path: bool) -> Vec<Finding> {
    lint_source_with(file, source, hot_path, false)
}

/// [`lint_source`] with the simd-discipline switch: `simd_exempt` marks
/// a file listed in `crates/xtask/simd-allow.txt`, where `unsafe` is
/// sanctioned but every site must carry a `// SAFETY:` justification
/// (rule 1 then reports `simd-discipline` instead of `no-unsafe`).
pub fn lint_source_with(
    file: &str,
    source: &str,
    hot_path: bool,
    simd_exempt: bool,
) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let wall_clock_allowed = raw_lines
        .iter()
        .any(|l| l.contains("//") && l.contains(WALL_CLOCK_PRAGMA));
    let test_spans = cfg_test_spans(&stripped_lines);
    let step_spans = if file.starts_with("crates/nn/src/") {
        step_fn_spans(&stripped_lines, NN_STEP_FN_PREFIXES)
    } else if file.starts_with("crates/serve/src/") {
        step_fn_spans(&stripped_lines, SERVE_STEP_FN_PREFIXES)
    } else {
        Vec::new()
    };
    let backend_scope = (file.starts_with("crates/cluster/src/")
        || file.starts_with("crates/core/src/"))
        && file != "crates/cluster/src/backend.rs"
        && file != "crates/cluster/src/channel.rs";
    let mut findings = Vec::new();

    for (idx, sline) in stripped_lines.iter().enumerate() {
        let lineno = idx + 1;

        // Rule 1: no-unsafe / simd-discipline. In a simd-allowlisted
        // file each `unsafe` site needs a `// SAFETY:` justification;
        // everywhere else `unsafe` is banned outright.
        if has_token(sline, "unsafe") {
            if !simd_exempt {
                findings.push(Finding {
                    file: file.to_string(),
                    line: lineno,
                    rule: "no-unsafe",
                    message: "`unsafe` is banned workspace-wide (the tree is unsafe-free); \
                              only the explicit-SIMD microkernel files in \
                              crates/xtask/simd-allow.txt are exempt"
                        .to_string(),
                });
            } else if !comment_justified(&raw_lines, idx, "SAFETY:") {
                findings.push(Finding {
                    file: file.to_string(),
                    line: lineno,
                    rule: "simd-discipline",
                    message: "`unsafe` in a simd-allowlisted file without a `// SAFETY:` \
                              justification (same line or the comment block directly above)"
                        .to_string(),
                });
            }
        }

        // Rule 2: wall-clock / nondeterminism sources.
        if !wall_clock_allowed {
            for tok in ["Instant::now", "SystemTime", "thread_rng"] {
                if has_token(sline, tok) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: lineno,
                        rule: "wall-clock",
                        message: format!(
                            "`{tok}` in a file without `// {WALL_CLOCK_PRAGMA}`: \
                             simulated-clock and deterministic paths must not read \
                             wall time or OS entropy"
                        ),
                    });
                }
            }
        }

        // Rule 3: ordering-justification. Only the atomic memory-ordering
        // variants count; `std::cmp::Ordering::{Less,Equal,Greater}` are
        // unrelated and exempt.
        let atomic_ordering = [
            "Ordering::Relaxed",
            "Ordering::Acquire",
            "Ordering::Release",
            "Ordering::AcqRel",
            "Ordering::SeqCst",
        ]
        .iter()
        .any(|tok| has_token(sline, tok));
        if atomic_ordering {
            let trimmed = sline.trim_start();
            let is_import = trimmed.starts_with("use ") || trimmed.starts_with("pub use ");
            if !is_import && !ordering_justified(&raw_lines, idx) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: lineno,
                    rule: "ordering-justification",
                    message: "atomic `Ordering::` usage without a `// ordering:` \
                              justification comment (same line or the comment block \
                              directly above)"
                        .to_string(),
                });
            }
        }

        // Rule 4: no-unwrap in library hot paths.
        if hot_path
            && !in_spans(&test_spans, idx)
            && (sline.contains(".unwrap()") || sline.contains(".expect("))
        {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule: "no-unwrap",
                message: "`.unwrap()`/`.expect(` in a library hot path; return an \
                          error or add the file to crates/xtask/lint-allow.txt \
                          with a justification"
                    .to_string(),
            });
        }

        // Rule 5: payload-copy — the comm crate's exchange path is
        // zero-allocation; copies must be pooled and counted, or carry a
        // per-site justification pragma.
        if file.starts_with("crates/cluster/src/")
            && !in_spans(&test_spans, idx)
            && (sline.contains(".to_vec()") || sline.contains(".clone()"))
            && !comment_justified(&raw_lines, idx, PAYLOAD_COPY_PRAGMA)
        {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule: "payload-copy",
                message: format!(
                    "`.to_vec()`/`.clone()` on the exchange path; route the copy \
                     through the buffer pool (`take_buffer`/`recv_into`/`send_from`) \
                     or justify the site with `// {PAYLOAD_COPY_PRAGMA}`"
                ),
            });
        }

        // Rule 6: step-alloc — per-step hot-path bodies (nn
        // forward/backward/infer, serve request path) size every buffer
        // through the counted scratch or the batcher's recycled pools;
        // stray allocations would break the zero-allocation steady
        // state.
        if in_spans(&step_spans, idx)
            && !in_spans(&test_spans, idx)
            && (sline.contains(".to_vec()")
                || sline.contains(".clone()")
                || sline.contains("Vec::new()"))
            && !comment_justified(&raw_lines, idx, STEP_ALLOC_PRAGMA)
        {
            findings.push(Finding {
                file: file.to_string(),
                line: lineno,
                rule: "step-alloc",
                message: format!(
                    "`.to_vec()`/`.clone()`/`Vec::new()` in a per-step hot path \
                     (nn forward/backward/infer, serve request path); size the \
                     buffer through the counted scratch \
                     (`ensure_f32`/`shape_tensor`) or a recycled pool, or \
                     justify the site with `// {STEP_ALLOC_PRAGMA}`"
                ),
            });
        }

        // Rule 8: backend-discipline — trainer and comm code must not
        // reach for thread primitives or blocking calls directly; those
        // live behind the execution-backend seam so the same code runs
        // on the discrete-event engine. `.recv()`/`.join()` match only
        // the argless blocking forms (a tagged `comm.recv(from, tag, …)`
        // or a `join("…")` on strings has arguments and is fine).
        if backend_scope && !in_spans(&test_spans, idx) {
            let thread_tok = THREAD_PRIMITIVE_TOKENS
                .iter()
                .find(|tok| has_token(sline, tok))
                .copied()
                .or_else(|| {
                    [".recv()", ".join()"]
                        .into_iter()
                        .find(|t| sline.contains(t))
                });
            if let Some(tok) = thread_tok {
                if !comment_justified(&raw_lines, idx, THREAD_PRIMITIVE_PRAGMA) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: lineno,
                        rule: "backend-discipline",
                        message: format!(
                            "`{tok}` outside the execution backend; rank scheduling \
                             and blocking belong in crates/cluster/src/backend.rs \
                             (or justify a genuine real-thread site with \
                             `// {THREAD_PRIMITIVE_PRAGMA}`)"
                        ),
                    });
                }
            }
        }
    }

    // Rule 7: tag-discipline — comm tags in the cluster/core crates come
    // from the named registry, not bare literals. Runs on the whole
    // stripped text (calls span lines) with balanced-paren argument
    // extraction.
    let tag_scope = (file.starts_with("crates/cluster/src/")
        || file.starts_with("crates/core/src/"))
        && file != "crates/cluster/src/tags.rs";
    if tag_scope {
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(stripped.match_indices('\n').map(|(i, _)| i + 1))
            .collect();
        let line_of = |offset: usize| line_starts.partition_point(|&s| s <= offset) - 1;
        for &(needle, tag_idx) in TAG_ARG_METHODS {
            let mut start = 0;
            while let Some(pos) = stripped[start..].find(needle) {
                let abs = start + pos;
                start = abs + needle.len();
                let idx = line_of(abs);
                if in_spans(&test_spans, idx)
                    || comment_justified(&raw_lines, idx, TAG_LITERAL_PRAGMA)
                {
                    continue;
                }
                let Some(args) = top_level_args(&stripped, abs + needle.len() - 1) else {
                    continue;
                };
                if args.len() <= tag_idx {
                    continue;
                }
                let tag_arg = args[tag_idx].trim();
                if tag_arg.starts_with(|c: char| c.is_ascii_digit()) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: idx + 1,
                        rule: "tag-discipline",
                        message: format!(
                            "bare integer literal `{tag_arg}` as the tag of `{}…)`; draw \
                             tags from the `easgd_cluster::tags` registry or justify the \
                             site with `// {TAG_LITERAL_PRAGMA}`",
                            needle.trim_start_matches('.')
                        ),
                    });
                }
            }
        }
        // Tag constants defined from literals belong in the registry.
        for (idx, sline) in stripped_lines.iter().enumerate() {
            if in_spans(&test_spans, idx) {
                continue;
            }
            let Some(cpos) = sline.find("const ") else {
                continue;
            };
            let decl = &sline[cpos..];
            if !(decl.contains("TAG") && decl.contains(": u32")) {
                continue;
            }
            let Some(eq) = decl.find('=') else { continue };
            let rhs = decl[eq + 1..].trim_start();
            if rhs.starts_with(|c: char| c.is_ascii_digit())
                && !comment_justified(&raw_lines, idx, TAG_LITERAL_PRAGMA)
            {
                findings.push(Finding {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: "tag-discipline",
                    message: format!(
                        "tag constant defined from a literal outside the registry; move \
                         it into `crates/cluster/src/tags.rs` or justify the site with \
                         `// {TAG_LITERAL_PRAGMA}`"
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    findings
}

/// Top-level argument texts of the call whose opening parenthesis is at
/// byte `open` in `stripped` (commas nested in parens/brackets/braces
/// don't split). `None` when the call never closes (malformed input).
fn top_level_args(stripped: &str, open: usize) -> Option<Vec<String>> {
    let mut depth = 0usize;
    let mut args = vec![String::new()];
    for ch in stripped[open..].chars() {
        match ch {
            '(' | '[' | '{' => {
                if depth > 0 {
                    if let Some(last) = args.last_mut() {
                        last.push(ch);
                    }
                }
                depth += 1;
            }
            ')' | ']' | '}' => {
                if depth == 1 && ch == ')' {
                    if args.len() == 1 && args[0].trim().is_empty() {
                        args.clear();
                    }
                    return Some(args);
                }
                depth = depth.saturating_sub(1);
                if let Some(last) = args.last_mut() {
                    last.push(ch);
                }
            }
            ',' if depth == 1 => args.push(String::new()),
            _ => {
                if depth > 0 {
                    if let Some(last) = args.last_mut() {
                        last.push(ch);
                    }
                }
            }
        }
    }
    None
}

/// Serializes findings as a JSON array (stable field order, no external
/// dependencies) for `lint --json` consumers.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"file\": \"");
        out.push_str(&json_escape(&f.file));
        out.push_str("\", \"line\": ");
        out.push_str(&f.line.to_string());
        out.push_str(", \"rule\": \"");
        out.push_str(&json_escape(f.rule));
        out.push_str("\", \"message\": \"");
        out.push_str(&json_escape(&f.message));
        out.push_str("\"}");
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A `// ordering:` comment on the line itself or in the contiguous
/// comment block directly above justifies an `Ordering::` usage.
fn ordering_justified(raw_lines: &[&str], idx: usize) -> bool {
    comment_justified(raw_lines, idx, "ordering:")
}

/// `needle` inside a `//` comment on the line itself or in the contiguous
/// comment block directly above justifies the flagged usage.
fn comment_justified(raw_lines: &[&str], idx: usize, needle: &str) -> bool {
    let has_note = |l: &str| l.find("//").is_some_and(|pos| l[pos..].contains(needle));
    if raw_lines.get(idx).copied().is_some_and(has_note) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim_start();
        if t.starts_with("//") {
            if has_note(t) {
                return true;
            }
        } else if t.is_empty() {
            break;
        } else {
            // A code line ends the comment block — but it may itself be a
            // justified sibling in the same CAS loop only if annotated;
            // stop either way.
            break;
        }
    }
    false
}

/// The crates whose `src/` trees count as library hot paths for the
/// no-unwrap rule.
const HOT_PATH_PREFIXES: [&str; 7] = [
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/data/src/",
    "crates/hardware/src/",
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/serve/src/",
];

fn is_hot_path(rel: &str) -> bool {
    HOT_PATH_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// Parses `lint-allow.txt`: one workspace-relative path per line, `#`
/// comments and blanks ignored.
pub fn parse_allowlist(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root`, returning all findings sorted by
/// path and line. Also reports `stale-allow` for `lint-allow.txt`
/// entries that no longer name an existing file.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let allow_path = root.join("crates/xtask/lint-allow.txt");
    let allow_text = fs::read_to_string(&allow_path).unwrap_or_default();
    let allow = parse_allowlist(&allow_text);
    let simd_allow_text =
        fs::read_to_string(root.join("crates/xtask/simd-allow.txt")).unwrap_or_default();
    let simd_allow = parse_allowlist(&simd_allow_text);
    let mut findings = stale_allow_findings(root, &allow_text);
    findings.extend(stale_simd_allow_findings(root, &simd_allow_text));
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let hot = is_hot_path(&rel) && !allow.contains(rel.as_str());
        findings.extend(lint_source_with(
            &rel,
            &source,
            hot,
            simd_allow.contains(rel.as_str()),
        ));
    }
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then_with(|| a.rule.cmp(b.rule))
    });
    Ok(findings)
}

/// `stale-allow` findings for allowlist entries naming files that no
/// longer exist (line numbers refer to `lint-allow.txt` itself).
fn stale_allow_findings(root: &Path, allow_text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in allow_text.lines().enumerate() {
        let entry = line.split('#').next().unwrap_or("").trim();
        if entry.is_empty() {
            continue;
        }
        if !root.join(entry).is_file() {
            findings.push(Finding {
                file: "crates/xtask/lint-allow.txt".to_string(),
                line: idx + 1,
                rule: "stale-allow",
                message: format!(
                    "allowlist entry `{entry}` names a file that no longer exists; \
                     remove the dead exemption"
                ),
            });
        }
    }
    findings
}

/// `stale-allow` findings for `simd-allow.txt`: entries naming a missing
/// file, or a file that no longer contains any `unsafe` token — either
/// way the exemption is dead and would silently sanction future unsafe
/// (line numbers refer to `simd-allow.txt` itself).
fn stale_simd_allow_findings(root: &Path, allow_text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in allow_text.lines().enumerate() {
        let entry = line.split('#').next().unwrap_or("").trim();
        if entry.is_empty() {
            continue;
        }
        let path = root.join(entry);
        let message = match fs::read_to_string(&path) {
            Err(_) => format!(
                "simd allowlist entry `{entry}` names a file that no longer exists; \
                 remove the dead exemption"
            ),
            Ok(source) => {
                let still_unsafe = strip_comments_and_strings(&source)
                    .lines()
                    .any(|l| has_token(l, "unsafe"));
                if still_unsafe {
                    continue;
                }
                format!(
                    "simd allowlist entry `{entry}` no longer contains `unsafe`; \
                     remove the stale exemption so it cannot silently re-admit unsafe"
                )
            }
        };
        findings.push(Finding {
            file: "crates/xtask/simd-allow.txt".to_string(),
            line: idx + 1,
            rule: "stale-allow",
            message,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    // Forbidden tokens are spelled via concat! so this test file passes
    // its own lint even when read as a seeded-violation fixture.
    fn instant_now() -> String {
        ["Instant", "::now"].concat()
    }

    #[test]
    fn strip_blanks_comments_and_strings() {
        let src = "let x = \"unsafe\"; // unsafe here\n/* unsafe */ let y = 'u';\n";
        let s = strip_comments_and_strings(src);
        assert!(!s.contains("unsafe"), "stripped: {s}");
        assert!(s.contains("let x ="));
        assert!(s.contains("let y ="));
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let s = r#\"Ordering::Relaxed\"#; }";
        let s = strip_comments_and_strings(src);
        assert!(!s.contains("Ordering::"));
        assert!(s.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn no_unsafe_fires_on_seeded_violation() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
        let f = lint_source("x.rs", src, false);
        assert!(f.iter().any(|f| f.rule == "no-unsafe"), "{f:?}");
    }

    #[test]
    fn no_unsafe_ignores_comments_strings_and_identifiers() {
        let src = "// unsafe\nlet s = \"unsafe\";\nlet unsafe_like = 1;\n";
        assert!(lint_source("x.rs", src, false).is_empty());
    }

    #[test]
    fn simd_exempt_file_requires_safety_justification() {
        // Unjustified unsafe in an allowlisted file: simd-discipline,
        // not no-unsafe.
        let bare = "fn f() { unsafe { core::arch::x86_64::_mm_sfence() } }";
        let f = lint_source_with("crates/tensor/src/simd.rs", bare, true, true);
        assert!(f.iter().any(|f| f.rule == "simd-discipline"), "{f:?}");
        assert!(f.iter().all(|f| f.rule != "no-unsafe"), "{f:?}");
        // A SAFETY comment on the same line or directly above satisfies it.
        let same_line = "fn f() { unsafe { x() } } // SAFETY: lanes bounded by the assert above";
        assert!(lint_source_with("s.rs", same_line, false, true).is_empty());
        let above = "// SAFETY: pointer stays inside the packed panel.\nfn f() { unsafe { x() } }";
        assert!(lint_source_with("s.rs", above, false, true).is_empty());
    }

    #[test]
    fn simd_exemption_does_not_leak_to_other_files() {
        let src = "fn f() { unsafe {} }";
        let f = lint_source_with("crates/tensor/src/gemm.rs", src, true, false);
        assert!(f.iter().any(|f| f.rule == "no-unsafe"), "{f:?}");
    }

    #[test]
    fn stale_simd_allow_reports_missing_and_unsafe_free_entries() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        // Line 1: the real simd module (live exemption — no finding).
        // Line 2: a file with no unsafe (stale). Line 3: missing (stale).
        let text =
            "crates/tensor/src/simd.rs\ncrates/xtask/src/lint.rs\ncrates/gone/src/never.rs\n";
        let f = stale_simd_allow_findings(root, text);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "stale-allow"));
        assert_eq!(f[0].line, 2);
        assert!(
            f[0].message.contains("no longer contains `unsafe`"),
            "{f:?}"
        );
        assert_eq!(f[1].line, 3);
        assert!(f[1].message.contains("no longer exists"), "{f:?}");
    }

    #[test]
    fn wall_clock_fires_on_planted_instant_now_in_sim_module() {
        let src = format!("fn tick() {{ let t = {}(); }}", instant_now());
        let f = lint_source("crates/cluster/src/clock.rs", &src, false);
        assert!(f.iter().any(|f| f.rule == "wall-clock"), "{f:?}");
    }

    #[test]
    fn wall_clock_pragma_opts_out() {
        let src = format!(
            "// {}\nfn tick() {{ let t = {}(); }}",
            WALL_CLOCK_PRAGMA,
            instant_now()
        );
        assert!(lint_source("crates/core/src/shared.rs", &src, false).is_empty());
    }

    #[test]
    fn thread_rng_and_system_time_also_fire() {
        let src = "fn f() { let r = rand::thread_rng(); let t = std::time::SystemTime::now(); }";
        let f = lint_source("x.rs", src, false);
        assert_eq!(
            f.iter().filter(|f| f.rule == "wall-clock").count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn unannotated_ordering_fires() {
        let src = "fn f(a: &AtomicU32) { a.load(Ordering::Relaxed); }";
        let f = lint_source("x.rs", src, false);
        assert!(
            f.iter().any(|f| f.rule == "ordering-justification"),
            "{f:?}"
        );
    }

    #[test]
    fn same_line_and_block_justifications_pass() {
        let same = "a.load(Ordering::Relaxed); // ordering: racy read is the Hogwild model\n";
        assert!(lint_source("x.rs", same, false).is_empty());
        let above = "// ordering: single writer, relaxed suffices\n// (second comment line)\na.store(1, Ordering::Relaxed);\n";
        assert!(lint_source("x.rs", above, false).is_empty());
    }

    #[test]
    fn ordering_import_is_exempt() {
        let src = "use std::sync::atomic::{AtomicU32, Ordering};\n";
        assert!(lint_source("x.rs", src, false).is_empty());
    }

    #[test]
    fn unwrap_fires_only_in_hot_paths_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        let hot = lint_source("crates/tensor/src/ops.rs", src, true);
        assert_eq!(
            hot.iter().filter(|f| f.rule == "no-unwrap").count(),
            1,
            "{hot:?}"
        );
        assert_eq!(hot[0].line, 1);
        let cold = lint_source("crates/bench/src/lib.rs", src, false);
        assert!(cold.iter().all(|f| f.rule != "no-unwrap"));
    }

    #[test]
    fn expect_also_fires() {
        let src = "fn f(x: Option<u32>) -> u32 { x.expect(\"boom\") }";
        let f = lint_source("crates/core/src/hogwild.rs", src, true);
        assert!(f.iter().any(|f| f.rule == "no-unwrap"), "{f:?}");
    }

    #[test]
    fn allowlist_parsing_ignores_comments_and_blanks() {
        let a = parse_allowlist(
            "# header\ncrates/core/src/shared.rs\n\n  crates/cluster/src/comm.rs  # locks\n",
        );
        assert!(a.contains("crates/core/src/shared.rs"));
        assert!(a.contains("crates/cluster/src/comm.rs"));
        assert_eq!(a.len(), 2);
    }

    // Spelled via concat! so this file's own payload-copy literal scan
    // (which only applies to crates/cluster/src/ anyway) never trips on
    // the fixtures.
    fn to_vec_call() -> String {
        [".to_", "vec()"].concat()
    }

    #[test]
    fn payload_copy_fires_inside_cluster_src() {
        let src = format!("fn f(x: &[f32]) -> Vec<f32> {{ x{} }}", to_vec_call());
        let f = lint_source("crates/cluster/src/comm.rs", &src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "payload-copy");
    }

    #[test]
    fn payload_copy_pragma_opts_out_per_site() {
        let src = format!(
            "// {}\n// compatibility shim.\nfn f(x: &[f32]) -> Vec<f32> {{ x{} }}\n\
             fn g(x: &[f32]) -> Vec<f32> {{ x{} }} // {}\n",
            PAYLOAD_COPY_PRAGMA,
            to_vec_call(),
            to_vec_call(),
            PAYLOAD_COPY_PRAGMA,
        );
        let f = lint_source("crates/cluster/src/comm.rs", &src, false);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn payload_copy_ignores_tests_and_other_crates() {
        // Other crates' sources are out of scope entirely.
        let src = format!("fn f(x: &[f32]) -> Vec<f32> {{ x{} }}", to_vec_call());
        assert!(lint_source("crates/core/src/sync.rs", &src, false).is_empty());
        // And #[cfg(test)] spans inside the cluster crate are exempt.
        let src = format!(
            "#[cfg(test)]\nmod tests {{\n    fn f(x: &[f32]) -> Vec<f32> {{ x{} }}\n}}\n",
            to_vec_call()
        );
        assert!(lint_source("crates/cluster/src/comm.rs", &src, false).is_empty());
    }

    fn vec_new_call() -> String {
        ["Vec:", ":new()"].concat()
    }

    #[test]
    fn step_alloc_fires_inside_forward_backward_in_nn() {
        let src = format!(
            "impl Layer for L {{\n    fn forward_into(&mut self) {{ let v = {}; }}\n}}\n",
            vec_new_call()
        );
        let f = lint_source("crates/nn/src/dense.rs", &src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "step-alloc");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn step_alloc_pragma_opts_out_per_site() {
        let src = format!(
            "fn backward(&mut self) {{\n    // {}\n    // inference-only path.\n    let v = x{};\n}}\n",
            STEP_ALLOC_PRAGMA,
            to_vec_call()
        );
        assert!(lint_source("crates/nn/src/pool.rs", &src, false).is_empty());
    }

    #[test]
    fn step_alloc_ignores_cold_fns_tests_and_other_crates() {
        // Constructors and clones outside forward*/backward* are fine.
        let src = format!(
            "fn new() -> Self {{ Self {{ cache: {} }} }}",
            vec_new_call()
        );
        assert!(lint_source("crates/nn/src/lrn.rs", &src, false).is_empty());
        // #[cfg(test)] spans are exempt even inside the nn crate.
        let src = format!(
            "#[cfg(test)]\nmod tests {{\n    fn forward_case() {{ let v = {}; }}\n}}\n",
            vec_new_call()
        );
        assert!(lint_source("crates/nn/src/conv.rs", &src, false).is_empty());
        // Other crates' forward fns are out of scope.
        let src = format!("fn forward(&mut self) {{ let v = {}; }}", vec_new_call());
        assert!(lint_source("crates/core/src/engine/local.rs", &src, false).is_empty());
    }

    #[test]
    fn step_alloc_fires_on_nn_infer_and_serve_request_path() {
        // `fn infer*` joined the nn hot set with the serving stack.
        let src = format!("fn infer_into(&mut self) {{ let v = {}; }}", vec_new_call());
        let f = lint_source("crates/nn/src/network.rs", &src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "step-alloc");
        // The serve request path uses its own prefix set.
        for name in [
            "submit",
            "close_due",
            "dispatch",
            "recycle",
            "drain",
            "advance",
            "infer",
            "run_batch",
        ] {
            let src = format!("fn {name}(&mut self) {{ let v = x{}; }}", to_vec_call());
            let f = lint_source("crates/serve/src/batcher.rs", &src, false);
            assert_eq!(f.len(), 1, "fn {name}: {f:?}");
            assert_eq!(f[0].rule, "step-alloc");
        }
        // Cold serve fns (constructors, accessors) stay free to allocate.
        let src = format!("fn new() -> Self {{ Self {{ q: {} }} }}", vec_new_call());
        assert!(lint_source("crates/serve/src/engine.rs", &src, false).is_empty());
        // nn's forward-only prefixes don't leak into serve and vice
        // versa: a serve `fn forward` is cold, an nn `fn submit` is cold.
        let src = format!("fn forward(&mut self) {{ let v = {}; }}", vec_new_call());
        assert!(lint_source("crates/serve/src/session.rs", &src, false).is_empty());
        let src = format!("fn submit(&mut self) {{ let v = {}; }}", vec_new_call());
        assert!(lint_source("crates/nn/src/network.rs", &src, false).is_empty());
    }

    #[test]
    fn serve_src_is_a_no_unwrap_hot_path() {
        let f = lint_source(
            "crates/serve/src/batcher.rs",
            "fn f() { x.unwrap(); }",
            true,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-unwrap");
        assert!(
            super::is_hot_path("crates/serve/src/engine.rs"),
            "serve src must be wired into HOT_PATH_PREFIXES"
        );
    }

    #[test]
    fn step_alloc_skips_bodiless_trait_signatures() {
        // A bodiless trait signature must not open a span that swallows
        // the next item.
        let src = format!(
            "trait T {{\n    fn forward(&mut self);\n}}\nfn helper() {{ let v = {}; }}\n",
            vec_new_call()
        );
        assert!(lint_source("crates/nn/src/layer.rs", &src, false).is_empty());
    }

    #[test]
    fn tag_discipline_fires_on_bare_literal_tags() {
        let src = "fn f(comm: &mut Comm) { comm.send(1, 10, &[], TimeCategory::Other); }";
        let f = lint_source("crates/core/src/sync.rs", src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "tag-discipline");
        // Hex literals and arithmetic on literals fire too, across lines.
        let src = "fn f(comm: &mut Comm) {\n    comm.recv_into(\n        0,\n        0x4000 + me as u32,\n        TimeCategory::Other,\n        &mut reply,\n    );\n}";
        let f = lint_source("crates/core/src/async_sim.rs", src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "tag-discipline");
        assert_eq!(f[0].line, 2, "flagged at the call line");
    }

    #[test]
    fn tag_discipline_accepts_registry_names_and_pragma() {
        let src = "fn f(comm: &mut Comm) { comm.send(1, tags::SYNC_DATA, &[], cat); \
                   comm.recv_any(tags::ASYNC_REQ, cat); }";
        assert!(lint_source("crates/core/src/sync.rs", src, false).is_empty());
        let src = "fn f(comm: &mut Comm) {\n    // xtask: allow(tag-literal) — fixture tag.\n    comm.send(1, 7, &[], cat);\n}";
        assert!(lint_source("crates/core/src/sync.rs", src, false).is_empty());
    }

    #[test]
    fn tag_discipline_skips_short_args_tests_and_foreign_files() {
        // mpsc-style one-arg send and argless recv lack a tag position.
        let src = "fn f() { senders[to].send(msg); let m = rx.recv(); }";
        assert!(lint_source("crates/cluster/src/channel.rs", src, false).is_empty());
        // #[cfg(test)] spans are exempt.
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f(c: &mut Comm) { c.send(1, 10, &[], cat); }\n}\n";
        assert!(lint_source("crates/cluster/src/comm.rs", src, false).is_empty());
        // Out-of-scope crates and the registry itself are exempt.
        let src = "fn f(c: &mut Comm) { c.send(1, 10, &[], cat); }";
        assert!(lint_source("crates/nn/src/dense.rs", src, false).is_empty());
        assert!(lint_source("tests/protocol_check.rs", src, false).is_empty());
    }

    #[test]
    fn tag_discipline_flags_literal_tag_constants_outside_registry() {
        let src = "const TAG_DATA: u32 = 10;\n";
        let f = lint_source("crates/core/src/sync.rs", src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "tag-discipline");
        // The registry module itself defines tags from literals.
        assert!(lint_source("crates/cluster/src/tags.rs", src, false).is_empty());
        // Constants built from registry names are fine.
        let src = "const MY_TAG: u32 = tags::SYNC_DATA;\n";
        assert!(lint_source("crates/core/src/sync.rs", src, false).is_empty());
    }

    // Spelled via concat! so the fixtures don't trip this file's own
    // scan (rule 8 doesn't scope xtask anyway; belt and braces).
    fn thread_scope_call() -> String {
        ["std::thr", "ead::scope"].concat()
    }

    #[test]
    fn backend_discipline_fires_on_thread_primitives_in_trainer_code() {
        let src = format!("fn f() {{ {}(|s| {{}}); }}", thread_scope_call());
        let f = lint_source("crates/core/src/sync.rs", &src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "backend-discipline");
        // Blocking argless recv/join also fire.
        let src = "fn f(rx: &Receiver<M>) { let m = rx.recv(); }";
        let f = lint_source("crates/cluster/src/comm.rs", src, false);
        assert!(f.iter().any(|f| f.rule == "backend-discipline"), "{f:?}");
        let src = "fn f(h: Handle) { h.join(); }";
        let f = lint_source("crates/core/src/engine/wall.rs", src, false);
        assert!(f.iter().any(|f| f.rule == "backend-discipline"), "{f:?}");
    }

    #[test]
    fn backend_discipline_skips_backend_channel_tests_and_argful_calls() {
        let src = format!("fn f() {{ {}(|s| {{}}); }}", thread_scope_call());
        // The backend module and the channel implementation are the seam.
        assert!(lint_source("crates/cluster/src/backend.rs", &src, false).is_empty());
        assert!(lint_source("crates/cluster/src/channel.rs", &src, false).is_empty());
        // Out-of-scope crates are fine.
        assert!(lint_source("crates/bench/src/lib.rs", &src, false).is_empty());
        // #[cfg(test)] spans are exempt.
        let src = format!(
            "#[cfg(test)]\nmod tests {{\n    fn f() {{ {}(|s| {{}}); }}\n}}\n",
            thread_scope_call()
        );
        assert!(lint_source("crates/core/src/sync.rs", &src, false).is_empty());
        // Argful recv/join (tagged comm recv, string join) don't match,
        // and thread::panicking is not a scheduling primitive.
        let src = "fn f(c: &mut Comm) { c.recv(0, tags::SYNC_DATA, cat); \
                   let s = parts.join(sep); let p = std::thread::panicking(); }";
        assert!(lint_source("crates/core/src/sync.rs", src, false).is_empty());
    }

    #[test]
    fn backend_discipline_pragma_opts_out_per_site() {
        let src = format!(
            "fn f() {{\n    // {}\n    // — real Hogwild threads, wall-clock trainer.\n    {}(|s| {{}});\n}}\n",
            THREAD_PRIMITIVE_PRAGMA,
            thread_scope_call()
        );
        assert!(lint_source("crates/core/src/convex.rs", &src, false).is_empty());
    }

    #[test]
    fn stale_allow_reports_dead_entries_with_lines() {
        let text = "# header\ncrates/xtask/src/lint.rs\ncrates/gone/src/never.rs # rationale\n";
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let f = stale_allow_findings(root, text);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "stale-allow");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("crates/gone/src/never.rs"));
    }

    #[test]
    fn findings_serialize_to_json() {
        assert_eq!(findings_to_json(&[]), "[]");
        let f = vec![Finding {
            file: "a.rs".to_string(),
            line: 3,
            rule: "no-unsafe",
            message: "say \"no\"".to_string(),
        }];
        let json = findings_to_json(&f);
        assert!(json.contains("\"file\": \"a.rs\""), "{json}");
        assert!(json.contains("\"line\": 3"), "{json}");
        assert!(json.contains("\\\"no\\\""), "{json}");
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn findings_are_sorted_by_line() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g() { unsafe {} }\n";
        let f = lint_source("crates/tensor/src/ops.rs", src, true);
        assert!(f.windows(2).all(|w| w[0].line <= w[1].line), "{f:?}");
    }

    #[test]
    fn workspace_lint_is_clean() {
        // The tree itself must pass its own lint. CARGO_MANIFEST_DIR is
        // crates/xtask; the workspace root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let findings = lint_workspace(&root).expect("lint runs");
        assert!(
            findings.is_empty(),
            "workspace lint found violations:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
